"""Fig. 8 — long runs from the process-grid initial distribution.

Paper (Sect. IV-C, 256 procs, grid initial distribution, 1000 steps): both
methods start with near-zero redistribution cost; as the particles drift
away from the initial decomposition, method A's sort+restore *grows* (to
~50 % of the FMM step total and ~75 % of the P2NFFT step total), while
method B's sort+resort stays flat and small.
"""

import numpy as np
import pytest

from conftest import margins as shared_margins
from repro.bench.figures import fig8


@pytest.fixture(scope="module")
def results(preset):
    return fig8(preset, quiet=True)


@pytest.fixture(scope="module")
def margins(preset):
    return shared_margins("fig8", preset)


def test_fig8_benchmark(benchmark, preset):
    benchmark.pedantic(lambda: fig8(preset, quiet=True), rounds=1, iterations=1)


class TestShape:
    def head_tail(self, series, frac=0.15):
        k = max(1, int(len(series) * frac))
        return float(np.mean(series[:k])), float(np.mean(series[-k:]))

    def test_method_a_redistribution_grows(self, results):
        for solver in ("fmm", "p2nfft"):
            head, tail = self.head_tail(results[solver]["A"]["redist"])
            assert tail > 2.5 * head, f"{solver}: A should grow with drift"

    def test_method_b_stays_flat(self, results):
        for solver in ("fmm", "p2nfft"):
            head, tail = self.head_tail(results[solver]["B"]["redist"])
            assert tail < 2.0 * head, f"{solver}: B must not grow"

    def test_a_ends_above_b(self, results):
        for solver in ("fmm", "p2nfft"):
            _, tail_a = self.head_tail(results[solver]["A"]["redist"])
            _, tail_b = self.head_tail(results[solver]["B"]["redist"])
            assert tail_a > 3 * tail_b

    def test_a_redistribution_becomes_large_fraction(self, results, margins):
        """Late in the run, redistribution is a major share of A's step."""
        for solver in ("fmm", "p2nfft"):
            _, tail_r = self.head_tail(results[solver]["A"]["redist"])
            _, tail_t = self.head_tail(results[solver]["A"]["total"])
            assert tail_r / tail_t > margins["a_frac"]

    def test_b_redistribution_small_fraction(self, results):
        for solver in ("fmm", "p2nfft"):
            _, tail_r = self.head_tail(results[solver]["B"]["redist"])
            _, tail_t = self.head_tail(results[solver]["B"]["total"])
            assert tail_r / tail_t < 0.30

    def test_total_a_grows_total_b_flat(self, results, margins):
        for solver in ("fmm", "p2nfft"):
            head_a, tail_a = self.head_tail(results[solver]["A"]["total"])
            head_b, tail_b = self.head_tail(results[solver]["B"]["total"])
            assert tail_a > margins["a_total_growth"] * head_a
            assert tail_b < 1.25 * head_b
