#!/usr/bin/env python
"""Checkpoint/restart + elastic-resize benchmark.

Measures the host-side (wall-clock) cost of the :mod:`repro.ckpt`
subsystem on a seeded FMM/method-B trajectory:

* ``capture_ns`` / ``save_ns`` / ``load_ns`` / ``restore_ns`` — one full
  in-memory capture, NDJSON serialization to disk, parse-back, and live
  restore (median over ``--repeat`` runs);
* ``save_bytes`` — the on-disk NDJSON size;
* per-resize ``moved_bytes`` for a P→Q→P round trip — the modeled
  inter-rank payload of the fused seven-column exchange (also exported by
  the obs counter ``resize.moved_bytes``);
* a restart-equivalence spot check (run 2N ≡ run N + save + restore +
  run N) so the numbers always describe a *correct* checkpoint path.

Writes ``BENCH_ckpt.json``.

Run:  PYTHONPATH=src python benchmarks/bench_ckpt.py [--steps N] [--n N]
      [--nprocs P] [--repeat R] [--out BENCH_ckpt.json]
"""

import argparse
import json
import os
import statistics
import sys
import tempfile
import time

from repro.ckpt import (
    capture_checkpoint,
    load_checkpoint,
    resize_checkpoint,
    restore_simulation,
    write_checkpoint,
)
from repro.ckpt.equivalence import run_restart_equivalence
from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine


def build(nprocs, n, steps, seed):
    sim = Simulation(
        Machine(nprocs),
        silica_melt_system(n, seed=seed),
        SimulationConfig(solver="fmm", method="B", seed=seed, track_energy=True),
    )
    sim.run(steps)
    return sim


def timed(fn, repeat):
    samples = []
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter_ns()
        result = fn()
        samples.append(time.perf_counter_ns() - t0)
    return result, int(statistics.median(samples))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=3)
    parser.add_argument("--n", type=int, default=96)
    parser.add_argument("--nprocs", type=int, default=4)
    parser.add_argument("--resize-to", type=int, default=6)
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_ckpt.json")
    args = parser.parse_args(argv)

    sim = build(args.nprocs, args.n, args.steps, args.seed)
    try:
        ckpt, capture_ns = timed(lambda: capture_checkpoint(sim), args.repeat)
    finally:
        sim.fcs.destroy()

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.ckpt.ndjson")
        save_bytes, save_ns = timed(
            lambda: write_checkpoint(ckpt, path), args.repeat
        )
        loaded, load_ns = timed(lambda: load_checkpoint(path), args.repeat)

    def restore_once():
        restored = restore_simulation(loaded)
        restored.fcs.destroy()
        return restored

    _, restore_ns = timed(restore_once, args.repeat)

    up, up_plan = resize_checkpoint(ckpt, args.resize_to)
    down, down_plan = resize_checkpoint(up, args.nprocs)

    cell = run_restart_equivalence("fmm", "B", steps=2, nprocs=2, n_particles=16)
    if not cell.ok:
        print(f"restart-equivalence spot check FAILED: {cell.detail}")
        return 1

    payload = {
        "schema": "repro.ckpt/bench-v1",
        "config": {
            "solver": "fmm",
            "method": "B",
            "steps": args.steps,
            "n_particles": args.n,
            "nprocs": args.nprocs,
            "resize_to": args.resize_to,
            "repeat": args.repeat,
        },
        "host_ns": {
            "capture": capture_ns,
            "save": save_ns,
            "load": load_ns,
            "restore": restore_ns,
        },
        "save_bytes": save_bytes,
        "resize": {
            "up": {
                "from": args.nprocs,
                "to": args.resize_to,
                "moved_bytes": up_plan.moved_bytes,
            },
            "down": {
                "from": args.resize_to,
                "to": args.nprocs,
                "moved_bytes": down_plan.moved_bytes,
            },
        },
        "equivalence_ok": cell.ok,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(
        f"ckpt bench: capture {capture_ns / 1e6:.2f} ms, "
        f"save {save_ns / 1e6:.2f} ms ({save_bytes} bytes), "
        f"load {load_ns / 1e6:.2f} ms, restore {restore_ns / 1e6:.2f} ms, "
        f"resize {args.nprocs}->{args.resize_to}->{args.nprocs} moved "
        f"{up_plan.moved_bytes}+{down_plan.moved_bytes} bytes; "
        f"equivalence ok -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
