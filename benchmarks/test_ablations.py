"""Ablations beyond the paper's figures: the design choices DESIGN.md calls
out, each isolated.

* sorting-method crossover as a function of input disorder,
* all-to-all vs neighborhood communication vs payload size,
* the cost of the resort-index creation (method B's extra step),
* the congestion model's effect on irregular all-to-alls.
"""

import numpy as np
import pytest

from repro.core.fine_grained import fine_grained_redistribute
from repro.core.particles import ColumnBlock
from repro.core.resort import initial_numbering, invert_indices
from repro.simmpi.costmodel import JUQUEEN, JUROPA
from repro.simmpi.machine import Machine
from repro.sorting.merge_sort import merge_exchange_sort
from repro.sorting.partition_sort import partition_sort


def make_key_blocks(keys_per_rank):
    return [
        ColumnBlock(
            key=np.asarray(k, dtype=np.uint64),
            pos=np.zeros((len(k), 3)),
            q=np.zeros(len(k)),
        )
        for k in keys_per_rank
    ]


def disordered_keys(rng, P, per, disorder, local_jitter=True, span_frac=0.25):
    """Globally sorted keys with a fraction ``disorder`` perturbed.

    ``local_jitter`` displaces keys by ``span_frac`` of one rank's key range
    (particles drifting into nearby boxes — the merge-friendly regime);
    otherwise keys are re-drawn uniformly (teleports, which blow up merge
    windows).
    """
    n = P * per
    base = np.sort(rng.integers(0, 2 ** 40, n).astype(np.uint64))
    n_moved = int(disorder * n)
    if n_moved:
        idx = rng.choice(n, n_moved, replace=False)
        if local_jitter:
            span = max(1, int((2 ** 40 / n) * per * span_frac))
            base[idx] = base[idx] + rng.integers(0, span, n_moved).astype(np.uint64)
        else:
            base[idx] = rng.integers(0, 2 ** 40, n_moved).astype(np.uint64)
    return [base[r * per:(r + 1) * per] for r in range(P)]


class TestSortingCrossover:
    """The mechanics behind the max-movement heuristic: on almost-sorted
    data the merge-based sort moves a small fraction of the bytes the
    partition-based sort's collective path handles (its advantage on
    latency-bound torus networks), while on disordered data the partition
    sort is outright faster — consistent with the paper's observation that
    the merge sort gives no win on the *fat-tree* JuRoPA but large wins on
    the torus Juqueen."""

    def run_both(self, disorder, local_jitter, profile=JUROPA, P=32, per=500):
        rng = np.random.default_rng(3)
        keys = disordered_keys(rng, P, per, disorder, local_jitter=local_jitter)
        m1 = Machine(P, profile=profile)
        merge_exchange_sort(m1, make_key_blocks(keys), "key", "s", verify=False)
        m2 = Machine(P, profile=profile)
        partition_sort(m2, make_key_blocks(keys), "key", "s")
        return m1, m2

    def test_almost_sorted_merge_wins(self):
        m_merge, m_part = self.run_both(0.002, local_jitter=True)
        assert m_merge.elapsed() < m_part.elapsed()

    def test_almost_sorted_merge_wins_big_on_torus(self):
        m_merge, m_part = self.run_both(
            0.002, local_jitter=True, profile=JUQUEEN, P=512, per=100
        )
        assert m_merge.elapsed() < m_part.elapsed() / 5

    def test_disordered_partition_faster(self):
        m_merge, m_part = self.run_both(0.6, local_jitter=False)
        assert m_part.elapsed() < m_merge.elapsed()

    def test_merge_cost_scales_with_disorder(self):
        times = []
        for disorder in (0.001, 0.05, 0.4):
            m, _ = self.run_both(disorder, local_jitter=True)
            times.append(m.elapsed())
        assert times[0] < times[1] < times[2]

    def test_benchmark_merge_almost_sorted(self, benchmark):
        rng = np.random.default_rng(3)
        keys = disordered_keys(rng, 16, 400, 0.002, local_jitter=True)

        def run():
            m = Machine(16, profile=JUROPA)
            merge_exchange_sort(m, make_key_blocks(keys), "key", "s", verify=False)
            return m.elapsed()

        benchmark(run)


class TestNeighborhoodVsAlltoall:
    """The count-exchange saving of neighborhood communication grows with
    the process count (the Fig. 9 mechanism)."""

    def modeled_times(self, P, profile):
        def neighbor_targets(rank, block):
            return np.full(block.n, (rank + 1) % P, dtype=np.int64)

        times = {}
        for comm in ("alltoall", "neighborhood"):
            m = Machine(P, profile=profile)
            blocks = [ColumnBlock(x=np.zeros(8)) for _ in range(P)]
            fine_grained_redistribute(m, blocks, neighbor_targets, "x", comm=comm)
            times[comm] = m.elapsed()
        return times

    @pytest.mark.parametrize("P", [64, 1024])
    def test_neighborhood_cheaper(self, P):
        t = self.modeled_times(P, JUQUEEN)
        assert t["neighborhood"] < t["alltoall"]

    def test_saving_grows_with_p(self):
        small = self.modeled_times(64, JUQUEEN)
        big = self.modeled_times(2048, JUQUEEN)
        saving_small = small["alltoall"] - small["neighborhood"]
        saving_big = big["alltoall"] - big["neighborhood"]
        assert saving_big > 3 * saving_small


class TestResortIndexCreation:
    """Method B's 'additional communication step': inverting the index
    permutation costs about one more fine-grained redistribution."""

    def test_creation_cost_comparable_to_one_redistribution(self, rng):
        P = 32
        per = 200
        m = Machine(P, profile=JUROPA)
        counts = [per] * P
        numbering = np.concatenate(initial_numbering(counts))
        perm = rng.permutation(P * per)
        origloc = [numbering[perm[r * per:(r + 1) * per]] for r in range(P)]
        invert_indices(m, origloc, counts, "inv")
        t_invert = m.trace.get("inv").time

        m2 = Machine(P, profile=JUROPA)
        blocks = [ColumnBlock(x=np.zeros((per, 2))) for _ in range(P)]
        fine_grained_redistribute(
            m2, blocks, lambda r, b: rng.integers(0, P, b.n), "fw"
        )
        t_redist = m2.trace.get("fw").time
        assert 0.2 * t_redist < t_invert < 5 * t_redist

    def test_benchmark_invert(self, benchmark, rng):
        P, per = 16, 200
        counts = [per] * P
        numbering = np.concatenate(initial_numbering(counts))
        perm = rng.permutation(P * per)
        origloc = [numbering[perm[r * per:(r + 1) * per]] for r in range(P)]

        def run():
            m = Machine(P)
            return invert_indices(m, origloc, counts, "inv")

        benchmark(run)


class TestCongestionModel:
    """Irregular many-target all-to-alls degrade superlinearly on the
    fat-tree profile but only mildly on the torus profile."""

    def fan_time(self, profile, targets):
        P = 256
        m = Machine(P, profile=profile)
        sends = [{} for _ in range(P)]
        for t in range(1, targets + 1):
            sends[0][t] = np.zeros(8)
        from repro.simmpi.collectives import alltoallv

        t0 = m.elapsed()
        alltoallv(m, sends, "x", count_exchange="sparse")
        return m.elapsed() - t0

    def test_fat_tree_superlinear(self):
        assert self.fan_time(JUROPA, 128) > 10 * self.fan_time(JUROPA, 8)

    def test_torus_milder(self):
        ratio_torus = self.fan_time(JUQUEEN, 128) / self.fan_time(JUQUEEN, 8)
        ratio_tree = self.fan_time(JUROPA, 128) / self.fan_time(JUROPA, 8)
        assert ratio_torus < ratio_tree
