"""Fig. 6 — influence of the initial particle distribution.

Paper (Sect. IV-B, 256 procs on JuRoPA, method A): storing all particles on
a single process is slowest (that process serializes all communication and
the FMM computes sequentially); a random distribution is intermediate; the
process-grid distribution cuts sorting/restoring by at least an order of
magnitude versus random.
"""

import pytest

from conftest import margins as shared_margins
from repro.bench.figures import fig6
from repro.md.distributions import CLUSTERED_KINDS


@pytest.fixture(scope="module")
def results(preset):
    return fig6(preset, quiet=True)


@pytest.fixture(scope="module")
def margins(preset):
    return shared_margins("fig6", preset)


def test_fig6_benchmark(benchmark, preset):
    benchmark.pedantic(lambda: fig6(preset, quiet=True), rounds=1, iterations=1)


class TestShape:
    def test_single_process_slowest_total(self, results):
        for solver in ("fmm", "p2nfft"):
            r = results[solver]
            assert r["single"]["total"] > r["random"]["total"]
            assert r["random"]["total"] > r["grid"]["total"]

    def test_fmm_single_is_sequential_compute(self, results):
        """The FMM performs no load balancing, so the single-process case
        costs an order of magnitude (roughly P/serial fraction) more."""
        r = results["fmm"]
        assert r["single"]["total"] > 10 * r["random"]["total"]

    def test_grid_sort_order_of_magnitude_below_random(self, results, margins):
        for solver in ("fmm", "p2nfft"):
            r = results[solver]
            assert r["grid"]["sort"] < r["random"]["sort"] / margins["sort_ratio"]
            assert r["grid"]["restore"] < r["random"]["restore"] / margins["restore_ratio"]

    def test_single_sort_worst(self, results):
        for solver in ("fmm", "p2nfft"):
            r = results[solver]
            assert r["single"]["sort"] > r["random"]["sort"]


class TestClusteredShape:
    """The inhomogeneous workloads ride along fig6 (count-based
    partitioning, no balancing): a clustered system must cost *more* per
    FMM execution than the homogeneous grid case — the dense ranks
    serialize the near field, which is exactly the imbalance
    ``benchmarks/bench_balance.py`` shows the weighted partitioning
    removing."""

    def test_rows_present(self, results):
        for solver in ("fmm", "p2nfft"):
            for kind in CLUSTERED_KINDS:
                assert f"clustered:{kind}" in results[solver]

    def test_clustered_totals_exceed_homogeneous_grid(self, results):
        r = results["fmm"]
        for kind in ("two-cluster", "plummer"):
            assert r[f"clustered:{kind}"]["total"] > r["grid"]["total"], (
                f"{kind}: equal-count split should serialize the dense ranks"
            )
