"""Fig. 6 — influence of the initial particle distribution.

Paper (Sect. IV-B, 256 procs on JuRoPA, method A): storing all particles on
a single process is slowest (that process serializes all communication and
the FMM computes sequentially); a random distribution is intermediate; the
process-grid distribution cuts sorting/restoring by at least an order of
magnitude versus random.
"""

import pytest

from repro.bench.figures import fig6


@pytest.fixture(scope="module")
def results(preset):
    return fig6(preset, quiet=True)


@pytest.fixture(scope="module")
def margins(preset):
    """Shape margins: the contrasts sharpen with particles-per-process, so
    the quick preset asserts looser factors than the paper-scale presets."""
    if preset == "quick":
        return {"sort_ratio": 3.0, "restore_ratio": 2.5}
    return {"sort_ratio": 8.0, "restore_ratio": 5.0}


def test_fig6_benchmark(benchmark, preset):
    benchmark.pedantic(lambda: fig6(preset, quiet=True), rounds=1, iterations=1)


class TestShape:
    def test_single_process_slowest_total(self, results):
        for solver in ("fmm", "p2nfft"):
            r = results[solver]
            assert r["single"]["total"] > r["random"]["total"]
            assert r["random"]["total"] > r["grid"]["total"]

    def test_fmm_single_is_sequential_compute(self, results):
        """The FMM performs no load balancing, so the single-process case
        costs an order of magnitude (roughly P/serial fraction) more."""
        r = results["fmm"]
        assert r["single"]["total"] > 10 * r["random"]["total"]

    def test_grid_sort_order_of_magnitude_below_random(self, results, margins):
        for solver in ("fmm", "p2nfft"):
            r = results[solver]
            assert r["grid"]["sort"] < r["random"]["sort"] / margins["sort_ratio"]
            assert r["grid"]["restore"] < r["random"]["restore"] / margins["restore_ratio"]

    def test_single_sort_worst(self, results):
        for solver in ("fmm", "p2nfft"):
            r = results[solver]
            assert r["single"]["sort"] > r["random"]["sort"]
