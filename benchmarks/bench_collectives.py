#!/usr/bin/env python
"""Collective-algorithm crossover benchmark (repro.simmpi.algos).

Sweeps the alltoallv algorithms (``direct`` closed-form, staged
``pairwise``, staged ``bruck``) over a message-size × rank-count grid on
both machine models — the JuRoPA-like fat tree and the Blue Gene/Q-like
torus — and records the modeled elapsed seconds per dense exchange, plus
companion sweeps of the allgatherv and allreduce engines.  Writes
``BENCH_collectives.json``.

The acceptance regimes this evidences (gated on every topology × P cell):

* **small messages**: Bruck's ⌈log₂P⌉ staged-forwarding rounds beat both
  the direct model and pairwise — latency dominates, and log rounds buy
  off the per-message overhead of P−1 peers;
* **large messages**: pairwise wins — Bruck's log-factor forwarding volume
  and the direct model's congested fan both lose to P−1 clean pairwise
  rounds at bandwidth;
* the ``auto`` selector picks the winning regime at both grid extremes.

Run:  PYTHONPATH=src python benchmarks/bench_collectives.py
      [--out BENCH_collectives.json]
"""

import argparse
import json
import sys

import numpy as np

from repro.simmpi import JUQUEEN, JUROPA, Machine
from repro.simmpi.algos import resolve
from repro.simmpi.collectives import allgatherv, allreduce, alltoallv

TOPOLOGIES = {"fattree": JUROPA, "torus": JUQUEEN}
RANK_COUNTS = (32, 64)
#: per-pair payload bytes: spans the latency-dominated to the
#: bandwidth-dominated regime on both machine models
SIZES = (64, 512, 4096, 16384, 65536)
ALLTOALLV_ALGOS = ("direct", "pairwise", "bruck")


def dense_sends(P, size):
    # payloads are read-only in flight: one shared block keeps the dense
    # P=64 x 64KiB cell at one array instead of P*(P-1) of them
    block = np.zeros(max(0, size // 8))
    return [{j: block for j in range(P) if j != i} for i in range(P)]


def modeled_alltoallv(profile, P, size, algo):
    machine = Machine(P, profile=profile)
    if algo != "direct":
        machine.set_collective_algos(f"alltoallv={algo}")
    alltoallv(machine, dense_sends(P, size), "sort")
    return machine.elapsed()


def modeled_allgatherv(profile, P, size, algo):
    machine = Machine(P, profile=profile)
    if algo != "direct":
        machine.set_collective_algos(f"allgatherv={algo}")
    arrays = [np.zeros(max(1, size // 8)) for _ in range(P)]
    allgatherv(machine, arrays, "gather")
    return machine.elapsed()


def modeled_allreduce(profile, P, size, algo):
    machine = Machine(P, profile=profile)
    if algo != "direct":
        machine.set_collective_algos(f"allreduce={algo}")
    values = [np.zeros(max(1, size // 8)) for _ in range(P)]
    allreduce(machine, values, phase="tune")
    return machine.elapsed()


def sweep():
    grid = {}
    for topo, profile in TOPOLOGIES.items():
        cells = []
        for P in RANK_COUNTS:
            for size in SIZES:
                times = {
                    algo: modeled_alltoallv(profile, P, size, algo)
                    for algo in ALLTOALLV_ALGOS
                }
                auto = resolve(
                    Machine(P, profile=profile),
                    "alltoallv",
                    "auto",
                    sends=dense_sends(P, size),
                )
                cells.append(
                    {
                        "nprocs": P,
                        "message_bytes": size,
                        "modeled_s": {a: round(t, 9) for a, t in times.items()},
                        "winner": min(times, key=times.get),
                        "auto_choice": auto,
                    }
                )
        grid[topo] = cells
    return grid


def companion_sweeps():
    out = {}
    for topo, profile in TOPOLOGIES.items():
        out[topo] = {
            "allgatherv": [
                {
                    "nprocs": P,
                    "message_bytes": size,
                    "modeled_s": {
                        algo: round(modeled_allgatherv(profile, P, size, algo), 9)
                        for algo in ("direct", "ring", "recursive-doubling")
                    },
                }
                for P in RANK_COUNTS
                for size in (512, 65536)
            ],
            "allreduce": [
                {
                    "nprocs": P,
                    "message_bytes": size,
                    "modeled_s": {
                        algo: round(modeled_allreduce(profile, P, size, algo), 9)
                        for algo in (
                            "direct",
                            "binomial-tree",
                            "recursive-halving-doubling",
                        )
                    },
                }
                for P in RANK_COUNTS
                for size in (512, 65536)
            ],
        }
    return out


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_collectives.json")
    args = parser.parse_args(argv)

    grid = sweep()
    result = {
        "benchmark": "collective_algorithm_crossovers",
        "config": {
            "rank_counts": list(RANK_COUNTS),
            "message_bytes": list(SIZES),
            "alltoallv_algos": list(ALLTOALLV_ALGOS),
            "topologies": list(TOPOLOGIES),
        },
        "alltoallv": grid,
        "companions": companion_sweeps(),
    }

    failures = []
    for topo, cells in grid.items():
        for P in RANK_COUNTS:
            rows = [c for c in cells if c["nprocs"] == P]
            small = min(rows, key=lambda c: c["message_bytes"])
            large = max(rows, key=lambda c: c["message_bytes"])
            if small["winner"] != "bruck":
                failures.append(
                    f"{topo} P={P}: smallest messages won by "
                    f"{small['winner']}, expected bruck"
                )
            if large["winner"] != "pairwise":
                failures.append(
                    f"{topo} P={P}: largest messages won by "
                    f"{large['winner']}, expected pairwise"
                )
            if small["auto_choice"] != "bruck":
                failures.append(
                    f"{topo} P={P}: auto picked {small['auto_choice']} "
                    "for the smallest messages, expected bruck"
                )
            if large["auto_choice"] == "bruck":
                failures.append(
                    f"{topo} P={P}: auto picked bruck for the largest "
                    "messages (the regime it loses)"
                )
    crossovers = {}
    for topo, cells in grid.items():
        for P in RANK_COUNTS:
            rows = sorted(
                (c for c in cells if c["nprocs"] == P),
                key=lambda c: c["message_bytes"],
            )
            flip = next(
                (c["message_bytes"] for c in rows if c["winner"] != "bruck"),
                None,
            )
            crossovers[f"{topo}/P{P}"] = flip
    result["bruck_crossover_bytes"] = crossovers
    result["ok"] = not failures

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result["bruck_crossover_bytes"], indent=2))
    print(f"wrote {args.out}")

    if failures:
        print("\nBENCH FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("both win regimes present on both topologies; auto agrees at the extremes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
