"""Benchmark configuration.

Figure-level benchmarks replay the paper's experiments at the ``quick``
preset by default; set ``REPRO_BENCH_PRESET=default`` (or ``full``) for the
paper-scale runs.  Each figure benchmark asserts the *shape* the paper
reports — who wins, in which regime — on top of timing the harness.
"""

import os

import numpy as np
import pytest


@pytest.fixture(scope="session")
def preset():
    return os.environ.get("REPRO_BENCH_PRESET", "quick")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
