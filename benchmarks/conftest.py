"""Benchmark configuration.

Figure-level benchmarks replay the paper's experiments at the ``quick``
preset by default; set ``REPRO_BENCH_PRESET=default`` (or ``full``) for the
paper-scale runs.  Each figure benchmark asserts the *shape* the paper
reports — who wins, in which regime — on top of timing the harness.
"""

import os

import numpy as np
import pytest

#: shape-assertion margins per figure and preset: the contrasts the paper
#: reports sharpen with particles-per-process, so the quick preset asserts
#: looser factors than the paper-scale presets.  One table instead of a
#: per-file fixture so figure tests can't silently drift apart.
_MARGINS = {
    "fig6": {
        "quick": {"sort_ratio": 3.0, "restore_ratio": 2.5},
        "default": {"sort_ratio": 8.0, "restore_ratio": 5.0},
    },
    "fig8": {
        "quick": {"a_frac": 0.07, "a_total_growth": 1.05},
        "default": {"a_frac": 0.12, "a_total_growth": 1.1},
    },
}


def margins(figure: str, preset: str) -> dict:
    """The shape margins of ``figure`` at ``preset`` (unknown presets get
    the paper-scale margins — 'default' and 'full' share them)."""
    table = _MARGINS[figure]
    return dict(table.get(preset, table["default"]))


@pytest.fixture(scope="session")
def preset():
    return os.environ.get("REPRO_BENCH_PRESET", "quick")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
