"""Wall-clock microbenchmarks of the hot primitives (pytest-benchmark).

These time the *implementation* (not the modeled virtual clock): Morton key
generation, the redistribution data plane, the solver kernels.  Useful for
tracking regressions of the simulator itself.
"""

import numpy as np
import pytest

from repro.core.fine_grained import fine_grained_redistribute
from repro.core.particles import ColumnBlock
from repro.core.plan import ResortPlan
from repro.core.resort import pack_resort_index
from repro.md.systems import silica_melt_system
from repro.simmpi.collectives import alltoallv
from repro.simmpi.machine import Machine
from repro.solvers.fmm.tree import FMMTree
from repro.solvers.p2nfft.linked_cell import LinkedCellNearField
from repro.solvers.p2nfft.mesh import MeshSolver
from repro.zorder.morton import morton_keys_of_positions


@pytest.fixture(scope="module")
def system():
    return silica_melt_system(8192, seed=1)


def test_morton_keys(benchmark, system):
    benchmark(
        morton_keys_of_positions, system.pos, system.offset, system.box, 5, True
    )


def test_alltoallv_dense(benchmark):
    P = 256
    rng = np.random.default_rng(0)
    payloads = [
        {int(d): rng.uniform(size=32) for d in rng.choice(P, 20, replace=False)}
        for _ in range(P)
    ]

    def run():
        m = Machine(P)
        return alltoallv(m, payloads, "x")

    benchmark(run)


def test_fine_grained_redistribution(benchmark, system):
    P = 64
    owner = np.random.default_rng(1).integers(0, P, system.n)
    blocks = [
        ColumnBlock(pos=system.pos[owner == r], q=system.q[owner == r])
        for r in range(P)
    ]
    targets = [
        np.random.default_rng(r).integers(0, P, b.n) for r, b in enumerate(blocks)
    ]

    def run():
        m = Machine(P)
        return fine_grained_redistribute(m, blocks, lambda r, b: targets[r], "x")

    benchmark(run)


def _resort_problem(P, total, seed):
    """Random resort indices + counts for the plan-engine benchmarks."""
    rng = np.random.default_rng(seed)
    src = np.sort(rng.integers(0, P, total))
    old_counts = np.bincount(src, minlength=P)
    dst = rng.integers(0, P, total)
    new_counts = np.bincount(dst, minlength=P)
    pos = np.empty(total, dtype=np.int64)
    for r in range(P):
        where = np.flatnonzero(dst == r)
        pos[where] = rng.permutation(where.size)
    offsets = np.concatenate(([0], np.cumsum(old_counts)))
    indices = [
        pack_resort_index(dst[offsets[r]:offsets[r + 1]], pos[offsets[r]:offsets[r + 1]])
        for r in range(P)
    ]
    return indices, old_counts, new_counts


def test_resort_plan_compile(benchmark):
    P = 64
    indices, old_counts, new_counts = _resort_problem(P, 16384, 7)

    def run():
        return ResortPlan(Machine(P), indices, old_counts, new_counts)

    benchmark(run)


def test_resort_plan_execute_fused(benchmark):
    """One fused execute of the MD step's column set (vel, acc, ids)."""
    P = 64
    indices, old_counts, new_counts = _resort_problem(P, 16384, 7)
    plan = ResortPlan(Machine(P), indices, old_counts, new_counts)
    rng = np.random.default_rng(8)
    cols = [
        [rng.normal(size=(int(c), 3)) for c in old_counts],
        [rng.normal(size=(int(c), 3)) for c in old_counts],
        [np.arange(int(c), dtype=np.int64) for c in old_counts],
    ]
    benchmark(plan.execute, cols)


def test_fmm_evaluate(benchmark, system):
    tree = FMMTree(4, 4, system.box, system.offset, periodic=True, lattice_shells=2)
    benchmark(tree.evaluate, system.pos, system.q)


def test_linked_cell_near_field(benchmark, system):
    lc = LinkedCellNearField(system.box, system.offset, 4.8, alpha=0.6)
    benchmark(lc.compute, system.pos, system.pos, system.q)


def test_mesh_kspace(benchmark, system):
    mesh = MeshSolver(32, system.box, system.offset, alpha=0.6)
    benchmark(mesh.kspace, system.pos, system.q, system.pos)
