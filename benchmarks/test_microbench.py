"""Deterministic workload assertions for the hot primitives.

These used to be pytest-benchmark wall timings; wall-clock tracking now
lives in the ``repro.perf`` harness (``python -m repro.perf`` →
``BENCH_wallclock.json``), where timings are *report-only* and gated on
speedup ratios.  What stays here is what a unit test can assert exactly:
every workload below pins its **op counts** (messages, bytes, pairs, rows
moved) against independent recomputation and its outputs against oracles
or bitwise determinism — so a behavioral regression of a hot primitive
fails loudly, machine speed notwithstanding.
"""

import numpy as np
import pytest
from scipy.special import erfc

from repro.core.fine_grained import fine_grained_redistribute
from repro.core.particles import ColumnBlock
from repro.core.plan import ResortPlan
from repro.core.resort import pack_resort_index
from repro.md.systems import silica_melt_system
from repro.perf import instrument
from repro.simmpi.collectives import alltoallv
from repro.simmpi.machine import Machine
from repro.solvers.fmm.tree import FMMTree
from repro.solvers.p2nfft.linked_cell import LinkedCellNearField
from repro.solvers.p2nfft.mesh import MeshSolver
from repro.verify.audit import enable_auditing
from repro.zorder.morton import morton_keys_of_positions


@pytest.fixture(scope="module")
def system():
    return silica_melt_system(8192, seed=1)


@pytest.fixture(scope="module")
def small_system():
    """Small enough for O(n^2) brute-force oracles."""
    return silica_melt_system(512, seed=1)


def test_morton_keys(system):
    """Keys match a from-scratch scalar bit-interleave on a sample."""
    depth = 5
    keys = morton_keys_of_positions(system.pos, system.offset, system.box, depth, True)
    assert keys.dtype == np.uint64
    assert keys.shape == (system.n,)
    assert int(keys.max()) < 1 << (3 * depth)
    ncells = 1 << depth
    sample = np.random.default_rng(0).choice(system.n, 200, replace=False)
    for i in sample:
        cell = np.floor(
            (system.pos[i] - system.offset) / system.box * ncells
        ).astype(np.int64) % ncells
        expect = 0
        for bit in range(depth):
            for axis in range(3):
                expect |= ((int(cell[axis]) >> bit) & 1) << (3 * bit + axis)
        assert int(keys[i]) == expect


def test_alltoallv_dense():
    """The dense exchange delivers every payload and the audited data plane
    matches the analytic message/byte counts exactly."""
    P = 256
    rng = np.random.default_rng(0)
    payloads = [
        {int(d): rng.uniform(size=32) for d in rng.choice(P, 20, replace=False)}
        for _ in range(P)
    ]
    machine = Machine(P)
    auditor = enable_auditing(machine)
    recv = alltoallv(machine, payloads, "x")

    # analytic data plane: one message of 32 doubles per (src, dst != src)
    expect_msgs = sum(1 for r in range(P) for d in payloads[r] if d != r)
    led = auditor.ledger["x"]
    assert led.messages == expect_msgs
    assert led.bytes == expect_msgs * 32 * 8
    # delivery: every sent array arrives at its destination, bitwise
    delivered = [dict(pairs) for pairs in recv]
    for src in range(P):
        for dst, arr in payloads[src].items():
            assert np.array_equal(delivered[dst][src], arr)
    assert sum(len(d) for d in delivered) == sum(len(p) for p in payloads)


def test_fine_grained_redistribution(system):
    """Every row lands on its target rank, in (source rank, source order)."""
    P = 64
    owner = np.random.default_rng(1).integers(0, P, system.n)
    blocks = [
        ColumnBlock(pos=system.pos[owner == r], q=system.q[owner == r])
        for r in range(P)
    ]
    targets = [
        np.random.default_rng(r).integers(0, P, b.n) for r, b in enumerate(blocks)
    ]
    machine = Machine(P)
    auditor = enable_auditing(machine)
    out = fine_grained_redistribute(machine, blocks, lambda r, b: targets[r], "x")

    for dst in range(P):
        exp_pos = np.concatenate(
            [blocks[src]["pos"][targets[src] == dst] for src in range(P)]
        )
        exp_q = np.concatenate(
            [blocks[src]["q"][targets[src] == dst] for src in range(P)]
        )
        assert np.array_equal(out[dst]["pos"], exp_pos.reshape(-1, 3))
        assert np.array_equal(out[dst]["q"], exp_q)
    assert sum(b.n for b in out) == system.n
    # audited inter-rank rows: every row whose target differs from its owner
    moved = sum(int((t != r).sum()) for r, t in enumerate(targets))
    led = auditor.ledger["x"]
    assert led.messages == sum(
        1 for r in range(P) for d in np.unique(targets[r]) if d != r
    )
    assert led.bytes == moved * (3 * 8 + 8)


def _resort_problem(P, total, seed):
    """Random resort indices + counts for the plan-engine tests."""
    rng = np.random.default_rng(seed)
    src = np.sort(rng.integers(0, P, total))
    old_counts = np.bincount(src, minlength=P)
    dst = rng.integers(0, P, total)
    new_counts = np.bincount(dst, minlength=P)
    pos = np.empty(total, dtype=np.int64)
    for r in range(P):
        where = np.flatnonzero(dst == r)
        pos[where] = rng.permutation(where.size)
    offsets = np.concatenate(([0], np.cumsum(old_counts)))
    indices = [
        pack_resort_index(dst[offsets[r]:offsets[r + 1]], pos[offsets[r]:offsets[r + 1]])
        for r in range(P)
    ]
    return indices, old_counts, new_counts, src, dst, pos


def test_resort_plan_compile():
    """The compiled schedule realizes exactly the (rank, position) mapping
    the packed resort indices describe."""
    P, total = 64, 16384
    indices, old_counts, new_counts, src, dst, pos = _resort_problem(P, total, 7)
    plan = ResortPlan(Machine(P), indices, old_counts, new_counts)
    assert plan.stats.compiles == 1

    offsets = np.concatenate(([0], np.cumsum(old_counts)))
    ids = [
        np.arange(offsets[r], offsets[r + 1], dtype=np.int64) for r in range(P)
    ]
    (out_ids,) = plan.execute([ids])
    expect = [np.empty(int(c), dtype=np.int64) for c in new_counts]
    for i in range(total):
        expect[dst[i]][pos[i]] = i
    for r in range(P):
        assert np.array_equal(out_ids[r], expect[r])


def test_resort_plan_execute_fused():
    """One fused execute of the MD step's column set (vel, acc, ids) moves
    exactly the analytic inter-rank byte volume."""
    P, total = 64, 16384
    indices, old_counts, new_counts, src, dst, pos = _resort_problem(P, total, 7)
    plan = ResortPlan(Machine(P), indices, old_counts, new_counts)
    rng = np.random.default_rng(8)
    cols = [
        [rng.normal(size=(int(c), 3)) for c in old_counts],
        [rng.normal(size=(int(c), 3)) for c in old_counts],
        [np.arange(int(c), dtype=np.int64) for c in old_counts],
    ]
    base_bytes = plan.stats.bytes_moved
    out = plan.execute(cols)
    assert plan.stats.executions == 1
    assert plan.stats.fused_columns == 3
    record_bytes = 3 * 8 + 3 * 8 + 8
    moved = int((dst != src).sum())
    assert plan.stats.bytes_moved - base_bytes == moved * record_bytes
    # row content: the ids column must land where the plan's mapping says
    offsets = np.concatenate(([0], np.cumsum(old_counts)))
    flat_ids = np.concatenate(cols[2])
    expect = [np.empty(int(c), dtype=np.int64) for c in new_counts]
    for i in range(total):
        expect[dst[i]][pos[i]] = flat_ids[i]
    for r in range(P):
        assert np.array_equal(out[2][r], expect[r])


def test_fmm_evaluate(system):
    """Far-field workload counts are deterministic and self-consistent."""
    with instrument.collect() as reg:
        tree = FMMTree(
            4, 4, system.box, system.offset, periodic=True, lattice_shells=2
        )
        pot, field, stats = tree.evaluate(system.pos, system.q)
        pot2, field2, stats2 = tree.evaluate(system.pos, system.q)
    assert pot.shape == (system.n,) and field.shape == (system.n, 3)
    assert np.isfinite(pot).all() and np.isfinite(field).all()
    # bitwise deterministic, including every workload counter
    assert np.array_equal(pot, pot2) and np.array_equal(field, field2)
    assert stats == stats2
    assert stats.p2m_particles == system.n and stats.l2p_particles == system.n
    assert stats.ncoef > 0 and stats.m2l_ops > 0
    # the instrumented tensor kernel ran while the operators were built
    dt = reg["fmm.derivative_tensors"]
    assert dt.calls > 0 and dt.ops > 0


def test_linked_cell_near_field(small_system):
    """Potentials, fields and the charged pair count match an O(n^2)
    minimum-image brute force within the cutoff."""
    s = small_system
    rc, alpha = 4.8, 0.6
    lc = LinkedCellNearField(s.box, s.offset, rc, alpha=alpha)
    with instrument.collect() as reg:
        pot, field, pair_count = lc.compute(s.pos, s.pos, s.q)

    d = s.pos[:, None, :] - s.pos[None, :, :]
    d -= np.round(d / s.box) * s.box
    r2 = (d * d).sum(axis=2)
    mask = (r2 > 0.0) & (r2 <= rc * rc)
    assert pair_count == int(mask.sum())
    r = np.sqrt(np.where(mask, r2, 1.0))
    e = erfc(alpha * r)
    pot_exp = np.where(mask, s.q[None, :] * e / r, 0.0).sum(axis=1)
    r2s = np.where(mask, r2, 1.0)
    g = (2.0 * alpha / np.sqrt(np.pi)) * np.exp(-(alpha * alpha) * r2s)
    fs = np.where(mask, s.q[None, :] * (e / r + g) / r2s, 0.0)
    field_exp = (fs[:, :, None] * d).sum(axis=1)
    np.testing.assert_allclose(pot, pot_exp, rtol=1e-10, atol=1e-12)
    np.testing.assert_allclose(field, field_exp, rtol=1e-10, atol=1e-12)
    # instrumented candidate assembly: at least every charged pair was built
    assert reg["pairs.ragged_cross"].ops >= pair_count
    assert reg["linked_cell.candidate_pairs"].calls == 1


def test_mesh_kspace(small_system):
    """The k-space solve is bitwise deterministic and momentum-conserving."""
    s = small_system
    mesh = MeshSolver(32, s.box, s.offset, alpha=0.6)
    pot, field = mesh.kspace(s.pos, s.q, s.pos)
    pot2, field2 = mesh.kspace(s.pos, s.q, s.pos)
    assert pot.shape == (s.n,) and field.shape == (s.n, 3)
    assert np.isfinite(pot).all() and np.isfinite(field).all()
    assert np.array_equal(pot, pot2) and np.array_equal(field, field2)
    # neutral system: net k-space force vanishes up to interpolation error
    assert abs(float(s.q.sum())) < 1e-12
    net = (s.q[:, None] * field).sum(axis=0)
    assert np.abs(net).max() < 1e-3 * np.abs(s.q[:, None] * field).sum() / s.n
