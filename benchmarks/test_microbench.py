"""Wall-clock microbenchmarks of the hot primitives (pytest-benchmark).

These time the *implementation* (not the modeled virtual clock): Morton key
generation, the redistribution data plane, the solver kernels.  Useful for
tracking regressions of the simulator itself.
"""

import numpy as np
import pytest

from repro.core.fine_grained import fine_grained_redistribute
from repro.core.particles import ColumnBlock
from repro.md.systems import silica_melt_system
from repro.simmpi.collectives import alltoallv
from repro.simmpi.machine import Machine
from repro.solvers.fmm.tree import FMMTree
from repro.solvers.p2nfft.linked_cell import LinkedCellNearField
from repro.solvers.p2nfft.mesh import MeshSolver
from repro.zorder.morton import morton_keys_of_positions


@pytest.fixture(scope="module")
def system():
    return silica_melt_system(8192, seed=1)


def test_morton_keys(benchmark, system):
    benchmark(
        morton_keys_of_positions, system.pos, system.offset, system.box, 5, True
    )


def test_alltoallv_dense(benchmark):
    P = 256
    rng = np.random.default_rng(0)
    payloads = [
        {int(d): rng.uniform(size=32) for d in rng.choice(P, 20, replace=False)}
        for _ in range(P)
    ]

    def run():
        m = Machine(P)
        return alltoallv(m, payloads, "x")

    benchmark(run)


def test_fine_grained_redistribution(benchmark, system):
    P = 64
    owner = np.random.default_rng(1).integers(0, P, system.n)
    blocks = [
        ColumnBlock(pos=system.pos[owner == r], q=system.q[owner == r])
        for r in range(P)
    ]
    targets = [
        np.random.default_rng(r).integers(0, P, b.n) for r, b in enumerate(blocks)
    ]

    def run():
        m = Machine(P)
        return fine_grained_redistribute(m, blocks, lambda r, b: targets[r], "x")

    benchmark(run)


def test_fmm_evaluate(benchmark, system):
    tree = FMMTree(4, 4, system.box, system.offset, periodic=True, lattice_shells=2)
    benchmark(tree.evaluate, system.pos, system.q)


def test_linked_cell_near_field(benchmark, system):
    lc = LinkedCellNearField(system.box, system.offset, 4.8, alpha=0.6)
    benchmark(lc.compute, system.pos, system.pos, system.q)


def test_mesh_kspace(benchmark, system):
    mesh = MeshSolver(32, system.box, system.offset, alpha=0.6)
    benchmark(mesh.kspace, system.pos, system.q, system.pos)
