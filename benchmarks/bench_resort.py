#!/usr/bin/env python
"""Resort-path benchmark: plan-based fused exchange vs per-column exchanges.

Runs the same seeded method-B MD trajectory twice through the plan engine —
once with ``fuse_resort=True`` (velocities + accelerations + ids in ONE
fused exchange per step) and once with ``fuse_resort=False`` (one exchange
per column, the legacy traffic pattern) — and writes ``BENCH_resort.json``
with the traced resort-phase messages/bytes, the plan-cache statistics,
the auditor's independent ledger balance and the differential-oracle
verdict.

The acceptance numbers this evidences:

* one MD step resorting the six float columns plus the ids performs
  exactly ONE fused data exchange (previously >= 2),
* at least 2x fewer traced resort-phase messages than the per-column
  pattern,
* the auditor's plan ledger balances against the audited exchanges,
* both variants produce bit-identical trajectories.

Run:  PYTHONPATH=src python benchmarks/bench_resort.py [--steps N] [--n N]
      [--nprocs P] [--out BENCH_resort.json]
"""

import argparse
import json
import sys

import numpy as np

from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine
from repro.verify import InvariantChecker, enable_auditing


def run_variant(fuse, *, nprocs, n, steps, seed):
    machine = Machine(nprocs)
    sim = Simulation(
        machine,
        silica_melt_system(n, seed=seed),
        SimulationConfig(
            solver="fmm",
            method="B",
            distribution="random",
            seed=seed,
            fuse_resort=fuse,
            solver_kwargs={"order": 3, "depth": 3, "lattice_shells": 2},
        ),
    )
    auditor = enable_auditing(machine)
    checker = InvariantChecker(sim)
    sim.run(steps)
    checker.assert_ok()

    resort = machine.trace.get("resort")
    compile_phase = machine.trace.get("resort_plan")
    stats = sim.fcs.plan_stats
    planned = auditor.plan_ledger.get("resort")
    audited = auditor.ledger.get("resort")
    ledger_balanced = (
        planned is not None
        and audited is not None
        and planned.messages <= audited.messages
        and planned.bytes <= audited.bytes
    )
    # method-B steps after initialization (each resorts vel+acc+ids once)
    b_steps = sum(1 for rec in sim.records if rec.changed)
    return {
        "fuse_resort": fuse,
        "steps": steps,
        "b_steps": b_steps,
        "resort_messages": resort.messages,
        "resort_bytes": resort.bytes,
        "resort_time_modeled_s": resort.time,
        "plan_compile_messages": compile_phase.messages,
        "plan_compile_bytes": compile_phase.bytes,
        "exchanges_total": stats.executions,
        "exchanges_per_b_step": stats.executions / b_steps if b_steps else 0.0,
        "plan_stats": {
            "compiles": stats.compiles,
            "cache_hits": stats.cache_hits,
            "executions": stats.executions,
            "fused_columns": stats.fused_columns,
            "bytes_moved": stats.bytes_moved,
            "hit_rate": stats.hit_rate,
        },
        "auditor": {
            "plan_ledger_balanced": ledger_balanced,
            "n_plan_executions": auditor.n_plan_executions,
            "n_plan_fused_columns": auditor.n_plan_fused_columns,
        },
    }, sim.gather_state()


def differential_ok(nprocs, n):
    """A/B/B+move cross-oracle on a small instance (sweep defaults)."""
    from repro.verify.differential import differential_check

    report = differential_check("fmm", nprocs, steps=2, n_particles=n, seed=0)
    return not report.failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=8)
    parser.add_argument("--n", type=int, default=96)
    parser.add_argument("--nprocs", type=int, default=8)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--out", default="BENCH_resort.json")
    args = parser.parse_args(argv)

    fused, state_fused = run_variant(
        True, nprocs=args.nprocs, n=args.n, steps=args.steps, seed=args.seed
    )
    split, state_split = run_variant(
        False, nprocs=args.nprocs, n=args.n, steps=args.steps, seed=args.seed
    )

    identical = all(
        np.array_equal(state_fused[k], state_split[k]) for k in state_fused
    )
    msg_ratio = (
        split["resort_messages"] / fused["resort_messages"]
        if fused["resort_messages"]
        else float("inf")
    )
    diff_ok = differential_ok(4, 32)

    result = {
        "benchmark": "resort_plan_fused_vs_per_column",
        "config": {
            "solver": "fmm",
            "method": "B",
            "nprocs": args.nprocs,
            "n": args.n,
            "steps": args.steps,
            "seed": args.seed,
            "columns_per_step": 3,  # vel (n,3) f64, acc (n,3) f64, ids (n,) i64
        },
        "fused": fused,
        "per_column": split,
        "comparison": {
            "trajectories_identical": identical,
            "resort_messages_ratio_per_column_over_fused": msg_ratio,
            "resort_bytes_ratio_per_column_over_fused": (
                split["resort_bytes"] / fused["resort_bytes"]
                if fused["resort_bytes"]
                else float("inf")
            ),
        },
        "differential_oracle_ok": diff_ok,
    }

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    print(json.dumps(result, indent=2))

    failures = []
    if fused["exchanges_per_b_step"] != 1.0:
        failures.append(
            f"fused variant performed {fused['exchanges_per_b_step']} data "
            "exchanges per method-B step, expected exactly 1"
        )
    if msg_ratio < 2.0:
        failures.append(
            f"fused resort-phase message reduction is only {msg_ratio:.2f}x, "
            "expected >= 2x"
        )
    if not fused["auditor"]["plan_ledger_balanced"]:
        failures.append("auditor plan ledger did not balance (fused variant)")
    if not split["auditor"]["plan_ledger_balanced"]:
        failures.append("auditor plan ledger did not balance (per-column variant)")
    if not identical:
        failures.append("fused and per-column trajectories differ")
    if diff_ok is False:
        failures.append("A/B differential oracle failed")
    if failures:
        print("\nBENCH FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nall resort-plan acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
