"""Fig. 9 — strong scaling of methods A, B and B + max movement.

Paper (Sect. IV-D):

* FMM on JuRoPA (fat tree, 8-1024 procs): method B below method A with the
  largest gap at mid scale (~33 % at 256); exploiting the maximum movement
  (merge-based sorting) *slightly increases* the runtime — the switched
  network gives neighbor communication no advantage.
* P2NFFT on Juqueen (torus, 16-16384 procs): beyond ~1024 procs method B
  becomes *slower* than A (the additional resort communication step), both
  rise with P (count-exchange/collective growth), while B + max movement
  (pure neighborhood communication) keeps scaling and ends ~40 % below A.
"""

import numpy as np
import pytest

from repro.bench.figures import fig9


@pytest.fixture(scope="module")
def results(preset):
    return fig9(preset, quiet=True)


def test_fig9_benchmark(benchmark, preset):
    benchmark.pedantic(lambda: fig9(preset, quiet=True), rounds=1, iterations=1)


class TestFMMOnFatTree:
    def test_b_below_a_at_scale(self, results):
        r = results["fmm"]
        gaps = [(a - b) / a for a, b in zip(r["A"], r["B"])]
        # B wins, and the relative gap grows toward the large-P end
        assert gaps[-1] > 0.05
        assert gaps[-1] > gaps[0]

    def test_b_move_adds_overhead_on_fat_tree(self, results):
        """Merge sort's point-to-point rounds do not pay off on a switched
        network — B+move is (slightly) slower than plain B."""
        r = results["fmm"]
        late = slice(len(r["procs"]) // 2, None)
        assert np.mean(np.asarray(r["B+move"])[late]) > np.mean(np.asarray(r["B"])[late])

    def test_strong_scaling_initially(self, results):
        r = results["fmm"]
        assert r["A"][1] < r["A"][0]
        assert r["B"][1] < r["B"][0]


class TestP2NFFTOnTorus:
    def test_b_move_fastest_at_scale(self, results):
        r = results["p2nfft"]
        assert r["B+move"][-1] < r["A"][-1]
        assert r["B+move"][-1] < r["B"][-1]

    def test_b_overhead_appears_at_scale(self, results):
        """B's extra resort communication makes it lose to A at the largest
        process counts (the paper's >1024 regime)."""
        r = results["p2nfft"]
        if r["procs"][-1] >= 4096:
            assert r["B"][-1] > r["A"][-1] * 0.98
        # at moderate scale B is not worse than A by much either way
        assert r["B"][1] < 1.3 * r["A"][1]

    def test_runtimes_rise_at_extreme_scale(self, results):
        r = results["p2nfft"]
        if r["procs"][-1] >= 4096:
            assert r["A"][-1] > min(r["A"])
            assert r["B"][-1] > min(r["B"])
