"""Fig. 7 — method A vs method B over the first time steps.

Paper (Sect. IV-C, 256 procs, random initial distribution): method A's
sort/restore stay at their initial level every step; method B's sort and
resort collapse by orders of magnitude from time step 1, cutting the total
runtime to ~45 % (FMM) / ~20 % (P2NFFT) of method A.
"""

import numpy as np
import pytest

from repro.bench.figures import fig7


@pytest.fixture(scope="module")
def results(preset):
    return fig7(preset, quiet=True)


@pytest.fixture(scope="module")
def collapse_factor(preset):
    """B's sort collapse grows with particles-per-process (the paper reports
    ~100x at n/P = 3240; the default preset reaches ~15-35x, quick ~3-5x)."""
    return 3.0 if preset == "quick" else 8.0


def test_fig7_benchmark(benchmark, preset):
    benchmark.pedantic(lambda: fig7(preset, quiet=True), rounds=1, iterations=1)


class TestShape:
    def steady(self, series):
        """Mean over time steps 1..N (exclude the initial run)."""
        return float(np.mean(series[1:]))

    def test_method_a_constant_over_steps(self, results):
        for solver in ("fmm", "p2nfft"):
            sort_a = results[solver]["A"]["sort"]
            assert max(sort_a[1:]) < 1.3 * min(sort_a[1:])
            assert sort_a[-1] > 0.5 * sort_a[0]

    def test_method_b_sort_collapses(self, results, collapse_factor):
        """B's sort drops by a large factor after step 0 (the paper reports
        ~two orders of magnitude at its larger particles-per-process)."""
        for solver in ("fmm", "p2nfft"):
            b = results[solver]["B"]
            assert self.steady(b["sort"]) < b["sort"][0] / collapse_factor

    def test_method_b_resort_far_below_restore(self, results):
        for solver in ("fmm", "p2nfft"):
            restore_a = self.steady(results[solver]["A"]["restore"])
            resort_b = self.steady(results[solver]["B"]["resort"])
            assert resort_b < restore_a / 5

    def test_totals_b_below_a(self, results):
        """B's steady-state total < A's; the P2NFFT gains more because its
        data handling is a larger share of its total."""
        ratios = {}
        for solver in ("fmm", "p2nfft"):
            ta = self.steady(results[solver]["A"]["total"])
            tb = self.steady(results[solver]["B"]["total"])
            ratios[solver] = tb / ta
            assert tb < ta
        assert ratios["p2nfft"] < ratios["fmm"]

    def test_initial_step_pays_for_resort(self, results):
        """In the first execution the extra resort makes B no faster."""
        for solver in ("fmm", "p2nfft"):
            assert (
                results[solver]["B"]["total"][0]
                >= 0.95 * results[solver]["A"]["total"][0]
            )
