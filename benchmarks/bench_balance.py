#!/usr/bin/env python
"""Load-balance benchmark: weighted partitioning vs count-based splits.

Runs the seeded two-cluster / Plummer / exponential-slab MD systems (the
inhomogeneous workloads of :func:`repro.md.distributions.clustered_system`)
through the FMM solver twice — once with ``load_balance="off"`` (the
count-based splitter, every rank gets ~n/P particles regardless of where
they sit) and once with ``load_balance="dynamic"`` (the
:class:`~repro.core.balance.ImbalanceMonitor` fires a weighted
re-partition through the existing ResortPlan machinery) — and writes
``BENCH_balance.json`` with the λ = max/mean rank-work time series, the
modeled fig7-style per-step wall (the ``total`` of
:func:`repro.bench.harness.step_breakdown`) and the rebalance counters.

The acceptance numbers this evidences (gated on the two-cluster preset):

* the count-based run is imbalanced: steady-state λ >= 2.0,
* dynamic balancing brings steady-state λ <= 1.25,
* the modeled fig7-style step wall drops by >= 20%,
* the monitor fires exactly once and the hysteresis keeps it quiet after,
* the A/B differential oracle still passes with balancing enabled.

Run:  PYTHONPATH=src python benchmarks/bench_balance.py [--steps N] [--n N]
      [--nprocs P] [--out BENCH_balance.json]
"""

import argparse
import json
import sys

import numpy as np

from repro.bench.harness import make_clustered_system, step_breakdown
from repro.md.distributions import CLUSTERED_KINDS
from repro.md.simulation import Simulation, SimulationConfig
from repro.simmpi.machine import Machine
from repro.verify import InvariantChecker

#: solver configuration of the balance benchmark: depth 4 keeps the leaf
#: boxes fine enough that one dense box is a small fraction of a rank's
#: fair share (the splitter's granularity limit), order 2 keeps the
#: count-proportional far field from flattening the near-field imbalance
SOLVER_KWARGS = {
    "compute": "skip",
    "work_model": "density",
    "depth": 4,
    "order": 2,
    "lattice_shells": 2,
}


def run_variant(kind, load_balance, *, nprocs, n, steps, seed):
    machine = Machine(nprocs)
    sim = Simulation(
        machine,
        make_clustered_system(kind, n, seed=seed),
        SimulationConfig(
            solver="fmm",
            method="B",
            distribution="random",
            seed=seed,
            dynamics="brownian",
            brownian_step=0.02,
            solver_kwargs=dict(SOLVER_KWARGS),
            load_balance=load_balance,
            capacity_factor=4.0,
        ),
    )
    checker = InvariantChecker(sim)
    sim.run(steps)
    checker.assert_ok()

    lambdas = [
        rec.lambda_factor for rec in sim.records if rec.lambda_factor is not None
    ]
    walls = [step_breakdown(rec)["total"] for rec in sim.records]
    # steady state: skip the initialization record and the rebalance step
    steady = walls[2:] if len(walls) > 2 else walls
    monitor = sim.balance_monitor
    return {
        "load_balance": load_balance,
        "steps": steps,
        "lambda_series": [round(l, 6) for l in lambdas],
        "lambda_steady": round(float(np.mean(lambdas[2:])), 6) if len(lambdas) > 2 else None,
        "step_wall_series_s": [round(w, 9) for w in walls],
        "step_wall_steady_s": round(float(np.mean(steady)), 9),
        "rebalances": machine.trace.counter("balance.rebalances"),
        "rebalance_steps": [e.step for e in monitor.events] if monitor else [],
        "all_steps_adopted": all(rec.changed for rec in sim.records),
    }, sim.gather_state()


def differential_ok(nprocs, n):
    """A/B/B+move cross-oracle on a small instance (sweep defaults)."""
    from repro.verify.differential import differential_check

    report = differential_check("fmm", nprocs, steps=2, n_particles=n, seed=0)
    return not report.failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=6)
    parser.add_argument("--n", type=int, default=16_384)
    parser.add_argument("--nprocs", type=int, default=64)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default="BENCH_balance.json")
    args = parser.parse_args(argv)

    distributions = {}
    for kind in CLUSTERED_KINDS:
        off, _ = run_variant(
            kind, "off", nprocs=args.nprocs, n=args.n, steps=args.steps, seed=args.seed
        )
        dyn, _ = run_variant(
            kind,
            "dynamic",
            nprocs=args.nprocs,
            n=args.n,
            steps=args.steps,
            seed=args.seed,
        )
        reduction = (
            1.0 - dyn["step_wall_steady_s"] / off["step_wall_steady_s"]
            if off["step_wall_steady_s"]
            else 0.0
        )
        distributions[kind] = {
            "off": off,
            "dynamic": dyn,
            "step_wall_reduction": round(reduction, 6),
        }

    diff_ok = differential_ok(4, 32)
    two = distributions["two-cluster"]
    # λ before balancing: the dynamic run's first observation (the off run
    # never observes — its monitor is disabled — so the trigger-time λ is
    # the honest "count-based" imbalance)
    lambda_before = two["dynamic"]["lambda_series"][0]
    lambda_after = two["dynamic"]["lambda_steady"]

    result = {
        "benchmark": "balance_weighted_vs_count_partition",
        "config": {
            "solver": "fmm",
            "method": "B",
            "nprocs": args.nprocs,
            "n": args.n,
            "steps": args.steps,
            "seed": args.seed,
            "solver_kwargs": SOLVER_KWARGS,
            "capacity_factor": 4.0,
        },
        "distributions": distributions,
        "comparison": {
            "two_cluster_lambda_before": lambda_before,
            "two_cluster_lambda_after": lambda_after,
            "two_cluster_step_wall_reduction": two["step_wall_reduction"],
        },
        "differential_oracle_ok": diff_ok,
    }

    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    print(json.dumps(result, indent=2))

    failures = []
    if lambda_before < 2.0:
        failures.append(
            f"two-cluster count-based imbalance is only λ={lambda_before:.3f}, "
            "expected >= 2.0"
        )
    if lambda_after is None or lambda_after > 1.25:
        failures.append(
            f"two-cluster balanced steady-state λ={lambda_after}, expected <= 1.25"
        )
    if two["step_wall_reduction"] < 0.20:
        failures.append(
            f"two-cluster step-wall reduction is only "
            f"{two['step_wall_reduction']:.1%}, expected >= 20%"
        )
    if two["dynamic"]["rebalances"] != 1:
        failures.append(
            f"two-cluster dynamic run performed {two['dynamic']['rebalances']} "
            "rebalances, expected exactly 1 (hysteresis)"
        )
    if not two["dynamic"]["all_steps_adopted"]:
        failures.append("two-cluster balanced layout was not adopted (fits failed)")
    for kind, entry in distributions.items():
        lam = entry["dynamic"]["lambda_series"]
        if entry["dynamic"]["rebalances"] and lam[-1] > lam[0] * (1.0 + 1e-9):
            failures.append(f"{kind}: rebalancing made λ worse ({lam[0]} -> {lam[-1]})")
    if diff_ok is False:
        failures.append("A/B differential oracle failed")
    if failures:
        print("\nBENCH FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nall load-balance acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
