#!/usr/bin/env python
"""Quickstart: compute Coulomb interactions with both library solvers.

Mirrors the ScaFaCoS usage protocol of the paper's Sect. II-A:

    fcs_init -> fcs_set_common -> fcs_tune -> fcs_run -> fcs_destroy

A small charge-neutral ionic system is distributed over 8 simulated ranks;
the FMM and the P2NFFT solver both compute potentials and fields, which are
cross-checked against each other and the exact Ewald reference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.handle import fcs_init
from repro.md.distributions import distribute
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine
from repro.solvers.ewald_ref import ewald_sum


def main() -> None:
    nprocs = 8
    system = silica_melt_system(n=1000, seed=42)
    print(f"system: {system.n} ions in a {system.box[0]:.1f}^3 periodic box")

    # exact reference for this small system
    pot_ref, _ = ewald_sum(system.pos, system.q, system.box, accuracy=1e-10)
    energy_ref = 0.5 * float((system.q * pot_ref).sum())
    print(f"exact Ewald energy: {energy_ref:.6f}")

    for method in ("fmm", "p2nfft", "direct"):
        machine = Machine(nprocs)  # the "MPI communicator"
        particles, _, _ = distribute(system, nprocs, "random", seed=1)

        fcs = fcs_init(method, machine)            # fcs_init
        fcs.set_common(box=system.box, periodic=True)  # fcs_set_common
        fcs.tune(particles, accuracy=1e-3)         # fcs_tune
        fcs.run(particles)                         # fcs_run

        energy = 0.5 * float(
            (particles.gather_charges() * particles.gather_potentials()).sum()
        )
        rel = abs(energy - energy_ref) / abs(energy_ref)
        print(
            f"{method:8s}: energy {energy:.6f}  (rel. err {rel:.2e},"
            f" modeled parallel time {machine.elapsed() * 1e3:.2f} ms)"
        )
        fcs.destroy()                              # fcs_destroy


if __name__ == "__main__":
    main()
