#!/usr/bin/env python
"""Using resort indices to migrate your own per-particle data (method B).

The library reorders and redistributes particles however its solver likes;
your application's extra particle data — velocities, species tags,
bookkeeping ids — is *your* problem.  This demo shows the Sect. III-B
machinery that solves it:

1. run the P2NFFT solver with resorting enabled,
2. ask whether the particle order changed (the query function),
3. push float and integer application data through
   ``fcs_resort_floats`` / ``fcs_resort_ints``,
4. verify every particle kept its own data.

Run:  python examples/resort_indices_demo.py
"""

import numpy as np

from repro.core.handle import fcs_init
from repro.md.distributions import distribute
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine


def main() -> None:
    nprocs = 8
    system = silica_melt_system(n=2000, seed=5)
    machine = Machine(nprocs)
    particles, _, owner = distribute(system, nprocs, "random", seed=9)

    # application-specific per-particle data the solver knows nothing about
    global_ids = [np.flatnonzero(owner == r).astype(np.int64) for r in range(nprocs)]
    birthdays = [ids.astype(np.float64) * 0.25 for ids in global_ids]

    fcs = fcs_init("p2nfft", machine, cutoff=4.0)
    fcs.set_common(system.box, periodic=True)
    fcs.set_resort(True)  # opt into method B
    fcs.tune(particles, accuracy=1e-3)

    counts_before = particles.counts()
    report = fcs.run(particles)
    print("order and distribution changed:", fcs.resort_availability())
    print("counts before:", counts_before.tolist())
    print("counts after: ", particles.counts().tolist())
    print("strategy:", report.strategy)

    # migrate the application data to the changed order and distribution
    global_ids = fcs.resort_ints(global_ids)
    birthdays = fcs.resort_floats(birthdays)

    # verification: each particle's data followed it to its new home
    ok = True
    for r in range(nprocs):
        expected_pos = system.pos[global_ids[r]]
        ok &= np.allclose(expected_pos, particles.pos[r])
        ok &= np.allclose(birthdays[r], global_ids[r] * 0.25)
    print("application data migrated consistently:", ok)

    # the communication bill, per phase
    print("\nmodeled communication phases:")
    for phase in machine.trace.phases():
        st = machine.trace.get(phase)
        if st.messages:
            print(f"  {phase:14s} {st.time * 1e6:9.1f} us  {st.messages:6d} msgs  {st.bytes:9d} B")
    fcs.destroy()


if __name__ == "__main__":
    main()
