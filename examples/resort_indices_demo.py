#!/usr/bin/env python
"""Using resort indices to migrate your own per-particle data (method B).

The library reorders and redistributes particles however its solver likes;
your application's extra particle data — velocities, species tags,
bookkeeping ids — is *your* problem.  This demo shows the Sect. III-B
machinery that solves it, through the plan-based resort API:

1. run the P2NFFT solver with resorting enabled,
2. ask whether the particle order changed (the query function),
3. push ALL application data — mixed dtypes — through ONE fused
   ``fcs.resort`` exchange, driven by a compiled, cached
   :class:`~repro.core.plan.ResortPlan`,
4. verify every particle kept its own data,
5. show the plan cache at work across repeated runs.

Migrating from the removed v1 per-dtype calls is mechanical
(docs/migration.md)::

    ids = fcs.resort_ints(ids)          # v1 (removed): one exchange per array
    vel = fcs.resort_floats(vel)        # v1 (removed): ... and another

    vel, ids = fcs.resort((vel, ids))   # v2: one fused exchange

Run:  python examples/resort_indices_demo.py
"""

import numpy as np

from repro.core.handle import fcs_init
from repro.md.distributions import distribute
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine


def main() -> None:
    nprocs = 8
    system = silica_melt_system(n=2000, seed=5)
    machine = Machine(nprocs)
    particles, _, owner = distribute(system, nprocs, "random", seed=9)

    # application-specific per-particle data the solver knows nothing about
    global_ids = [np.flatnonzero(owner == r).astype(np.int64) for r in range(nprocs)]
    birthdays = [ids.astype(np.float64) * 0.25 for ids in global_ids]

    fcs = fcs_init("p2nfft", machine, cutoff=4.0)
    fcs.set_common(box=system.box, periodic=True)
    fcs.set_resort(True)  # opt into method B
    fcs.tune(particles, accuracy=1e-3)

    counts_before = particles.counts()
    report = fcs.run(particles)
    print("order and distribution changed:", fcs.resort_availability())
    print("counts before:", counts_before.tolist())
    print("counts after: ", particles.counts().tolist())
    print("strategy:", report.strategy, " comm:", report.comm)

    # migrate the application data to the changed order and distribution —
    # both columns, mixed dtypes, ONE fused exchange.  The routing schedule
    # is compiled once and cached on the handle.
    birthdays, global_ids = fcs.resort((birthdays, global_ids))

    # verification: each particle's data followed it to its new home
    ok = True
    for r in range(nprocs):
        expected_pos = system.pos[global_ids[r]]
        ok &= np.allclose(expected_pos, particles.pos[r])
        ok &= np.allclose(birthdays[r], global_ids[r] * 0.25)
    print("application data migrated consistently:", ok)

    # a second resort of more data reuses the compiled plan (cache hit);
    # an explicit plan handle also works: fcs.resort(plan, columns)
    # note: data passed to resort is always in the ORIGINAL (pre-run)
    # order, so rebuild the pre-run view for the demo
    pre_species = [np.mod(np.flatnonzero(owner == r), 3).astype(np.int64) for r in range(nprocs)]
    species = fcs.resort(pre_species)
    assert all(np.array_equal(s, np.mod(i, 3)) for s, i in zip(species, global_ids))
    stats = fcs.plan_stats
    print(
        f"plan stats: compiles={stats.compiles} cache_hits={stats.cache_hits} "
        f"executions={stats.executions} fused_columns={stats.fused_columns} "
        f"hit_rate={stats.hit_rate:.2f}"
    )

    # the communication bill, per phase (note 'resort_plan': the one-off
    # schedule-compilation exchange, amortized over all resort calls);
    # fcs.trace is the machine trace, read through the v2 accessors
    print("\nmodeled communication phases:")
    for phase, st in fcs.trace.items():
        if st.messages:
            print(f"  {phase:14s} {st.time * 1e6:9.1f} us  {st.messages:6d} msgs  {st.bytes:9d} B")
    fcs.destroy()


if __name__ == "__main__":
    main()
