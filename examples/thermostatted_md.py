#!/usr/bin/env python
"""Thermostatted MD with trajectory output: the general-purpose workflow.

Beyond the paper's benchmark loop, the library carries the pieces a
downstream MD user expects: Maxwell-Boltzmann velocity initialisation, a
Berendsen thermostat, XYZ trajectory output and restartable checkpoints —
all operating on the distributed per-rank data and priced by the machine
model like everything else.

Run:  python examples/thermostatted_md.py [steps]
"""

import sys
import tempfile

import numpy as np

from repro.md.io import read_xyz, resume_simulation, save_checkpoint, write_xyz
from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.md.thermostat import BerendsenThermostat, maxwell_boltzmann, temperature
from repro.simmpi.machine import Machine


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    system = silica_melt_system(n=1500, seed=11)
    machine = Machine(8)
    cfg = SimulationConfig(
        solver="p2nfft",
        method="B",
        dt=0.02,
        distribution="grid",
        track_energy=True,
        seed=11,
    )
    sim = Simulation(machine, system, cfg)

    # start hot instead of the paper's v0 = 0
    sim.vel = maxwell_boltzmann(
        [p.shape[0] for p in sim.particles.pos], target_temperature=0.8, seed=11
    )
    thermo = BerendsenThermostat(target=0.8, tau=0.5, dt=cfg.dt)
    sim.initialize()

    with tempfile.TemporaryDirectory() as tmp:
        traj = f"{tmp}/trajectory.xyz"
        for i in range(steps):
            sim.step()
            sim.vel = thermo.apply(machine, sim.vel)
            t_now = temperature(machine, sim.vel)
            state = sim.gather_state()
            write_xyz(
                traj,
                state["pos"],
                state["q"],
                state["vel"],
                comment=f"step {i + 1} T={t_now:.3f}",
                append=i > 0,
            )
            print(
                f"step {i + 1}: T = {t_now:.3f}  E = {sim.records[-1].energy:10.3f}  "
                f"max move = {sim.records[-1].max_move:.4f}"
            )

        # checkpoint, then restart on a different process count
        ckpt = f"{tmp}/state.npz"
        save_checkpoint(ckpt, sim)
        resumed = resume_simulation(ckpt, Machine(12), cfg)
        resumed.run(1)
        print(
            f"\nresumed at P=12 from step {resumed.step_index - 1}; "
            f"energy {resumed.records[-1].energy:.3f}"
        )
        pos, q, vel, comment = read_xyz(traj, frame=steps - 1)
        print(f"trajectory last frame: {pos.shape[0]} ions, '{comment}'")


if __name__ == "__main__":
    main()
