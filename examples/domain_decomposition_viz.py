#!/usr/bin/env python
"""Visualize the two domain decompositions of the paper's Fig. 2.

The FMM assigns each process a contiguous segment of the Z-order curve over
the leaf boxes; the P2NFFT assigns each process one subdomain of a Cartesian
process grid.  This renders both for a 2-D cut as ASCII maps (one letter per
cell = owning rank), making the Z-curve's characteristic shape — and its
occasional long jumps, which are why a few particles travel to distant
processes even under small movement — directly visible.

Run:  python examples/domain_decomposition_viz.py [nprocs] [grid_cells]
"""

import sys

import numpy as np

from repro.simmpi.cart import CartGrid
from repro.zorder.morton import morton_encode2


def z_curve_decomposition(n_cells: int, nprocs: int) -> np.ndarray:
    """Rank map of an (n_cells x n_cells) grid split along the Z-curve."""
    xs, ys = np.meshgrid(np.arange(n_cells), np.arange(n_cells), indexing="ij")
    keys = morton_encode2(xs.ravel(), ys.ravel())
    order = np.argsort(keys)
    ranks = np.empty(n_cells * n_cells, dtype=np.int64)
    per = n_cells * n_cells / nprocs
    ranks[order] = np.minimum((np.arange(n_cells * n_cells) / per).astype(int), nprocs - 1)
    return ranks.reshape(n_cells, n_cells)


def grid_decomposition(n_cells: int, nprocs: int) -> np.ndarray:
    """Rank map of the same grid split into a Cartesian process grid."""
    # reuse the 3-D CartGrid with a flat z dimension
    grid = CartGrid(nprocs, (1.0, 1.0, 1.0), dims=None, periodic=True)
    centers = (np.arange(n_cells) + 0.5) / n_cells
    xs, ys = np.meshgrid(centers, centers, indexing="ij")
    pos = np.stack([xs.ravel(), ys.ravel(), np.full(n_cells * n_cells, 0.5)], axis=1)
    return grid.rank_of_positions(pos).reshape(n_cells, n_cells)


def render(ranks: np.ndarray) -> str:
    symbols = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    lines = []
    for row in ranks:
        lines.append(" ".join(symbols[r % len(symbols)] for r in row))
    return "\n".join(lines)


def boundary_cells(ranks: np.ndarray) -> int:
    """Cells with a differently-owned neighbor: the redistribution surface."""
    up = ranks != np.roll(ranks, 1, axis=0)
    left = ranks != np.roll(ranks, 1, axis=1)
    return int((up | left).sum())


def main() -> None:
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    n_cells = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    z = z_curve_decomposition(n_cells, nprocs)
    g = grid_decomposition(n_cells, nprocs)

    print(f"Z-order curve decomposition (FMM), {nprocs} processes:\n")
    print(render(z))
    print(f"\nboundary cells: {boundary_cells(z)} of {n_cells * n_cells}")
    print(f"\nCartesian process grid decomposition (P2NFFT), {nprocs} processes:\n")
    print(render(g))
    print(f"\nboundary cells: {boundary_cells(g)} of {n_cells * n_cells}")
    print(
        "\nBoth decompositions are spatially compact, which is why slightly"
        "\nmoving particles mostly stay on their process (method B's win);"
        "\nthe Z-curve map also shows the long jumps that send a few"
        "\nparticles to distant processes (Sect. III-B)."
    )


if __name__ == "__main__":
    main()
