#!/usr/bin/env python
"""A coupled particle dynamics simulation with methods A and B.

Runs the paper's example application (Fig. 3): leapfrog integration with
long-range forces from the FMM solver, once with method A (the library
restores the original particle order and distribution every step) and once
with method B (the application adopts the solver-specific order and resorts
its velocities/accelerations via resort indices).

Both runs produce *identical physics* — method B only changes where the
data lives — but very different redistribution costs, printed per step.

Run:  python examples/md_coupled_simulation.py [steps]
"""

import sys

import numpy as np

from repro.bench.harness import step_breakdown
from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.costmodel import JUROPA
from repro.simmpi.machine import Machine


def run(system, method: str, steps: int) -> Simulation:
    machine = Machine(32, profile=JUROPA)
    cfg = SimulationConfig(
        solver="fmm",
        method=method,
        dt=0.05,
        distribution="random",
        track_energy=True,
        seed=3,
    )
    sim = Simulation(machine, system, cfg)
    sim.run(steps)
    return sim


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    system = silica_melt_system(n=3000, seed=7)
    print(f"simulating {system.n} ions for {steps} steps with the FMM solver\n")

    sims = {m: run(system, m, steps) for m in ("A", "B")}

    print(f"{'step':>5} | {'A: sort':>10} {'A: restore':>10} | {'B: sort':>10} {'B: resort':>10}")
    print("-" * 56)
    for i in range(steps + 1):
        a = step_breakdown(sims["A"].records[i])
        b = step_breakdown(sims["B"].records[i])
        label = "init" if i == 0 else str(i)
        print(
            f"{label:>5} | {a['sort']:>10.3e} {a['restore']:>10.3e} |"
            f" {b['sort']:>10.3e} {b['resort']:>10.3e}"
        )

    print("\nmodeled total parallel times:")
    for m, sim in sims.items():
        print(f"  method {m}: {sim.machine.elapsed() * 1e3:8.2f} ms")

    # identical physics despite different data layouts
    state_a = sims["A"].gather_state()
    state_b = sims["B"].gather_state()
    drift = np.abs(state_a["pos"] - state_b["pos"]).max()
    ea = sims["A"].records[-1].energy
    eb = sims["B"].records[-1].energy
    print(f"\nmax |pos_A - pos_B| = {drift:.2e} (identical trajectories)")
    print(f"energy conservation: E0={sims['A'].records[0].energy:.4f} "
          f"E{steps}={ea:.4f} (B: {eb:.4f})")


if __name__ == "__main__":
    main()
