#!/usr/bin/env python
"""Writing your own parallel algorithm: per-rank SPMD programming.

The library's solvers use the global-view primitives internally, but the
simulated machine also exposes a classic per-rank SPMD interface
(:mod:`repro.simmpi.spmd`): each rank runs the same Python function with
blocking sends/receives and collectives, while the machine's virtual clocks
price every operation.

This demo implements a 1-D halo exchange + Jacobi smoothing — the textbook
pattern behind the ghost-particle exchange of the P2NFFT solver — and
prints the modeled communication cost on both platform profiles.

Run:  python examples/spmd_halo_exchange.py
"""

import numpy as np

from repro.simmpi.costmodel import JUQUEEN, JUROPA
from repro.simmpi.machine import Machine
from repro.simmpi.spmd import run_spmd


def jacobi_1d(ctx, local, iterations=20):
    """Smooth a strip of a global 1-D field with halo exchanges."""
    left = ctx.rank - 1 if ctx.rank > 0 else None
    right = ctx.rank + 1 if ctx.rank < ctx.nprocs - 1 else None
    for _ in range(iterations):
        # post halo values to both neighbors, then receive theirs
        if left is not None:
            ctx.send(left, local[:1], tag=1)
        if right is not None:
            ctx.send(right, local[-1:], tag=0)
        halo_l = ctx.recv(left, tag=0) if left is not None else local[:1]
        halo_r = ctx.recv(right, tag=1) if right is not None else local[-1:]
        padded = np.concatenate([halo_l, local, halo_r])
        local = 0.25 * padded[:-2] + 0.5 * padded[1:-1] + 0.25 * padded[2:]
        # a residual check, like a solver's convergence test
        ctx.allreduce(float(np.abs(np.diff(local)).max()), "max")
    return local


def main() -> None:
    P = 8
    n_local = 64
    rng = np.random.default_rng(0)
    strips = [rng.uniform(size=n_local) for _ in range(P)]

    for profile in (JUROPA, JUQUEEN):
        machine = Machine(P, profile=profile)
        out = run_spmd(machine, jacobi_1d, [s.copy() for s in strips])
        field = np.concatenate(out)
        st = machine.trace.get("spmd")
        print(
            f"{profile.name:8s}: field mean {field.mean():.4f}  "
            f"modeled time {machine.elapsed() * 1e3:.3f} ms  "
            f"({st.messages} messages, {st.bytes} bytes)"
        )
    print("\nSame algorithm, same data — different modeled cost per platform.")


if __name__ == "__main__":
    main()
