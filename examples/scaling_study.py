#!/usr/bin/env python
"""Strong-scaling study: both solvers, both platforms, all three methods.

A compact version of the paper's Fig. 9 experiment: the same particle
system is simulated on increasing numbers of (simulated) processes, on the
JuRoPA-like fat-tree profile and the Juqueen-like torus profile.  The
redistribution machinery is fully exercised; solver arithmetic is charged
from analytic workload estimates (``compute="skip"``) so the sweep stays
fast at any scale.

Run:  python examples/scaling_study.py [n_particles]
"""

import sys

import numpy as np

from repro.bench.harness import step_breakdown
from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.costmodel import JUQUEEN, JUROPA
from repro.simmpi.machine import Machine


def measure(system, solver, profile, nprocs, method, steps=2, warmup=3):
    """Average modeled per-step solver time after a drift warmup."""
    subdomain = float(system.box.min()) / round(nprocs ** (1.0 / 3.0))
    cfg = SimulationConfig(
        solver=solver,
        method=method,
        distribution="grid",
        dynamics="brownian",
        brownian_step=1.5 * subdomain / warmup,
        solver_kwargs={"compute": "skip"},
        seed=1,
    )
    sim = Simulation(Machine(nprocs, profile=profile), system, cfg)
    sim.initialize()
    for _ in range(warmup):
        sim.step()
    sim.config.brownian_step = 0.02 * subdomain
    times = [step_breakdown(sim.step())["total"] for _ in range(steps)]
    return float(np.mean(times))


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32768
    system = silica_melt_system(n, seed=1)
    configs = [
        ("fmm", JUROPA, (8, 32, 128, 512)),
        ("p2nfft", JUQUEEN, (16, 64, 256, 1024)),
    ]
    for solver, profile, proc_list in configs:
        print(f"\n{solver.upper()} on the {profile.name} profile "
              f"(n={n}; modeled ms per time step)")
        print(f"{'procs':>6} | {'method A':>10} {'method B':>10} {'B+move':>10}")
        print("-" * 44)
        for P in proc_list:
            row = [
                measure(system, solver, profile, P, m) * 1e3
                for m in ("A", "B", "B+move")
            ]
            print(f"{P:>6} | {row[0]:>10.3f} {row[1]:>10.3f} {row[2]:>10.3f}")


if __name__ == "__main__":
    main()
