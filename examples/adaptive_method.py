#!/usr/bin/env python
"""Adaptive redistribution-method selection (an extension beyond the paper).

The paper leaves the A-vs-B choice to the application developer and shows
it depends on the movement regime, the platform, and the scale.  This demo
runs the built-in adaptive controller, which measures both methods online
and switches — under heavy drift it uses method B's cheap incremental
redistribution; right after any B step the application holds the solver
layout, so method A becomes temporarily almost free and the controller
exploits that too ("method A with automatic layout refreshes").

Run:  python examples/adaptive_method.py
"""

import numpy as np

from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.costmodel import JUROPA
from repro.simmpi.machine import Machine


def run(system, method, drift_frac, steps=24, nprocs=64):
    subdomain = float(system.box[0]) / round(nprocs ** (1 / 3))
    cfg = SimulationConfig(
        solver="p2nfft",
        method=method,
        distribution="grid",
        dynamics="brownian",
        brownian_step=drift_frac * subdomain,
        adapt_every=5,
        solver_kwargs={"compute": "skip"},
        seed=1,
    )
    sim = Simulation(Machine(nprocs, profile=JUROPA), system, cfg)
    sim.run(steps)
    total = sum(
        r.phase_time("sort")
        + r.phase_time("restore")
        + r.phase_time("resort")
        + r.phase_time("resort_index")
        for r in sim.records[1:]
    )
    return total, sim


def main() -> None:
    system = silica_melt_system(16384, seed=2)
    for drift, label in ((0.3, "heavy drift"), (0.01, "light drift")):
        print(f"\n=== {label} (per-step movement = {drift:.2f} subdomain widths) ===")
        for method in ("A", "B", "adaptive"):
            total, sim = run(system, method, drift)
            seq = "".join(r.method[0] for r in sim.records[1:])
            print(f"  {method:9s}: total redistribution {total * 1e3:7.3f} ms   steps: {seq}")
    print(
        "\nThe adaptive controller tracks the cheaper method in each regime"
        "\nwithout being told the movement rate, platform, or scale."
    )


if __name__ == "__main__":
    main()
