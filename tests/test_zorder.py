"""Morton encoding: roundtrips, ordering and locality properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.zorder.morton import (
    MAX_BITS_2D,
    MAX_BITS_3D,
    morton_decode2,
    morton_decode3,
    morton_encode2,
    morton_encode3,
    morton_keys_of_positions,
)

coord3 = st.integers(min_value=0, max_value=(1 << MAX_BITS_3D) - 1)
coord2 = st.integers(min_value=0, max_value=(1 << MAX_BITS_2D) - 1)


@given(coord3, coord3, coord3)
@settings(max_examples=200, deadline=None)
def test_roundtrip_3d(x, y, z):
    k = morton_encode3(np.array([x]), np.array([y]), np.array([z]))
    dx, dy, dz = morton_decode3(k)
    assert (dx[0], dy[0], dz[0]) == (x, y, z)


@given(coord2, coord2)
@settings(max_examples=200, deadline=None)
def test_roundtrip_2d(x, y):
    k = morton_encode2(np.array([x]), np.array([y]))
    dx, dy = morton_decode2(k)
    assert (dx[0], dy[0]) == (x, y)


@given(coord3, coord3, coord3, coord3, coord3, coord3)
@settings(max_examples=100, deadline=None)
def test_injective(a, b, c, d, e, f):
    k1 = morton_encode3(np.array([a]), np.array([b]), np.array([c]))[0]
    k2 = morton_encode3(np.array([d]), np.array([e]), np.array([f]))[0]
    assert (k1 == k2) == ((a, b, c) == (d, e, f))


def test_z_pattern_2x2x2():
    """Keys 0..7 enumerate the unit cube in x-fastest bit order."""
    xs, ys, zs = np.meshgrid([0, 1], [0, 1], [0, 1], indexing="ij")
    keys = morton_encode3(xs.ravel(), ys.ravel(), zs.ravel())
    # key = x | y<<1 | z<<2 per our bit layout
    expected = xs.ravel() | (ys.ravel() << 1) | (zs.ravel() << 2)
    np.testing.assert_array_equal(keys, expected)


def test_monotone_along_axis_within_octant():
    # within one octant, increasing a coordinate increases the key
    k0 = morton_encode3(np.array([0]), np.array([0]), np.array([0]))[0]
    k1 = morton_encode3(np.array([1]), np.array([0]), np.array([0]))[0]
    assert k1 > k0


def test_out_of_range_raises():
    too_big = np.array([1 << MAX_BITS_3D], dtype=np.uint64)
    with pytest.raises(ValueError):
        morton_encode3(too_big, np.array([0]), np.array([0]))


class TestKeysOfPositions:
    box = np.array([8.0, 8.0, 8.0])
    off = np.zeros(3)

    def test_depth_zero(self):
        pos = np.random.default_rng(0).uniform(0, 8, (20, 3))
        keys = morton_keys_of_positions(pos, self.off, self.box, 0)
        assert np.all(keys == 0)

    def test_locality(self):
        """Points in the same cell share a key; distinct cells differ."""
        pos = np.array([[0.1, 0.1, 0.1], [0.4, 0.4, 0.4], [7.9, 7.9, 7.9]])
        keys = morton_keys_of_positions(pos, self.off, self.box, 3)
        assert keys[0] == keys[1] != keys[2]

    def test_periodic_wrap(self):
        pos = np.array([[8.5, 0.0, 0.0], [0.5, 0.0, 0.0]])
        keys = morton_keys_of_positions(pos, self.off, self.box, 3, periodic=True)
        assert keys[0] == keys[1]

    def test_open_clamp(self):
        pos = np.array([[9.5, 0.0, 0.0], [7.9, 0.0, 0.0]])
        keys = morton_keys_of_positions(pos, self.off, self.box, 3, periodic=False)
        assert keys[0] == keys[1]

    def test_all_cells_reachable(self, rng):
        keys = morton_keys_of_positions(
            rng.uniform(0, 8, (20000, 3)), self.off, self.box, 2
        )
        assert np.unique(keys).shape[0] == 64

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            morton_keys_of_positions(np.zeros((1, 3)), self.off, self.box, 30)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            morton_keys_of_positions(np.zeros((3,)), self.off, self.box, 2)


def test_sorted_keys_traverse_z_curve():
    """Sorting cells by Morton key visits children of each octant
    contiguously (the domain decomposition property of Fig. 2)."""
    n = 4
    xs, ys, zs = np.meshgrid(range(n), range(n), range(n), indexing="ij")
    keys = morton_encode3(xs.ravel(), ys.ravel(), zs.ravel())
    order = np.argsort(keys)
    coords = np.stack([xs.ravel(), ys.ravel(), zs.ravel()], axis=1)[order]
    # the first 8 cells in key order are exactly the first octant, the
    # next 8 the second octant (x high-bit set in our x-fastest layout)
    assert np.all(coords[:8] < 2)
    assert np.all(coords[8:16, 0] >= 2) and np.all(coords[8:16, 1:] < 2)


class TestDtypeBoundaries:
    """Dtype-boundary corners of the 3-D encoding: the 63-bit key budget
    (3 x 21 coordinate bits) is exactly exhausted at depth 21."""

    MAX = (1 << MAX_BITS_3D) - 1  # 0x1FFFFF

    def test_max_coordinate_corner_key(self):
        """All-max coordinates fill every one of the 63 payload bits."""
        k = morton_encode3(
            np.array([self.MAX]), np.array([self.MAX]), np.array([self.MAX])
        )
        assert k.dtype == np.uint64
        assert int(k[0]) == 0x7FFFFFFFFFFFFFFF

    def test_single_axis_corner_keys(self):
        """Each axis owns its own interleaved bit lane."""
        lane = int(
            morton_encode3(np.array([self.MAX]), np.array([0]), np.array([0]))[0]
        )
        assert lane == 0x1249249249249249  # bits 0, 3, 6, ..., 60
        y = int(morton_encode3(np.array([0]), np.array([self.MAX]), np.array([0]))[0])
        z = int(morton_encode3(np.array([0]), np.array([0]), np.array([self.MAX]))[0])
        assert y == lane << 1 and z == lane << 2
        assert lane | (lane << 1) | (lane << 2) == 0x7FFFFFFFFFFFFFFF

    @pytest.mark.parametrize(
        "coords",
        [
            (0, 0, 0),
            ((1 << MAX_BITS_3D) - 1,) * 3,
            ((1 << 20), (1 << 20) - 1, 1),
            ((1 << MAX_BITS_3D) - 1, 0, (1 << 20)),
        ],
    )
    def test_roundtrip_at_boundaries(self, coords):
        x, y, z = (np.array([c], dtype=np.uint64) for c in coords)
        dx, dy, dz = morton_decode3(morton_encode3(x, y, z))
        assert (int(dx[0]), int(dy[0]), int(dz[0])) == coords

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_coordinate_overflow_rejected(self, axis):
        """2**21 needs a 22nd bit: one past the boundary must raise, the
        boundary itself must not."""
        ok = [np.array([self.MAX])] * 3
        morton_encode3(*ok)
        bad = list(ok)
        bad[axis] = np.array([1 << MAX_BITS_3D])
        with pytest.raises(ValueError, match="21 bits"):
            morton_encode3(*bad)

    @pytest.mark.parametrize("depth", [20, 21])
    def test_deep_levels_reach_the_far_corner(self, depth):
        """Levels 20 and 21 are in-budget: the far box corner clamps to the
        all-ones key of that depth."""
        box = np.full(3, 1.0)
        corner = np.array([[1.0, 1.0, 1.0]])  # exactly offset + box
        keys = morton_keys_of_positions(corner, np.zeros(3), box, depth, periodic=False)
        ncells = 1 << depth
        expect = morton_encode3(
            np.array([ncells - 1]), np.array([ncells - 1]), np.array([ncells - 1])
        )
        assert keys.dtype == np.uint64
        assert int(keys[0]) == int(expect[0])
        # periodic boundaries wrap the same position to the origin cell
        wrapped = morton_keys_of_positions(corner, np.zeros(3), box, depth)
        assert int(wrapped[0]) == 0

    def test_depth_22_rejected(self):
        """Level 22 would need 66 key bits — past the uint64 budget."""
        with pytest.raises(ValueError, match=r"depth must be in \[0, 21\]"):
            morton_keys_of_positions(np.zeros((1, 3)), np.zeros(3), np.ones(3), 22)

    def test_depth_21_roundtrip_of_random_cells(self):
        rng = np.random.default_rng(2013)
        c = rng.integers(0, 1 << MAX_BITS_3D, (256, 3)).astype(np.uint64)
        dx, dy, dz = morton_decode3(morton_encode3(c[:, 0], c[:, 1], c[:, 2]))
        assert (
            np.array_equal(dx, c[:, 0])
            and np.array_equal(dy, c[:, 1])
            and np.array_equal(dz, c[:, 2])
        )
