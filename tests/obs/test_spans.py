"""ObsRecorder unit tests: charge capture, parity, sections, ring bounds."""

import numpy as np
import pytest

from repro.obs.spans import (
    MACHINE_RANK,
    ROOT_SPAN,
    ObsRecorder,
    enable_observability,
    machine_span,
)
from repro.simmpi.machine import Machine
from repro.simmpi.p2p import exchange_pairs, send_round, sendrecv


def assert_parity(machine, recorder):
    """Per-phase span sums must equal the trace aggregates bit-for-bit."""
    assert recorder.complete
    sums = recorder.phase_sums()
    trace = machine.trace
    for label in sorted(set(trace.labels()) | set(sums)):
        stats = trace.phase(label)
        if stats.calls == 0:
            continue
        span = sums[label]
        assert span["calls"] == stats.calls
        assert span["time"] == stats.time  # bitwise, not approx
        assert span["messages"] == stats.messages
        assert span["bytes"] == stats.bytes


class TestChargeCapture:
    def test_advance_emits_charge_and_rank_spans(self, machine4):
        rec = enable_observability(machine4)
        machine4.advance(np.array([1.0, 2.0, 0.0, 0.5]), "work")
        charges = [s for s in rec.spans(MACHINE_RANK) if s.kind == "charge"]
        assert len(charges) == 1
        assert charges[0].phase == "work"
        assert charges[0].time == machine4.trace.phase("work").time
        # rank spans only for ranks whose clock moved
        assert rec.span_count(2) == 0
        for r in (0, 1, 3):
            (span,) = list(rec.spans(r))
            assert span.kind == "rank"
            assert span.t_end == machine4.clocks[r]
        assert_parity(machine4, rec)

    def test_p2p_parity(self, machine4):
        rec = enable_observability(machine4)
        sendrecv(machine4, 0, 1, np.zeros(16), "a")
        send_round(machine4, [(0, 2, np.zeros(4)), (1, 3, np.zeros(8))], "b")
        exchange_pairs(machine4, [(0, 1, np.zeros(2), np.zeros(2))], "c")
        assert_parity(machine4, rec)

    def test_mixed_run_parity(self, machine8):
        rec = enable_observability(machine8)
        rng = np.random.default_rng(7)
        for k in range(10):
            machine8.advance(rng.random(8) * 1e-3, f"p{k % 3}")
            sendrecv(machine8, k % 8, (k + 3) % 8, np.zeros(k + 1), f"p{k % 3}")
        assert_parity(machine8, rec)

    def test_metrics_fed_from_charges(self, machine4):
        rec = enable_observability(machine4)
        sendrecv(machine4, 0, 1, np.zeros(16), "x")
        assert rec.metrics.value("comm.messages", phase="x") == 1
        assert rec.metrics.value("comm.bytes", phase="x") == 128
        assert rec.metrics.value("comm.payload_nbytes") == 1

    def test_per_rank_false_only_machine_stream(self, machine4):
        rec = enable_observability(machine4, per_rank=False)
        machine4.advance(np.ones(4), "w")
        assert rec.ranks() == [MACHINE_RANK]
        assert_parity(machine4, rec)


class TestSections:
    def test_nesting_and_parenting(self, machine4):
        rec = enable_observability(machine4)
        with rec.span("outer") as outer_id:
            machine4.advance(np.ones(4), "w")
            with rec.span("inner") as inner_id:
                machine4.advance(np.ones(4), "w")
        spans = {s.id: s for s in rec.spans(MACHINE_RANK)}
        assert spans[inner_id].parent == outer_id
        assert spans[outer_id].parent == ROOT_SPAN
        charges = [s for s in rec.spans(MACHINE_RANK) if s.kind == "charge"]
        assert charges[0].parent == outer_id
        assert charges[1].parent == inner_id
        # critical-path containment: charges lie inside their section
        for c in charges:
            sec = spans[c.parent]
            assert sec.t_start <= c.t_start and c.t_end <= sec.t_end

    def test_machine_span_null_when_detached(self, machine4):
        with machine_span(machine4, "anything") as sid:
            assert sid is None
        rec = enable_observability(machine4)
        with machine_span(machine4, "real", op="test") as sid:
            assert sid is not None
        (span,) = list(rec.spans(MACHINE_RANK))
        assert span.phase == "real" and span.kind == "section"

    def test_mark(self, machine4):
        rec = enable_observability(machine4)
        machine4.advance(np.ones(4), "w")
        rec.mark("event", step=3)
        mark = [s for s in rec.spans(MACHINE_RANK) if s.kind == "mark"][0]
        assert mark.time == 0.0
        assert mark.t_start == machine4.elapsed()
        assert mark.attrs_dict() == {"step": 3}


class TestBounds:
    def test_ring_eviction_clears_complete(self, machine4):
        rec = enable_observability(machine4, capacity=4)
        for _ in range(6):
            machine4.advance(np.ones(4), "w")
        assert rec.span_count(MACHINE_RANK) == 4
        assert rec.dropped[MACHINE_RANK] == 2
        assert not rec.complete

    def test_late_attach_not_complete(self, machine4):
        machine4.advance(np.ones(4), "w")
        rec = enable_observability(machine4)
        assert not rec.complete

    def test_reset_clocks_clears(self, machine4):
        rec = enable_observability(machine4, capacity=2)
        for _ in range(5):
            machine4.advance(np.ones(4), "w")
        machine4.reset_clocks()
        assert rec.span_count() == 0
        assert rec.dropped == {}
        assert rec.complete
        machine4.advance(np.ones(4), "w")
        assert_parity(machine4, rec)

    def test_bad_capacity(self, machine4):
        with pytest.raises(ValueError, match="capacity"):
            ObsRecorder(machine4, capacity=0)
