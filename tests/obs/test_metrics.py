"""MetricsRegistry unit tests: schema, determinism, trace/kernel bridges."""

import numpy as np
import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    from_trace,
    merge_kernel_stats,
)
from repro.perf.instrument import KernelStats
from repro.simmpi.machine import Machine


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError, match="increase"):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge()
        assert g.value is None
        g.set(2.5)
        g.set(1.0)
        assert g.value == 1.0

    def test_histogram_buckets(self):
        h = Histogram(bounds=(10, 100))
        for v in (5, 10, 50, 1000):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == 1065.0

    def test_histogram_bad_bounds(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram(bounds=(100, 10))


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a", phase="x") is reg.counter("a", phase="x")
        assert reg.counter("a", phase="x") is not reg.counter("a", phase="y")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_samples_deterministic_order(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a", phase="q").inc(2)
        reg.counter("a", phase="b").inc(1)
        reg.gauge("m").set(0.5)
        names = [(s["name"], tuple(sorted(s["labels"].items()))) for s in reg.samples()]
        assert names == sorted(names)

    def test_value_reads(self):
        reg = MetricsRegistry()
        assert reg.value("missing") == 0
        reg.counter("c").inc(3)
        reg.gauge("g").set(7.0)
        reg.histogram("h").observe(1.0)
        assert reg.value("c") == 3
        assert reg.value("g") == 7.0
        assert reg.value("h") == 1  # histograms read as observation count

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.clear()
        assert len(reg) == 0


class TestBridges:
    def test_from_trace(self):
        machine = Machine(4)
        machine.advance(np.ones(4), "w")
        machine.trace.record("comm", time=0.5, messages=3, nbytes=1024)
        reg = from_trace(machine.trace)
        assert reg.value("comm.messages", phase="comm") == 3
        assert reg.value("comm.bytes", phase="comm") == 1024
        # phases without traffic produce no comm series
        assert reg.value("comm.messages", phase="w") == 0

    def test_merge_kernel_stats(self):
        reg = MetricsRegistry()
        merge_kernel_stats(
            reg, {"k1": KernelStats(ns=500, calls=2, ops=10)}
        )
        assert reg.value("kernel.wall_ns", kernel="k1") == 500
        assert reg.value("kernel.calls", kernel="k1") == 2
        assert reg.value("kernel.ops", kernel="k1") == 10

    def test_instrument_export_metrics(self):
        from repro.perf import instrument

        with instrument.collect():
            instrument.record("kx", 1000, ops=4)
            reg = instrument.export_metrics()
        assert reg.value("kernel.wall_ns", kernel="kx") == 1000
        assert reg.value("kernel.ops", kernel="kx") == 4

    def test_audit_export_metrics(self, machine4):
        from repro.simmpi.p2p import sendrecv
        from repro.verify.audit import enable_auditing, export_metrics

        auditor = enable_auditing(machine4)
        sendrecv(machine4, 0, 1, np.zeros(16), "x")
        reg = export_metrics(auditor)
        assert reg.value("audit.messages", phase="x") == 1
        assert reg.value("audit.bytes", phase="x") == 128
        assert reg.value("audit.p2p_calls") == 1
        assert reg.value("audit.violations") == 0
