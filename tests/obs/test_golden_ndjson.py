"""Golden NDJSON span snapshot of a 2-rank fig7-style step.

Two pins:

* the snapshot is **identical between the vectorized and reference kernel
  modes** — the scalar oracles must not move the modeled clock (or the
  span stream) by a single bit;
* the full snapshot digest is pinned, so any change to charge ordering,
  span schema, float accounting or the NDJSON encoding fails loudly here.
  Regenerate with ``GOLDEN = compute()`` below if the change is intended
  (and update the step-breakdown goldens together).
"""

import hashlib

from repro.md.simulation import Simulation, SimulationConfig
from repro.obs.export import read_ndjson, to_ndjson
from repro.obs.spans import enable_observability
from repro.perf import instrument
from repro.simmpi.costmodel import JUROPA
from repro.simmpi.machine import Machine
from repro.md.systems import silica_melt_system

#: sha256 over the newline-joined NDJSON lines of the 2-rank fig7 step —
#: the full-snapshot golden (charge order, span schema, float bit patterns,
#: encoding).  Regenerate via ``run_snapshot(False)`` when a change to the
#: cost model, solver schedule or span format is intended.
GOLDEN_DIGEST = "82c16c4f343994aada0e2a8b953496f20b290c397e6b233b8f6ec5a5ca051c27"


def run_snapshot(reference: bool):
    machine = Machine(2, profile=JUROPA)
    recorder = enable_observability(machine)
    system = silica_melt_system(64, seed=1)
    config = SimulationConfig(
        solver="fmm",
        method="B",
        distribution="random",
        seed=1,
        solver_kwargs={"order": 3, "depth": 3, "lattice_shells": 2},
    )
    sim = Simulation(machine, system, config)
    if reference:
        with instrument.reference_mode():
            sim.run(1)
    else:
        sim.run(1)
    return machine, recorder, to_ndjson(recorder, meta={"scenario": "fig7-2rank"})


class TestGoldenSnapshot:
    def test_vectorized_and_reference_identical(self):
        _, _, vec = run_snapshot(reference=False)
        _, _, ref = run_snapshot(reference=True)
        assert vec == ref

    def test_snapshot_parity_and_shape(self):
        machine, recorder, lines = run_snapshot(reference=False)
        meta, spans, metrics = read_ndjson(lines)
        assert meta["complete"] is True
        assert meta["nprocs"] == 2
        # the snapshot restores bit-exactly
        assert spans == list(recorder.spans())
        # per-phase span sums reproduce the trace aggregates bit-for-bit
        sums = recorder.phase_sums()
        for label in machine.trace.labels():
            stats = machine.trace.phase(label)
            if stats.calls == 0:
                continue
            assert sums[label]["time"] == stats.time
            assert sums[label]["calls"] == stats.calls
            assert sums[label]["messages"] == stats.messages
            assert sums[label]["bytes"] == stats.bytes
        # structural sections present: init, step, solver run
        sections = {s.phase for s in spans if s.kind == "section"}
        assert {"sim.initialize", "sim.step", "fcs.run"} <= sections
        assert metrics  # solver.runs, comm.* at minimum

    def test_digest_stable_across_runs(self):
        """The snapshot is run-to-run deterministic (golden digest)."""
        _, _, a = run_snapshot(reference=False)
        _, _, b = run_snapshot(reference=False)
        da = hashlib.sha256("\n".join(a).encode()).hexdigest()
        db = hashlib.sha256("\n".join(b).encode()).hexdigest()
        assert da == db

    def test_golden_digest_pinned(self):
        _, _, lines = run_snapshot(reference=False)
        digest = hashlib.sha256("\n".join(lines).encode()).hexdigest()
        assert digest == GOLDEN_DIGEST, (
            "the 2-rank fig7 span snapshot changed; if intended, update "
            "GOLDEN_DIGEST (and review the step-breakdown goldens)"
        )
