"""The observability layer is strictly opt-in: with no recorder attached —
and equally with one attached — runs are byte-identical in everything the
repo fingerprints (physics state, trace aggregates, auditor ledgers).
Recording observes the clocks out-of-band of the data plane."""

import numpy as np

from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.obs.spans import enable_observability
from repro.simmpi.machine import Machine
from repro.verify.audit import enable_auditing
from repro.verify.dst import ledger_fingerprint
from repro.verify.invariants import state_fingerprint


def run(observed: bool, method="B"):
    machine = Machine(4)
    recorder = enable_observability(machine) if observed else None
    auditor = enable_auditing(machine)
    sim = Simulation(
        machine,
        silica_melt_system(32, seed=3),
        SimulationConfig(
            solver="fmm",
            method=method,
            seed=3,
            track_energy=True,
            solver_kwargs={"order": 3, "depth": 3, "lattice_shells": 2},
        ),
    )
    sim.run(2)
    return machine, sim, auditor, recorder


class TestNullPathByteIdentity:
    def test_fingerprints_and_ledgers_identical(self):
        m_off, sim_off, aud_off, _ = run(observed=False)
        m_on, sim_on, aud_on, rec = run(observed=True)
        assert state_fingerprint(sim_off) == state_fingerprint(sim_on)
        assert ledger_fingerprint(aud_off) == ledger_fingerprint(aud_on)
        # clocks and trace are bitwise equal too: recording never charges
        assert np.array_equal(m_off.clocks, m_on.clocks)
        for label in m_off.trace.labels():
            a, b = m_off.trace.phase(label), m_on.trace.phase(label)
            assert (a.time, a.messages, a.bytes, a.calls) == (
                b.time, b.messages, b.bytes, b.calls
            )
        assert rec.complete and rec.span_count() > 0

    def test_detach_stops_recording(self):
        machine = Machine(4)
        recorder = enable_observability(machine)
        machine.advance(np.ones(4), "w")
        n = recorder.span_count()
        machine.obs = None
        machine.advance(np.ones(4), "w")
        assert recorder.span_count() == n
