"""Exporter tests: Chrome trace structure, NDJSON round-trip, chaos tagging."""

import json

import numpy as np

from repro.obs.export import (
    read_ndjson,
    to_chrome_trace,
    to_ndjson,
    write_chrome_trace,
    write_ndjson,
)
from repro.obs.spans import MACHINE_RANK, enable_observability
from repro.simmpi.machine import Machine
from repro.simmpi.p2p import sendrecv


def small_run(nprocs=4, perturbation=None):
    machine = (
        Machine(nprocs, perturbation=perturbation)
        if perturbation is not None
        else Machine(nprocs)
    )
    rec = enable_observability(machine)
    with rec.span("section", op="test"):
        machine.advance(np.arange(1, nprocs + 1, dtype=float) * 1e-3, "w")
        sendrecv(machine, 0, 1, np.zeros(32), "comm")
    rec.mark("event", tag="x")
    return machine, rec


class TestChromeTrace:
    def test_structure(self):
        machine, rec = small_run()
        trace = to_chrome_trace(rec, meta={"scenario": "unit"})
        events = trace["traceEvents"]
        assert trace["otherData"] == {"scenario": "unit"}
        phs = {e["ph"] for e in events}
        assert phs == {"M", "X", "i"}
        # machine stream on tid 0, rank r on tid r + 1
        charge = [e for e in events if e.get("cat") == "charge"][0]
        assert charge["tid"] == 0
        rank_spans = [e for e in events if e.get("cat") == "rank"]
        assert {e["tid"] for e in rank_spans} <= {r + 1 for r in range(4)}
        # microsecond timestamps
        assert charge["dur"] >= 0

    def test_written_file_is_json(self, tmp_path):
        _, rec = small_run()
        path = tmp_path / "trace.json"
        write_chrome_trace(path, rec, meta={"k": "v"})
        loaded = json.loads(path.read_text())
        assert loaded["otherData"] == {"k": "v"}
        assert len(loaded["traceEvents"]) == rec.span_count() + 2 + 4

    def test_deterministic(self, tmp_path):
        _, rec1 = small_run()
        _, rec2 = small_run()
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome_trace(p1, rec1)
        write_chrome_trace(p2, rec2)
        assert p1.read_bytes() == p2.read_bytes()


class TestNdjson:
    def test_round_trip_bit_exact(self):
        _, rec = small_run()
        meta, spans, metrics = read_ndjson(to_ndjson(rec))
        assert spans == list(rec.spans())  # frozen dataclass equality: bitwise
        assert meta["complete"] is True
        assert meta["nprocs"] == 4
        assert len(metrics) == len(rec.metrics.samples())

    def test_file_round_trip(self, tmp_path):
        _, rec = small_run()
        path = tmp_path / "spans.ndjson"
        write_ndjson(path, rec, meta={"scenario": "unit"})
        with open(path) as fh:
            meta, spans, _ = read_ndjson(fh)
        assert meta["scenario"] == "unit"
        assert spans == list(rec.spans())

    def test_deterministic(self):
        _, rec1 = small_run()
        _, rec2 = small_run()
        assert to_ndjson(rec1) == to_ndjson(rec2)

    def test_chaos_tagged_round_trip(self, tmp_path):
        """A perturbed run's snapshot carries the chaos tag and survives the
        round trip bit-for-bit (the DST export contract)."""
        from repro.simmpi.chaos import Perturbation

        perturbation = Perturbation.sample(17)
        machine, rec = small_run(perturbation=perturbation)
        path = tmp_path / "chaos.ndjson"
        write_ndjson(path, rec, meta={"chaos_seed": 17})
        with open(path) as fh:
            meta, spans, _ = read_ndjson(fh)
        assert meta["chaos_seed"] == 17
        assert "perturbation" in meta["notes"]
        assert spans == list(rec.spans())
        # the perturbed floats survive exactly
        charge = [s for s in spans if s.kind == "charge"]
        want = [s for s in rec.spans(MACHINE_RANK) if s.kind == "charge"]
        assert [s.time for s in charge] == [s.time for s in want]


class TestDstExport:
    def test_run_dst_writes_tagged_snapshots(self, tmp_path):
        from repro.verify.dst import run_dst

        report = run_dst(
            ["direct"], ["B"], seeds=1, steps=1, nprocs=4, n_particles=16,
            probe_rounds=1, obs_export_dir=str(tmp_path),
        )
        assert report.ok
        ref = tmp_path / "direct-B-homogeneous-seed0.ndjson"
        chaos = tmp_path / "direct-B-homogeneous-seed1.ndjson"
        assert ref.exists() and chaos.exists()
        with open(ref) as fh:
            meta, spans, _ = read_ndjson(fh)
        assert meta["chaos_seed"] == 0
        assert meta["cell"] == "direct/B/homogeneous"
        assert meta["complete"] is True and spans
        with open(chaos) as fh:
            meta, _, _ = read_ndjson(fh)
        assert meta["chaos_seed"] == 1
        assert "seed=1" in meta["perturbation"]
