"""Hypothesis properties of the span stream.

* **span-tree nesting**: every span's parent resolves to a section opened
  around it (or the root); on the machine stream, charges are
  time-contained in their parent section's critical-path interval.
* **bit-for-bit parity**: per-phase charge-span sums replay the Trace
  float accumulation exactly, for arbitrary interleavings of advances,
  p2p traffic and nested sections.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.spans import MACHINE_RANK, ROOT_SPAN, enable_observability
from repro.simmpi.machine import Machine
from repro.simmpi.p2p import send_round, sendrecv

PHASES = ("sort", "near", "resort", "other")

op_advance = st.tuples(
    st.just("advance"),
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=4,
        max_size=4,
    ),
    st.sampled_from(PHASES),
)
op_sendrecv = st.tuples(
    st.just("sendrecv"),
    st.tuples(st.integers(0, 3), st.integers(0, 3)),
    st.sampled_from(PHASES),
)
op_round = st.tuples(
    st.just("send_round"),
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=4
    ),
    st.sampled_from(PHASES),
)
op_section = st.tuples(st.just("section"), st.none(), st.sampled_from(PHASES))

programs = st.lists(
    st.one_of(op_advance, op_sendrecv, op_round, op_section),
    min_size=1,
    max_size=25,
)


def execute(machine, recorder, program):
    """Run the op list; sections bracket the remainder at their position."""
    stack = []
    try:
        for kind, arg, phase in program:
            if kind == "advance":
                machine.advance(np.asarray(arg), phase)
            elif kind == "sendrecv":
                src, dst = arg
                sendrecv(machine, src, dst, np.zeros(3), phase)
            elif kind == "send_round":
                transfers = [
                    (s, d, np.zeros(2)) for s, d in arg if s != d
                ]
                if transfers:
                    send_round(machine, transfers, phase)
            else:
                cm = recorder.span(f"section.{phase}", op="prop")
                cm.__enter__()
                stack.append(cm)
    finally:
        while stack:
            stack.pop().__exit__(None, None, None)


@given(programs)
@settings(max_examples=60, deadline=None)
def test_phase_sums_match_trace_bitwise(program):
    machine = Machine(4)
    recorder = enable_observability(machine)
    execute(machine, recorder, program)
    assert recorder.complete
    sums = recorder.phase_sums()
    for label in set(machine.trace.labels()) | set(sums):
        stats = machine.trace.phase(label)
        entry = sums.get(label, {"time": 0.0, "messages": 0, "bytes": 0, "calls": 0})
        assert entry["calls"] == stats.calls
        assert entry["time"] == stats.time  # bitwise float equality
        assert entry["messages"] == stats.messages
        assert entry["bytes"] == stats.bytes


@given(programs)
@settings(max_examples=60, deadline=None)
def test_span_tree_nesting(program):
    machine = Machine(4)
    recorder = enable_observability(machine)
    execute(machine, recorder, program)
    machine_spans = {s.id: s for s in recorder.spans(MACHINE_RANK)}
    sections = {
        sid: s for sid, s in machine_spans.items() if s.kind == "section"
    }
    for span in recorder.spans():
        # parents resolve to a section (or the root); ids are unique
        assert span.parent == ROOT_SPAN or span.parent in sections
        if span.parent in sections:
            parent = sections[span.parent]
            assert parent.t_start <= parent.t_end
            if span.rank == MACHINE_RANK:
                # critical-path containment (machine stream only; per-rank
                # clocks legitimately lag the critical path)
                assert parent.t_start <= span.t_start
                assert span.t_end <= parent.t_end
    ids = [s.id for s in recorder.spans()]
    assert len(ids) == len(set(ids))
