"""ColumnBlock and ParticleSet container semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.particles import ColumnBlock, ParticleSet


class TestColumnBlock:
    def make(self, n=5):
        return ColumnBlock(
            pos=np.arange(n * 3, dtype=float).reshape(n, 3),
            q=np.arange(n, dtype=float),
        )

    def test_n_and_names(self):
        b = self.make()
        assert b.n == 5
        assert b.names() == ["pos", "q"]
        assert "pos" in b and "w" not in b

    def test_nbytes(self):
        b = self.make(4)
        assert b.nbytes == 4 * 3 * 8 + 4 * 8

    def test_length_mismatch(self):
        b = self.make(5)
        with pytest.raises(ValueError):
            b["bad"] = np.zeros(4)

    def test_take(self):
        b = self.make()
        t = b.take(np.array([3, 1]))
        assert t.n == 2
        np.testing.assert_allclose(t["q"], [3.0, 1.0])

    def test_row_slice_is_view(self):
        b = self.make()
        s = b.row_slice(1, 3)
        assert s.n == 2
        s["q"][0] = 99.0
        assert b["q"][1] == 99.0  # shares memory

    def test_concat(self):
        a, b = self.make(2), self.make(3)
        c = ColumnBlock.concat([a, b])
        assert c.n == 5
        np.testing.assert_allclose(c["q"], [0, 1, 0, 1, 2])

    def test_concat_mismatch(self):
        a = self.make(2)
        b = ColumnBlock(q=np.zeros(2))
        with pytest.raises(ValueError):
            ColumnBlock.concat([a, b])

    def test_concat_empty_list(self):
        with pytest.raises(ValueError):
            ColumnBlock.concat([])

    def test_empty_like(self):
        b = self.make()
        e = ColumnBlock.empty_like(b, 0)
        assert e.n == 0
        assert e["pos"].shape == (0, 3)

    def test_permute_inplace(self):
        b = self.make(3)
        b.permute_inplace(np.array([2, 0, 1]))
        np.testing.assert_allclose(b["q"], [2, 0, 1])

    def test_permute_bad_shape(self):
        b = self.make(3)
        with pytest.raises(ValueError):
            b.permute_inplace(np.array([0, 1]))

    def test_drop(self):
        b = self.make()
        d = b.drop("pos")
        assert d.names() == ["q"]
        assert b.names() == ["pos", "q"]  # original untouched

    def test_payload_tuple(self):
        b = self.make(2)
        p = b.payload()
        assert isinstance(p, tuple) and len(p) == 2

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_copy_independent(self, n):
        b = ColumnBlock(x=np.zeros(n))
        c = b.copy()
        if n:
            c["x"][0] = 1.0
            assert b["x"][0] == 0.0


class TestParticleSet:
    def make(self, counts=(3, 0, 5)):
        rng = np.random.default_rng(0)
        pos = [rng.uniform(0, 1, (c, 3)) for c in counts]
        q = [np.ones(c) for c in counts]
        return ParticleSet(pos, q)

    def test_counts_total(self):
        ps = self.make()
        np.testing.assert_array_equal(ps.counts(), [3, 0, 5])
        assert ps.total() == 8
        assert ps.nlocal(2) == 5

    def test_default_capacity_covers(self):
        ps = self.make()
        assert all(c >= n for c, n in zip(ps.capacities, ps.counts()))

    def test_fits(self):
        ps = self.make()
        assert ps.fits([1, 1, 1])
        assert not ps.fits([10 ** 9, 0, 0])

    def test_capacity_below_count_rejected(self):
        with pytest.raises(ValueError):
            ParticleSet([np.zeros((3, 3))], [np.zeros(3)], capacities=[2])

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            ParticleSet([np.zeros((3, 2))], [np.zeros(3)])
        with pytest.raises(ValueError):
            ParticleSet([np.zeros((3, 3))], [np.zeros(4)])

    def test_replace(self):
        ps = self.make()
        ps.replace(1, np.zeros((2, 3)), np.ones(2), np.zeros(2), np.zeros((2, 3)))
        assert ps.nlocal(1) == 2

    def test_replace_inconsistent(self):
        ps = self.make()
        with pytest.raises(ValueError):
            ps.replace(0, np.zeros((2, 3)), np.ones(3), np.zeros(2), np.zeros((2, 3)))

    def test_gather_views(self):
        ps = self.make()
        assert ps.gather_positions().shape == (8, 3)
        assert ps.gather_charges().shape == (8,)
        assert ps.gather_potentials().shape == (8,)
        assert ps.gather_fields().shape == (8, 3)
