"""Resort indices: packing, inversion-with-communication, application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.particles import ColumnBlock
from repro.core.resort import (
    apply_resort,
    initial_numbering,
    invert_indices,
    pack_resort_index,
    unpack_resort_index,
)
from repro.simmpi.machine import Machine

u31 = st.integers(min_value=0, max_value=2 ** 31 - 1)


@given(u31, u31)
@settings(max_examples=150, deadline=None)
def test_pack_unpack_roundtrip(rank, position):
    packed = pack_resort_index(np.array([rank]), np.array([position]))
    r, p = unpack_resort_index(packed)
    assert (r[0], p[0]) == (rank, position)


def test_pack_range_checks():
    with pytest.raises(ValueError):
        pack_resort_index(np.array([-1]), np.array([0]))
    with pytest.raises(ValueError):
        pack_resort_index(np.array([0]), np.array([1 << 33]))


def test_unpack_ghost_rejected():
    with pytest.raises(ValueError):
        unpack_resort_index(np.array([-1]))


def test_initial_numbering():
    nums = initial_numbering([2, 0, 3])
    r0, p0 = unpack_resort_index(nums[0])
    np.testing.assert_array_equal(r0, [0, 0])
    np.testing.assert_array_equal(p0, [0, 1])
    assert nums[1].shape == (0,)
    r2, p2 = unpack_resort_index(nums[2])
    np.testing.assert_array_equal(r2, [2, 2, 2])
    np.testing.assert_array_equal(p2, [0, 1, 2])


def scatter_particles(machine, counts, rng):
    """Simulate a solver reordering: a random global permutation of the
    initially numbered particles, returning (origloc per rank, where each
    original particle currently lives)."""
    P = machine.nprocs
    total = int(sum(counts))
    numbering = np.concatenate(initial_numbering(counts)) if total else np.empty(0, dtype=np.int64)
    perm = rng.permutation(total)
    # new distribution: random counts
    new_counts = np.bincount(rng.integers(0, P, total), minlength=P)
    bounds = np.concatenate(([0], np.cumsum(new_counts)))
    origloc = [numbering[perm[bounds[r]:bounds[r + 1]]] for r in range(P)]
    return origloc, [int(c) for c in new_counts]


class TestInvert:
    def test_roundtrip(self, machine4, rng):
        counts = [5, 3, 0, 7]
        origloc, new_counts = scatter_particles(machine4, counts, rng)
        resort = invert_indices(machine4, origloc, counts, "x")
        # applying the resort indices to the original ids must land each
        # id exactly where origloc says it now lives
        ids = [np.arange(100 * r, 100 * r + c, dtype=np.int64) for r, c in enumerate(counts)]
        out = apply_resort(
            machine4, resort, [ColumnBlock(ident=i) for i in ids], new_counts, "x"
        )
        for r in range(4):
            got = out[r]["ident"]
            r_src, p_src = unpack_resort_index(origloc[r])
            expected = 100 * r_src + p_src
            np.testing.assert_array_equal(got, expected)

    def test_identity_permutation(self, machine4):
        counts = [3, 3, 3, 3]
        origloc = initial_numbering(counts)
        resort = invert_indices(machine4, origloc, counts, "x")
        for r in range(4):
            rr, pp = unpack_resort_index(resort[r])
            np.testing.assert_array_equal(rr, r)
            np.testing.assert_array_equal(pp, np.arange(3))

    def test_count_mismatch_raises(self, machine4):
        origloc = initial_numbering([2, 2, 2, 2])
        with pytest.raises(ValueError):
            invert_indices(machine4, origloc, [1, 2, 2, 2], "x")


class TestApplyResort:
    def test_multi_column(self, machine4, rng):
        counts = [4, 4, 4, 4]
        origloc, new_counts = scatter_particles(machine4, counts, rng)
        resort = invert_indices(machine4, origloc, counts, "x")
        vel = [rng.uniform(size=(c, 3)) for c in counts]
        acc = [rng.uniform(size=(c, 3)) for c in counts]
        out = apply_resort(
            machine4,
            resort,
            [ColumnBlock(vel=v, acc=a) for v, a in zip(vel, acc)],
            new_counts,
            "x",
        )
        # verify against origloc: row i of rank r must hold the data of
        # the original particle origloc[r][i]
        for r in range(4):
            r_src, p_src = unpack_resort_index(origloc[r])
            for i in range(new_counts[r]):
                np.testing.assert_allclose(out[r]["vel"][i], vel[r_src[i]][p_src[i]])
                np.testing.assert_allclose(out[r]["acc"][i], acc[r_src[i]][p_src[i]])

    def test_shape_mismatch(self, machine4):
        resort = initial_numbering([2, 2, 2, 2])
        data = [ColumnBlock(x=np.zeros(3))] * 4
        with pytest.raises(ValueError):
            apply_resort(machine4, resort, data, [2, 2, 2, 2], "x")

    def test_non_permutation_detected(self, machine4):
        # two particles claiming the same target position
        bad = [pack_resort_index(np.zeros(2, dtype=np.int64), np.zeros(2, dtype=np.int64))]
        bad += [np.empty(0, dtype=np.int64)] * 3
        data = [ColumnBlock(x=np.zeros(2))] + [ColumnBlock(x=np.zeros(0))] * 3
        with pytest.raises(ValueError):
            apply_resort(machine4, bad, data, [2, 0, 0, 0], "x")

    def test_charges_resort_phase(self, machine4, rng):
        counts = [4, 4, 4, 4]
        origloc, new_counts = scatter_particles(machine4, counts, rng)
        resort = invert_indices(machine4, origloc, counts, "idx")
        apply_resort(
            machine4, resort, [ColumnBlock(x=np.zeros(c)) for c in counts], new_counts, "resort"
        )
        assert machine4.trace.get("resort").time > 0
