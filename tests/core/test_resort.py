"""Resort indices: packing, inversion-with-communication, application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.particles import ColumnBlock
from repro.core.resort import (
    POSITION_LIMIT,
    RANK_LIMIT,
    apply_resort,
    initial_numbering,
    invert_indices,
    pack_resort_index,
    unpack_resort_index,
)
from repro.simmpi.machine import Machine
from repro.verify.strategies import permutations, rank_position_arrays

u31 = st.integers(min_value=0, max_value=2 ** 31 - 1)


@given(u31, u31)
@settings(max_examples=150, deadline=None)
def test_pack_unpack_roundtrip(rank, position):
    packed = pack_resort_index(np.array([rank]), np.array([position]))
    r, p = unpack_resort_index(packed)
    assert (r[0], p[0]) == (rank, position)


@given(rank_position_arrays())
@settings(max_examples=200, deadline=None)
def test_pack_unpack_roundtrip_full_range(pair):
    """Array round-trip over the full packing range, including the extremes
    (rank 2**31 - 1, position 2**32 - 1) where sign-bit bugs live."""
    ranks, positions = pair
    packed = pack_resort_index(ranks, positions)
    assert packed.dtype == np.int64
    # packed values must stay non-negative: the sign bit is the ghost marker
    assert not np.any(packed < 0)
    r, p = unpack_resort_index(packed)
    np.testing.assert_array_equal(r, ranks)
    np.testing.assert_array_equal(p, positions)


@given(rank_position_arrays())
@settings(max_examples=100, deadline=None)
def test_pack_is_injective(pair):
    ranks, positions = pair
    packed = pack_resort_index(ranks, positions)
    pairs = set(zip(ranks.tolist(), positions.tolist()))
    assert len(set(packed.tolist())) == len(pairs)


def test_pack_range_checks():
    with pytest.raises(ValueError):
        pack_resort_index(np.array([-1]), np.array([0]))
    with pytest.raises(ValueError):
        pack_resort_index(np.array([0]), np.array([1 << 33]))


def test_pack_limits():
    """Ranks get 31 bits, positions 32: the boundary values round-trip and
    the first out-of-range values raise instead of silently overflowing
    into the ghost-index sign bit (the former behaviour accepted ranks up
    to 2**32 - 1 and produced negative packed values for ranks >= 2**31)."""
    top = pack_resort_index(
        np.array([RANK_LIMIT - 1]), np.array([POSITION_LIMIT - 1])
    )
    assert top[0] == np.iinfo(np.int64).max  # all non-sign bits set
    r, p = unpack_resort_index(top)
    assert (r[0], p[0]) == (RANK_LIMIT - 1, POSITION_LIMIT - 1)
    with pytest.raises(ValueError, match="ranks out of range"):
        pack_resort_index(np.array([RANK_LIMIT]), np.array([0]))
    with pytest.raises(ValueError, match="positions out of range"):
        pack_resort_index(np.array([0]), np.array([POSITION_LIMIT]))


def test_unpack_ghost_rejected():
    with pytest.raises(ValueError):
        unpack_resort_index(np.array([-1]))


def test_initial_numbering():
    nums = initial_numbering([2, 0, 3])
    r0, p0 = unpack_resort_index(nums[0])
    np.testing.assert_array_equal(r0, [0, 0])
    np.testing.assert_array_equal(p0, [0, 1])
    assert nums[1].shape == (0,)
    r2, p2 = unpack_resort_index(nums[2])
    np.testing.assert_array_equal(r2, [2, 2, 2])
    np.testing.assert_array_equal(p2, [0, 1, 2])


def scatter_particles(machine, counts, rng):
    """Simulate a solver reordering: a random global permutation of the
    initially numbered particles, returning (origloc per rank, where each
    original particle currently lives)."""
    P = machine.nprocs
    total = int(sum(counts))
    numbering = np.concatenate(initial_numbering(counts)) if total else np.empty(0, dtype=np.int64)
    perm = rng.permutation(total)
    # new distribution: random counts
    new_counts = np.bincount(rng.integers(0, P, total), minlength=P)
    bounds = np.concatenate(([0], np.cumsum(new_counts)))
    origloc = [numbering[perm[bounds[r]:bounds[r + 1]]] for r in range(P)]
    return origloc, [int(c) for c in new_counts]


class TestInvert:
    def test_roundtrip(self, machine4, rng):
        counts = [5, 3, 0, 7]
        origloc, new_counts = scatter_particles(machine4, counts, rng)
        resort = invert_indices(machine4, origloc, counts, "x")
        # applying the resort indices to the original ids must land each
        # id exactly where origloc says it now lives
        ids = [np.arange(100 * r, 100 * r + c, dtype=np.int64) for r, c in enumerate(counts)]
        out = apply_resort(
            machine4, resort, [ColumnBlock(ident=i) for i in ids], new_counts, "x"
        )
        for r in range(4):
            got = out[r]["ident"]
            r_src, p_src = unpack_resort_index(origloc[r])
            expected = 100 * r_src + p_src
            np.testing.assert_array_equal(got, expected)

    def test_identity_permutation(self, machine4):
        counts = [3, 3, 3, 3]
        origloc = initial_numbering(counts)
        resort = invert_indices(machine4, origloc, counts, "x")
        for r in range(4):
            rr, pp = unpack_resort_index(resort[r])
            np.testing.assert_array_equal(rr, r)
            np.testing.assert_array_equal(pp, np.arange(3))

    def test_count_mismatch_raises(self, machine4):
        origloc = initial_numbering([2, 2, 2, 2])
        with pytest.raises(ValueError):
            invert_indices(machine4, origloc, [1, 2, 2, 2], "x")

    @given(permutations(max_size=64), st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_inversion_property(self, perm, nprocs):
        """For any global permutation and rank count: inverting the
        original-location numbering yields resort indices that are (a) a
        permutation of all target slots and (b) the exact inverse map."""
        machine = Machine(nprocs)
        total = perm.shape[0]
        # split the permuted global sequence into arbitrary per-rank chunks
        cuts = np.linspace(0, total, nprocs + 1).astype(np.int64)
        new_counts = np.diff(cuts).tolist()
        # original distribution: uneven chunks derived from the permutation
        # itself (deterministic per example), padded when perm is short
        offs = perm[: nprocs - 1] % (total + 1)
        offs = np.concatenate(
            (offs, np.zeros(nprocs - 1 - offs.size, dtype=np.int64))
        )
        orig_counts = np.diff(
            np.concatenate(([0], np.sort(offs), [total]))
        ).tolist()
        numbering = np.concatenate(initial_numbering(orig_counts)) if total else np.empty(0, np.int64)
        origloc = [numbering[perm[cuts[r]:cuts[r + 1]]] for r in range(nprocs)]
        resort = invert_indices(machine, origloc, orig_counts, "x")
        # (a) every target slot hit exactly once
        from repro.verify.invariants import check_resort_permutation

        assert check_resort_permutation(resort, new_counts, nprocs) is None
        # (b) exact inverse: following a particle's resort index must land
        # on the slot whose origloc points back at the particle
        for r in range(nprocs):
            r_cur, p_cur = (
                unpack_resort_index(resort[r]) if resort[r].size else (np.empty(0, np.int64),) * 2
            )
            for i in range(resort[r].shape[0]):
                back = origloc[r_cur[i]][p_cur[i]]
                br, bp = unpack_resort_index(np.array([back]))
                assert (br[0], bp[0]) == (r, i)


class TestApplyResort:
    def test_multi_column(self, machine4, rng):
        counts = [4, 4, 4, 4]
        origloc, new_counts = scatter_particles(machine4, counts, rng)
        resort = invert_indices(machine4, origloc, counts, "x")
        vel = [rng.uniform(size=(c, 3)) for c in counts]
        acc = [rng.uniform(size=(c, 3)) for c in counts]
        out = apply_resort(
            machine4,
            resort,
            [ColumnBlock(vel=v, acc=a) for v, a in zip(vel, acc)],
            new_counts,
            "x",
        )
        # verify against origloc: row i of rank r must hold the data of
        # the original particle origloc[r][i]
        for r in range(4):
            r_src, p_src = unpack_resort_index(origloc[r])
            for i in range(new_counts[r]):
                np.testing.assert_allclose(out[r]["vel"][i], vel[r_src[i]][p_src[i]])
                np.testing.assert_allclose(out[r]["acc"][i], acc[r_src[i]][p_src[i]])

    def test_shape_mismatch(self, machine4):
        resort = initial_numbering([2, 2, 2, 2])
        data = [ColumnBlock(x=np.zeros(3))] * 4
        with pytest.raises(ValueError):
            apply_resort(machine4, resort, data, [2, 2, 2, 2], "x")

    def test_non_permutation_detected(self, machine4):
        # two particles claiming the same target position
        bad = [pack_resort_index(np.zeros(2, dtype=np.int64), np.zeros(2, dtype=np.int64))]
        bad += [np.empty(0, dtype=np.int64)] * 3
        data = [ColumnBlock(x=np.zeros(2))] + [ColumnBlock(x=np.zeros(0))] * 3
        with pytest.raises(ValueError):
            apply_resort(machine4, bad, data, [2, 0, 0, 0], "x")

    def test_charges_resort_phase(self, machine4, rng):
        counts = [4, 4, 4, 4]
        origloc, new_counts = scatter_particles(machine4, counts, rng)
        resort = invert_indices(machine4, origloc, counts, "idx")
        apply_resort(
            machine4, resort, [ColumnBlock(x=np.zeros(c)) for c in counts], new_counts, "resort"
        )
        assert machine4.trace.get("resort").time > 0


class TestEmptyRanks:
    """Regression: resort-index plumbing with empty origin/target ranks.

    Ranks can be empty on either side of a redistribution (the paper's
    "all particles on a single process" distribution empties every other
    rank); the inversion and application paths must handle zero-length
    index arrays without special-casing."""

    def test_invert_with_empty_origin_ranks(self, machine4):
        # all particles originally on rank 2, now spread across all ranks
        counts = [0, 0, 6, 0]
        numbering = np.concatenate(initial_numbering(counts))
        origloc = [numbering[i::4] for i in range(4)]
        new_counts = [len(o) for o in origloc]
        resort = invert_indices(machine4, origloc, counts, "x")
        for r, c in enumerate(counts):
            assert resort[r].shape == (c,)
        from repro.verify.invariants import check_resort_permutation

        assert check_resort_permutation(resort, new_counts, 4) is None

    def test_apply_into_empty_target_ranks(self, machine4):
        # everything collapses onto rank 0 (all-to-one), other targets empty
        counts = [2, 2, 2, 2]
        resort = [
            pack_resort_index(
                np.zeros(2, dtype=np.int64),
                np.arange(2 * r, 2 * r + 2, dtype=np.int64),
            )
            for r in range(4)
        ]
        data = [ColumnBlock(x=np.arange(2, dtype=np.float64) + 10 * r) for r in range(4)]
        out = apply_resort(machine4, resort, data, [8, 0, 0, 0], "x")
        np.testing.assert_array_equal(
            out[0]["x"], [0.0, 1.0, 10.0, 11.0, 20.0, 21.0, 30.0, 31.0]
        )
        for r in (1, 2, 3):
            assert out[r]["x"].shape == (0,)

    def test_simulation_single_distribution_method_b(self):
        """End-to-end: method B with every particle on one rank — the
        resort path must repeatedly move data off/onto empty ranks."""
        from repro.md.simulation import Simulation, SimulationConfig
        from repro.md.systems import silica_melt_system
        from repro.verify import assert_invariants, enable_auditing

        machine = Machine(8)
        sim = Simulation(
            machine,
            silica_melt_system(24, seed=5),
            SimulationConfig(solver="fmm", method="B", distribution="single", seed=5),
        )
        enable_auditing(machine)
        sim.run(2)
        assert_invariants(sim)
        machine.auditor.assert_quiescent()
