"""Method A restore: results return to the original order and distribution."""

import numpy as np
import pytest

from repro.core.particles import ParticleSet
from repro.core.resort import initial_numbering
from repro.core.restore import restore_results
from repro.simmpi.machine import Machine


def test_restore_roundtrip(machine4, rng):
    counts = [5, 0, 3, 4]
    total = sum(counts)
    # initial numbering scattered into a random changed distribution
    numbering = np.concatenate(initial_numbering(counts))
    perm = rng.permutation(total)
    new_counts = np.bincount(rng.integers(0, 4, total), minlength=4)
    bounds = np.concatenate(([0], np.cumsum(new_counts)))
    origloc = [numbering[perm[bounds[r]:bounds[r + 1]]] for r in range(4)]
    # the "calculated" result for each particle encodes its identity
    pots = [ol.astype(np.float64) * 0.5 for ol in origloc]
    fields = [np.tile(ol[:, None].astype(np.float64), (1, 3)) for ol in origloc]

    pset = ParticleSet(
        [rng.uniform(size=(c, 3)) for c in counts], [np.ones(c) for c in counts]
    )
    restore_results(machine4, origloc, pots, fields, pset, counts, phase="restore")
    for r in range(4):
        expected = numbering[
            sum(counts[:r]):sum(counts[:r]) + counts[r]
        ].astype(np.float64)
        np.testing.assert_allclose(pset.pot[r], expected * 0.5)
        np.testing.assert_allclose(pset.field[r][:, 0], expected)
    assert machine4.trace.get("restore").time > 0


def test_restore_count_mismatch(machine4):
    counts = [2, 0, 0, 0]
    origloc = initial_numbering([1, 0, 0, 0])  # too few results
    pots = [np.zeros(o.shape[0]) for o in origloc]
    fields = [np.zeros((o.shape[0], 3)) for o in origloc]
    pset = ParticleSet([np.zeros((2, 3))] + [np.zeros((0, 3))] * 3,
                       [np.zeros(2)] + [np.zeros(0)] * 3)
    with pytest.raises(RuntimeError, match="restore received"):
        restore_results(machine4, origloc, pots, fields, pset, counts)
