"""Fine-grained data redistribution: permutation, duplication, ordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fine_grained import fine_grained_redistribute
from repro.core.particles import ColumnBlock
from repro.simmpi.machine import Machine


def id_blocks(counts, start=0):
    """Blocks carrying a unique id column."""
    blocks, base = [], start
    for c in counts:
        blocks.append(ColumnBlock(ident=np.arange(base, base + c, dtype=np.int64)))
        base += c
    return blocks


class TestPlainTargets:
    def test_all_to_one(self, machine4):
        blocks = id_blocks([2, 3, 1, 0])
        out = fine_grained_redistribute(
            machine4, blocks, lambda r, b: np.zeros(b.n, dtype=np.int64), "x"
        )
        assert [b.n for b in out] == [6, 0, 0, 0]
        np.testing.assert_array_equal(np.sort(out[0]["ident"]), np.arange(6))

    def test_identity(self, machine4):
        blocks = id_blocks([2, 2, 2, 2])
        out = fine_grained_redistribute(
            machine4, blocks, lambda r, b: np.full(b.n, r, dtype=np.int64), "x"
        )
        for r in range(4):
            np.testing.assert_array_equal(out[r]["ident"], blocks[r]["ident"])

    def test_source_order_preserved(self, machine4):
        """Received elements arrive grouped by source rank, each group in
        the sender's element order — the contract resort indices rely on."""
        blocks = id_blocks([3, 3, 0, 0])
        out = fine_grained_redistribute(
            machine4, blocks, lambda r, b: np.ones(b.n, dtype=np.int64), "x"
        )
        np.testing.assert_array_equal(out[1]["ident"], [0, 1, 2, 3, 4, 5])

    def test_permutation_property(self, rng):
        P = 6
        m = Machine(P)
        counts = rng.integers(0, 20, P)
        blocks = id_blocks(counts)
        targets = [rng.integers(0, P, c) for c in counts]
        out = fine_grained_redistribute(
            m, blocks, lambda r, b: targets[r], "x"
        )
        all_ids = np.sort(np.concatenate([b["ident"] for b in out]))
        np.testing.assert_array_equal(all_ids, np.arange(counts.sum()))
        # per-rank counts match target multiplicities
        tg = np.concatenate(targets) if counts.sum() else np.empty(0, dtype=np.int64)
        for r in range(P):
            assert out[r].n == int((tg == r).sum())

    def test_invalid_rank_raises(self, machine4):
        blocks = id_blocks([2, 0, 0, 0])
        with pytest.raises(ValueError):
            fine_grained_redistribute(
                machine4, blocks, lambda r, b: np.full(b.n, 9, dtype=np.int64), "x"
            )

    def test_wrong_shape_raises(self, machine4):
        blocks = id_blocks([2, 0, 0, 0])
        with pytest.raises(ValueError):
            fine_grained_redistribute(
                machine4, blocks, lambda r, b: np.zeros(b.n + 1, dtype=np.int64), "x"
            )


class TestDuplication:
    def test_ghost_copies(self, machine4):
        """Returning repeated element indices duplicates particles — the
        ghost-creation mechanism of the P2NFFT redistribution."""
        blocks = id_blocks([2, 0, 0, 0])

        def dist(rank, block):
            if rank != 0:
                return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            elems = np.array([0, 0, 1], dtype=np.int64)
            targs = np.array([1, 2, 1], dtype=np.int64)
            return elems, targs

        out = fine_grained_redistribute(machine4, blocks, dist, "x")
        assert out[0].n == 0  # original dropped (no self target)
        np.testing.assert_array_equal(np.sort(out[1]["ident"]), [0, 1])
        np.testing.assert_array_equal(out[2]["ident"], [0])

    def test_dropping(self, machine4):
        """Elements with no target vanish (ghost removal)."""
        blocks = id_blocks([3, 0, 0, 0])

        def dist(rank, block):
            if rank or block.n == 0:
                return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            return np.array([1], dtype=np.int64), np.array([0], dtype=np.int64)

        out = fine_grained_redistribute(machine4, blocks, dist, "x")
        assert sum(b.n for b in out) == 1
        assert out[0]["ident"][0] == 1

    def test_mismatched_dup_arrays(self, machine4):
        blocks = id_blocks([2, 0, 0, 0])
        with pytest.raises(ValueError):
            fine_grained_redistribute(
                machine4,
                blocks,
                lambda r, b: (np.zeros(2, dtype=np.int64), np.zeros(3, dtype=np.int64)),
                "x",
            )


class TestMultiplicityConservation:
    """Property: with a duplicating distribution function, each element
    appears at each rank exactly as often as the distribution asked —
    duplication creates ghosts, omission drops them, nothing else changes."""

    @staticmethod
    def _run(nprocs, targets_per_elem):
        from repro.verify.invariants import InvariantChecker  # noqa: F401  (import check)

        machine = Machine(nprocs)
        n = len(targets_per_elem)
        # spread the elements over the ranks round-robin
        owner = np.arange(n, dtype=np.int64) % nprocs
        blocks = [
            ColumnBlock(ident=np.flatnonzero(owner == r).astype(np.int64))
            for r in range(nprocs)
        ]

        def dist(rank, block):
            elems = []
            targs = []
            for i, ident in enumerate(block["ident"]):
                for t in targets_per_elem[int(ident)]:
                    elems.append(i)
                    targs.append(t)
            return (
                np.asarray(elems, dtype=np.int64),
                np.asarray(targs, dtype=np.int64),
            )

        return machine, fine_grained_redistribute(machine, blocks, dist, "x")

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_multiplicities_exact(self, data):
        from repro.verify.strategies import multiplicity_maps

        nprocs, targets_per_elem = data.draw(multiplicity_maps())
        _, out = self._run(nprocs, targets_per_elem)
        n = len(targets_per_elem)
        # expected[r][i] = how often element i was sent to rank r
        for r in range(nprocs):
            got = np.bincount(out[r]["ident"], minlength=n) if out[r].n else np.zeros(n, np.int64)
            expected = np.zeros(n, dtype=np.int64)
            for i, targets in enumerate(targets_per_elem):
                expected[i] = sum(1 for t in targets if t == r)
            np.testing.assert_array_equal(got, expected)
        # global multiplicity: total copies == total requested targets
        assert sum(b.n for b in out) == sum(len(t) for t in targets_per_elem)

    def test_zero_copy_everything_dropped(self):
        """Every element returns zero targets: all data vanishes, the
        operation still completes and returns empty blocks."""
        _, out = self._run(4, [[] for _ in range(12)])
        assert [b.n for b in out] == [0, 0, 0, 0]

    def test_all_to_one_with_duplicates(self):
        """Every element sends 3 copies of itself to rank 0."""
        n = 10
        machine, out = self._run(5, [[0, 0, 0] for _ in range(n)])
        assert out[0].n == 3 * n
        np.testing.assert_array_equal(
            np.bincount(out[0]["ident"], minlength=n), np.full(n, 3)
        )
        for r in range(1, 5):
            assert out[r].n == 0


class TestComm:
    def test_neighborhood_same_data(self, machine8):
        blocks = id_blocks([4] * 8)
        targets = lambda r, b: np.full(b.n, (r + 1) % 8, dtype=np.int64)
        out1 = fine_grained_redistribute(machine8, blocks, targets, "x", comm="alltoall")
        m2 = Machine(8)
        out2 = fine_grained_redistribute(m2, id_blocks([4] * 8), targets, "x", comm="neighborhood")
        for a, b in zip(out1, out2):
            np.testing.assert_array_equal(a["ident"], b["ident"])
        assert m2.elapsed() < machine8.elapsed()

    def test_bad_comm(self, machine4):
        with pytest.raises(ValueError):
            fine_grained_redistribute(
                machine4, id_blocks([1, 0, 0, 0]),
                lambda r, b: np.zeros(b.n, dtype=np.int64), "x", comm="magic",
            )

    def test_multi_column_payload_travels_together(self, machine4):
        rng = np.random.default_rng(1)
        blocks = []
        for r in range(4):
            n = 5
            ident = np.arange(r * 5, r * 5 + 5, dtype=np.int64)
            blocks.append(
                ColumnBlock(ident=ident, pos=rng.uniform(size=(n, 3)), q=ident * 1.5)
            )
        out = fine_grained_redistribute(
            machine4, blocks, lambda r, b: b["ident"] % 4, "x"
        )
        for r in range(4):
            np.testing.assert_allclose(out[r]["q"], out[r]["ident"] * 1.5)
            assert np.all(out[r]["ident"] % 4 == r)
