"""The fcs_* library interface: protocol, method B gating, errors."""

import numpy as np
import pytest

from repro.core.handle import FCS, available_solvers, fcs_init
from repro.core.particles import ParticleSet
from repro.simmpi.machine import Machine
from conftest import random_particle_set


@pytest.fixture
def setup(small_system):
    m = Machine(4)
    pset, owner = random_particle_set(small_system, 4, seed=2)
    fcs = fcs_init("fmm", m, order=3, depth=3, lattice_shells=2)
    fcs.set_common(box=small_system.box, offset=small_system.offset, periodic=True)
    return m, pset, fcs, small_system


class TestRegistry:
    def test_available(self):
        names = available_solvers()
        assert {"fmm", "p2nfft", "direct"} <= set(names)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown solver"):
            fcs_init("pppm", Machine(2))

    def test_method_property(self, setup):
        _, _, fcs, _ = setup
        assert fcs.method == "fmm"


class TestProtocol:
    def test_run_before_tune_fails(self, setup):
        m, pset, fcs, sys_ = setup
        with pytest.raises(RuntimeError, match="fcs_tune"):
            fcs.run(pset)

    def test_tune_before_set_common_fails(self, small_system):
        m = Machine(4)
        fcs = fcs_init("fmm", m)
        pset, _ = random_particle_set(small_system, 4)
        with pytest.raises(RuntimeError, match="set_common"):
            fcs.tune(pset)

    def test_destroyed_handle_unusable(self, setup):
        _, pset, fcs, _ = setup
        fcs.destroy()
        with pytest.raises(RuntimeError, match="destroyed"):
            fcs.set_resort(True)

    def test_context_manager(self, setup):
        _, _, fcs, _ = setup
        with fcs as h:
            assert h is fcs
        with pytest.raises(RuntimeError):
            fcs.tune(None)

    def test_negative_max_move(self, setup):
        _, _, fcs, _ = setup
        with pytest.raises(ValueError):
            fcs.set_max_particle_move(-0.5)


class TestMethodA:
    def test_positions_and_order_unchanged(self, setup):
        m, pset, fcs, sys_ = setup
        before = [p.copy() for p in pset.pos]
        fcs.tune(pset)
        report = fcs.run(pset)
        assert not report.changed
        assert not fcs.resort_availability()
        for b, a in zip(before, pset.pos):
            np.testing.assert_array_equal(b, a)

    def test_resort_unavailable(self, setup):
        m, pset, fcs, _ = setup
        fcs.tune(pset)
        fcs.run(pset)
        with pytest.raises(RuntimeError, match="resort indices unavailable"):
            fcs.resort([np.zeros((n, 3)) for n in pset.counts()])


class TestMethodB:
    def test_changed_order_returned(self, setup):
        m, pset, fcs, _ = setup
        fcs.set_resort(True)
        fcs.tune(pset)
        report = fcs.run(pset)
        assert report.changed
        assert fcs.resort_availability()
        assert report.new_counts is not None

    def test_resort_floats_and_ints(self, setup):
        m, pset, fcs, _ = setup
        fcs.set_resort(True)
        fcs.tune(pset)
        old_pos = [p.copy() for p in pset.pos]
        fcs.run(pset)
        # one fused exchange for both columns through the unified API
        ids_in = [np.arange(p.shape[0], dtype=np.int64) for p in old_pos]
        tagged, ids_out = fcs.resort(([p * 2.0 for p in old_pos], ids_in))
        for r in range(4):
            np.testing.assert_allclose(tagged[r], pset.pos[r] * 2.0)
        assert sum(i.shape[0] for i in ids_out) == sum(i.shape[0] for i in ids_in)

    def test_deprecated_shims_removed(self, setup):
        """The v1 per-dtype entry points are gone (API v2, docs/migration.md)."""
        _, _, fcs, _ = setup
        for name in ("resort_floats", "resort_ints", "resort_bytes"):
            assert not hasattr(fcs, name)

    def test_resort_wrong_counts(self, setup):
        m, pset, fcs, _ = setup
        fcs.set_resort(True)
        fcs.tune(pset)
        fcs.run(pset)
        with pytest.raises(ValueError, match="original particle"):
            fcs.resort([np.zeros((3, 3)) for _ in range(4)])

    def test_capacity_fallback_restores(self, small_system):
        """If any rank's arrays are too small, the original order and
        distribution must be restored (Sect. III-B)."""
        m = Machine(4)
        rng = np.random.default_rng(0)
        owner = rng.integers(0, 4, small_system.n)
        pos = [small_system.pos[owner == r].copy() for r in range(4)]
        q = [small_system.q[owner == r].copy() for r in range(4)]
        counts = [p.shape[0] for p in pos]
        # capacities exactly at the current counts: any growth must fail
        pset = ParticleSet(pos, q, capacities=counts)
        fcs = fcs_init("fmm", m, order=3, depth=3, lattice_shells=2)
        fcs.set_common(box=small_system.box, periodic=True)
        fcs.set_resort(True)
        fcs.tune(pset)
        report = fcs.run(pset)
        # the FMM preserves counts, so it may or may not fit; the contract:
        # changed == resort availability and positions unchanged otherwise
        assert report.changed == fcs.resort_availability()
        if not report.changed:
            for b, a in zip(pos, pset.pos):
                np.testing.assert_array_equal(b, a)

    def test_max_move_consumed_per_run(self, setup):
        m, pset, fcs, _ = setup
        fcs.set_resort(True)
        fcs.tune(pset)
        fcs.run(pset)
        fcs.set_max_particle_move(0.01)
        rep1 = fcs.run(pset)
        assert rep1.strategy in ("merge", "merge+fallback")
        rep2 = fcs.run(pset)  # bound not re-armed
        assert rep2.strategy == "partition"
