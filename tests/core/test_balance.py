"""Load-balancing subsystem: monitor hysteresis, conformance, invariants.

The distribution-conformance contract: enabling load balancing changes
*where* particles live, never *what* the simulation computes — balanced
and unbalanced runs of the same seeded system agree on the full
trajectory (to summation-order tolerance), for every solver, whether or
not the solver supports rebalancing at all.
"""

import hashlib

import numpy as np
import pytest

from repro.core.balance import (
    BalanceEvent,
    ImbalanceMonitor,
    LOAD_BALANCE_MODES,
    load_imbalance,
    occupancy_weights,
)
from repro.md.distributions import CLUSTERED_KINDS, clustered_system
from repro.md.simulation import Simulation, SimulationConfig
from repro.perf import instrument
from repro.simmpi.machine import Machine
from repro.verify import InvariantChecker
from repro.verify.differential import compare_states

#: skip-compute FMM configuration whose two-cluster λ exceeds the default
#: trigger at (n=4096, P=16): depth 3 keeps the near field dominant, order
#: 2 keeps the count-proportional far field small
GOLDEN_KWARGS = {
    "compute": "skip",
    "work_model": "density",
    "depth": 3,
    "order": 2,
    "lattice_shells": 2,
}


def make_sim(machine, system, **overrides):
    cfg = dict(
        solver="fmm",
        method="B",
        distribution="random",
        seed=1,
        dynamics="brownian",
        brownian_step=0.02,
        solver_kwargs=dict(GOLDEN_KWARGS),
        capacity_factor=4.0,
    )
    cfg.update(overrides)
    return Simulation(machine, system, SimulationConfig(**cfg))


# -- pure arithmetic -----------------------------------------------------------


class TestLoadImbalance:
    def test_perfect_balance(self):
        assert load_imbalance(np.full(8, 3.0)) == 1.0

    def test_full_serialization(self):
        work = np.zeros(8)
        work[3] = 5.0
        assert load_imbalance(work) == 8.0

    def test_no_work_is_balanced(self):
        assert load_imbalance(np.zeros(4)) == 1.0
        assert load_imbalance(np.zeros(0)) == 1.0


class TestOccupancyWeights:
    def test_weights_are_box_occupancy(self):
        keys = np.asarray([5, 5, 5, 9, 9, 2], dtype=np.uint64)
        np.testing.assert_array_equal(
            occupancy_weights(keys), [3.0, 3.0, 3.0, 2.0, 2.0, 1.0]
        )

    def test_empty(self):
        assert occupancy_weights(np.empty(0, dtype=np.uint64)).shape == (0,)


# -- the monitor ---------------------------------------------------------------


class TestImbalanceMonitor:
    def test_fires_once_then_holds_in_dead_band(self):
        mon = ImbalanceMonitor(trigger=1.5, rearm=1.15)
        assert mon.observe(np.asarray([3.0, 1.0]), step=0)  # λ = 1.5 -> fire
        # rebalance lands in the dead band (1.15, 1.5): no re-fire, ever
        for step in range(1, 5):
            assert not mon.observe(np.asarray([1.3, 0.7]), step=step)
        assert len(mon.events) == 1
        assert not mon.armed

    def test_rearms_below_rearm_threshold(self):
        mon = ImbalanceMonitor(trigger=1.5, rearm=1.15)
        assert mon.observe(np.asarray([3.0, 1.0]), step=0)
        assert not mon.observe(np.asarray([1.05, 0.95]), step=1)  # re-arms
        assert mon.armed
        assert mon.observe(np.asarray([3.0, 1.0]), step=2)  # fires again
        assert [e.step for e in mon.events] == [0, 2]

    def test_lambda_after_filled_by_next_observation(self):
        mon = ImbalanceMonitor(trigger=1.5, rearm=1.15)
        mon.observe(np.asarray([3.0, 1.0]), step=0)
        assert mon.events[-1].lambda_after is None
        mon.observe(np.asarray([1.1, 0.9]), step=1)
        assert mon.events[-1].lambda_after == pytest.approx(1.1)

    def test_min_interval_suppresses_rapid_fire(self):
        mon = ImbalanceMonitor(trigger=1.2, rearm=1.1, min_interval=3)
        assert mon.observe(np.asarray([2.0, 0.5]), step=0)
        mon.observe(np.asarray([1.0, 1.0]), step=1)  # re-arm
        assert not mon.observe(np.asarray([2.0, 0.5]), step=2)  # too soon
        mon.observe(np.asarray([1.0, 1.0]), step=3)
        assert mon.observe(np.asarray([2.0, 0.5]), step=4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ImbalanceMonitor(trigger=1.1, rearm=1.2)
        with pytest.raises(ValueError):
            ImbalanceMonitor(trigger=1.5, rearm=0.9)
        with pytest.raises(ValueError):
            ImbalanceMonitor(min_interval=0)


# -- config plumbing -----------------------------------------------------------


class TestConfigPlumbing:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(load_balance="always")
        for mode in LOAD_BALANCE_MODES:
            SimulationConfig(load_balance=mode)

    def test_monitor_only_attached_for_dynamic_rebalanceable(self):
        system = clustered_system("two-cluster", 128, seed=3)
        sim = make_sim(Machine(4), system, load_balance="dynamic",
                       solver_kwargs={"work_model": "density"})
        assert sim.balance_monitor is not None
        sim = make_sim(Machine(4), system, load_balance="off",
                       solver_kwargs={"work_model": "density"})
        assert sim.balance_monitor is None
        # p2nfft does not support repartitioning: dynamic degrades to off
        sim = make_sim(Machine(4), system, solver="p2nfft",
                       load_balance="dynamic", solver_kwargs={})
        assert sim.balance_monitor is None

    def test_static_rebalances_exactly_once(self):
        machine = Machine(16)
        sim = make_sim(
            machine, clustered_system("two-cluster", 4096, seed=1),
            load_balance="static",
        )
        sim.run(3)
        assert machine.trace.counter("balance.rebalances") == 1


# -- dynamic balancing end to end ----------------------------------------------


class TestDynamicBalancing:
    def test_fires_then_stops_under_hysteresis(self):
        """The two-cluster λ crosses the default trigger, one rebalance
        lands the system in the dead band, and the monitor stays quiet
        for the rest of the run."""
        machine = Machine(16)
        sim = make_sim(
            machine, clustered_system("two-cluster", 4096, seed=1),
            load_balance="dynamic",
        )
        checker = InvariantChecker(sim)
        sim.run(5)
        checker.assert_ok()
        lams = [r.lambda_factor for r in sim.records]
        assert lams[0] >= sim.config.balance_trigger
        assert all(l < sim.config.balance_trigger for l in lams[1:])
        assert machine.trace.counter("balance.rebalances") == 1
        assert len(sim.balance_monitor.events) == 1
        event = sim.balance_monitor.events[0]
        assert event.lambda_after is not None
        assert event.lambda_after <= event.lambda_before
        # the balanced (count-unequal) layout was actually adopted
        assert all(r.changed for r in sim.records)

    def test_balance_conservation_invariant_rejects_regression(self):
        """The balance-conservation invariant flags a rebalance that made
        λ worse (a synthetic regression injected into the monitor)."""
        machine = Machine(16)
        sim = make_sim(
            machine, clustered_system("two-cluster", 4096, seed=1),
            load_balance="dynamic",
        )
        checker = InvariantChecker(sim)
        sim.run(2)
        sim.balance_monitor.events.append(
            BalanceEvent(step=99, lambda_before=1.2, lambda_after=2.4)
        )
        results = checker.run(["balance-conservation"])
        assert any(r.failed for r in results)


# -- conformance: balancing never changes the physics --------------------------


class TestConformance:
    @pytest.mark.parametrize("solver", ["fmm", "p2nfft", "direct", "ewald"])
    @pytest.mark.parametrize("kind", CLUSTERED_KINDS)
    def test_balanced_equals_unbalanced(self, solver, kind):
        """Same seeded clustered system, real compute, off vs dynamic with
        an aggressive trigger: identical trajectories to summation-order
        tolerance.  Non-FMM solvers must degrade to a clean no-op."""
        states = {}
        rebalances = {}
        for lb in ("off", "dynamic"):
            machine = Machine(4)
            sim = make_sim(
                machine,
                clustered_system(kind, 96, seed=2),
                solver=solver,
                load_balance=lb,
                balance_trigger=1.02,
                balance_rearm=1.01,
                capacity_factor=6.0,
                solver_kwargs={"work_model": "density"} if solver == "fmm" else {},
            )
            checker = InvariantChecker(sim)
            sim.run(2)
            checker.assert_ok()
            states[lb] = sim.gather_state()
            rebalances[lb] = machine.trace.counter("balance.rebalances")
        assert compare_states(states["off"], states["dynamic"]) is None
        assert rebalances["off"] == 0
        if solver == "fmm":
            # the aggressive trigger guarantees the dynamic run actually
            # exercised a repartition — the comparison is not vacuous
            assert rebalances["dynamic"] >= 1
        else:
            assert rebalances["dynamic"] == 0

    @pytest.mark.parametrize("method", ["A", "B", "B+move"])
    def test_methods_agree_under_balancing(self, method):
        """A/B/B+move with dynamic balancing all match the unbalanced
        method-A reference (the differential-oracle contract, extended to
        the balanced configurations).  Force dynamics: cross-method
        comparisons need layout-independent physics (the Brownian
        surrogate draws its jitter in storage order)."""
        machine = Machine(4)
        ref = make_sim(
            machine, clustered_system("two-cluster", 96, seed=2),
            method="A", load_balance="off", dynamics="force",
            solver_kwargs={"work_model": "density"},
        )
        ref.run(2)
        reference = ref.gather_state()

        machine = Machine(4)
        sim = make_sim(
            machine, clustered_system("two-cluster", 96, seed=2),
            method=method, load_balance="dynamic", dynamics="force",
            balance_trigger=1.02, balance_rearm=1.01, capacity_factor=6.0,
            solver_kwargs={"work_model": "density"},
        )
        sim.run(2)
        assert compare_states(reference, sim.gather_state()) is None


# -- golden snapshot -----------------------------------------------------------


def state_fingerprint(state):
    h = hashlib.sha256()
    for key in ("ids", "pos", "vel", "q", "pot"):
        h.update(np.ascontiguousarray(state[key]).tobytes())
    return h.hexdigest()[:16]


def run_golden():
    machine = Machine(16)
    sim = make_sim(
        machine, clustered_system("two-cluster", 4096, seed=1),
        load_balance="dynamic",
    )
    sim.run(4)
    return {
        "lambda_hex": [r.lambda_factor.hex() for r in sim.records],
        "rebalance_steps": [e.step for e in sim.balance_monitor.events],
        "state": state_fingerprint(sim.gather_state()),
        "ledger": (machine.trace.total_messages(), machine.trace.total_bytes()),
    }


class TestGoldenSnapshot:
    """Pins the λ time series and rebalance schedule of the seeded
    two-cluster run, bitwise, in both execution modes.  A diff here means
    the weighted-splitter arithmetic (or the monitor) changed behavior —
    rebless only with a changelog entry explaining why.
    """

    GOLDEN = {
        "lambda_hex": [
            "0x1.a6ec4a283d496p+0",
            "0x1.33508fcbb5704p+0",
            "0x1.33330b18cb16cp+0",
            "0x1.331dccece2237p+0",
            "0x1.382a27f923802p+0",
        ],
        "rebalance_steps": [0],
        "state": "5e5b56f2793d7957",
        "ledger": (2979, 8529064),
    }

    def test_vectorized_matches_golden(self):
        assert run_golden() == self.GOLDEN

    def test_reference_mode_matches_golden(self):
        with instrument.reference_mode():
            got = run_golden()
        assert got == self.GOLDEN
