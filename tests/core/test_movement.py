"""Max-movement bookkeeping and the Sect. III-B heuristics."""

import numpy as np
import pytest

from repro.core.movement import (
    MovementTracker,
    fmm_prefers_merge_sort,
    max_movement,
    p2nfft_prefers_neighborhood,
    process_cube_side,
)
from repro.simmpi.cart import CartGrid
from repro.simmpi.machine import Machine


class TestMaxMovement:
    def test_basic(self, machine4, rng):
        old = [rng.uniform(0, 10, (5, 3)) for _ in range(4)]
        new = [o.copy() for o in old]
        new[2][3] += np.array([0.3, 0.4, 0.0])  # displacement 0.5
        mv = max_movement(machine4, old, new)
        assert mv == pytest.approx(0.5)

    def test_empty_ranks(self, machine4):
        old = [np.zeros((0, 3))] * 4
        assert max_movement(machine4, old, old) == 0.0

    def test_minimum_image(self, machine4):
        box = np.array([10.0, 10.0, 10.0])
        old = [np.array([[9.9, 0.0, 0.0]])] + [np.zeros((0, 3))] * 3
        new = [np.array([[0.1, 0.0, 0.0]])] + [np.zeros((0, 3))] * 3
        assert max_movement(machine4, old, new, box=box) == pytest.approx(0.2)

    def test_shape_mismatch(self, machine4):
        old = [np.zeros((2, 3))] * 4
        new = [np.zeros((3, 3))] * 4
        with pytest.raises(ValueError):
            max_movement(machine4, old, new)

    def test_charges_communication(self, machine4):
        old = [np.zeros((2, 3))] * 4
        max_movement(machine4, old, old, phase="mv")
        assert machine4.trace.get("mv").time > 0


class TestHeuristics:
    def test_cube_side(self):
        box = np.array([8.0, 8.0, 8.0])
        assert process_cube_side(box, 8) == pytest.approx(4.0)
        assert process_cube_side(box, 1) == pytest.approx(8.0)

    def test_fmm_rule(self):
        box = np.array([8.0, 8.0, 8.0])
        assert fmm_prefers_merge_sort(box, 8, 3.9)
        assert not fmm_prefers_merge_sort(box, 8, 4.1)

    def test_p2nfft_rule(self):
        grid = CartGrid(8, (8.0, 8.0, 8.0))
        assert p2nfft_prefers_neighborhood(grid, 3.9)
        assert not p2nfft_prefers_neighborhood(grid, 4.1)

    def test_bad_nprocs(self):
        with pytest.raises(ValueError):
            process_cube_side(np.ones(3), 0)


class TestTracker:
    def test_observe(self):
        t = MovementTracker()
        assert t.current is None
        t.observe(0.5)
        t.observe(0.2)
        assert t.current == 0.2
        assert t.history == [0.5, 0.2]

    def test_invalidate(self):
        t = MovementTracker()
        t.observe(1.0)
        t.invalidate()
        assert t.current is None

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MovementTracker().observe(-1.0)
