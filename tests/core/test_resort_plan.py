"""The plan-based resort engine: fused exchanges, caching, unified API."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.handle import fcs_init
from repro.core.plan import ResortPlan
from repro.core.resort import pack_resort_index
from repro.simmpi.chaos import Perturbation
from repro.simmpi.machine import Machine
from repro.solvers.base import Solver
from repro.solvers.fmm.solver import FMMSolver
from repro.verify.audit import enable_auditing
from conftest import random_particle_set


def random_redistribution(nprocs, total, seed):
    """A random resort problem: indices, old/new counts, per-rank row ids.

    Every global row gets a random target rank and a random position within
    that rank — the ground truth against which any execution path can be
    checked exactly.
    """
    rng = np.random.default_rng(seed)
    src = np.sort(rng.integers(0, nprocs, total))
    old_counts = np.bincount(src, minlength=nprocs)
    dst = rng.integers(0, nprocs, total)
    new_counts = np.bincount(dst, minlength=nprocs)
    # assign positions: a random permutation within each destination rank
    pos = np.empty(total, dtype=np.int64)
    for r in range(nprocs):
        where = np.flatnonzero(dst == r)
        pos[where] = rng.permutation(where.size)
    indices = []
    offsets = np.concatenate(([0], np.cumsum(old_counts)))
    for r in range(nprocs):
        sl = slice(offsets[r], offsets[r + 1])
        indices.append(pack_resort_index(dst[sl], pos[sl]))
    return indices, old_counts, new_counts, dst, pos, offsets


def expected_layout(values, dst, pos, new_counts, offsets, nprocs):
    """Directly scatter per-row ``values`` into the target layout."""
    out = []
    for r in range(nprocs):
        rows = np.flatnonzero(dst == r)
        block = np.empty((int(new_counts[r]),) + values.shape[1:], values.dtype)
        block[pos[rows]] = values[rows]
        out.append(block)
    return out


class TestFusedExchange:
    @settings(max_examples=25, deadline=None)
    @given(
        nprocs=st.integers(min_value=1, max_value=6),
        total=st.integers(min_value=0, max_value=80),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_fused_mixed_dtypes_match_ground_truth(self, nprocs, total, seed):
        """One fused exchange of mixed-dtype columns lands every row exactly
        where the resort indices say, byte for byte."""
        indices, old_counts, new_counts, dst, pos, offsets = random_redistribution(
            nprocs, total, seed
        )
        machine = Machine(nprocs)
        plan = ResortPlan(machine, indices, old_counts, new_counts)

        rng = np.random.default_rng(seed + 1)
        floats = rng.normal(size=(total, 3))
        ints = rng.integers(-(2**40), 2**40, total)
        bytes_ = rng.integers(0, 256, (total, 5)).astype(np.uint8)
        f32 = rng.normal(size=total).astype(np.float32)

        def split(values):
            return [values[offsets[r]:offsets[r + 1]] for r in range(nprocs)]

        out = plan.execute([split(floats), split(ints), split(bytes_), split(f32)])
        for values, got in zip((floats, ints, bytes_, f32), out):
            want = expected_layout(values, dst, pos, new_counts, offsets, nprocs)
            assert all(g.dtype == values.dtype for g in got)
            for r in range(nprocs):
                np.testing.assert_array_equal(got[r], want[r])

    @settings(max_examples=15, deadline=None)
    @given(
        nprocs=st.integers(min_value=1, max_value=6),
        total=st.integers(min_value=0, max_value=60),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_fused_equals_sequential_per_column(self, nprocs, total, seed):
        """Fusing k columns into one exchange is byte-for-byte identical to
        k sequential single-column executions of the same plan."""
        indices, old_counts, new_counts, _, _, offsets = random_redistribution(
            nprocs, total, seed
        )
        machine = Machine(nprocs)
        plan = ResortPlan(machine, indices, old_counts, new_counts)

        rng = np.random.default_rng(seed + 2)
        cols = [
            [rng.normal(size=(int(c), 2)) for c in old_counts],
            [rng.integers(0, 2**31, int(c)) for c in old_counts],
        ]
        fused = plan.execute(cols)
        sequential = [plan.execute([col])[0] for col in cols]
        for got, want in zip(fused, sequential):
            for r in range(nprocs):
                np.testing.assert_array_equal(got[r], want[r])

    def test_fused_exchange_message_count(self):
        """A fused execute costs one exchange round: its traced resort-phase
        message count equals one single-column execute's, regardless of how
        many columns ride along."""
        indices, old_counts, new_counts, _, _, _ = random_redistribution(4, 60, 9)
        m1, m2 = Machine(4), Machine(4)
        plan1 = ResortPlan(m1, indices, old_counts, new_counts)
        plan2 = ResortPlan(m2, indices, old_counts, new_counts)
        one = [[np.zeros(int(c)) for c in old_counts]]
        three = one + [
            [np.zeros((int(c), 3)) for c in old_counts],
            [np.zeros(int(c), dtype=np.int64) for c in old_counts],
        ]
        plan1.execute(one)
        plan2.execute(three)
        assert m1.trace.get("resort").messages == m2.trace.get("resort").messages

    def test_validation_errors(self):
        indices, old_counts, new_counts, _, _, _ = random_redistribution(3, 20, 5)
        machine = Machine(3)
        with pytest.raises(ValueError, match="original particles"):
            ResortPlan(machine, indices, np.asarray(old_counts) + 1, new_counts)
        # duplicate a target position within one destination (counts still
        # balance, but the targets no longer form a permutation)
        dup = pack_resort_index(
            np.zeros(4, dtype=np.int64), np.array([0, 0, 2, 3], dtype=np.int64)
        )
        empty = np.empty(0, dtype=np.int64)
        with pytest.raises(ValueError, match="not a permutation"):
            ResortPlan(Machine(3), [dup, empty, empty], [4, 0, 0], [4, 0, 0])
        plan = ResortPlan(Machine(3), indices, old_counts, new_counts)
        with pytest.raises(ValueError, match="original particle count"):
            plan.execute([[np.zeros(int(c) + 1) for c in old_counts]])
        with pytest.raises(ValueError, match="at least one data column"):
            plan.execute([])
        mixed = [np.zeros(int(c), dtype=np.float64) for c in old_counts]
        mixed[-1] = mixed[-1].astype(np.float32)
        with pytest.raises(ValueError, match="dtype"):
            plan.execute([mixed])


class TestPlanCache:
    def test_matches_and_invalidation(self):
        indices, old_counts, new_counts, _, _, _ = random_redistribution(4, 40, 3)
        plan = ResortPlan(Machine(4), indices, old_counts, new_counts)
        # identity fast path and equal-content copies both hit
        assert plan.matches(indices)
        assert plan.matches([idx.copy() for idx in indices])
        assert plan.matches(indices, old_counts, new_counts, comm="alltoall")
        # any change to the distribution invalidates
        assert not plan.matches(indices, comm="neighborhood")
        changed = [idx.copy() for idx in indices]
        nonempty = next(r for r in range(4) if changed[r].size)
        changed[nonempty] = changed[nonempty][::-1].copy()
        if not np.array_equal(changed[nonempty], indices[nonempty]):
            assert not plan.matches(changed)

    def test_fcs_caches_across_calls_and_steps(self, small_system):
        machine = Machine(4)
        pset, _ = random_particle_set(small_system, 4, seed=2)
        fcs = fcs_init("fmm", machine, order=3, depth=3, lattice_shells=2)
        fcs.set_common(box=small_system.box, offset=small_system.offset, periodic=True)
        fcs.set_resort(True)
        fcs.tune(pset)
        fcs.run(pset)
        plan = fcs.resort_plan()
        assert fcs.resort_plan() is plan  # repeated request within a step
        # the method-B run replaced the application layout with the solver
        # layout, so the *next* run resorts from there: new indices, one
        # recompile — after which unmoved particles keep producing the same
        # indices and the plan survives the time steps
        fcs.run(pset)
        second = fcs.resort_plan()
        fcs.run(pset)
        assert fcs.resort_plan() is second
        stats = fcs.plan_stats
        assert stats.compiles == 2
        assert stats.cache_hits == 2
        assert stats.hit_rate == pytest.approx(0.5)
        assert machine.trace.counter("resort_plan.compiles") == 2
        assert machine.trace.counter("resort_plan.cache_hits") == 2

    def test_stale_explicit_plan_rejected(self, small_system):
        machine = Machine(4)
        pset, _ = random_particle_set(small_system, 4, seed=2)
        fcs = fcs_init("fmm", machine, order=3, depth=3, lattice_shells=2)
        fcs.set_common(box=small_system.box, offset=small_system.offset, periodic=True)
        fcs.set_resort(True)
        fcs.tune(pset)
        report = fcs.run(pset)
        # a plan compiled for a *different* redistribution of the same shape
        old_counts = [int(c) for c in report.old_counts]
        other_indices, oc, nc, _, _, _ = random_redistribution(
            4, int(sum(old_counts)), 77
        )
        if [int(c) for c in oc] != old_counts or not ResortPlan(
            Machine(4), other_indices, oc, nc
        ).matches(report.resort_indices, report.old_counts, report.new_counts):
            stale = ResortPlan(Machine(4), other_indices, oc, nc)
            data = [np.zeros((n, 3)) for n in old_counts]
            with pytest.raises((ValueError, RuntimeError), match="stale resort plan"):
                fcs.resort(data, plan=stale)

    def test_recompiles_when_distribution_changes(self, small_system):
        machine = Machine(4)
        pset, _ = random_particle_set(small_system, 4, seed=2)
        fcs = fcs_init("fmm", machine, order=3, depth=3, lattice_shells=2)
        fcs.set_common(box=small_system.box, offset=small_system.offset, periodic=True)
        fcs.set_resort(True)
        fcs.tune(pset)
        fcs.run(pset)
        first = fcs.resort_plan()
        # move the particles so the space-filling-curve partition changes
        rng = np.random.default_rng(11)
        pset.pos = [
            np.mod(p + rng.uniform(2.0, 6.0, p.shape), small_system.box)
            for p in pset.pos
        ]
        fcs.run(pset)
        second = fcs.resort_plan()
        if not first.matches(
            fcs.last_report.resort_indices,
            fcs.last_report.old_counts,
            fcs.last_report.new_counts,
        ):
            assert second is not first
            assert fcs.plan_stats.compiles == 2


class TestAuditedPlan:
    def test_plan_ledger_balances_against_audited_exchange(self):
        indices, old_counts, new_counts, _, _, _ = random_redistribution(4, 64, 13)
        machine = Machine(4)
        auditor = enable_auditing(machine)
        plan = ResortPlan(machine, indices, old_counts, new_counts)
        cols = [
            [np.random.default_rng(r).normal(size=(int(c), 3)) for r, c in enumerate(old_counts)],
            [np.arange(int(c), dtype=np.int64) for c in old_counts],
        ]
        plan.execute(cols)
        plan.execute(cols)
        assert auditor.n_plan_compiles == 1
        assert auditor.n_plan_executions == 2
        assert auditor.n_plan_fused_columns == 4
        planned = auditor.plan_ledger["resort"]
        audited = auditor.ledger["resort"]
        # the audited exchange is recomputed independently from the raw send
        # tables; the plan's self-reported traffic must never exceed it
        assert planned.messages <= audited.messages
        assert planned.bytes <= audited.bytes
        assert planned.bytes == plan.stats.bytes_moved
        # and the compile exchange is accounted under its own phase
        assert "resort_plan" in auditor.ledger

    def test_auditor_validates_plan_exchanges(self):
        """The fused exchange still passes the auditor's full alltoallv
        checks (count symmetry, completeness) even though the count
        exchange itself is skipped."""
        indices, old_counts, new_counts, _, _, _ = random_redistribution(6, 90, 21)
        machine = Machine(6)
        enable_auditing(machine, strict=True)
        plan = ResortPlan(machine, indices, old_counts, new_counts)
        out = plan.execute([[np.full(int(c), r, dtype=np.int32) for r, c in enumerate(old_counts)]])
        assert sum(a.shape[0] for a in out[0]) == int(sum(old_counts))


def redistribution_with_empty_ranks(nprocs, total, seed):
    """A resort problem confined to half the ranks: the rest hold zero
    particles before *and* after — the empty-rank edge case a straggler
    perturbation must not be able to smear into the data plane."""
    rng = np.random.default_rng(seed)
    active = np.sort(rng.choice(nprocs, size=max(1, nprocs // 2), replace=False))
    src = np.sort(rng.choice(active, size=total))
    old_counts = np.bincount(src, minlength=nprocs)
    dst = rng.choice(active, size=total)
    new_counts = np.bincount(dst, minlength=nprocs)
    pos = np.empty(total, dtype=np.int64)
    for r in range(nprocs):
        where = np.flatnonzero(dst == r)
        pos[where] = rng.permutation(where.size)
    offsets = np.concatenate(([0], np.cumsum(old_counts)))
    indices = [
        pack_resort_index(dst[offsets[r]:offsets[r + 1]], pos[offsets[r]:offsets[r + 1]])
        for r in range(nprocs)
    ]
    return indices, old_counts, new_counts, dst, pos, offsets


class TestPerturbedPlan:
    """ResortPlan with empty ranks while a straggler perturbation is active.

    A perturbation skews clocks, never data: the compiled plan's cached
    counts, the delivered layout and the plan/audit ledgers must be
    identical with and without the perturbation.
    """

    NPROCS = 6
    PERTURBATION = Perturbation(
        seed=11,
        compute_jitter=0.25,
        straggler_fraction=0.5,
        straggler_slowdown=6.0,
    )

    def _run(self, perturbation):
        indices, old_counts, new_counts, dst, pos, offsets = (
            redistribution_with_empty_ranks(self.NPROCS, 48, seed=33)
        )
        machine = Machine(self.NPROCS, perturbation=perturbation)
        auditor = enable_auditing(machine)
        plan = ResortPlan(machine, indices, old_counts, new_counts)
        rng = np.random.default_rng(7)
        total = int(sum(old_counts))
        floats = rng.normal(size=(total, 3))
        ints = rng.integers(0, 2**31, total)
        cols = [
            [v[offsets[r]:offsets[r + 1]] for r in range(self.NPROCS)]
            for v in (floats, ints)
        ]
        out = plan.execute(cols)
        return machine, auditor, plan, out, (floats, ints, dst, pos, offsets, new_counts)

    def test_empty_ranks_balance_under_straggler_perturbation(self):
        machine, auditor, plan, out, ground = self._run(self.PERTURBATION)
        floats, ints, dst, pos, offsets, new_counts = ground
        assert int((np.asarray(plan.old_counts) == 0).sum()) >= self.NPROCS // 2
        assert int((np.asarray(plan.new_counts) == 0).sum()) >= self.NPROCS // 2
        for values, got in zip((floats, ints), out):
            want = expected_layout(
                values, dst, pos, new_counts, offsets, self.NPROCS
            )
            for r in range(self.NPROCS):
                np.testing.assert_array_equal(got[r], want[r])
        # plan ledger balances against the independently audited exchange
        planned = auditor.plan_ledger["resort"]
        audited = auditor.ledger["resort"]
        assert planned.messages <= audited.messages
        assert planned.bytes <= audited.bytes
        assert planned.bytes == plan.stats.bytes_moved

    def test_perturbation_moves_clocks_not_data(self):
        plain = self._run(None)
        perturbed = self._run(self.PERTURBATION)
        # cached counts and delivered layouts are byte-identical
        assert perturbed[2].old_counts == plain[2].old_counts
        assert perturbed[2].new_counts == plain[2].new_counts
        for col_plain, col_pert in zip(plain[3], perturbed[3]):
            for a, b in zip(col_plain, col_pert):
                np.testing.assert_array_equal(a, b)
        # ledgers are data-plane: identical across the perturbation
        for phase in ("resort", "resort_plan"):
            lp, lq = plain[1].ledger[phase], perturbed[1].ledger[phase]
            assert (lp.messages, lp.bytes) == (lq.messages, lq.bytes)
        # but the straggler really did slow the virtual machine down
        assert perturbed[0].elapsed() > plain[0].elapsed()


class TestSimulationIntegration:
    def _run(self, fuse, steps=3):
        from repro.md.simulation import Simulation, SimulationConfig
        from repro.md.systems import silica_melt_system
        from repro.verify import InvariantChecker

        machine = Machine(4)
        sim = Simulation(
            machine,
            silica_melt_system(48, seed=5),
            SimulationConfig(
                solver="fmm", method="B", distribution="random", seed=5,
                fuse_resort=fuse,
                solver_kwargs={"order": 3, "depth": 3, "lattice_shells": 2},
            ),
        )
        auditor = enable_auditing(machine)
        checker = InvariantChecker(sim)
        sim.run(steps)
        checker.assert_ok()
        return sim, auditor

    def test_fused_and_per_column_trajectories_agree(self):
        fused, aud_fused = self._run(fuse=True)
        split, aud_split = self._run(fuse=False)
        a, b = fused.gather_state(), split.gather_state()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])
        # same plans either way; fusion only collapses the exchange count
        assert aud_fused.n_plan_executions < aud_split.n_plan_executions
        assert aud_fused.n_plan_fused_columns == aud_split.n_plan_fused_columns
        planned = aud_fused.plan_ledger["resort"]
        audited = aud_fused.ledger["resort"]
        assert planned.messages <= audited.messages
        assert planned.bytes <= audited.bytes


class TestHandleAPI:
    def test_fcs_init_accepts_solver_instance(self, small_system):
        machine = Machine(4)
        solver = FMMSolver(machine, order=3, depth=3, lattice_shells=2)
        fcs = fcs_init(solver, machine)
        assert fcs.solver is solver
        assert fcs.method == "fmm"
        with pytest.raises(TypeError, match="already constructed"):
            fcs_init(solver, machine, order=5)
        with pytest.raises(ValueError, match="different machine"):
            fcs_init(solver, Machine(4))

    def test_set_common_is_fully_keyword_only(self, small_system):
        fcs = fcs_init("fmm", Machine(4))
        with pytest.raises(TypeError):
            fcs.set_common(small_system.box)
        with pytest.raises(TypeError):
            fcs.set_common(small_system.box, offset=small_system.offset)
        with pytest.raises(TypeError):
            Solver(Machine(2)).set_common(small_system.box)

    def test_set_common_validates_arguments(self, small_system):
        fcs = fcs_init("fmm", Machine(4))
        with pytest.raises(ValueError, match="3-vectors"):
            fcs.set_common(box=(1.0, 2.0))
        with pytest.raises(ValueError, match="positive"):
            fcs.set_common(box=(1.0, -2.0, 3.0))
        with pytest.raises(ValueError, match="finite"):
            fcs.set_common(box=(1.0, float("nan"), 3.0))
        with pytest.raises(ValueError, match="finite"):
            fcs.set_common(box=small_system.box, offset=(0.0, float("inf"), 0.0))

    def test_resort_rejects_data_pair_without_plan(self, small_system):
        fcs = fcs_init("fmm", Machine(4))
        with pytest.raises(TypeError, match="ResortPlan"):
            fcs.resort([np.zeros(3)], [np.zeros(3)])

    def test_runreport_comm_is_structured(self, small_system):
        from repro.solvers.base import RunReport

        with pytest.raises(ValueError, match="comm must be one of"):
            RunReport(changed=False, comm="grid+neighborhood")
        machine = Machine(4)
        pset, _ = random_particle_set(small_system, 4, seed=2)
        fcs = fcs_init("p2nfft", machine, cutoff=4.0)
        fcs.set_common(box=small_system.box, periodic=True)
        fcs.set_resort(True)
        fcs.tune(pset)
        fcs.set_max_particle_move(0.01)
        report = fcs.run(pset)
        assert report.comm in ("alltoall", "neighborhood")
        if report.strategy.endswith("neighborhood"):
            assert report.comm == "neighborhood"
