"""Unit tests of the staged collective-algorithm engines (repro.simmpi.algos).

The core contract under test: every algorithm returns **bitwise-identical**
recv payloads to the direct path — only modeled clocks and per-phase
message/byte totals differ — and its staged rounds balance exactly against
its self-reported plan in the auditor (the ``collective-algo-accounting``
invariant).  Message counts are also pinned to the closed forms the
textbook algorithms promise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simmpi import JUQUEEN, JUROPA, Machine, Perturbation
from repro.simmpi.algos import ALGO_CHOICES, CollectiveAlgos, parse_algos, resolve
from repro.simmpi.collectives import (
    allgatherv,
    allreduce,
    alltoallv,
    bcast,
    gatherv,
    scatterv,
)
from repro.verify.audit import enable_auditing


def dense_sends(P, seed=0, n=6):
    rng = np.random.default_rng(seed)
    return [
        {j: rng.standard_normal(n) for j in range(P) if j != i} for i in range(P)
    ]


def sparse_sends(P, seed=0):
    """Mixed-kind sparse traffic: arrays, tuples, empties, self-sends."""
    rng = np.random.default_rng(seed)
    sends = []
    for i in range(P):
        targets = {}
        for j in range(P):
            if rng.random() < 0.5:
                continue
            k = int(rng.integers(0, 3))
            m = int(rng.integers(0, 4))
            if k == 0:
                targets[j] = rng.standard_normal(m)
            elif k == 1:
                targets[j] = (rng.standard_normal(m), rng.integers(0, 9, m))
            else:
                targets[j] = rng.standard_normal((m, 3))
        sends.append(targets)
    return sends


def recv_fingerprint(recv):
    out = []
    for lst in recv:
        row = []
        for src, p in lst:
            if isinstance(p, np.ndarray):
                row.append((src, p.dtype.str, p.shape, p.tobytes()))
            else:
                row.append(
                    (src, type(p).__name__)
                    + tuple((c.dtype.str, c.shape, c.tobytes()) for c in p)
                )
        out.append(tuple(row))
    return out


# ------------------------------------------------------------- spec grammar


class TestParseAlgos:
    def test_none_and_direct_mean_default(self):
        assert parse_algos(None) is None
        assert parse_algos("direct") is None
        assert parse_algos("alltoallv=direct") is None

    def test_bare_name_applies_to_every_supporting_collective(self):
        algos = parse_algos("binomial-tree")
        assert algos.allreduce == "binomial-tree"
        assert algos.bcast == "binomial-tree"
        assert algos.gatherv == "binomial-tree"
        assert algos.scatterv == "binomial-tree"
        assert algos.alltoallv == "direct"

    def test_explicit_items_combine(self):
        algos = parse_algos("alltoallv=bruck+allgatherv=ring")
        assert algos.alltoallv == "bruck"
        assert algos.allgatherv == "ring"
        assert algos.allreduce == "direct"

    def test_spec_roundtrip(self):
        spec = "allgatherv=ring+alltoallv=pairwise"
        assert parse_algos(spec).spec == spec
        assert CollectiveAlgos().spec == "direct"

    @pytest.mark.parametrize(
        "bad",
        ["bogus", "alltoallv=ring", "alltoallv=bruck+alltoallv=pairwise", "++", "x="],
    )
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            parse_algos(bad)

    def test_all_choices_accepted(self):
        for collective, names in ALGO_CHOICES.items():
            for name in names:
                parse_algos(f"{collective}={name}")


# ----------------------------------------------------- bitwise data identity


@pytest.mark.parametrize("P", [2, 3, 4, 6, 8])
@pytest.mark.parametrize("algo", ["pairwise", "bruck"])
def test_alltoallv_engines_bitwise_identical(P, algo):
    sends = sparse_sends(P, seed=P)
    reference = recv_fingerprint(alltoallv(Machine(P, profile=JUROPA), sends, "sort"))
    machine = Machine(P, profile=JUQUEEN)
    machine.set_collective_algos(f"alltoallv={algo}")
    auditor = enable_auditing(machine)
    got = recv_fingerprint(alltoallv(machine, sends, "sort"))
    assert got == reference
    auditor.assert_quiescent()


@pytest.mark.parametrize("P", [2, 3, 4, 5, 8])
@pytest.mark.parametrize("algo", ["ring", "recursive-doubling"])
def test_allgatherv_engines_bitwise_identical(P, algo):
    rng = np.random.default_rng(P)
    arrays = [rng.standard_normal(int(rng.integers(0, 5))) for _ in range(P)]
    reference = allgatherv(Machine(P, profile=JUROPA), arrays, "gather")
    machine = Machine(P, profile=JUROPA)
    machine.set_collective_algos(f"allgatherv={algo}")
    got = allgatherv(machine, arrays, "gather")
    for ref, arr in zip(reference, got):
        assert ref.tobytes() == arr.tobytes()


@pytest.mark.parametrize("P", [2, 4, 7, 8])
@pytest.mark.parametrize("algo", ["binomial-tree", "recursive-halving-doubling"])
@pytest.mark.parametrize("op", ["sum", "max", "min"])
def test_allreduce_engines_bitwise_identical(P, algo, op):
    rng = np.random.default_rng(P)
    values = [rng.standard_normal(5) for _ in range(P)]
    reference = allreduce(Machine(P, profile=JUROPA), values, op=op, phase="tune")
    machine = Machine(P, profile=JUROPA)
    machine.set_collective_algos(f"allreduce={algo}")
    got = allreduce(machine, values, op=op, phase="tune")
    assert np.asarray(reference).tobytes() == np.asarray(got).tobytes()


@pytest.mark.parametrize("P", [2, 3, 6, 8])
@pytest.mark.parametrize("root", [0, -1])
def test_rooted_tree_engines_bitwise_identical(P, root):
    root = root % P
    rng = np.random.default_rng(P)
    arrays = [rng.standard_normal(int(rng.integers(1, 4))) for _ in range(P)]

    def run(machine):
        return (
            bcast(machine, arrays[0], root=root, phase="sort"),
            gatherv(machine, arrays, root=root, phase="gather"),
            scatterv(machine, arrays, root=root, phase="sort"),
        )

    ref_b, ref_g, ref_s = run(Machine(P, profile=JUQUEEN))
    machine = Machine(P, profile=JUQUEEN)
    machine.set_collective_algos("binomial-tree")
    got_b, got_g, got_s = run(machine)
    for ref, got in ((ref_b, got_b), (ref_g, got_g), (ref_s, got_s)):
        assert [np.asarray(r).tobytes() for r in ref] == [
            np.asarray(g).tobytes() for g in got
        ]


def test_single_rank_machines_never_stage(ALGOS="bruck+binomial-tree"):
    machine = Machine(1)
    machine.set_collective_algos(ALGOS)
    auditor = enable_auditing(machine)
    alltoallv(machine, [{0: np.arange(3.0)}], "sort")
    allreduce(machine, [2.0], phase="tune")
    assert not auditor.algo_ledger and not auditor.algo_counts


# ------------------------------------------------- closed-form message counts


def staged_messages(machine, auditor, phase):
    led = auditor.algo_round_ledger[phase]
    assert led.messages == auditor.algo_ledger[phase].messages
    assert led.bytes == auditor.algo_ledger[phase].bytes
    return led.messages


@pytest.mark.parametrize("P", [4, 6, 8])
def test_pairwise_message_count_is_nonself_pairs(P):
    sends = sparse_sends(P, seed=3 * P)
    machine = Machine(P, profile=JUROPA)
    machine.set_collective_algos("alltoallv=pairwise")
    auditor = enable_auditing(machine)
    alltoallv(machine, sends, "sort")
    expected = sum(1 for i, t in enumerate(sends) for j in t if j != i)
    assert staged_messages(machine, auditor, "sort") == expected


@pytest.mark.parametrize("P", [2, 4, 8])
def test_bruck_dense_message_count_is_p_log_p(P):
    machine = Machine(P, profile=JUROPA)
    machine.set_collective_algos("alltoallv=bruck")
    auditor = enable_auditing(machine)
    alltoallv(machine, dense_sends(P), "sort")
    assert staged_messages(machine, auditor, "sort") == P * int(np.ceil(np.log2(P)))


@pytest.mark.parametrize("P", [3, 4, 8])
def test_allgatherv_message_counts(P):
    rng = np.random.default_rng(0)
    arrays = [rng.standard_normal(2) for _ in range(P)]
    machine = Machine(P, profile=JUROPA)
    machine.set_collective_algos("allgatherv=ring")
    auditor = enable_auditing(machine)
    allgatherv(machine, arrays, "gather")
    assert staged_messages(machine, auditor, "gather") == P * (P - 1)

    machine = Machine(P, profile=JUROPA)
    machine.set_collective_algos("allgatherv=recursive-doubling")
    auditor = enable_auditing(machine)
    allgatherv(machine, arrays, "gather")
    assert (
        staged_messages(machine, auditor, "gather")
        == P * int(np.ceil(np.log2(P)))
    )


@pytest.mark.parametrize("P", [2, 4, 8])
def test_allreduce_message_counts(P):
    values = [float(i) for i in range(P)]
    machine = Machine(P, profile=JUROPA)
    machine.set_collective_algos("allreduce=binomial-tree")
    auditor = enable_auditing(machine)
    allreduce(machine, values, phase="tune")
    assert staged_messages(machine, auditor, "tune") == 2 * (P - 1)

    machine = Machine(P, profile=JUROPA)
    machine.set_collective_algos("allreduce=recursive-halving-doubling")
    auditor = enable_auditing(machine)
    allreduce(machine, values, phase="tune")
    assert staged_messages(machine, auditor, "tune") == 2 * P * int(np.log2(P))


@pytest.mark.parametrize("P", [2, 5, 8])
def test_rooted_tree_message_counts(P):
    arrays = [np.arange(2.0) + i for i in range(P)]
    for collective, run in (
        ("bcast", lambda m: bcast(m, arrays[0], root=1 % P, phase="sort")),
        ("gatherv", lambda m: gatherv(m, arrays, root=1 % P, phase="gather")),
        ("scatterv", lambda m: scatterv(m, arrays, root=1 % P, phase="sort")),
    ):
        machine = Machine(P, profile=JUROPA)
        machine.set_collective_algos(f"{collective}=binomial-tree")
        auditor = enable_auditing(machine)
        run(machine)
        phase = "gather" if collective == "gatherv" else "sort"
        assert staged_messages(machine, auditor, phase) == P - 1, collective


def test_rhd_falls_back_to_binomial_on_non_power_of_two():
    machine = Machine(6, profile=JUROPA)
    machine.set_collective_algos("allreduce=recursive-halving-doubling")
    auditor = enable_auditing(machine)
    allreduce(machine, [float(i) for i in range(6)], phase="tune")
    assert auditor.algo_counts == {"allreduce/binomial-tree": 1}
    assert staged_messages(machine, auditor, "tune") == 2 * 5


# ------------------------------------------------------------ auto selection


def test_auto_selection_is_perturbation_independent():
    sends = dense_sends(8, n=4)
    chosen = []
    for perturbation in (None, Perturbation.sample(3), Perturbation.sample(9)):
        machine = Machine(8, profile=JUQUEEN, perturbation=perturbation)
        machine.set_collective_algos("auto")
        auditor = enable_auditing(machine)
        alltoallv(machine, sends, "sort")
        allreduce(machine, [float(i) for i in range(8)], phase="tune")
        chosen.append(dict(auditor.algo_counts))
    assert chosen[0] == chosen[1] == chosen[2]


def test_auto_prefers_bruck_small_and_avoids_it_large():
    machine = Machine(32, profile=JUROPA)
    small = [
        {j: np.zeros(2) for j in range(32) if j != i} for i in range(32)
    ]
    large = [
        {j: np.zeros(8192) for j in range(32) if j != i} for i in range(32)
    ]
    assert resolve(machine, "alltoallv", "auto", sends=small) == "bruck"
    assert resolve(machine, "alltoallv", "auto", sends=large) != "bruck"


def test_auto_records_direct_choice_without_algo_ledger():
    # a resolved-direct auto call must fall through to the closed-form
    # charging path: choice counted, no staged plan to balance
    machine = Machine(8, profile=JUROPA)
    machine.set_collective_algos("alltoallv=auto")
    auditor = enable_auditing(machine)
    big = [{j: np.zeros(65536) for j in range(8) if j != i} for i in range(8)]
    resolved = resolve(machine, "alltoallv", "auto", sends=big)
    alltoallv(machine, big, "sort")
    assert auditor.algo_counts == {f"alltoallv/{resolved}": 1}
    if resolved == "direct":
        assert "sort" not in auditor.algo_ledger


# ------------------------------------------------- satellite 1: int allreduce


def test_allreduce_int_sum_is_exact_above_2_53():
    # pre-fix, the float64 working dtype rounded 2**53 + small away
    P = 4
    machine = Machine(P)
    values = [np.int64(2**53 + i) for i in range(P)]
    result = allreduce(machine, values, op="sum", phase="tune")
    assert result == sum(2**53 + i for i in range(P))
    assert np.asarray(result).dtype.kind == "i"


def test_allreduce_int_arrays_preserve_dtype():
    machine = Machine(3)
    values = [np.array([1, 2**40, -7], dtype=np.int64) * (i + 1) for i in range(3)]
    result = allreduce(machine, values, op="sum", phase="tune")
    assert result.dtype == np.int64
    np.testing.assert_array_equal(result, values[0] + values[1] + values[2])


def test_allreduce_int_exact_under_staged_engines():
    P = 4
    expected = sum(2**53 + i for i in range(P))
    for algo in ("binomial-tree", "recursive-halving-doubling"):
        machine = Machine(P)
        machine.set_collective_algos(f"allreduce={algo}")
        values = [np.int64(2**53 + i) for i in range(P)]
        assert allreduce(machine, values, op="sum", phase="tune") == expected


def test_allreduce_float_path_unchanged():
    machine = Machine(3)
    values = [0.1, 0.2, 0.3]
    result = allreduce(machine, values, op="sum", phase="tune")
    assert isinstance(result, float)
    assert result == float(np.sum(np.asarray(values, dtype=np.float64), axis=0))


# ------------------------------------- satellite 2: uniform send validation


@pytest.mark.parametrize("bad_dst", [-1, 4, 99])
def test_alltoallv_rejects_invalid_destination_before_charging(bad_dst):
    machine = Machine(4)
    auditor = enable_auditing(machine)
    sends = [{1: np.arange(3.0)}, {bad_dst: np.arange(2.0)}, {}, {}]
    with pytest.raises(ValueError, match=f"rank 1 sends to invalid rank {bad_dst}"):
        alltoallv(machine, sends, "sort")
    # rejected before any auditing or charging: ledger clean, clocks unmoved
    assert not auditor.ledger
    assert machine.elapsed() == 0.0
    auditor.assert_quiescent()


def test_staged_engines_reject_invalid_destination_identically():
    for algo in ("pairwise", "bruck"):
        machine = Machine(4)
        machine.set_collective_algos(f"alltoallv={algo}")
        auditor = enable_auditing(machine)
        with pytest.raises(ValueError, match="rank 0 sends to invalid rank 7"):
            alltoallv(machine, [{7: np.arange(2.0)}, {}, {}, {}], "sort")
        assert not auditor.ledger and not auditor.algo_ledger
        assert machine.elapsed() == 0.0


# ------------------------------------------------------- auditor persistence


def test_auditor_state_roundtrips_algo_ledgers():
    from repro.verify.audit import CommAuditor

    machine = Machine(4, profile=JUROPA)
    machine.set_collective_algos("alltoallv=bruck+allreduce=binomial-tree")
    auditor = enable_auditing(machine)
    alltoallv(machine, dense_sends(4), "sort")
    allreduce(machine, [1.0, 2.0, 3.0, 4.0], phase="tune")
    state = auditor.state_dict()
    assert state["algo_counts"] == {
        "alltoallv/bruck": 1,
        "allreduce/binomial-tree": 1,
    }

    other = CommAuditor(4)
    other.load_state(state)
    assert other.algo_counts == auditor.algo_counts
    assert other.n_algo_calls == auditor.n_algo_calls
    for phase in auditor.algo_ledger:
        assert other.algo_ledger[phase] == auditor.algo_ledger[phase]
        assert other.algo_round_ledger[phase] == auditor.algo_round_ledger[phase]
