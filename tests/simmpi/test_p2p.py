"""Point-to-point primitives: clock semantics of sends and exchanges."""

import numpy as np
import pytest

from repro.simmpi.machine import Machine
from repro.simmpi.p2p import exchange_pairs, send_round, sendrecv


class TestSendrecv:
    def test_advances_both(self, machine4):
        sendrecv(machine4, 0, 1, np.zeros(100), "x")
        assert machine4.clocks[0] > 0
        assert machine4.clocks[1] > machine4.clocks[0]  # receive completes after send
        assert machine4.clocks[2] == 0.0

    def test_receiver_waits_for_sender(self, machine4):
        machine4.clocks[0] = 1.0  # sender is behind schedule? no: ahead
        sendrecv(machine4, 0, 1, np.zeros(8), "x")
        assert machine4.clocks[1] > 1.0

    def test_self_send_is_copy(self, machine4):
        sendrecv(machine4, 2, 2, np.zeros(1000), "x")
        assert machine4.trace.get("x").messages == 0
        assert machine4.clocks[2] > 0

    def test_payload_returned(self, machine4):
        payload = np.arange(4)
        out = sendrecv(machine4, 0, 1, payload, "x")
        assert out is payload


class TestSendRound:
    def test_delivery(self, machine4):
        recv = send_round(
            machine4,
            [(0, 1, np.array([1.0])), (2, 1, np.array([2.0])), (3, 0, np.array([3.0]))],
            "x",
        )
        assert [src for src, _ in recv[1]] == [0, 2]
        assert recv[0][0][0] == 3
        assert machine4.trace.get("x").messages == 3

    def test_same_source_serializes(self, machine4):
        send_round(machine4, [(0, 1, np.zeros(8)), (0, 2, np.zeros(8))], "x")
        one = machine4.clocks[0]
        m2 = Machine(4)
        send_round(m2, [(0, 1, np.zeros(8))], "x")
        assert one > m2.clocks[0]


class TestExchangePairs:
    def test_swap(self, machine4):
        out = exchange_pairs(
            machine4, [(0, 1, np.array([10.0]), np.array([20.0]))], "x"
        )
        got_at_0, got_at_1 = out[(0, 1)]
        assert got_at_0[0] == 20.0
        assert got_at_1[0] == 10.0

    def test_disjointness_enforced(self, machine4):
        with pytest.raises(ValueError):
            exchange_pairs(
                machine4,
                [
                    (0, 1, np.zeros(1), np.zeros(1)),
                    (1, 2, np.zeros(1), np.zeros(1)),
                ],
                "x",
            )

    def test_self_pair_rejected(self, machine4):
        with pytest.raises(ValueError):
            exchange_pairs(machine4, [(1, 1, np.zeros(1), np.zeros(1))], "x")

    def test_overlapping_directions(self, machine4):
        """A symmetric exchange costs about one message time, not two."""
        exchange_pairs(machine4, [(0, 1, np.zeros(800), np.zeros(800))], "x")
        t_pair = machine4.elapsed()
        m2 = Machine(4)
        sendrecv(m2, 0, 1, np.zeros(800), "x")
        sendrecv(m2, 1, 0, np.zeros(800), "x")
        assert t_pair < m2.elapsed()

    def test_counts(self, machine4):
        exchange_pairs(
            machine4,
            [(0, 1, np.zeros(10), np.zeros(20)), (2, 3, np.zeros(5), np.zeros(5))],
            "x",
        )
        st = machine4.trace.get("x")
        assert st.messages == 4
        assert st.bytes == (10 + 20 + 5 + 5) * 8
