"""Cartesian process grids: dims, coords, neighbors, position ownership."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi.cart import CartGrid, dims_create


class TestDimsCreate:
    @pytest.mark.parametrize("n,expect", [(8, (2, 2, 2)), (12, (3, 2, 2)), (1, (1, 1, 1))])
    def test_known(self, n, expect):
        assert dims_create(n) == expect

    @given(st.integers(min_value=1, max_value=5000))
    @settings(max_examples=80, deadline=None)
    def test_product_exact(self, n):
        dims = dims_create(n)
        assert dims[0] * dims[1] * dims[2] == n
        assert dims[0] >= dims[1] >= dims[2]


class TestCartGrid:
    def grid(self, nprocs=8, box=(10.0, 10.0, 10.0)):
        return CartGrid(nprocs, box)

    def test_rank_coords_roundtrip(self):
        g = self.grid(27)
        ranks = np.arange(27)
        np.testing.assert_array_equal(g.rank_of(g.coords_of(ranks)), ranks)

    def test_rank_of_positions(self):
        g = self.grid(8)
        # position in the first octant belongs to rank of cell (0,0,0)
        assert g.rank_of_positions(np.array([[1.0, 1.0, 1.0]]))[0] == 0
        assert g.rank_of_positions(np.array([[9.0, 9.0, 9.0]]))[0] == 7

    def test_positions_wrap(self):
        g = self.grid(8)
        r1 = g.rank_of_positions(np.array([[11.0, 1.0, 1.0]]))
        r2 = g.rank_of_positions(np.array([[1.0, 1.0, 1.0]]))
        assert r1[0] == r2[0]

    def test_every_position_owned_once(self, rng):
        g = self.grid(27)
        pos = rng.uniform(0, 10, (500, 3))
        owners = g.rank_of_positions(pos)
        assert owners.min() >= 0 and owners.max() < 27
        # ownership respects subdomain bounds
        for r in range(27):
            lo, hi = g.subdomain_bounds(r)
            mine = pos[owners == r]
            assert np.all(mine >= lo - 1e-12) and np.all(mine < hi + 1e-12)

    def test_neighbors_26(self):
        g = self.grid(64)
        nb = g.neighbor_ranks(0)
        assert len(nb) == 26
        assert 0 not in nb

    def test_neighbors_small_grid_dedup(self):
        g = self.grid(8)  # 2x2x2: every other rank is a neighbor
        nb = g.neighbor_ranks(0)
        assert set(nb.tolist()) == set(range(1, 8))

    def test_neighbors_include_self(self):
        g = self.grid(27)
        nb = g.neighbor_ranks(13, include_self=True)
        assert 13 in nb

    def test_neighbor_symmetry(self):
        g = self.grid(27)
        for r in (0, 5, 13):
            for nb in g.neighbor_ranks(r):
                assert r in g.neighbor_ranks(int(nb))

    def test_max_neighbor_extent(self):
        g = CartGrid(8, (10.0, 20.0, 30.0))
        assert g.max_neighbor_extent() == pytest.approx(min(g.cell))

    def test_dims_mismatch(self):
        with pytest.raises(ValueError):
            CartGrid(8, (10.0, 10.0, 10.0), dims=(2, 2, 3))

    def test_bad_box(self):
        with pytest.raises(ValueError):
            CartGrid(8, (0.0, 10.0, 10.0))
