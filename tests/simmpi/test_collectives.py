"""Collective primitives: data-plane correctness and cost accounting."""

import numpy as np
import pytest

from repro.simmpi.collectives import (
    allgather_scalars,
    allgatherv,
    allreduce,
    alltoallv,
    bcast,
    gatherv,
    neighborhood_alltoallv,
    payload_nbytes,
    scatterv,
)
from repro.simmpi.machine import Machine


class TestPayloadNbytes:
    def test_array(self):
        assert payload_nbytes(np.zeros(10)) == 80

    def test_tuple(self):
        assert payload_nbytes((np.zeros(10), np.zeros((5, 3)))) == 80 + 120

    def test_none(self):
        assert payload_nbytes(None) == 0

    def test_bad_type(self):
        with pytest.raises(TypeError):
            payload_nbytes("nope")


class TestAlltoallv:
    def test_delivery(self, machine4):
        sends = [
            {1: np.array([10.0]), 2: np.array([20.0])},
            {0: np.array([1.0])},
            {},
            {0: np.array([3.0]), 3: np.array([33.0])},
        ]
        recv = alltoallv(machine4, sends, "x")
        assert [src for src, _ in recv[0]] == [1, 3]
        assert recv[0][0][1][0] == 1.0
        assert recv[0][1][1][0] == 3.0
        assert [src for src, _ in recv[1]] == [0]
        assert [src for src, _ in recv[2]] == [0]
        assert recv[2][0][1][0] == 20.0
        assert recv[3][0][1][0] == 33.0

    def test_source_order_sorted(self, machine8):
        sends = [{} for _ in range(8)]
        for src in (5, 2, 7, 0):
            sends[src] = {3: np.array([float(src)])}
        recv = alltoallv(machine8, sends, "x")
        assert [src for src, _ in recv[3]] == [0, 2, 5, 7]

    def test_advances_clock_and_counts(self, machine4):
        sends = [{(r + 1) % 4: np.zeros(100)} for r in range(4)]
        alltoallv(machine4, sends, "x")
        st = machine4.trace.get("x")
        assert machine4.elapsed() > 0
        assert st.messages == 4
        assert st.bytes == 4 * 800

    def test_self_send_free_bytes(self, machine4):
        sends = [{0: np.zeros(100)}, {}, {}, {}]
        alltoallv(machine4, sends, "x")
        assert machine4.trace.get("x").messages == 0
        assert machine4.trace.get("x").bytes == 0

    def test_invalid_target(self, machine4):
        with pytest.raises(ValueError):
            alltoallv(machine4, [{7: np.zeros(1)}, {}, {}, {}], "x")

    def test_wrong_length(self, machine4):
        with pytest.raises(ValueError):
            alltoallv(machine4, [{}], "x")

    def test_neighborhood_cheaper_than_dense(self):
        """The dense count exchange makes the general alltoall pay more for
        the same payload (the Sect. III-B optimization)."""
        sends = [{(r + 1) % 64: np.zeros(16)} for r in range(64)]
        m1 = Machine(64)
        alltoallv(m1, [dict(s) for s in sends], "x")
        m2 = Machine(64)
        neighborhood_alltoallv(m2, [dict(s) for s in sends], "x")
        assert m2.elapsed() < m1.elapsed()

    def test_congestion_superlinear(self):
        """Per-rank time grows faster than linearly with fan-out."""
        def fan(m, k):
            sends = [{} for _ in range(m.nprocs)]
            for dst in range(1, k + 1):
                sends[0][dst] = np.zeros(8)
            t0 = m.elapsed()
            alltoallv(m, sends, "x", count_exchange="sparse")
            return m.elapsed() - t0

        m = Machine(256)
        t8 = fan(m, 8)
        t128 = fan(m, 128)
        assert t128 > 16 * t8 * 0.9  # superlinear in fan-out


class TestAllreduce:
    def test_sum(self, machine4):
        out = allreduce(machine4, [1.0, 2.0, 3.0, 4.0], "sum", "x")
        assert out == pytest.approx(10.0)

    def test_max_min(self, machine4):
        assert allreduce(machine4, [1.0, 5.0, 3.0, 2.0], "max") == 5.0
        assert allreduce(machine4, [1.0, 5.0, 3.0, 2.0], "min") == 1.0

    def test_arrays(self, machine4):
        vals = [np.full(3, float(r)) for r in range(4)]
        out = allreduce(machine4, vals, "sum")
        np.testing.assert_allclose(out, 6.0)

    def test_bad_op(self, machine4):
        with pytest.raises(ValueError):
            allreduce(machine4, [1.0] * 4, "prod")

    def test_charges_time(self, machine4):
        allreduce(machine4, [1.0] * 4, "sum", "x")
        assert machine4.trace.get("x").time > 0


class TestAllgather:
    def test_allgatherv(self, machine4):
        contribs = [np.full(r + 1, float(r)) for r in range(4)]
        out = allgatherv(machine4, contribs, "x")
        assert len(out) == 4
        expected = np.concatenate(contribs)
        for o in out:
            np.testing.assert_allclose(o, expected)

    def test_allgather_scalars(self, machine4):
        out = allgather_scalars(machine4, [1.0, 2.0, 3.0, 4.0], "x")
        np.testing.assert_allclose(out, [1, 2, 3, 4])

    def test_scalars_shape_check(self, machine4):
        with pytest.raises(ValueError):
            allgather_scalars(machine4, [1.0, 2.0], "x")


class TestRooted:
    def test_bcast(self, machine4):
        out = bcast(machine4, np.arange(5), root=2, phase="x")
        for o in out:
            np.testing.assert_array_equal(o, np.arange(5))

    def test_gatherv(self, machine4):
        contribs = [np.full(2, float(r)) for r in range(4)]
        out = gatherv(machine4, contribs, root=1, phase="x")
        np.testing.assert_allclose(out[1], [0, 0, 1, 1, 2, 2, 3, 3])
        assert out[0].shape[0] == 0

    def test_scatterv(self, machine4):
        parts = [np.full(3, float(r)) for r in range(4)]
        out = scatterv(machine4, parts, root=0, phase="x")
        for r in range(4):
            np.testing.assert_allclose(out[r], float(r))

    def test_scatter_root_bottleneck(self):
        """The root's serialized sends make everyone wait — the single
        process initial distribution effect of Fig. 6."""
        m_small = Machine(4)
        scatterv(m_small, [np.zeros(1000)] * 4, root=0, phase="x")
        m_big = Machine(64)
        scatterv(m_big, [np.zeros(1000)] * 64, root=0, phase="x")
        assert m_big.elapsed() > m_small.elapsed()
