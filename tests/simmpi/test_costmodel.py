"""Cost model arithmetic and monotonicity properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi.costmodel import JUQUEEN, JUROPA, LOCAL, CostModel


class TestMsgTime:
    def test_intranode_cheaper(self):
        m = CostModel()
        assert m.msg_time(0, 1000) < m.msg_time(1, 1000)

    def test_monotone_in_bytes(self):
        m = CostModel()
        assert m.msg_time(2, 2000) > m.msg_time(2, 1000)

    def test_monotone_in_hops(self):
        m = CostModel()
        assert m.msg_time(5, 100) > m.msg_time(1, 100)


class TestBruck:
    def test_zero_for_one(self):
        assert CostModel().bruck_alltoall_time(1, 8.0, 0) == 0.0

    def test_grows_superlinearly(self):
        m = CostModel()
        t = [m.bruck_alltoall_time(p, 8.0, 4) for p in (64, 1024, 16384)]
        assert t[0] < t[1] < t[2]
        # volume term makes large P disproportionately expensive
        assert t[2] / t[1] > 16384 / 1024 / 4

    def test_rounds_logarithmic(self):
        m = CostModel(bandwidth=1e30)  # isolate the latency term
        t64 = m.bruck_alltoall_time(64, 8.0, 0)
        t4096 = m.bruck_alltoall_time(4096, 8.0, 0)
        assert t4096 == pytest.approx(2 * t64)


class TestAlltoallRankTime:
    def test_congestion(self):
        m = CostModel(congestion=4.0)
        few = m.alltoall_rank_time(np.array([4]), np.array([1e3]), np.array([1e3]), 1.0)
        many = m.alltoall_rank_time(np.array([256]), np.array([1e3]), np.array([1e3]), 1.0)
        assert many[0] > 64 * few[0] * 0.5  # superlinear in targets

    def test_zero_targets_free(self):
        m = CostModel()
        t = m.alltoall_rank_time(np.array([0]), np.array([0.0]), np.array([0.0]), 1.0)
        assert t[0] == 0.0


class TestTreeCollective:
    def test_logarithmic_rounds(self):
        m = CostModel(bandwidth=1e30)
        assert m.tree_collective_time(256, 8.0, 0) == pytest.approx(
            2 * m.tree_collective_time(16, 8.0, 0)
        )

    def test_single_rank_free(self):
        assert CostModel().tree_collective_time(1, 8.0, 0) == 0.0


class TestProfiles:
    def test_juqueen_slower_cores(self):
        assert JUQUEEN.cost_model.compute_rate < JUROPA.cost_model.compute_rate

    def test_juqueen_less_congestion(self):
        # BG/Q hardware messaging: incast degradation far below a
        # commodity-MPI fat-tree cluster
        assert JUQUEEN.cost_model.congestion < JUROPA.cost_model.congestion

    def test_topology_factories(self):
        assert JUROPA.topology(64).name == "fat-tree"
        assert JUQUEEN.topology(64).name == "torus"
        assert LOCAL.topology(4).name == "switch"


@given(
    st.floats(min_value=0.0, max_value=1e9),
    st.floats(min_value=0.0, max_value=1e9),
)
@settings(max_examples=50, deadline=None)
def test_copy_time_additive(a, b):
    m = CostModel()
    assert m.copy_time(a + b) == pytest.approx(m.copy_time(a) + m.copy_time(b), rel=1e-9)
