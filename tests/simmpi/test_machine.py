"""Machine clock semantics and trace accounting."""

import numpy as np
import pytest

from repro.simmpi.costmodel import JUQUEEN, JUROPA, LOCAL, CostModel
from repro.simmpi.machine import Machine
from repro.simmpi.topology import SwitchTopology


class TestConstruction:
    def test_profile(self):
        m = Machine(16, profile=JUROPA)
        assert m.nprocs == 16
        assert m.topology.name == "fat-tree"
        assert m.profile_name == "juropa"

    def test_juqueen_torus(self):
        m = Machine(64, profile=JUQUEEN)
        assert m.topology.name == "torus"

    def test_profile_exclusive(self):
        with pytest.raises(ValueError):
            Machine(4, profile=LOCAL, topology=SwitchTopology(4))

    def test_topology_size_mismatch(self):
        with pytest.raises(ValueError):
            Machine(8, topology=SwitchTopology(4))

    def test_bad_nprocs(self):
        with pytest.raises(ValueError):
            Machine(0)


class TestClocks:
    def test_initial_zero(self, machine4):
        assert machine4.elapsed() == 0.0

    def test_advance_scalar(self, machine4):
        machine4.advance(1.5, "x")
        assert machine4.elapsed() == pytest.approx(1.5)
        assert machine4.trace.get("x").time == pytest.approx(1.5)

    def test_advance_vector_critical_path(self, machine4):
        machine4.advance(np.array([1.0, 3.0, 2.0, 0.5]), "x")
        assert machine4.elapsed() == pytest.approx(3.0)
        # trace records the max-clock increase, not the sum
        assert machine4.trace.get("x").time == pytest.approx(3.0)

    def test_synchronize(self, machine4):
        machine4.clocks[:] = [1.0, 4.0, 2.0, 3.0]
        t = machine4.synchronize()
        assert t == 4.0
        np.testing.assert_allclose(machine4.clocks, 4.0)

    def test_synchronize_subset(self, machine4):
        machine4.clocks[:] = [1.0, 4.0, 2.0, 3.0]
        machine4.synchronize([0, 2])
        np.testing.assert_allclose(machine4.clocks, [2.0, 4.0, 2.0, 3.0])

    def test_monotonic(self, machine4):
        for _ in range(10):
            before = machine4.clocks.copy()
            machine4.advance(np.random.rand(4), "w")
            assert np.all(machine4.clocks >= before)

    def test_compute_scaled_by_rate(self):
        m = Machine(2, cost_model=CostModel(compute_rate=0.5))
        m.compute(1.0, "c")
        assert m.elapsed() == pytest.approx(2.0)

    def test_reset(self, machine4):
        machine4.advance(1.0, "x")
        machine4.reset_clocks()
        assert machine4.elapsed() == 0.0
        assert machine4.trace.get("x").time == 0.0

    def test_barrier_syncs(self, machine4):
        machine4.clocks[:] = [0.0, 5.0, 1.0, 2.0]
        machine4.barrier("b")
        assert np.all(machine4.clocks == machine4.clocks[0])
        assert machine4.clocks[0] > 5.0


class TestTrace:
    def test_delta(self, machine4):
        machine4.advance(1.0, "a", messages=2, nbytes=100)
        snap = machine4.trace.snapshot()
        machine4.advance(0.5, "a", messages=1, nbytes=50)
        machine4.advance(0.2, "b")
        d = machine4.trace.delta_since(snap)
        assert d["a"].time == pytest.approx(0.5)
        assert d["a"].messages == 1
        assert d["a"].bytes == 50
        assert d["b"].time == pytest.approx(0.2)

    def test_none_phase_goes_to_other(self, machine4):
        machine4.advance(1.0, None)
        assert machine4.trace.get("other").time == pytest.approx(1.0)

    def test_totals(self, machine4):
        machine4.advance(1.0, "a", messages=3, nbytes=10)
        machine4.advance(2.0, "b", messages=4, nbytes=20)
        assert machine4.trace.total_time() == pytest.approx(3.0)
        assert machine4.trace.total_messages() == 7
        assert machine4.trace.total_bytes() == 30
