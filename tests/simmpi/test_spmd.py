"""SPMD layer: per-rank programs, matching, collectives, deadlocks."""

import threading

import numpy as np
import pytest

from repro.simmpi.chaos import MailboxScheduler, Perturbation
from repro.simmpi.machine import Machine
from repro.simmpi.spmd import SPMDDeadlock, run_spmd

#: hard wall for the deadlock-detection tests; generous next to the
#: detector's 5 s wait ticks but far below any CI job timeout
WATCHDOG_SECONDS = 60.0


def run_expecting_deadlock(machine, program, *, scheduler=None):
    """Run ``program`` on a watchdog thread and return the SPMDDeadlock.

    The whole point of the detector is that a deadlocked program *reports*
    instead of hanging — so the test itself must not be able to hang either,
    even where the pytest-timeout plugin is unavailable.  The daemon thread
    is abandoned on timeout and the test fails.
    """
    outcome = {}

    def target():
        try:
            run_spmd(machine, program, scheduler=scheduler)
        except BaseException as exc:  # noqa: BLE001 - recorded for the assert
            outcome["exc"] = exc

    t = threading.Thread(target=target, daemon=True)
    t.start()
    t.join(timeout=WATCHDOG_SECONDS)
    if t.is_alive():
        pytest.fail(
            f"deadlock detector did not fire within {WATCHDOG_SECONDS:.0f}s; "
            "run_spmd is hanging"
        )
    exc = outcome.get("exc")
    assert isinstance(exc, SPMDDeadlock), f"expected SPMDDeadlock, got {exc!r}"
    return exc


class TestPointToPoint:
    def test_ring(self):
        def ring(ctx, value):
            nxt = (ctx.rank + 1) % ctx.nprocs
            prv = (ctx.rank - 1) % ctx.nprocs
            total = value
            for _ in range(ctx.nprocs - 1):
                ctx.send(nxt, value)
                value = ctx.recv(prv)
                total += value
            return total

        m = Machine(4)
        out = run_spmd(m, ring, [1.0, 2.0, 3.0, 4.0])
        assert out == [10.0, 10.0, 10.0, 10.0]
        assert m.elapsed() > 0
        assert m.trace.get("spmd").messages == 4 * 3

    def test_tag_matching(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, "late", tag=2)
                ctx.send(1, "early", tag=1)
                return None
            first = ctx.recv(0, tag=1)
            second = ctx.recv(0, tag=2)
            return (first, second)

        out = run_spmd(Machine(2), prog)
        assert out[1] == ("early", "late")

    def test_wildcard_recv(self):
        def prog(ctx):
            if ctx.rank == 0:
                got = {ctx.recv() for _ in range(2)}
                return got
            ctx.send(0, ctx.rank)
            return None

        out = run_spmd(Machine(3), prog)
        assert out[0] == {1, 2}

    def test_numpy_payload(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, np.arange(5))
                return None
            return ctx.recv(0).sum()

        out = run_spmd(Machine(2), prog)
        assert out[1] == 10

    def test_self_send(self):
        def prog(ctx):
            ctx.send(ctx.rank, 42)
            return ctx.recv(ctx.rank)

        assert run_spmd(Machine(2), prog) == [42, 42]

    def test_sendrecv_exchange(self):
        def prog(ctx):
            other = 1 - ctx.rank
            return ctx.sendrecv(other, ctx.rank * 10, src=other)

        assert run_spmd(Machine(2), prog) == [10, 0]


class TestCollectives:
    def test_barrier_and_allreduce(self):
        def prog(ctx):
            ctx.barrier()
            return ctx.allreduce(ctx.rank + 1, "sum")

        assert run_spmd(Machine(4), prog) == [10.0] * 4

    def test_allreduce_max(self):
        def prog(ctx):
            return ctx.allreduce(float(ctx.rank), "max")

        assert run_spmd(Machine(5), prog) == [4.0] * 5

    def test_allgather(self):
        def prog(ctx):
            return ctx.allgather(ctx.rank * 2)

        out = run_spmd(Machine(3), prog)
        assert out == [[0, 2, 4]] * 3

    def test_bcast(self):
        def prog(ctx):
            value = "hello" if ctx.rank == 1 else None
            return ctx.bcast(value, root=1)

        assert run_spmd(Machine(3), prog) == ["hello"] * 3

    def test_repeated_collectives(self):
        def prog(ctx):
            return [ctx.allreduce(1.0) for _ in range(5)]

        out = run_spmd(Machine(3), prog)
        assert out == [[3.0] * 5] * 3


class TestFailures:
    def test_deadlock_detected(self):
        def prog(ctx):
            # everyone receives, nobody sends
            return ctx.recv()

        with pytest.raises(SPMDDeadlock, match="all ranks blocked"):
            run_spmd(Machine(3), prog)

    def test_mismatched_tags_deadlock(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, "x", tag=7)
                return ctx.recv(1)
            return ctx.recv(0, tag=9)  # tag never sent

        with pytest.raises(SPMDDeadlock):
            run_spmd(Machine(2), prog)

    def test_exception_propagates(self):
        def prog(ctx):
            if ctx.rank == 1:
                raise RuntimeError("boom")
            return ctx.rank

        with pytest.raises(RuntimeError, match="boom"):
            run_spmd(Machine(3), prog)

    def test_bad_per_rank_args(self):
        with pytest.raises(ValueError):
            run_spmd(Machine(3), lambda ctx, x: x, [1, 2])


@pytest.mark.timeout(120)
class TestDeadlockHardening:
    """The detector must report — with a usable state dump — under any legal
    schedule, and the tests themselves must never hang (watchdog thread)."""

    SEEDS = range(1, 9)

    @staticmethod
    def mismatched_tags(ctx):
        if ctx.rank == 0:
            ctx.send(1, "x", tag=7)
            return ctx.recv(1)
        if ctx.rank == 1:
            return ctx.recv(0, tag=9)  # tag never sent
        return ctx.recv()  # bystanders: nothing ever arrives

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mismatched_tags_reported_under_every_schedule(self, seed):
        exc = run_expecting_deadlock(
            Machine(4),
            self.mismatched_tags,
            scheduler=MailboxScheduler(seed),
        )
        msg = str(exc)
        assert msg.startswith("all ranks blocked (")
        # the dump names every blocked rank with its match pattern ...
        assert "rank 0: recv(src=1, tag=*)" in msg
        assert "rank 1: recv(src=0, tag=9)" in msg
        assert "rank 2: recv(src=*, tag=*)" in msg
        # ... and shows the unmatched message rotting in rank 1's mailbox
        assert "mailbox=[(src=0, tag=7)]" in msg

    @pytest.mark.parametrize("seed", [0, 3, 5])
    def test_collective_vs_recv_deadlock_dump(self, seed):
        def prog(ctx):
            if ctx.rank == 0:
                return ctx.recv(1)  # rank 1 never sends
            return ctx.allreduce(1.0)

        exc = run_expecting_deadlock(
            Machine(3),
            prog,
            scheduler=MailboxScheduler(seed) if seed else None,
        )
        msg = str(exc)
        assert "rank 0: recv(src=1, tag=*) mailbox=[]" in msg
        assert "collective(epoch=0)" in msg

    def test_deadlock_not_raised_for_slow_but_live_program(self):
        """A legal program under heavy reordering must still complete."""
        def prog(ctx, value):
            nxt = (ctx.rank + 1) % ctx.nprocs
            prv = (ctx.rank - 1) % ctx.nprocs
            total = value
            for _ in range(ctx.nprocs - 1):
                ctx.send(nxt, value)
                value = ctx.recv(prv)
                total += value
            ctx.barrier()
            return total

        for seed in self.SEEDS:
            out = run_spmd(
                Machine(4),
                prog,
                [1.0, 2.0, 3.0, 4.0],
                scheduler=MailboxScheduler(seed, yield_probability=0.9),
            )
            assert out == [10.0] * 4, f"schedule seed {seed} corrupted results"


class TestScheduleDeterminism:
    def test_allreduce_sum_bitwise_schedule_independent(self):
        """The sum must combine in rank order, not rendezvous-arrival order.

        [1e16, 1.0, -1e16, 1.0] sums to 1.0 in rank order but 2.0 in most
        other orders, so an arrival-order sum is bitwise schedule-dependent.
        """
        values = [1e16, 1.0, -1e16, 1.0]

        def prog(ctx, value):
            return ctx.allreduce(value, "sum")

        reference = run_spmd(Machine(4), prog, values)
        assert reference == [1.0] * 4
        for seed in range(1, 17):
            out = run_spmd(
                Machine(4),
                prog,
                values,
                scheduler=MailboxScheduler(seed, yield_probability=0.9),
            )
            assert out == reference, f"schedule seed {seed} changed the sum"


class TestPerturbedCosts:
    """SPMD cost charging consults the perturbation like collectives/p2p."""

    DEGRADED = Perturbation(
        seed=1, degraded_link_fraction=1.0, degraded_link_slowdown=3.0
    )

    def test_send_charges_comm_factor(self):
        def ping(ctx):
            if ctx.rank == 0:
                ctx.send(1, np.zeros(1 << 16))
                return None
            return ctx.recv(0)

        baseline = Machine(2)
        run_spmd(baseline, ping)
        degraded = Machine(2, perturbation=self.DEGRADED)
        run_spmd(degraded, ping)
        assert degraded.elapsed() > baseline.elapsed()

    def test_collective_charges_comm_factor(self):
        def reduce_once(ctx):
            return ctx.allreduce(1.0)

        baseline = Machine(4)
        assert run_spmd(baseline, reduce_once) == [4.0] * 4
        degraded = Machine(4, perturbation=self.DEGRADED)
        assert run_spmd(degraded, reduce_once) == [4.0] * 4
        assert degraded.elapsed() > baseline.elapsed()


class TestClockSemantics:
    def test_recv_waits_for_send(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx._rt.machine.clocks[0] += 1.0  # rank 0 is busy first
                ctx.send(1, "x")
                return None
            ctx.recv(0)
            return float(ctx._rt.machine.clocks[1])

        out = run_spmd(Machine(2), prog)
        assert out[1] > 1.0

    def test_odd_even_transposition_sort(self):
        """A complete parallel algorithm written rank-locally."""
        def prog(ctx, value):
            for step in range(ctx.nprocs):
                if step % 2 == 0:
                    partner = ctx.rank + 1 if ctx.rank % 2 == 0 else ctx.rank - 1
                else:
                    partner = ctx.rank - 1 if ctx.rank % 2 == 0 else ctx.rank + 1
                if 0 <= partner < ctx.nprocs:
                    other = ctx.sendrecv(partner, value, src=partner)
                    value = min(value, other) if ctx.rank < partner else max(value, other)
            return value

        m = Machine(6)
        values = [5.0, 2.0, 9.0, 1.0, 7.0, 3.0]
        out = run_spmd(m, prog, values)
        assert out == sorted(values)
