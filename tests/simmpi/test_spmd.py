"""SPMD layer: per-rank programs, matching, collectives, deadlocks."""

import numpy as np
import pytest

from repro.simmpi.machine import Machine
from repro.simmpi.spmd import SPMDDeadlock, run_spmd


class TestPointToPoint:
    def test_ring(self):
        def ring(ctx, value):
            nxt = (ctx.rank + 1) % ctx.nprocs
            prv = (ctx.rank - 1) % ctx.nprocs
            total = value
            for _ in range(ctx.nprocs - 1):
                ctx.send(nxt, value)
                value = ctx.recv(prv)
                total += value
            return total

        m = Machine(4)
        out = run_spmd(m, ring, [1.0, 2.0, 3.0, 4.0])
        assert out == [10.0, 10.0, 10.0, 10.0]
        assert m.elapsed() > 0
        assert m.trace.get("spmd").messages == 4 * 3

    def test_tag_matching(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, "late", tag=2)
                ctx.send(1, "early", tag=1)
                return None
            first = ctx.recv(0, tag=1)
            second = ctx.recv(0, tag=2)
            return (first, second)

        out = run_spmd(Machine(2), prog)
        assert out[1] == ("early", "late")

    def test_wildcard_recv(self):
        def prog(ctx):
            if ctx.rank == 0:
                got = {ctx.recv() for _ in range(2)}
                return got
            ctx.send(0, ctx.rank)
            return None

        out = run_spmd(Machine(3), prog)
        assert out[0] == {1, 2}

    def test_numpy_payload(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, np.arange(5))
                return None
            return ctx.recv(0).sum()

        out = run_spmd(Machine(2), prog)
        assert out[1] == 10

    def test_self_send(self):
        def prog(ctx):
            ctx.send(ctx.rank, 42)
            return ctx.recv(ctx.rank)

        assert run_spmd(Machine(2), prog) == [42, 42]

    def test_sendrecv_exchange(self):
        def prog(ctx):
            other = 1 - ctx.rank
            return ctx.sendrecv(other, ctx.rank * 10, src=other)

        assert run_spmd(Machine(2), prog) == [10, 0]


class TestCollectives:
    def test_barrier_and_allreduce(self):
        def prog(ctx):
            ctx.barrier()
            return ctx.allreduce(ctx.rank + 1, "sum")

        assert run_spmd(Machine(4), prog) == [10.0] * 4

    def test_allreduce_max(self):
        def prog(ctx):
            return ctx.allreduce(float(ctx.rank), "max")

        assert run_spmd(Machine(5), prog) == [4.0] * 5

    def test_allgather(self):
        def prog(ctx):
            return ctx.allgather(ctx.rank * 2)

        out = run_spmd(Machine(3), prog)
        assert out == [[0, 2, 4]] * 3

    def test_bcast(self):
        def prog(ctx):
            value = "hello" if ctx.rank == 1 else None
            return ctx.bcast(value, root=1)

        assert run_spmd(Machine(3), prog) == ["hello"] * 3

    def test_repeated_collectives(self):
        def prog(ctx):
            return [ctx.allreduce(1.0) for _ in range(5)]

        out = run_spmd(Machine(3), prog)
        assert out == [[3.0] * 5] * 3


class TestFailures:
    def test_deadlock_detected(self):
        def prog(ctx):
            # everyone receives, nobody sends
            return ctx.recv()

        with pytest.raises(SPMDDeadlock, match="all ranks blocked"):
            run_spmd(Machine(3), prog)

    def test_mismatched_tags_deadlock(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, "x", tag=7)
                return ctx.recv(1)
            return ctx.recv(0, tag=9)  # tag never sent

        with pytest.raises(SPMDDeadlock):
            run_spmd(Machine(2), prog)

    def test_exception_propagates(self):
        def prog(ctx):
            if ctx.rank == 1:
                raise RuntimeError("boom")
            return ctx.rank

        with pytest.raises(RuntimeError, match="boom"):
            run_spmd(Machine(3), prog)

    def test_bad_per_rank_args(self):
        with pytest.raises(ValueError):
            run_spmd(Machine(3), lambda ctx, x: x, [1, 2])


class TestClockSemantics:
    def test_recv_waits_for_send(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx._rt.machine.clocks[0] += 1.0  # rank 0 is busy first
                ctx.send(1, "x")
                return None
            ctx.recv(0)
            return float(ctx._rt.machine.clocks[1])

        out = run_spmd(Machine(2), prog)
        assert out[1] > 1.0

    def test_odd_even_transposition_sort(self):
        """A complete parallel algorithm written rank-locally."""
        def prog(ctx, value):
            for step in range(ctx.nprocs):
                if step % 2 == 0:
                    partner = ctx.rank + 1 if ctx.rank % 2 == 0 else ctx.rank - 1
                else:
                    partner = ctx.rank - 1 if ctx.rank % 2 == 0 else ctx.rank + 1
                if 0 <= partner < ctx.nprocs:
                    other = ctx.sendrecv(partner, value, src=partner)
                    value = min(value, other) if ctx.rank < partner else max(value, other)
            return value

        m = Machine(6)
        values = [5.0, 2.0, 9.0, 1.0, 7.0, 3.0]
        out = run_spmd(m, prog, values)
        assert out == sorted(values)
