"""Topology geometry: hop counts, diameters, bisections."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi.topology import (
    FatTreeTopology,
    SwitchTopology,
    TorusTopology,
    balanced_torus_dims,
)


class TestSwitch:
    def test_intranode_zero_hops(self):
        t = SwitchTopology(8, node_size=4)
        assert t.hops(0, 3) == 0
        assert t.hops(4, 7) == 0

    def test_internode_one_hop(self):
        t = SwitchTopology(8, node_size=4)
        assert t.hops(0, 4) == 1
        assert t.diameter() == 1

    def test_single_node(self):
        t = SwitchTopology(4, node_size=4)
        assert t.diameter() == 0


class TestFatTree:
    def test_same_leaf_two_hops(self):
        t = FatTreeTopology(64, node_size=1, radix=8)
        # nodes 0..7 share a leaf switch
        assert t.hops(0, 7) == 2
        assert t.hops(0, 8) == 4  # via the next level

    def test_symmetry(self):
        t = FatTreeTopology(128, node_size=8, radix=4)
        ranks = np.arange(128)
        h1 = t.hops(np.zeros(128, dtype=int), ranks)
        h2 = t.hops(ranks, np.zeros(128, dtype=int))
        np.testing.assert_array_equal(h1, h2)

    def test_bisection_scales(self):
        small = FatTreeTopology(64, node_size=1)
        big = FatTreeTopology(1024, node_size=1)
        assert big.bisection_links() > small.bisection_links()

    def test_intranode_free(self):
        t = FatTreeTopology(16, node_size=8)
        assert t.hops(0, 7) == 0


class TestTorus:
    def test_wraparound(self):
        t = TorusTopology(64, dims=(4, 4, 4), node_size=1)
        # coords (0,0,0) to (3,0,0): wrapped distance 1
        assert t.hops(0, t.nnodes - 16) == 1

    def test_manhattan(self):
        t = TorusTopology(64, dims=(4, 4, 4), node_size=1)
        # node 0 = (0,0,0); node with coords (1,1,1) = 16+4+1 = 21
        assert t.hops(0, 21) == 3

    def test_diameter(self):
        t = TorusTopology(64, dims=(4, 4, 4), node_size=1)
        assert t.diameter() == 6

    def test_bisection_sublinear(self):
        t1 = TorusTopology(512, dims=(8, 8, 8), node_size=1)
        t2 = TorusTopology(4096, dims=(16, 16, 16), node_size=1)
        # 8x the nodes, only 4x the bisection
        assert t2.bisection_links() == 4 * t1.bisection_links()

    def test_dims_must_cover(self):
        with pytest.raises(ValueError):
            TorusTopology(100, dims=(2, 2, 2), node_size=1)

    def test_symmetry_random_pairs(self, rng):
        t = TorusTopology(256, dims=(8, 8, 4), node_size=2)
        a = rng.integers(0, 256, 50)
        b = rng.integers(0, 256, 50)
        np.testing.assert_array_equal(t.hops(a, b), t.hops(b, a))

    def test_triangle_inequality(self, rng):
        t = TorusTopology(128, dims=(8, 4, 4), node_size=1)
        a, b, c = rng.integers(0, 128, (3, 40))
        assert np.all(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c))


@given(st.integers(min_value=1, max_value=5000), st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_balanced_torus_dims_cover(nnodes, ndims):
    dims = balanced_torus_dims(nnodes, ndims)
    assert len(dims) == ndims
    prod = 1
    for d in dims:
        prod *= d
    assert prod >= nnodes
    # near-cubic: max/min ratio bounded
    assert max(dims) <= 2 * max(min(dims), 1) + 1 or min(dims) == 1


def test_hops_zero_on_self():
    for topo in (
        SwitchTopology(16),
        FatTreeTopology(16, node_size=2),
        TorusTopology(16, dims=(4, 2, 2), node_size=1),
    ):
        ranks = np.arange(16)
        np.testing.assert_array_equal(topo.hops(ranks, ranks), 0)
