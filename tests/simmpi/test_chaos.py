"""Chaos harness: Perturbation sampling, machine wiring, scheduler legality."""

import numpy as np
import pytest

from repro.simmpi.chaos import MailboxScheduler, Perturbation
from repro.simmpi.collectives import alltoallv
from repro.simmpi.costmodel import CostModel
from repro.simmpi.machine import Machine


class TestPerturbationConfig:
    def test_default_is_null(self):
        p = Perturbation()
        assert p.is_null
        assert p.describe() == "null(seed=0)"

    def test_sample_zero_is_null(self):
        assert Perturbation.sample(0).is_null

    def test_sample_nonzero_is_not_null_and_deterministic(self):
        a, b = Perturbation.sample(7), Perturbation.sample(7)
        assert not a.is_null
        assert a == b
        assert a != Perturbation.sample(8)
        assert a.reorder

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"compute_jitter": -0.1},
            {"extra_latency": -1e-6},
            {"clock_skew": -1.0},
            {"straggler_fraction": 1.5},
            {"degraded_link_fraction": -0.5},
            {"bandwidth_degradation": 1.0},
            {"straggler_slowdown": 0.5},
            {"degraded_link_slowdown": 0.0},
        ],
    )
    def test_validation_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            Perturbation(**kwargs)

    def test_describe_mentions_active_knobs(self):
        p = Perturbation(
            seed=3, compute_jitter=0.2, extra_latency=1e-5, reorder=True
        )
        text = p.describe()
        assert "seed=3" in text
        assert "jitter=" in text
        assert "lat+" in text
        assert "reorder" in text


class TestPerturbationDraws:
    def test_null_draws_are_none(self):
        p = Perturbation()
        assert p.compute_factors(8) is None
        assert p.comm_factors(8) is None
        assert p.initial_clocks(8) is None
        assert p.scheduler() is None

    def test_draws_are_seed_deterministic(self):
        p = Perturbation.sample(5)
        np.testing.assert_array_equal(p.compute_factors(8), p.compute_factors(8))
        np.testing.assert_array_equal(p.comm_factors(8), p.comm_factors(8))
        np.testing.assert_array_equal(p.initial_clocks(8), p.initial_clocks(8))

    def test_factors_are_positive_slowdowns(self):
        p = Perturbation(
            seed=2,
            straggler_fraction=1.0,
            straggler_slowdown=4.0,
            degraded_link_fraction=1.0,
            degraded_link_slowdown=2.0,
        )
        np.testing.assert_array_equal(p.compute_factors(6), np.full(6, 4.0))
        np.testing.assert_array_equal(p.comm_factors(6), np.full(6, 2.0))

    def test_clock_skew_bounds(self):
        p = Perturbation(seed=9, clock_skew=1e-3)
        clocks = p.initial_clocks(16)
        assert clocks.shape == (16,)
        assert np.all(clocks >= 0.0) and np.all(clocks < 1e-3)


class TestCostModelPerturbed:
    def test_neutral_returns_same_object(self):
        model = CostModel()
        assert model.perturbed() is model
        assert model.perturbed(extra_overhead=0.0, bandwidth_factor=1.0) is model

    def test_non_neutral_scales(self):
        model = CostModel()
        slow = model.perturbed(extra_overhead=1e-5, bandwidth_factor=0.5)
        assert slow.overhead == model.overhead + 1e-5
        assert slow.bandwidth == model.bandwidth * 0.5

    def test_effective_model_null_is_identity(self):
        model = CostModel()
        assert Perturbation().effective_model(model) is model


class TestMachinePerturb:
    def test_null_perturb_leaves_machine_untouched(self):
        plain, nulled = Machine(4), Machine(4)
        nulled.perturb(Perturbation())
        assert nulled.model is plain.model or nulled.model == plain.model
        assert nulled.comm_factors is None
        np.testing.assert_array_equal(nulled.clocks, plain.clocks)

    def test_perturb_applies_skew_and_factors(self):
        p = Perturbation.sample(4)
        m = Machine(4, perturbation=p)
        assert m.perturbation is p
        assert m.clocks.max() > 0 or p.clock_skew == 0
        assert m.comm_factor() >= 1.0

    def test_double_perturb_rejected(self):
        m = Machine(4)
        m.perturb(Perturbation.sample(1))
        with pytest.raises(RuntimeError):
            m.perturb(Perturbation.sample(2))

    def test_perturb_after_activity_rejected(self):
        m = Machine(4)
        m.compute(np.ones(4) * 1e-6, phase="warm")
        with pytest.raises(RuntimeError):
            m.perturb(Perturbation.sample(1))

    def test_reset_clocks_reapplies_skew(self):
        p = Perturbation(seed=6, clock_skew=1e-3)
        m = Machine(4, perturbation=p)
        skewed = m.clocks.copy()
        m.clocks += 1.0
        m.reset_clocks()
        np.testing.assert_array_equal(m.clocks, skewed)

    def test_comm_factor_is_max_over_endpoints(self):
        p = Perturbation(
            seed=12, degraded_link_fraction=0.5, degraded_link_slowdown=3.0
        )
        m = Machine(8, perturbation=p)
        factors = m.comm_factors
        assert factors is not None
        for a in range(8):
            for b in range(8):
                assert m.comm_factor(a, b) == max(factors[a], factors[b])
        assert m.comm_factor() == factors.max()

    def test_perturbation_slows_clocks_but_not_data(self):
        """The whole contract in one alltoallv: same bytes, slower clocks."""
        rng = np.random.default_rng(0)
        sends = [
            {
                dst: rng.standard_normal(3 + src + dst)
                for dst in range(4)
                if dst != src
            }
            for src in range(4)
        ]
        p = Perturbation(
            seed=3,
            straggler_fraction=0.5,
            straggler_slowdown=8.0,
            extra_latency=1e-4,
            bandwidth_degradation=0.5,
        )
        plain, chaotic = Machine(4), Machine(4, perturbation=p)
        out_plain = alltoallv(plain, sends, phase="test")
        out_chaos = alltoallv(chaotic, sends, phase="test")
        for recv_plain, recv_chaos in zip(out_plain, out_chaos):
            assert len(recv_plain) == len(recv_chaos)
            for (sa, pa), (sb, pb) in zip(recv_plain, recv_chaos):
                assert sa == sb
                np.testing.assert_array_equal(pa, pb)
        assert chaotic.elapsed() > plain.elapsed()


class TestMailboxScheduler:
    def test_choose_is_legal_and_seeded(self):
        s1, s2 = MailboxScheduler(42), MailboxScheduler(42)
        picks1 = [s1.choose(5) for _ in range(50)]
        picks2 = [s2.choose(5) for _ in range(50)]
        assert picks1 == picks2
        assert all(0 <= p < 5 for p in picks1)
        assert len(set(picks1)) > 1  # actually permutes

    def test_choose_single_candidate_is_forced(self):
        s = MailboxScheduler(1)
        assert all(s.choose(1) == 0 for _ in range(10))
        assert s.choose(0) == 0

    def test_shuffled_is_permutation(self):
        s = MailboxScheduler(7)
        items = list(range(10))
        out = s.shuffled(items)
        assert sorted(out) == items
        assert items == list(range(10))  # input untouched

    def test_maybe_yield_is_bounded(self):
        import time

        s = MailboxScheduler(3, yield_probability=1.0, max_sleep=1e-4)
        start = time.perf_counter()
        for _ in range(20):
            s.maybe_yield()
        assert time.perf_counter() - start < 1.0

    def test_perturbation_scheduler_is_fresh_each_call(self):
        p = Perturbation.sample(11)
        a, b = p.scheduler(), p.scheduler()
        assert a is not b
        assert [a.choose(7) for _ in range(20)] == [b.choose(7) for _ in range(20)]
