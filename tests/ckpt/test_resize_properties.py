"""Property tests for the elastic P→Q rank resize.

The target layout is the canonical (globally id-ordered) decomposition, so
resize must be a pure function of the *physical* state: round-trips are
bitwise, source scatterings are irrelevant, empty ranks are legal, and
uniform work weights degrade to the historical ``floor(i*n/P)`` counting
bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckpt import compile_resize_plan, resize_checkpoint
from repro.ckpt.checkpoint import COLUMNS, Checkpoint
from repro.core.balance import count_split_bounds
from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine

BOX = np.array([10.0, 10.0, 10.0])


# Deliberately not a conftest.py fixture: a tests/ckpt/conftest.py would
# claim the bare ``conftest`` module name ahead of tests/conftest.py (the
# tests dirs have no __init__.py), breaking ``from conftest import ...``
# in the solver/core suites.
@pytest.fixture
def sim_factory():
    """Build a small simulation (no auditor — tests attach what they need)."""

    def build(solver="fmm", method="B", nprocs=4, n=24, seed=2, **cfg_kwargs):
        machine = Machine(nprocs)
        return Simulation(
            machine,
            silica_melt_system(n, seed=seed),
            SimulationConfig(
                solver=solver,
                method=method,
                seed=seed,
                track_energy=True,
                **cfg_kwargs,
            ),
        )

    return build


def scatter_ids(n, nprocs, seed):
    """A random per-rank scattering of global ids 0..n-1 (no rank order)."""
    rng = np.random.default_rng(seed)
    owner = rng.integers(0, nprocs, n)
    ids = []
    for r in range(nprocs):
        mine = np.flatnonzero(owner == r).astype(np.int64)
        ids.append(rng.permutation(mine))
    return ids


def random_columns(ids, seed):
    """Deterministic random physics columns matching a per-rank id layout."""
    rng = np.random.default_rng(seed)
    n = int(sum(len(i) for i in ids))
    glob = {
        "pos": rng.uniform(-5, 5, (n, 3)),
        "q": rng.choice([-1.0, 1.0], n) * rng.uniform(0.5, 2.0, n),
        "pot": rng.normal(size=n),
        "field": rng.normal(size=(n, 3)),
        "vel": rng.normal(size=(n, 3)),
        "acc": rng.normal(size=(n, 3)),
    }
    return {
        name: [np.ascontiguousarray(arr[i]) for i in ids]
        for name, arr in glob.items()
    }


def build_ckpt(ids, seed):
    cols = random_columns(ids, seed)
    return Checkpoint.from_columns(
        cols["pos"],
        cols["q"],
        ids,
        box=BOX,
        pot=cols["pot"],
        field=cols["field"],
        vel=cols["vel"],
        acc=cols["acc"],
    )


def canonical_ids(n, nprocs):
    bounds = count_split_bounds(n, nprocs)
    return [
        np.arange(bounds[r], bounds[r + 1], dtype=np.int64)
        for r in range(nprocs)
    ]


def assert_columns_bitwise(a: Checkpoint, b: Checkpoint):
    assert a.nprocs == b.nprocs
    for name in COLUMNS:
        for r, (x, y) in enumerate(zip(a.columns(name), b.columns(name))):
            assert x.dtype == y.dtype
            assert x.shape == y.shape
            assert x.tobytes() == y.tobytes(), f"{name} differs on rank {r}"


class TestResizeProperties:
    @settings(deadline=None, max_examples=40)
    @given(
        n=st.integers(1, 40),
        p=st.integers(1, 6),
        q=st.integers(1, 8),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_round_trip_is_bitwise_identity(self, n, p, q, seed):
        source = build_ckpt(canonical_ids(n, p), seed)
        via_q, _ = resize_checkpoint(source, q)
        back, _ = resize_checkpoint(via_q, p)
        assert_columns_bitwise(back, source)

    @settings(deadline=None, max_examples=40)
    @given(
        n=st.integers(1, 40),
        p1=st.integers(1, 6),
        p2=st.integers(1, 6),
        q=st.integers(1, 8),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_permutation_safe(self, n, p1, p2, q, seed):
        """Any two scatterings of the same particles resize identically."""
        a = build_ckpt(scatter_ids(n, p1, seed + 1), seed)
        b = build_ckpt(scatter_ids(n, p2, seed + 2), seed)
        ra, _ = resize_checkpoint(a, q)
        rb, _ = resize_checkpoint(b, q)
        assert_columns_bitwise(ra, rb)

    @settings(deadline=None, max_examples=30)
    @given(
        n=st.integers(1, 6),
        p=st.integers(1, 3),
        extra=st.integers(1, 10),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_empty_rank_safe(self, n, p, extra, seed):
        """Q > n leaves ranks empty exactly where the floor bounds say."""
        q = n + extra
        source = build_ckpt(scatter_ids(n, p, seed), seed)
        resized, plan = resize_checkpoint(source, q)
        expected = np.diff(count_split_bounds(n, q))
        assert [len(i) for i in resized.ids] == list(expected)
        assert sum(len(i) for i in resized.ids) == n
        got = resized.gathered()
        want = source.gathered()
        for name in got:
            assert got[name].tobytes() == want[name].tobytes()

    @settings(deadline=None, max_examples=40)
    @given(
        n=st.integers(1, 40),
        p=st.integers(1, 6),
        q=st.integers(1, 8),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_uniform_weights_reproduce_floor_bounds(self, n, p, q, seed):
        source = build_ckpt(scatter_ids(n, p, seed), seed)
        weighted = compile_resize_plan(source, q, weights=np.ones(n))
        counting = compile_resize_plan(source, q)
        assert np.array_equal(weighted.bounds, counting.bounds)
        assert np.array_equal(
            counting.bounds,
            [n * i // q for i in range(q + 1)],
        )

    @settings(deadline=None, max_examples=30)
    @given(
        n=st.integers(1, 30),
        p=st.integers(1, 6),
        q=st.integers(1, 6),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_gathered_view_invariant(self, n, p, q, seed):
        source = build_ckpt(scatter_ids(n, p, seed), seed)
        resized, _ = resize_checkpoint(source, q)
        got, want = resized.gathered(), source.gathered()
        assert set(got) == set(want)
        for name in got:
            assert got[name].tobytes() == want[name].tobytes()


class TestResizeValidation:
    def test_rejects_non_permutation_ids(self):
        ckpt = build_ckpt([np.array([0, 0], dtype=np.int64)], 0)
        with pytest.raises(ValueError, match="permutation"):
            compile_resize_plan(ckpt, 2)

    def test_rejects_bad_weights_shape(self):
        ckpt = build_ckpt(canonical_ids(6, 2), 0)
        with pytest.raises(ValueError, match="weights"):
            compile_resize_plan(ckpt, 2, weights=np.ones(5))

    def test_rejects_nonpositive_rank_count(self):
        ckpt = build_ckpt(canonical_ids(4, 2), 0)
        with pytest.raises(ValueError, match="new_nprocs"):
            compile_resize_plan(ckpt, 0)


class TestAcceptance4_6_4:
    def test_resize_round_trip_restores_every_column_bitwise(
        self, sim_factory
    ):
        """The PR acceptance criterion: a live 4-rank checkpoint goes
        4→6→4 and every column comes back bitwise — in canonical form per
        rank, and bitwise against the donor on the id-gathered view."""
        sim = sim_factory(solver="fmm", method="B", nprocs=4, n=24)
        try:
            sim.run(2)
            from repro.ckpt import capture_checkpoint

            donor = capture_checkpoint(sim)
        finally:
            sim.fcs.destroy()

        via6, plan_up = resize_checkpoint(donor, 6)
        back4, plan_down = resize_checkpoint(via6, 4)
        canon4, _ = resize_checkpoint(donor, 4)
        assert plan_up.moved_bytes > 0 and plan_down.moved_bytes > 0
        assert_columns_bitwise(back4, canon4)
        got, want = back4.gathered(), donor.gathered()
        for name in got:
            assert got[name].tobytes() == want[name].tobytes()

    def test_resized_checkpoint_restores_and_runs(self, sim_factory):
        from repro.ckpt import capture_checkpoint, restore_simulation
        from repro.simmpi.machine import Machine
        from repro.verify.audit import enable_auditing
        from repro.verify.invariants import InvariantChecker

        sim = sim_factory(solver="fmm", method="B", nprocs=4, n=24)
        try:
            sim.run(2)
            ckpt = capture_checkpoint(sim)
        finally:
            sim.fcs.destroy()
        via6, _ = resize_checkpoint(ckpt, 6)
        machine = Machine(6)
        auditor = enable_auditing(machine)
        resumed = restore_simulation(via6, machine=machine)
        try:
            checker = InvariantChecker(resumed)
            resumed.run(2)
            checker.assert_ok()
            auditor.assert_quiescent()
        finally:
            resumed.fcs.destroy()
