"""Edge-case regressions for :func:`repro.core.restore.restore_results`.

Method A's restore sends each computed potential/field back to the
particle's initial (rank, position) through the fine-grained
redistribution.  These tests pin the degenerate layouts a checkpointed or
resized run can legally produce: ranks that own nothing, one-particle
systems, and ranks whose entire current population departs on restore.
"""

import numpy as np
import pytest

from repro.core.particles import ParticleSet
from repro.core.resort import pack_resort_index
from repro.core.restore import restore_results
from repro.simmpi.machine import Machine


def run_restore(orig_ids, cur_ids):
    """Restore pot/field for particles with original layout ``orig_ids``
    (per-rank global ids, defining origin rank+position) currently living
    as ``cur_ids``; returns the restored ParticleSet."""
    nprocs = len(orig_ids)
    machine = Machine(nprocs)
    # origin lookup: global id -> (original rank, original position)
    orig_rank = {}
    orig_pos = {}
    for r, ids in enumerate(orig_ids):
        for k, g in enumerate(ids):
            orig_rank[g] = r
            orig_pos[g] = k
    origloc = [
        pack_resort_index(
            np.array([orig_rank[g] for g in ids], dtype=np.int64),
            np.array([orig_pos[g] for g in ids], dtype=np.int64),
        )
        for ids in cur_ids
    ]
    # results are functions of the global id, so placement is verifiable
    pots = [np.array([float(g) for g in ids]) for ids in cur_ids]
    fields = [
        np.array([[g, g + 0.5, g - 0.25] for g in ids]).reshape(-1, 3)
        for ids in cur_ids
    ]
    old_counts = [len(ids) for ids in orig_ids]
    particles = ParticleSet(
        [np.zeros((c, 3)) for c in old_counts],
        [np.zeros(c) for c in old_counts],
    )
    restore_results(machine, origloc, pots, fields, particles, old_counts)
    for r, ids in enumerate(orig_ids):
        assert particles.pot[r].shape == (len(ids),)
        assert particles.field[r].shape == (len(ids), 3)
        for k, g in enumerate(ids):
            assert particles.pot[r][k] == float(g)
            assert np.array_equal(
                particles.field[r][k], [g, g + 0.5, g - 0.25]
            )
    return particles


class TestRestoreEdges:
    def test_zero_particle_rank(self):
        """A rank owning nothing — originally and currently — is legal."""
        run_restore(
            orig_ids=[[0, 1], [], [2]],
            cur_ids=[[2], [], [1, 0]],
        )

    def test_all_ranks_empty_but_one(self):
        run_restore(
            orig_ids=[[], [0, 1, 2], []],
            cur_ids=[[1], [2], [0]],
        )

    def test_single_particle_system(self):
        run_restore(orig_ids=[[], [0]], cur_ids=[[0], []])
        run_restore(orig_ids=[[0], []], cur_ids=[[0], []])

    def test_full_departure_rank(self):
        """Rank 0's entire current population departs on restore, and its
        own original particles all come back from elsewhere."""
        run_restore(
            orig_ids=[[0, 1], [2, 3], [4]],
            cur_ids=[[4, 3], [0, 2], [1]],
        )

    def test_scrambled_positions_within_rank(self):
        """Restoration scatters to the original *position*, not just rank."""
        run_restore(
            orig_ids=[[3, 1, 4], [0, 2]],
            cur_ids=[[2, 4], [1, 0, 3]],
        )

    def test_count_mismatch_raises(self):
        machine = Machine(2)
        origloc = [
            pack_resort_index(
                np.array([0], dtype=np.int64), np.array([0], dtype=np.int64)
            ),
            np.zeros(0, dtype=np.int64),
        ]
        pots = [np.array([7.0]), np.zeros(0)]
        fields = [np.zeros((1, 3)), np.zeros((0, 3))]
        particles = ParticleSet(
            [np.zeros((2, 3)), np.zeros((0, 3))],
            [np.zeros(2), np.zeros(0)],
        )
        with pytest.raises(RuntimeError, match="restore received"):
            restore_results(
                machine, origloc, pots, fields, particles, old_counts=[2, 0]
            )
