"""Golden restart-equivalence suite: all four solvers × A/B/B+move.

Every cell runs ``run 2N`` and ``run N + save + restore + run N`` at 2
ranks and must agree byte-for-byte on the component state fingerprints,
the auditor ledger fingerprint and the per-step ``float.hex`` phase-time
breakdown.  The triple is pinned as one sha256 **golden digest per cell**:
a change to any solver's cost model, the redistribution machinery, or the
checkpoint/restore path that moves a single bit anywhere in a trajectory
shows up as a digest mismatch naming the cell.

The same goldens are asserted under :func:`repro.perf.instrument
.reference_mode` — the scalar oracle kernels must reproduce the vectorized
trajectories bitwise (the PR-4 property), and checkpointing must preserve
that.
"""

import hashlib

import pytest

from repro.ckpt.equivalence import (
    EQUIVALENCE_METHODS,
    EQUIVALENCE_SOLVERS,
    run_restart_equivalence,
)
from repro.ckpt.format import dumps
from repro.perf import instrument

CELLS = [
    (solver, method)
    for solver in EQUIVALENCE_SOLVERS
    for method in EQUIVALENCE_METHODS
]

#: sha256 over the canonical JSON of {state fingerprints, ledger
#: fingerprint, per-step float-hex breakdown} of each cell's uninterrupted
#: run (steps=2, nprocs=2, n_particles=16, system_seed=0).  Regenerate via
#: the loop in this file's docstring history only when a deliberate
#: physics/cost-model change is being made.
GOLDEN = {
    ("direct", "A"): "af78eb488fafb8664de204b5d93ae60020471da11dd7642020b720646b7326f8",
    ("direct", "B"): "533faec1682125d6b4df52b5ec62fcdda14f8d8ca2005a4ee163519b825f0fe4",
    ("direct", "B+move"): "39a85a90183973be0f9b1c2055d78a65dccb1d6890f40715dbf2323e73c9c370",
    ("ewald", "A"): "0be6c66269e28e9ca663bc62d94131b5eb662c5b83703bd0d54e857ca8375ae8",
    ("ewald", "B"): "3bc711ac948f87e13ecc343296a748b5dd92becf6a7ee4a5865c66c592ff92fd",
    ("ewald", "B+move"): "52d6f95dcbc3fe2f56cbfb9813212a9d441c406b662853cbe3763c6614eff892",
    ("fmm", "A"): "cd3c507135075475478f6d96d2ecdb49bdfd04dc872b20238c1319f43115c482",
    ("fmm", "B"): "cf7a443067ef6d173cca4b8867f450eaaab1daae87ec0a9a6783d21239663d4f",
    ("fmm", "B+move"): "6e8fa9a29eb000914555c203f5e93c9bb5eb68b44da101ee1fedb7d727fe8343",
    ("p2nfft", "A"): "504ada0fc1ee3f79a06e52fb5972d80b0a2baad0d9d2b8d777d6b9c46568ca00",
    ("p2nfft", "B"): "88fd6903c360506b48b54874781cec458535cda13fb110859dc95ab31a129b89",
    ("p2nfft", "B+move"): "729de40ad67bd153a76e8e7cae8a7062e5d3437f5b78d27a3992871c85ff017e",
}


def cell_digest(cell) -> str:
    return hashlib.sha256(
        dumps(
            {
                "state": cell.state_fingerprint,
                "ledger": cell.ledger_fingerprint,
                "breakdown": cell.breakdown,
            }
        ).encode()
    ).hexdigest()


@pytest.mark.parametrize("solver,method", CELLS, ids=lambda v: str(v))
class TestGoldenRestart:
    def test_vectorized(self, solver, method):
        cell = run_restart_equivalence(solver, method)
        assert cell.ok, cell.detail
        assert cell_digest(cell) == GOLDEN[(solver, method)]

    def test_reference_mode_same_golden(self, solver, method):
        with instrument.reference_mode():
            cell = run_restart_equivalence(solver, method)
        assert cell.ok, cell.detail
        assert cell_digest(cell) == GOLDEN[(solver, method)]


def test_via_file_round_trip_same_golden():
    cell = run_restart_equivalence("fmm", "B+move", via_file=True)
    assert cell.ok, cell.detail
    assert cell_digest(cell) == GOLDEN[("fmm", "B+move")]
