"""The ``python -m repro.ckpt`` command-line interface."""

import pytest

from repro.ckpt import load_checkpoint
from repro.ckpt.cli import main


class TestCkptCli:
    def test_save_restore_resize_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "melt.ckpt.ndjson")
        assert (
            main(
                [
                    "save", "--solver", "fmm", "--method", "B",
                    "--steps", "2", "--nprocs", "4", "--particles", "24",
                    "--out", path,
                ]
            )
            == 0
        )
        assert "saved" in capsys.readouterr().out

        assert main(["restore", "--path", path, "--steps", "1"]) == 0
        out = capsys.readouterr().out
        assert "invariants ok" in out
        assert "positions:" in out

        up = str(tmp_path / "melt6.ckpt.ndjson")
        down = str(tmp_path / "melt4.ckpt.ndjson")
        assert main(["resize", "--path", path, "--nprocs", "6", "--out", up]) == 0
        assert "4 -> 6 ranks" in capsys.readouterr().out
        assert main(["resize", "--path", up, "--nprocs", "4", "--out", down]) == 0
        capsys.readouterr()

        donor = load_checkpoint(path)
        back = load_checkpoint(down)
        got, want = back.gathered(), donor.gathered()
        for name in got:
            assert got[name].tobytes() == want[name].tobytes()

    def test_verify_quick_passes(self, capsys):
        assert (
            main(
                [
                    "verify", "--quick", "--solvers", "direct",
                    "--methods", "B",
                ]
            )
            == 0
        )
        assert "1/1 cells ok" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
