"""Checkpoint capture / NDJSON serialization / restore round-trips."""

import io

import numpy as np
import pytest

from repro.ckpt import (
    CKPT_VERSION,
    capture_checkpoint,
    decode_value,
    encode_value,
    load_checkpoint,
    restore_simulation,
    save_checkpoint,
    write_checkpoint,
)
from repro.ckpt.checkpoint import COLUMNS, Checkpoint
from repro.ckpt.format import dumps, read_lines
from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine
from repro.verify.invariants import InvariantChecker, state_fingerprint


# Deliberately not a conftest.py fixture: a tests/ckpt/conftest.py would
# claim the bare ``conftest`` module name ahead of tests/conftest.py (the
# tests dirs have no __init__.py), breaking ``from conftest import ...``
# in the solver/core suites.
@pytest.fixture
def sim_factory():
    """Build a small simulation (no auditor — tests attach what they need)."""

    def build(solver="fmm", method="B", nprocs=4, n=24, seed=2, **cfg_kwargs):
        machine = Machine(nprocs)
        return Simulation(
            machine,
            silica_melt_system(n, seed=seed),
            SimulationConfig(
                solver=solver,
                method=method,
                seed=seed,
                track_energy=True,
                **cfg_kwargs,
            ),
        )

    return build


class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [0.1, -0.0, 5e-324, float(np.nextafter(1.0, 2.0)), 1e300],
    )
    def test_float_bit_exact(self, value):
        out = decode_value(encode_value(value))
        assert isinstance(out, float)
        assert np.float64(out).tobytes() == np.float64(value).tobytes()

    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(6, dtype=np.int64).reshape(2, 3),
            np.linspace(0, 1, 7),
            np.zeros((0, 3)),
            np.array([np.pi]) * 1e-300,
        ],
    )
    def test_ndarray_bit_exact(self, arr):
        out = decode_value(encode_value(arr))
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert out.tobytes() == np.ascontiguousarray(arr).tobytes()

    def test_nested_containers(self):
        value = {"a": [1, 2.5, None, True], "b": {"c": np.arange(3)}}
        out = decode_value(encode_value(value))
        assert out["a"][:1] + out["a"][2:] == [1, None, True]
        assert np.array_equal(out["b"]["c"], np.arange(3))

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            encode_value(object())


class TestCaptureRoundtrip:
    def test_lines_roundtrip_bitwise(self, sim_factory):
        sim = sim_factory()
        try:
            sim.run(2)
            ckpt = capture_checkpoint(sim)
        finally:
            sim.fcs.destroy()
        back = Checkpoint.from_records(
            [r for r in read_lines(io.StringIO("\n".join(ckpt.to_lines())))]
        )
        for name in COLUMNS:
            for a, b in zip(ckpt.columns(name), back.columns(name)):
                assert a.tobytes() == b.tobytes(), name
        assert back.step_index == ckpt.step_index
        assert back.rng_state == ckpt.rng_state
        # the full serialized forms agree byte for byte
        assert back.to_lines() == ckpt.to_lines()

    def test_save_is_deterministic(self, sim_factory, tmp_path):
        sim = sim_factory(solver="direct", method="A", nprocs=2, n=12)
        try:
            sim.run(1)
            n1 = save_checkpoint(sim, str(tmp_path / "a.ndjson"))
            n2 = save_checkpoint(sim, str(tmp_path / "b.ndjson"))
        finally:
            sim.fcs.destroy()
        assert n1 == n2 > 0
        assert (tmp_path / "a.ndjson").read_bytes() == (
            tmp_path / "b.ndjson"
        ).read_bytes()

    def test_capture_charges_nothing(self, sim_factory):
        sim = sim_factory(nprocs=2, n=12)
        try:
            sim.run(1)
            before = (
                sim.machine.elapsed(),
                sim.machine.trace.total_messages(),
            )
            capture_checkpoint(sim)
            after = (
                sim.machine.elapsed(),
                sim.machine.trace.total_messages(),
            )
        finally:
            sim.fcs.destroy()
        assert before == after

    def test_restore_matches_donor_state(self, sim_factory, tmp_path):
        sim = sim_factory(solver="ewald", method="B+move")
        try:
            sim.run(2)
            donor_fp = state_fingerprint(sim)
            path = str(tmp_path / "c.ndjson")
            write_checkpoint(capture_checkpoint(sim), path)
        finally:
            sim.fcs.destroy()
        restored = restore_simulation(load_checkpoint(path))
        try:
            assert state_fingerprint(restored) == donor_fp
            assert restored.machine.trace.total_messages() > 0
            InvariantChecker(restored).assert_ok()
        finally:
            restored.fcs.destroy()

    def test_load_rejects_foreign_file(self, tmp_path):
        bad = tmp_path / "bad.ndjson"
        bad.write_text(dumps({"kind": "meta", "format": "other"}) + "\n")
        with pytest.raises(ValueError):
            load_checkpoint(str(bad))

    def test_load_rejects_future_version(self, tmp_path, sim_factory):
        sim = sim_factory(nprocs=2, n=12)
        try:
            sim.run(1)
            ckpt = capture_checkpoint(sim)
        finally:
            sim.fcs.destroy()
        ckpt.version = CKPT_VERSION + 1
        path = tmp_path / "future.ndjson"
        write_checkpoint(ckpt, str(path))
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(str(path))


class TestAutoCheckpoint:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            SimulationConfig(checkpoint_every=-1)
        with pytest.raises(ValueError, match="checkpoint_dir"):
            SimulationConfig(checkpoint_every=2)

    def test_periodic_files_and_free_observation(self, sim_factory, tmp_path):
        sim = sim_factory(
            solver="direct",
            method="B",
            nprocs=2,
            n=12,
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
        )
        plain = sim_factory(solver="direct", method="B", nprocs=2, n=12)
        try:
            sim.run(4)
            plain.run(4)
            assert sorted(p.name for p in tmp_path.iterdir()) == [
                "step-000000.ckpt.ndjson",
                "step-000002.ckpt.ndjson",
                "step-000004.ckpt.ndjson",
            ]
            # checkpointing is an out-of-band observation: the checkpointed
            # run's machine story is bitwise the uncheckpointed one's
            assert sim.machine.elapsed() == plain.machine.elapsed()
            assert state_fingerprint(sim) == state_fingerprint(plain)
        finally:
            sim.fcs.destroy()
            plain.fcs.destroy()

    def test_resume_from_auto_checkpoint_continues_identically(
        self, sim_factory, tmp_path
    ):
        sim = sim_factory(
            nprocs=2,
            n=12,
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
        )
        try:
            sim.run(4)
            straight_fp = state_fingerprint(sim)
        finally:
            sim.fcs.destroy()
        resumed = restore_simulation(
            load_checkpoint(str(tmp_path / "step-000002.ckpt.ndjson"))
        )
        try:
            resumed.run(2)
            assert state_fingerprint(resumed) == straight_fp
        finally:
            resumed.fcs.destroy()
