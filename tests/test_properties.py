"""End-to-end property tests (hypothesis): the coupled pipeline preserves
its invariants for arbitrary small systems, process counts and methods."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine

_SYSTEMS = {}


def get_system(n):
    if n not in _SYSTEMS:
        _SYSTEMS[n] = silica_melt_system(n, seed=n)
    return _SYSTEMS[n]


@given(
    n=st.sampled_from([128, 256, 512]),
    nprocs=st.integers(min_value=1, max_value=9),
    method=st.sampled_from(["A", "B", "B+move", "adaptive"]),
    distribution=st.sampled_from(["single", "random", "grid"]),
    solver=st.sampled_from(["fmm", "p2nfft"]),
    steps=st.integers(min_value=1, max_value=3),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_pipeline_invariants(n, nprocs, method, distribution, solver, steps):
    """For any configuration:

    * every particle identity survives (a permutation, never lost/duplicated),
    * particle data stays finite and positions stay inside the box,
    * the total particle count is preserved on every rank set,
    * clocks are monotone and the trace accounts non-negative costs.
    """
    system = get_system(n)
    cfg = SimulationConfig(
        solver=solver,
        method=method,
        distribution=distribution,
        dynamics="brownian",
        brownian_step=0.1,
        adapt_every=2,
        solver_kwargs=(
            {"compute": "skip", "order": 3, "depth": 3, "lattice_shells": 1}
            if solver == "fmm"
            else {"compute": "skip"}
        ),
        seed=3,
    )
    machine = Machine(nprocs)
    sim = Simulation(machine, system, cfg)
    sim.run(steps)

    state = sim.gather_state()
    np.testing.assert_array_equal(state["ids"], np.arange(n))
    assert np.isfinite(state["pos"]).all()
    assert np.all(state["pos"] >= system.offset - 1e-9)
    assert np.all(state["pos"] <= system.offset + system.box + 1e-9)
    assert sim.particles.total() == n
    assert machine.elapsed() >= 0
    for phase in machine.trace.phases():
        stats = machine.trace.get(phase)
        assert stats.time >= 0 and stats.bytes >= 0 and stats.messages >= 0
    # charges remain exactly +-1 and globally neutral
    q = np.concatenate(sim.particles.q)
    assert set(np.unique(q)) <= {-1.0, 1.0}
    assert q.sum() == 0.0
