"""CSV export and ASCII chart rendering."""

import csv
import os

import pytest

from repro.bench.export import ascii_chart, figure_to_csv, write_csv


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "sub" / "x.csv")
        write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


class TestFigureToCsv:
    def test_fig6(self, tmp_path):
        results = {
            "fmm": {"single": {"total": 1.0, "sort": 0.5, "restore": 0.1}},
        }
        paths = figure_to_csv("fig6", results, str(tmp_path))
        assert len(paths) == 1 and os.path.exists(paths[0])

    def test_fig7(self, tmp_path):
        series = {
            "sort": [1.0, 0.1],
            "restore": [0.5, 0.5],
            "resort": [0.0, 0.05],
            "total": [2.0, 1.0],
        }
        results = {"fmm": {"A": dict(series), "B": dict(series)}}
        paths = figure_to_csv("fig7", results, str(tmp_path))
        with open(paths[0]) as fh:
            rows = list(csv.reader(fh))
        assert rows[0][0] == "step"
        assert len(rows) == 3

    def test_fig9(self, tmp_path):
        results = {"p2nfft": {"procs": [16, 64], "A": [2.0, 1.0], "B": [1.9, 1.1], "B+move": [1.8, 0.9]}}
        paths = figure_to_csv("fig9", results, str(tmp_path))
        with open(paths[0]) as fh:
            rows = list(csv.reader(fh))
        assert rows[1] == ["16", "2.0", "1.9", "1.8"]

    def test_unknown(self, tmp_path):
        with pytest.raises(ValueError):
            figure_to_csv("fig99", {}, str(tmp_path))


class TestAsciiChart:
    def test_renders(self):
        out = ascii_chart({"a": [1.0, 10.0, 100.0], "b": [5.0, 5.0, 5.0]})
        assert "*" in out and "+" in out
        assert "log10" in out
        assert len(out.splitlines()) == 14

    def test_linear(self):
        out = ascii_chart({"a": [0.0, 1.0]}, log=False)
        assert "linear" in out

    def test_empty(self):
        assert "empty" in ascii_chart({"a": []})

    def test_constant_series(self):
        out = ascii_chart({"a": [2.0, 2.0]})
        assert "*" in out
