"""Benchmark harness pieces: breakdowns, presets, report formatting."""

import numpy as np
import pytest

from repro.bench.harness import PRESETS, make_machine, make_system, step_breakdown
from repro.bench.report import format_series, format_table
from repro.md.simulation import Simulation, SimulationConfig
from repro.simmpi.costmodel import JUQUEEN, JUROPA
from repro.simmpi.machine import Machine


class TestPresets:
    def test_names(self):
        assert set(PRESETS) == {"quick", "default", "full"}

    def test_full_is_paper_scale(self):
        full = PRESETS["full"]
        assert full.n == 829_440
        assert full.nprocs == 256
        assert full.steps_fig8 == 1000
        assert 16384 in full.fig9_p2nfft_procs

    def test_scaling_order(self):
        assert PRESETS["quick"].n < PRESETS["default"].n <= PRESETS["full"].n


class TestStepBreakdown:
    def test_decomposition(self, small_system):
        m = Machine(4)
        cfg = SimulationConfig(
            solver="p2nfft",
            method="B",
            distribution="random",
            solver_kwargs={"compute": "skip"},
        )
        sim = Simulation(m, small_system, cfg)
        sim.run(1)
        b = step_breakdown(sim.records[1])
        assert b["sort"] > 0
        assert b["resort"] > 0
        assert b["restore"] == 0
        assert b["total"] >= b["sort"] + b["resort"]
        assert b["redist"] >= b["sort"] + b["resort"]


class TestFactories:
    def test_make_machine(self):
        assert make_machine(16, JUROPA).nprocs == 16
        assert make_machine(16, JUQUEEN).topology.name == "torus"

    def test_make_system_cached(self):
        a = make_system(400, 1)
        b = make_system(400, 1)
        assert a is b


class TestReport:
    def test_format_table(self):
        out = format_table(["a", "b"], [["x", 1.5], ["yyy", 2.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "---" in lines[1]
        assert "1.5000e+00" in lines[2]

    def test_format_series(self):
        out = format_series("step", [1, 2], {"s1": [0.1, 0.2], "s2": [1.0, 2.0]})
        assert "step" in out and "s1" in out and "s2" in out
        assert len(out.splitlines()) == 4
