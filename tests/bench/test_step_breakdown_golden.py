"""Golden-trace snapshot of ``bench.harness.step_breakdown``.

The benchmark figures decompose step times by phase label; a renamed or
dropped trace phase silently vanishes from those figures.  This test pins
the exact phase-label sets of one small method-A and one method-B run and
the breakdown keys, so any relabeling fails loudly here instead.
"""

import numpy as np
import pytest

from repro.bench.harness import (
    RESORT_PHASES,
    RESTORE_PHASES,
    SORT_PHASES,
    step_breakdown,
)
from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine

#: the exact keys every step_breakdown must expose (figure columns)
GOLDEN_BREAKDOWN_KEYS = {"sort", "restore", "resort", "total", "redist"}

#: phase labels of one small FMM step under each method (golden snapshot)
GOLDEN_PHASES = {
    "A": {"far", "halo", "integrate", "keygen", "near", "restore", "sort"},
    "B": {"far", "halo", "integrate", "keygen", "near", "resort", "resort_index", "sort"},
}


def run_small(method):
    machine = Machine(4)
    sim = Simulation(
        machine,
        silica_melt_system(32, seed=3),
        SimulationConfig(
            solver="fmm",
            method=method,
            seed=3,
            solver_kwargs={"order": 3, "depth": 3, "lattice_shells": 2},
        ),
    )
    sim.run(2)
    return sim.records[-1]


class TestStepBreakdownGolden:
    @pytest.mark.parametrize("method", ["A", "B"])
    def test_breakdown_keys_pinned(self, method):
        breakdown = step_breakdown(run_small(method))
        assert set(breakdown) == GOLDEN_BREAKDOWN_KEYS

    @pytest.mark.parametrize("method", ["A", "B"])
    def test_phase_labels_pinned(self, method):
        record = run_small(method)
        assert set(record.phases) == GOLDEN_PHASES[method], (
            "trace phase labels changed; update the harness phase constants "
            "(SORT/RESTORE/RESORT/SOLVER_PHASES), the figures and this "
            "snapshot together"
        )

    def test_breakdown_semantics(self):
        rec_a, rec_b = run_small("A"), run_small("B")
        bd_a, bd_b = step_breakdown(rec_a), step_breakdown(rec_b)
        # method A restores, never resorts; method B the other way around
        assert bd_a["restore"] > 0 and bd_a["resort"] == 0
        assert bd_b["resort"] > 0 and bd_b["restore"] == 0
        for rec, bd in ((rec_a, bd_a), (rec_b, bd_b)):
            # redist = sort + restore + resort + resort-index creation
            assert bd["redist"] == pytest.approx(
                bd["sort"]
                + bd["restore"]
                + bd["resort"]
                + rec.phase_time("resort_index")
            )
            assert 0 < bd["redist"] < bd["total"]

    def test_harness_constants_cover_breakdown(self):
        """The breakdown is computed from the harness phase constants; the
        golden label sets must stay consistent with them."""
        redist_labels = set(SORT_PHASES) | set(RESTORE_PHASES) | set(RESORT_PHASES)
        assert redist_labels == {"sort", "restore", "resort", "resort_plan"}
        for method, labels in GOLDEN_PHASES.items():
            # every redistribution label the run produced is accounted for
            produced = labels & redist_labels
            assert produced, f"method {method} produced no redistribution phase"
