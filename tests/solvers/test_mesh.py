"""P2NFFT mesh machinery: CIC, influence function, self-interaction."""

import math

import numpy as np
import pytest

from repro.solvers.p2nfft.mesh import MeshSolver, cic_fractions


@pytest.fixture(scope="module")
def mesh():
    return MeshSolver(24, np.array([10.0, 10.0, 10.0]), np.zeros(3), alpha=1.0)


class TestCIC:
    def test_fractions(self):
        base, frac = cic_fractions(
            np.array([[2.6, 0.1, 9.9]]), np.zeros(3), np.full(3, 0.5), 20
        )
        np.testing.assert_array_equal(base[0], [5, 0, 19])
        np.testing.assert_allclose(frac[0], [0.2, 0.2, 0.8])

    def test_assign_conserves_charge(self, mesh, rng):
        pos = rng.uniform(0, 10, (50, 3))
        q = rng.uniform(-1, 1, 50)
        rho = mesh.assign(pos, q)
        assert rho.sum() == pytest.approx(q.sum())

    def test_assign_on_node_single_cell(self, mesh):
        # a particle exactly on a mesh node loads only that node
        h = mesh.h[0]
        rho = mesh.assign(np.array([[2 * h, 3 * h, 4 * h]]), np.array([1.0]))
        assert rho[2, 3, 4] == pytest.approx(1.0)
        assert np.count_nonzero(rho) == 1

    def test_interpolate_inverse_of_assign_at_nodes(self, mesh):
        h = mesh.h
        grid = np.zeros((mesh.M,) * 3)
        grid[5, 6, 7] = 2.5
        val = mesh.interpolate(grid, np.array([[5 * h[0], 6 * h[1], 7 * h[2]]]))
        assert val[0] == pytest.approx(2.5)

    def test_periodic_wrap(self, mesh):
        rho1 = mesh.assign(np.array([[9.99, 5.0, 5.0]]), np.array([1.0]))
        rho2 = mesh.assign(np.array([[-0.01, 5.0, 5.0]]), np.array([1.0]))
        np.testing.assert_allclose(rho1, rho2, atol=1e-12)

    def test_empty(self, mesh):
        assert mesh.assign(np.zeros((0, 3)), np.zeros(0)).sum() == 0.0
        assert mesh.interpolate(np.zeros((24,) * 3), np.zeros((0, 3))).shape == (0,)


class TestSelfInteraction:
    def test_exact_reproduction(self, mesh, rng):
        """mesh_self_interaction predicts a single particle's own-cloud
        contribution exactly."""
        for _ in range(5):
            x = rng.uniform(0, 10, (1, 3))
            q = np.array([1.0])
            pot_raw, field_raw = mesh.kspace(x, q, x, correct_self=False)
            sp, sf = mesh.mesh_self_interaction(x, q)
            assert pot_raw[0] == pytest.approx(sp[0], rel=1e-12)
            np.testing.assert_allclose(field_raw[0], sf[0], atol=1e-12)

    def test_corrected_single_particle_potential(self, mesh):
        """After correction a lone particle sees exactly its own periodic
        images: psi0 - 2 alpha / sqrt(pi)."""
        x = np.array([[3.3, 7.7, 1.2]])
        q = np.array([1.0])
        pot, field = mesh.kspace(x, q, x, correct_self=True)
        expected = mesh.psi0 - 2.0 * mesh.alpha / math.sqrt(math.pi)
        assert pot[0] == pytest.approx(expected, rel=1e-12)
        np.testing.assert_allclose(field[0], 0.0, atol=1e-12)

    def test_psi0_alpha_dependence(self):
        box = np.array([10.0, 10.0, 10.0])
        m1 = MeshSolver(16, box, np.zeros(3), alpha=0.8)
        m2 = MeshSolver(16, box, np.zeros(3), alpha=1.2)
        assert m1.psi0 != pytest.approx(m2.psi0)


class TestKSpaceAccuracy:
    def exact_kspace(self, pos, q, L, alpha, kmax=16):
        ms = np.arange(-kmax, kmax + 1)
        mx, my, mz = np.meshgrid(ms, ms, ms, indexing="ij")
        mv = np.stack([mx.ravel(), my.ravel(), mz.ravel()], 1)
        mv = mv[np.any(mv != 0, 1)]
        kv = 2 * np.pi * mv / L
        k2 = (kv * kv).sum(1)
        g = 4 * np.pi / L ** 3 * np.exp(-k2 / (4 * alpha ** 2)) / k2
        pot = np.zeros(pos.shape[0])
        for s in range(0, kv.shape[0], 2048):
            kvc, gc = kv[s:s + 2048], g[s:s + 2048]
            ph = pos @ kvc.T
            c, sn = np.cos(ph), np.sin(ph)
            pot += c @ (gc * (q @ c)) + sn @ (gc * (q @ sn))
        return pot - 2 * alpha / math.sqrt(math.pi) * q

    def test_converges_with_mesh(self, rng):
        L = 10.0
        n = 60
        pos = rng.uniform(0, L, (n, 3))
        q = np.ones(n)
        q[n // 2:] = -1
        exact = self.exact_kspace(pos, q, L, 1.0)
        errs = []
        for M in (16, 32):
            mesh = MeshSolver(M, np.full(3, L), np.zeros(3), 1.0)
            pm, _ = mesh.kspace(pos, q, pos)
            errs.append(np.sqrt(((pm - exact) ** 2).mean()))
        assert errs[1] < errs[0] / 2.5
        assert errs[1] < 6e-3

    def test_pair_kernel_accuracy(self):
        """The effective mesh pair interaction matches the exact k-space
        kernel to ~1e-4 at moderate resolution (optimal influence)."""
        L = 10.0
        mesh = MeshSolver(32, np.full(3, L), np.zeros(3), 1.0)
        rng = np.random.default_rng(7)
        for _ in range(4):
            x1 = rng.uniform(0, L, 3)
            x2 = (x1 + rng.uniform(-L / 2, L / 2, 3)) % L
            pos = np.stack([x1, x2])
            q = np.array([1.0, 0.0])
            pm, _ = mesh.kspace(pos, q, pos, correct_self=False)
            exact = self.exact_kspace(pos, np.array([1.0, 0.0]), L, 1.0, kmax=18)
            # compare the potential induced at the passive test particle
            exact_pair = exact[1] - 0.0  # q2 = 0: no self part
            assert pm[1] == pytest.approx(exact_pair, abs=5e-4)

    def test_mesh_too_small_rejected(self):
        with pytest.raises(ValueError):
            MeshSolver(2, np.full(3, 10.0), np.zeros(3), 1.0)
