"""Cartesian Taylor expansion machinery: recurrence, operators, identities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers.fmm.expansions import (
    Expansion,
    MultiIndexSet,
    derivative_tensors,
    multi_index_set,
)


class TestMultiIndexSet:
    @pytest.mark.parametrize("p,ncoef", [(0, 1), (1, 4), (2, 10), (3, 20), (4, 35)])
    def test_ncoef(self, p, ncoef):
        assert MultiIndexSet(p).ncoef == ncoef

    def test_graded_order(self):
        mis = MultiIndexSet(3)
        assert np.all(np.diff(mis.degree) >= 0)

    def test_position_inverse(self):
        mis = MultiIndexSet(4)
        for i, a in enumerate(mis.indices):
            assert mis.position[tuple(a)] == i

    def test_factorials(self):
        mis = MultiIndexSet(3)
        i = mis.position[(2, 1, 0)]
        assert mis.factorial[i] == 2.0

    def test_monomials(self):
        mis = MultiIndexSet(2)
        d = np.array([[2.0, 3.0, 5.0]])
        mono = mis.monomials(d)
        assert mono[0, mis.position[(0, 0, 0)]] == 1.0
        assert mono[0, mis.position[(1, 1, 0)]] == 6.0
        assert mono[0, mis.position[(0, 0, 2)]] == 25.0

    def test_negative_order(self):
        with pytest.raises(ValueError):
            MultiIndexSet(-1)


class TestDerivativeTensors:
    def test_base_case(self):
        x = np.array([[3.0, 0.0, 4.0]])
        T = derivative_tensors(x, 0)
        assert T[0, 0] == pytest.approx(0.2)

    def test_first_derivatives(self):
        x = np.array([[1.0, 2.0, 2.0]])  # r = 3
        mis = multi_index_set(1)
        T = derivative_tensors(x, 1)
        np.testing.assert_allclose(
            [T[0, mis.position[(1, 0, 0)]], T[0, mis.position[(0, 1, 0)]]],
            [-1.0 / 27.0, -2.0 / 27.0],
        )

    def test_harmonicity(self, rng):
        """1/r is harmonic: the trace of second derivatives vanishes."""
        mis = multi_index_set(2)
        pts = rng.uniform(1.0, 3.0, (20, 3))
        T = derivative_tensors(pts, 2)
        lap = (
            T[:, mis.position[(2, 0, 0)]]
            + T[:, mis.position[(0, 2, 0)]]
            + T[:, mis.position[(0, 0, 2)]]
        )
        np.testing.assert_allclose(lap, 0.0, atol=1e-12)

    def test_laplacian_of_higher_orders(self, rng):
        """Every derivative of a harmonic function is harmonic."""
        mis = multi_index_set(4)
        pts = rng.uniform(1.0, 2.0, (10, 3))
        T = derivative_tensors(pts, 4)
        for a in [(1, 0, 0), (1, 1, 0), (2, 0, 0)]:
            lap = sum(
                T[:, mis.position[tuple(np.add(a, e))]]
                for e in [(2, 0, 0), (0, 2, 0), (0, 0, 2)]
            )
            np.testing.assert_allclose(lap, 0.0, atol=1e-10)

    def test_symmetry_of_mixed_partials(self, rng):
        """d^a is independent of differentiation order by construction, but
        the recurrence must give consistent values regardless of which
        coordinate is eliminated first — verified against a second
        evaluation point reflected through coordinate swaps."""
        mis = multi_index_set(3)
        x = np.array([[0.7, -1.1, 1.9]])
        T = derivative_tensors(x, 3)
        # swap x and y: T_(a,b,c)(x,y,z) == T_(b,a,c)(y,x,z)
        xs = x[:, [1, 0, 2]]
        Ts = derivative_tensors(xs, 3)
        for a in mis.indices:
            i = mis.position[tuple(a)]
            j = mis.position[(a[1], a[0], a[2])]
            assert T[0, i] == pytest.approx(Ts[0, j], rel=1e-12)

    def test_origin_rejected(self):
        with pytest.raises(ValueError):
            derivative_tensors(np.zeros((1, 3)), 2)

    def test_scaling_homogeneity(self, rng):
        mis = multi_index_set(3)
        u = rng.uniform(1.0, 2.0, (1, 3))
        s = 0.37
        T1 = derivative_tensors(u * s, 3)
        T2 = derivative_tensors(u, 3)
        scale = s ** -(mis.degree + 1.0)
        np.testing.assert_allclose(T1[0], T2[0] * scale, rtol=1e-12)


class TestOperators:
    def direct(self, src, q, x):
        d = x - src
        r = np.linalg.norm(d, axis=1)
        return float((q / r).sum()), (q[:, None] * d / r[:, None] ** 3).sum(axis=0)

    @pytest.fixture(scope="class")
    def cloud(self):
        rng = np.random.default_rng(0)
        src = rng.uniform(-0.5, 0.5, (40, 3))
        q = rng.uniform(-1, 1, 40)
        return src, q

    def test_m2p_converges_with_order(self, cloud):
        src, q = cloud
        x = np.array([[5.0, 2.0, -3.0]])
        exact, _ = self.direct(src, q, x)
        errs = []
        for p in (2, 4, 6):
            e = Expansion(p)
            M = e.p2m(src, q)
            pot, _ = e.m2p(M, x)
            errs.append(abs(pot[0] - exact))
        assert errs[0] > errs[1] > errs[2]
        assert errs[2] < 1e-6

    def test_m2m_preserves_far_field(self, cloud):
        src, q = cloud
        e = Expansion(5)
        M = e.p2m(src, q)
        new_center = np.array([0.2, -0.3, 0.1])
        M2 = e.m2m_matrix(-new_center) @ M
        x = np.array([[6.0, 1.0, 2.0]])
        p1, _ = e.m2p(M, x)
        p2, _ = e.m2p(M2, x - new_center)
        # M2M is exact on the truncated moments; the two evaluations differ
        # only by their (slightly different) truncation remainders
        assert p1[0] == pytest.approx(p2[0], rel=1e-3, abs=1e-5)

    def test_m2l_l2p_pipeline(self, cloud):
        src, q = cloud
        e = Expansion(6)
        M = e.p2m(src, q)
        lcen = np.array([4.0, 1.0, -2.0])
        L = e.m2l_matrices(lcen) @ M
        pts = lcen + np.random.default_rng(1).uniform(-0.3, 0.3, (6, 3))
        pot, field = e.l2p(np.broadcast_to(L, (6, L.shape[0])), pts - lcen)
        for i in range(6):
            exact_p, exact_f = self.direct(src, q, pts[i:i + 1])
            assert pot[i] == pytest.approx(exact_p, rel=1e-4)
            np.testing.assert_allclose(field[i], exact_f, rtol=2e-3, atol=1e-6)

    def test_l2l_exact(self, cloud):
        """Local-to-local translation is exact (no truncation)."""
        src, q = cloud
        e = Expansion(4)
        M = e.p2m(src, q)
        lcen = np.array([5.0, 0.0, 0.0])
        L = e.m2l_matrices(lcen) @ M
        shift = np.array([0.15, -0.2, 0.1])
        L2 = e.l2l_matrix(shift) @ L
        pts = lcen + shift + np.array([[0.05, 0.03, -0.02]])
        p1, _ = e.l2p(np.broadcast_to(L, (1, L.shape[0])), pts - lcen)
        p2, _ = e.l2p(np.broadcast_to(L2, (1, L.shape[0])), pts - lcen - shift)
        assert p1[0] == pytest.approx(p2[0], rel=1e-12)

    def test_m2l_from_tensors_matches(self):
        e = Expansion(3)
        t = np.array([3.0, -2.0, 4.0])
        K1 = e.m2l_matrices(t)
        T = derivative_tensors(t[None, :], 6)[0]
        K2 = e.m2l_matrix_from_tensors(T)
        np.testing.assert_allclose(K1, K2, rtol=1e-12)

    def test_m2l_scale_identity(self):
        e = Expansion(4)
        u = np.array([2.5, 1.0, -1.5])
        s = 0.25
        K1 = e.m2l_matrices(u * s)
        K2 = e.m2l_matrices(u) * e.m2l_scale(s)
        np.testing.assert_allclose(K1, K2, rtol=1e-10)

    def test_field_is_negative_gradient_of_l2p(self, cloud):
        src, q = cloud
        e = Expansion(6)
        M = e.p2m(src, q)
        lcen = np.array([4.0, 0.0, 0.0])
        L = e.m2l_matrices(lcen) @ M
        x = np.array([[4.1, 0.05, -0.08]])
        _, field = e.l2p(np.broadcast_to(L, (1, L.shape[0])), x - lcen)
        h = 1e-6
        for d in range(3):
            xp = x.copy()
            xp[0, d] += h
            xm = x.copy()
            xm[0, d] -= h
            pp, _ = e.l2p(np.broadcast_to(L, (1, L.shape[0])), xp - lcen)
            pm, _ = e.l2p(np.broadcast_to(L, (1, L.shape[0])), xm - lcen)
            assert field[0, d] == pytest.approx(-(pp[0] - pm[0]) / (2 * h), rel=1e-5)
