"""Ragged pair generation and pairwise kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers.common.pairs import coulomb_pairs, erfc_pairs, ragged_cross, segment_starts


class TestRaggedCross:
    def test_simple(self):
        ti, si = ragged_cross([0], [2], [5], [7])
        np.testing.assert_array_equal(ti, [0, 0, 1, 1])
        np.testing.assert_array_equal(si, [5, 6, 5, 6])

    def test_empty_segments_skipped(self):
        ti, si = ragged_cross([0, 2], [2, 2], [0, 0], [1, 5])
        np.testing.assert_array_equal(ti, [0, 1])
        np.testing.assert_array_equal(si, [0, 0])

    def test_all_empty(self):
        ti, si = ragged_cross([0], [0], [0], [5])
        assert ti.size == 0 and si.size == 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_counts(self, seg_sizes):
        # build consecutive target and source segments
        t_starts, t_ends, s_starts, s_ends = [], [], [], []
        toff = soff = 0
        for nt, ns in seg_sizes:
            t_starts.append(toff)
            t_ends.append(toff + nt)
            s_starts.append(soff)
            s_ends.append(soff + ns)
            toff += nt
            soff += ns
        ti, si = ragged_cross(t_starts, t_ends, s_starts, s_ends)
        assert ti.shape[0] == sum(nt * ns for nt, ns in seg_sizes)
        # every pair index within its segment bounds
        for k in range(ti.shape[0]):
            seg = next(
                i for i in range(len(seg_sizes))
                if t_starts[i] <= ti[k] < t_ends[i]
            )
            assert s_starts[seg] <= si[k] < s_ends[seg]


def test_segment_starts():
    ids = np.array([0, 0, 2, 2, 2, 3])
    starts = segment_starts(ids, 4)
    np.testing.assert_array_equal(starts, [0, 2, 2, 5, 6])


class TestCoulombPairs:
    def test_two_charges(self):
        tpos = np.array([[0.0, 0.0, 0.0]])
        spos = np.array([[2.0, 0.0, 0.0]])
        q = np.array([3.0])
        pot, field, cnt = coulomb_pairs(tpos, spos, q, np.array([0]), np.array([0]))
        assert cnt == 1
        assert pot[0] == pytest.approx(1.5)  # 3/2
        np.testing.assert_allclose(field[0], [-0.75, 0, 0])  # 3*(-2)/8

    def test_self_pair_skipped(self):
        p = np.zeros((1, 3))
        pot, field, cnt = coulomb_pairs(p, p, np.ones(1), np.array([0]), np.array([0]))
        assert cnt == 0
        assert pot[0] == 0.0

    def test_cutoff(self):
        tpos = np.zeros((1, 3))
        spos = np.array([[3.0, 0, 0], [1.0, 0, 0]])
        q = np.ones(2)
        ti = np.array([0, 0])
        si = np.array([0, 1])
        pot, _, cnt = coulomb_pairs(tpos, spos, q, ti, si, cutoff=2.0)
        assert cnt == 1
        assert pot[0] == pytest.approx(1.0)

    def test_minimum_image(self):
        box = np.array([10.0, 10.0, 10.0])
        tpos = np.array([[0.5, 0, 0]])
        spos = np.array([[9.5, 0, 0]])
        pot, field, _ = coulomb_pairs(
            tpos, spos, np.ones(1), np.array([0]), np.array([0]), box=box
        )
        assert pot[0] == pytest.approx(1.0)  # distance 1 across the boundary
        assert field[0][0] == pytest.approx(1.0)  # source sits at -1 in image


class TestErfcPairs:
    def test_matches_scipy(self):
        from scipy.special import erfc as sp_erfc

        tpos = np.zeros((1, 3))
        spos = np.array([[1.5, 0, 0]])
        alpha = 0.8
        pot, field, cnt = erfc_pairs(
            tpos, spos, np.array([2.0]), np.array([0]), np.array([0]), alpha, 4.0
        )
        assert pot[0] == pytest.approx(2.0 * sp_erfc(alpha * 1.5) / 1.5)
        assert cnt == 1

    def test_field_is_gradient(self):
        rng = np.random.default_rng(0)
        spos = rng.uniform(-1, 1, (5, 3)) + 3.0
        q = rng.uniform(-1, 1, 5)
        alpha, rc = 0.7, 50.0
        x = np.zeros((1, 3))
        h = 1e-6

        def phi(p):
            pot, _, _ = erfc_pairs(
                p, spos, q, np.zeros(5, dtype=int), np.arange(5), alpha, rc
            )
            return pot[0]

        pot, field, _ = erfc_pairs(
            x, spos, q, np.zeros(5, dtype=int), np.arange(5), alpha, rc
        )
        for d in range(3):
            xp = x.copy()
            xp[0, d] += h
            xm = x.copy()
            xm[0, d] -= h
            grad = (phi(xp) - phi(xm)) / (2 * h)
            assert field[0, d] == pytest.approx(-grad, rel=1e-5, abs=1e-8)

    def test_beyond_cutoff_zero(self):
        pot, field, cnt = erfc_pairs(
            np.zeros((1, 3)),
            np.array([[5.0, 0, 0]]),
            np.ones(1),
            np.array([0]),
            np.array([0]),
            1.0,
            2.0,
        )
        assert cnt == 0 and pot[0] == 0.0
