"""The parallel direct solver (baseline) through the library interface."""

import numpy as np
import pytest

from repro.core.handle import fcs_init
from repro.simmpi.machine import Machine
from repro.solvers.ewald_ref import ewald_sum
from conftest import random_particle_set


def test_matches_ewald(small_system):
    m = Machine(4)
    pset, owner = random_particle_set(small_system, 4)
    fcs = fcs_init("direct", m)
    fcs.set_common(box=small_system.box, periodic=True)
    fcs.tune(pset)
    report = fcs.run(pset)
    assert not report.changed
    pe, _ = ewald_sum(small_system.pos, small_system.q, small_system.box, accuracy=1e-10)
    got = np.concatenate(pset.pot)
    expected = np.concatenate([pe[owner == r] for r in range(4)])
    np.testing.assert_allclose(got, expected, rtol=1e-7)


def test_never_resorts(small_system):
    m = Machine(4)
    pset, _ = random_particle_set(small_system, 4)
    fcs = fcs_init("direct", m)
    fcs.set_common(box=small_system.box, periodic=True)
    fcs.set_resort(True)
    fcs.tune(pset)
    report = fcs.run(pset)
    assert not report.changed
    assert not fcs.resort_availability()


def test_open_boundaries(small_system):
    from repro.solvers.direct import direct_sum

    m = Machine(2)
    pset, owner = random_particle_set(small_system, 2)
    fcs = fcs_init("direct", m)
    fcs.set_common(box=small_system.box, periodic=False)
    fcs.tune(pset)
    fcs.run(pset)
    pd, _ = direct_sum(small_system.pos, small_system.q)
    got = np.concatenate(pset.pot)
    expected = np.concatenate([pd[owner == r] for r in range(2)])
    np.testing.assert_allclose(got, expected, rtol=1e-10)


def test_charges_gather_comm(small_system):
    m = Machine(4)
    pset, _ = random_particle_set(small_system, 4)
    fcs = fcs_init("direct", m)
    fcs.set_common(box=small_system.box, periodic=True)
    fcs.tune(pset)
    fcs.run(pset)
    assert m.trace.get("gather").time > 0
    assert m.trace.get("near").time > 0
