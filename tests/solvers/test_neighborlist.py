"""Verlet neighbor lists: correctness, reuse, movement-budget invalidation."""

import numpy as np
import pytest

from repro.solvers.p2nfft.linked_cell import LinkedCellNearField
from repro.solvers.p2nfft.neighborlist import VerletNeighborList


@pytest.fixture
def system(rng):
    L = 12.0
    n = 150
    pos = rng.uniform(0, L, (n, 3))
    q = rng.uniform(-1, 1, n)
    return pos, q, np.full(3, L)


class TestCorrectness:
    def test_matches_linked_cell(self, system):
        pos, q, box = system
        nl = VerletNeighborList(box, np.zeros(3), rc=2.5, alpha=0.8, skin=0.4)
        lc = LinkedCellNearField(box, np.zeros(3), 2.5, 0.8)
        p1, f1, _ = nl.compute(pos, q)
        p2, f2, _ = lc.compute(pos, pos, q)
        np.testing.assert_allclose(p1, p2, rtol=1e-12)
        np.testing.assert_allclose(f1, f2, rtol=1e-12)

    def test_correct_after_small_moves(self, system, rng):
        pos, q, box = system
        nl = VerletNeighborList(box, np.zeros(3), rc=2.5, alpha=0.8, skin=0.6)
        lc = LinkedCellNearField(box, np.zeros(3), 2.5, 0.8)
        nl.compute(pos, q)
        for _ in range(4):
            step = rng.uniform(-0.05, 0.05, pos.shape)
            pos = (pos + step) % box[0]
            mv = float(np.sqrt((step ** 2).sum(1).max()))
            p1, f1, _ = nl.compute(pos, q, max_move=mv)
            p2, f2, _ = lc.compute(pos, pos, q)
            np.testing.assert_allclose(p1, p2, rtol=1e-10)
            np.testing.assert_allclose(f1, f2, rtol=1e-10)
        assert nl.reuses >= 3


class TestCachePolicy:
    def test_reuses_within_budget(self, system):
        pos, q, box = system
        nl = VerletNeighborList(box, np.zeros(3), rc=2.5, alpha=0.8, skin=1.0)
        nl.compute(pos, q)
        nl.compute(pos, q, max_move=0.1)
        nl.compute(pos, q, max_move=0.1)
        assert nl.rebuilds == 1
        assert nl.reuses == 2

    def test_budget_accumulates(self, system):
        pos, q, box = system
        nl = VerletNeighborList(box, np.zeros(3), rc=2.5, alpha=0.8, skin=1.0)
        nl.compute(pos, q)
        for _ in range(6):
            nl.compute(pos, q, max_move=0.12)  # budget 0.5 crossed at #5
        assert nl.rebuilds == 2

    def test_unknown_movement_rebuilds(self, system):
        pos, q, box = system
        nl = VerletNeighborList(box, np.zeros(3), rc=2.5, alpha=0.8, skin=1.0)
        nl.compute(pos, q)
        nl.compute(pos, q)  # no max_move given
        assert nl.rebuilds == 2

    def test_size_change_rebuilds(self, system):
        pos, q, box = system
        nl = VerletNeighborList(box, np.zeros(3), rc=2.5, alpha=0.8, skin=1.0)
        nl.compute(pos, q)
        nl.compute(pos[:-5], q[:-5], max_move=0.0)
        assert nl.rebuilds == 2

    def test_invalidate(self, system):
        pos, q, box = system
        nl = VerletNeighborList(box, np.zeros(3), rc=2.5, alpha=0.8, skin=1.0)
        nl.compute(pos, q)
        nl.invalidate()
        nl.compute(pos, q, max_move=0.0)
        assert nl.rebuilds == 2

    def test_bad_skin(self, system):
        _, _, box = system
        with pytest.raises(ValueError):
            VerletNeighborList(box, np.zeros(3), 2.5, 0.8, skin=0.0)
