"""Model-driven parameter tuning for both solvers."""

import numpy as np
import pytest

from repro.solvers.fmm.tuning import (
    TuningPlan,
    choose_depth,
    choose_order,
    optimal_occupancy,
    plan_parameters,
    predict_cost,
)
from repro.solvers.p2nfft.tuning import (
    optimize_cutoff,
    suggest_cutoff,
    tune_ewald_splitting,
)


class TestFMMOrder:
    def test_monotone_in_accuracy(self):
        assert choose_order(1e-2) <= choose_order(1e-4) <= choose_order(1e-8)

    def test_bounds(self):
        assert choose_order(0.5) >= 2
        assert choose_order(1e-30) <= 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            choose_order(0.0)


class TestFMMDepth:
    def test_grows_with_n(self):
        assert choose_depth(10 ** 3, 5, True) <= choose_depth(10 ** 6, 5, True)

    def test_periodic_minimum(self):
        assert choose_depth(10, 3, periodic=True) >= 3
        assert choose_depth(10, 3, periodic=False) >= 2

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            choose_depth(0, 3, True)

    def test_occupancy_positive(self):
        assert optimal_occupancy(4) > 1.0


class TestFMMPlan:
    def test_plan_minimizes_predicted_cost(self):
        plan = plan_parameters(50_000, 1e-3, periodic=True)
        assert isinstance(plan, TuningPlan)
        for cost, depth in plan.candidates:
            assert plan.predicted_cost <= cost

    def test_deeper_for_more_particles(self):
        small = plan_parameters(2_000, 1e-3, True)
        big = plan_parameters(2_000_000, 1e-3, True)
        assert big.depth >= small.depth

    def test_predict_cost_tradeoff(self):
        """Too-shallow trees pay near-field, too-deep trees pay far-field."""
        n = 340_000
        costs = [predict_cost(n, 5, d, True) for d in (3, 4, 5, 6)]
        best = int(np.argmin(costs))
        assert 0 < best < 3  # interior optimum


class TestP2NFFTTuning:
    box = np.full(3, 33.26)

    def test_splitting_monotone(self):
        a1, m1 = tune_ewald_splitting(self.box, 4.0, 1e-3)
        a2, m2 = tune_ewald_splitting(self.box, 4.0, 1e-5)
        assert a2 > a1 and m2 > m1

    def test_splitting_cutoff_dependence(self):
        a_small, _ = tune_ewald_splitting(self.box, 2.0, 1e-3)
        a_big, _ = tune_ewald_splitting(self.box, 6.0, 1e-3)
        assert a_small > a_big  # smaller cutoff needs sharper screening

    def test_optimize_cutoff_in_range(self):
        rc = optimize_cutoff(self.box, 2000, 1e-3)
        assert 0 < rc <= 0.5 * self.box.min()

    def test_optimize_beats_endpoints(self):
        """The optimizer's cutoff costs no more than the extreme choices."""
        from repro import kernels

        n = 2000
        rho = n / float(np.prod(self.box))

        def model_cost(rc):
            alpha, M = tune_ewald_splitting(self.box, rc, 1e-3)
            near = n * rho * (4 / 3) * np.pi * rc ** 3 * kernels.ERFC_PAIR
            mesh = (
                n * 5 * kernels.MESH_ASSIGNMENT
                + 5 * M ** 3 * 3 * np.log2(M) * kernels.FFT_POINT_STAGE
            )
            return near + mesh

        rc_opt = optimize_cutoff(self.box, n, 1e-3)
        for rc in (2.0, 0.5 * self.box.min() * 0.99):
            assert model_cost(rc_opt) <= model_cost(rc) * 1.01

    def test_density_scaling_of_suggest(self):
        dense = suggest_cutoff(self.box, 20_000)
        sparse = suggest_cutoff(self.box, 200)
        assert dense < sparse
