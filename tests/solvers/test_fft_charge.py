"""The distributed-FFT cost charge (pencil transposes + butterflies)."""

import numpy as np
import pytest

from repro.simmpi.costmodel import JUQUEEN, JUROPA
from repro.simmpi.machine import Machine
from repro.solvers.p2nfft.solver import charge_parallel_fft


class TestChargeParallelFFT:
    def test_advances_clocks_and_counts(self):
        m = Machine(16, profile=JUROPA)
        charge_parallel_fft(m, 32, 5, "fft")
        st = m.trace.get("fft")
        assert st.time > 0
        assert st.messages > 0
        assert st.bytes > 0

    def test_compute_scales_inverse_with_p(self):
        """Strong scaling: per-rank butterfly work shrinks with P."""
        times = []
        for P in (4, 64):
            m = Machine(P, cost_model=JUROPA.cost_model)
            charge_parallel_fft(m, 64, 1, "fft")
            times.append(m.elapsed())
        assert times[1] < times[0]

    def test_cost_grows_with_mesh(self):
        t = []
        for M in (16, 64):
            m = Machine(8, profile=JUROPA)
            charge_parallel_fft(m, M, 1, "fft")
            t.append(m.elapsed())
        assert t[1] > 8 * t[0]  # ~M^3 growth

    def test_transforms_linear(self):
        m1 = Machine(8, profile=JUROPA)
        charge_parallel_fft(m1, 32, 1, "fft")
        m5 = Machine(8, profile=JUROPA)
        charge_parallel_fft(m5, 32, 5, "fft")
        assert m5.elapsed() == pytest.approx(5 * m1.elapsed(), rel=0.01)

    def test_torus_costs_more_than_tree(self):
        """The torus pays its limited bisection (and slower cores) on the
        transpose-heavy FFT at every scale."""
        def per_rank_time(profile, P):
            m = Machine(P, profile=profile)
            charge_parallel_fft(m, 128, 1, "fft")
            return m.elapsed()

        for P in (256, 1024):
            assert per_rank_time(JUQUEEN, P) > per_rank_time(JUROPA, P)

    def test_both_platforms_strong_scale(self):
        for profile in (JUROPA, JUQUEEN):
            m_small = Machine(256, profile=profile)
            charge_parallel_fft(m_small, 128, 1, "fft")
            m_big = Machine(4096, profile=profile)
            charge_parallel_fft(m_big, 128, 1, "fft")
            assert m_big.elapsed() < m_small.elapsed()
