"""FMM halo exchange: completeness and ownership invariants."""

import numpy as np
import pytest

from repro.core.handle import fcs_init
from repro.core.particles import ColumnBlock, ParticleSet
from repro.simmpi.machine import Machine
from repro.sorting.partition_sort import partition_sort
from repro.zorder.morton import morton_decode3, morton_encode3
from conftest import random_particle_set


@pytest.fixture
def sorted_state(small_system):
    """A solver mid-run state: blocks parallel-sorted by Morton key."""
    P = 6
    m = Machine(P)
    pset, _ = random_particle_set(small_system, P, seed=8)
    fcs = fcs_init("fmm", m, order=3, depth=3, lattice_shells=1)
    fcs.set_common(box=small_system.box, periodic=True)
    fcs.tune(pset)
    solver = fcs.solver
    blocks = solver._make_blocks(pset)
    blocks, _ = solver._sort(blocks, None)
    return m, solver, blocks


class TestOwnership:
    def test_ranges_cover_all_keys(self, sorted_state):
        m, solver, blocks = sorted_state
        rank_ids, min_keys, max_keys = solver._ownership(blocks)
        for r, b in enumerate(blocks):
            if b.n == 0:
                assert r not in rank_ids
                continue
            i = list(rank_ids).index(r)
            assert min_keys[i] == b["key"][0]
            assert max_keys[i] == b["key"][-1]

    def test_owners_of_keys_finds_all(self, sorted_state):
        m, solver, blocks = sorted_state
        ownership = solver._ownership(blocks)
        # every particle's own key must resolve to (at least) its rank
        for r, b in enumerate(blocks):
            if b.n == 0:
                continue
            keys = np.unique(b["key"])
            ki, owners = solver._owners_of_keys(keys, *ownership)
            found = set(zip(ki.tolist(), owners.tolist()))
            for i in range(keys.shape[0]):
                assert any(k == i and o == r for k, o in found)


class TestHaloCompleteness:
    def test_every_neighbor_box_particle_present(self, sorted_state):
        """After the halo exchange, each rank holds a copy of every particle
        located in a box adjacent (incl. wrapped) to one of its boxes."""
        m, solver, blocks = sorted_state
        ownership = solver._ownership(blocks)
        halo = solver._halo_exchange(blocks, ownership)
        nside = solver.tree.nside_leaf

        # global registry: box key -> particle position multiset
        all_keys = np.concatenate([b["key"] for b in blocks])
        all_pos = np.concatenate([b["pos"] for b in blocks])

        for r, b in enumerate(blocks):
            if b.n == 0:
                continue
            local_pos = np.concatenate([b["pos"], halo[r]["pos"]]) if halo[r].n else b["pos"]
            local_keys = np.concatenate([b["key"], halo[r]["key"]]) if halo[r].n else b["key"]
            boxes = np.unique(b["key"])
            bx, by, bz = (c.astype(np.int64) for c in morton_decode3(boxes))
            needed = set()
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for dz in (-1, 0, 1):
                        nk = morton_encode3(
                            (bx + dx) % nside, (by + dy) % nside, (bz + dz) % nside
                        )
                        needed.update(nk.tolist())
            for key in needed:
                global_count = int((all_keys == key).sum())
                local_count = int((local_keys == key).sum())
                assert local_count == global_count, (r, key)

    def test_halo_excludes_self(self, sorted_state):
        """Halo copies never come from the receiving rank itself."""
        m, solver, blocks = sorted_state
        ownership = solver._ownership(blocks)
        halo = solver._halo_exchange(blocks, ownership)
        for r in range(m.nprocs):
            if halo[r].n == 0 or blocks[r].n == 0:
                continue
            # no halo particle position duplicates an owned one
            own = {tuple(np.round(p * 1e9).astype(np.int64)) for p in blocks[r]["pos"]}
            hal = [tuple(np.round(p * 1e9).astype(np.int64)) for p in halo[r]["pos"]]
            assert not own.intersection(hal)
