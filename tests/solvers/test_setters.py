"""Solver-specific setter functions and the machine imbalance diagnostic."""

import numpy as np
import pytest

from repro.core.handle import fcs_init
from repro.md.distributions import distribute
from repro.simmpi.machine import Machine
from conftest import random_particle_set


class TestFMMSetters:
    def test_set_order_depth(self, small_system):
        m = Machine(2)
        fcs = fcs_init("fmm", m, lattice_shells=1)
        fcs.solver.set_order(3)
        fcs.solver.set_depth(3)
        fcs.set_common(box=small_system.box, periodic=True)
        pset, _ = random_particle_set(small_system, 2)
        fcs.tune(pset)
        assert fcs.solver.tree.p == 3
        assert fcs.solver.tree.depth == 3

    def test_invalid_order(self, small_system):
        m = Machine(2)
        fcs = fcs_init("fmm", m)
        with pytest.raises(ValueError):
            fcs.solver.set_order(1)


class TestP2NFFTSetters:
    def test_set_cutoff_alpha_mesh(self, small_system):
        m = Machine(2)
        fcs = fcs_init("p2nfft", m)
        fcs.solver.set_cutoff(3.0)
        fcs.solver.set_alpha(0.9)
        fcs.solver.set_mesh_size(16)
        fcs.set_common(box=small_system.box, periodic=True)
        pset, _ = random_particle_set(small_system, 2)
        fcs.tune(pset)
        assert fcs.solver.rc == 3.0
        assert fcs.solver.alpha == 0.9
        assert fcs.solver.mesh_size == 16

    @pytest.mark.parametrize("setter,value", [("set_cutoff", -1.0), ("set_alpha", 0.0), ("set_mesh_size", 2)])
    def test_invalid(self, setter, value):
        fcs = fcs_init("p2nfft", Machine(2))
        with pytest.raises(ValueError):
            getattr(fcs.solver, setter)(value)


class TestImbalance:
    def test_balanced(self):
        m = Machine(4)
        m.compute(np.ones(4), "x")
        assert m.imbalance() == pytest.approx(0.0)

    def test_single_hot_rank(self):
        m = Machine(4)
        m.compute(np.array([4.0, 0.0, 0.0, 0.0]), "x")
        assert m.imbalance() == pytest.approx(3.0)

    def test_zero_clocks(self):
        assert Machine(4).imbalance() == 0.0

    def test_single_distribution_drives_imbalance(self, small_system):
        """Fig. 6's single-process distribution leaves one rank hot."""
        m_single = Machine(4)
        pset, _, _ = distribute(small_system, 4, "single")
        fcs = fcs_init("p2nfft", m_single, cutoff=3.0, compute="skip")
        fcs.set_common(box=small_system.box, periodic=True)
        fcs.tune(pset)
        fcs.run(pset)
        m_grid = Machine(4)
        pset2, _, _ = distribute(small_system, 4, "grid")
        fcs2 = fcs_init("p2nfft", m_grid, cutoff=3.0, compute="skip")
        fcs2.set_common(box=small_system.box, periodic=True)
        fcs2.tune(pset2)
        fcs2.run(pset2)
        assert m_single.imbalance() >= m_grid.imbalance()
