"""P2NFFT solver: linked cells, ghosts, accuracy, redistribution paths."""

import numpy as np
import pytest
from scipy.special import erfc

from repro.core.handle import fcs_init
from repro.core.particles import ParticleSet
from repro.simmpi.cart import CartGrid
from repro.simmpi.machine import Machine
from repro.solvers.ewald_ref import ewald_sum
from repro.solvers.p2nfft.linked_cell import LinkedCellNearField
from repro.solvers.p2nfft.solver import ghost_distribution
from repro.solvers.p2nfft.tuning import suggest_cutoff, tune_ewald_splitting
from conftest import random_particle_set


class TestLinkedCell:
    def brute(self, tpos, spos, sq, alpha, rc, box):
        pot = np.zeros(tpos.shape[0])
        field = np.zeros_like(tpos)
        for i in range(tpos.shape[0]):
            d = tpos[i] - spos
            d -= np.round(d / box) * box
            r2 = (d * d).sum(1)
            mask = (r2 > 0) & (r2 <= rc * rc)
            r = np.sqrt(r2[mask])
            pot[i] = (sq[mask] * erfc(alpha * r) / r).sum()
            gauss = 2 * alpha / np.sqrt(np.pi) * np.exp(-(alpha ** 2) * r2[mask])
            scale = sq[mask] * (erfc(alpha * r) / r + gauss) / r2[mask]
            field[i] = (scale[:, None] * d[mask]).sum(0)
        return pot, field

    @pytest.mark.parametrize("rc", [1.5, 3.0, 5.0])
    def test_matches_brute_force(self, rng, rc):
        L = 10.0
        box = np.full(3, L)
        n = 120
        pos = rng.uniform(0, L, (n, 3))
        q = rng.uniform(-1, 1, n)
        lc = LinkedCellNearField(box, np.zeros(3), rc, alpha=0.9)
        pot, field, pairs = lc.compute(pos, pos, q)
        bp, bf = self.brute(pos, pos, q, 0.9, rc, box)
        np.testing.assert_allclose(pot, bp, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(field, bf, rtol=1e-10, atol=1e-12)
        assert pairs > 0

    def test_targets_subset_of_sources(self, rng):
        L = 8.0
        box = np.full(3, L)
        spos = rng.uniform(0, L, (100, 3))
        sq = rng.uniform(-1, 1, 100)
        tpos = spos[:20]
        lc = LinkedCellNearField(box, np.zeros(3), 2.0, alpha=1.0)
        pot_t, _, _ = lc.compute(tpos, spos, sq)
        pot_all, _, _ = lc.compute(spos, spos, sq)
        np.testing.assert_allclose(pot_t, pot_all[:20], rtol=1e-12)

    def test_small_grid_dedup(self, rng):
        """rc near L/2 forces < 3 cells per dim: wrapped neighbor cells
        coincide and pairs must still be counted exactly once."""
        L = 6.0
        box = np.full(3, L)
        n = 40
        pos = rng.uniform(0, L, (n, 3))
        q = rng.uniform(-1, 1, n)
        lc = LinkedCellNearField(box, np.zeros(3), 2.9, alpha=0.8)
        assert lc.needs_dedup
        pot, _, _ = lc.compute(pos, pos, q)
        bp, _ = self.brute(pos, pos, q, 0.8, 2.9, box)
        np.testing.assert_allclose(pot, bp, rtol=1e-10)

    def test_cutoff_validation(self):
        with pytest.raises(ValueError):
            LinkedCellNearField(np.full(3, 10.0), np.zeros(3), 6.0, 1.0)

    def test_empty(self):
        lc = LinkedCellNearField(np.full(3, 10.0), np.zeros(3), 2.0, 1.0)
        pot, field, pairs = lc.compute(np.zeros((0, 3)), np.zeros((0, 3)), np.zeros(0))
        assert pot.shape == (0,) and pairs == 0


class TestGhostDistribution:
    def test_owner_always_included(self, rng):
        grid = CartGrid(8, np.full(3, 10.0))
        pos = rng.uniform(0, 10, (50, 3))
        elems, targets = ghost_distribution(grid, pos, rc=1.0)
        owners = grid.rank_of_positions(pos)
        for i in range(50):
            assert owners[i] in targets[elems == i]

    def test_interior_particles_not_duplicated(self):
        grid = CartGrid(8, np.full(3, 10.0))
        # center of rank-0 subdomain (0..5)^3, far from all boundaries
        pos = np.array([[2.5, 2.5, 2.5]])
        elems, targets = ghost_distribution(grid, pos, rc=1.0)
        assert elems.shape[0] == 1

    def test_boundary_particles_duplicated(self):
        grid = CartGrid(8, np.full(3, 10.0))
        # near the +x face of rank 0's subdomain
        pos = np.array([[4.9, 2.5, 2.5]])
        elems, targets = ghost_distribution(grid, pos, rc=1.0)
        assert elems.shape[0] == 2  # owner + one face neighbor

    def test_corner_particle_eight_targets(self):
        grid = CartGrid(8, np.full(3, 10.0))
        pos = np.array([[4.95, 4.95, 4.95]])
        elems, targets = ghost_distribution(grid, pos, rc=1.0)
        assert elems.shape[0] == 8  # owner + 7 (corner of a 2x2x2 grid)

    def test_ghost_completeness(self, rng):
        """Every pair within rc is computable on the owner's rank: for each
        particle, all particles within rc are sent to its owner."""
        grid = CartGrid(8, np.full(3, 10.0))
        n = 80
        rc = 1.2
        pos = rng.uniform(0, 10, (n, 3))
        elems, targets = ghost_distribution(grid, pos, rc)
        owners = grid.rank_of_positions(pos)
        # local content per rank
        local = {r: set(elems[targets == r].tolist()) for r in range(8)}
        box = 10.0
        for i in range(n):
            d = pos - pos[i]
            d -= np.round(d / box) * box
            within = np.flatnonzero((d * d).sum(1) <= rc * rc)
            for j in within:
                assert j in local[owners[i]], (i, j)


class TestTuning:
    def test_alpha_grows_with_accuracy(self):
        box = np.full(3, 20.0)
        a1, m1 = tune_ewald_splitting(box, 3.0, 1e-3)
        a2, m2 = tune_ewald_splitting(box, 3.0, 1e-5)
        assert a2 > a1
        assert m2 > m1

    def test_cutoff_validation(self):
        with pytest.raises(ValueError):
            tune_ewald_splitting(np.full(3, 10.0), 8.0, 1e-3)

    def test_suggest_cutoff_sane(self):
        rc = suggest_cutoff(np.full(3, 33.0), 2000)
        assert 0 < rc <= 16.5


class TestSolver:
    def run_parallel(self, system, nprocs, method="A", **kwargs):
        m = Machine(nprocs)
        pset, owner = random_particle_set(system, nprocs, seed=6)
        fcs = fcs_init("p2nfft", m, cutoff=3.0, **kwargs)
        fcs.set_common(box=system.box, offset=system.offset, periodic=True)
        if method == "B":
            fcs.set_resort(True)
        fcs.tune(pset, 1e-4)
        report = fcs.run(pset)
        return m, pset, owner, report, fcs

    def test_accuracy_vs_ewald(self, small_system):
        m, pset, owner, report, _ = self.run_parallel(small_system, 6)
        pe, fe = ewald_sum(small_system.pos, small_system.q, small_system.box, accuracy=1e-12)
        got_pot = np.concatenate(pset.pot)
        exp_pot = np.concatenate([pe[owner == r] for r in range(6)])
        rel = np.sqrt(((got_pot - exp_pot) ** 2).mean() / (exp_pot ** 2).mean())
        assert rel < 2e-2
        got_f = np.concatenate(pset.field)
        exp_f = np.concatenate([fe[owner == r] for r in range(6)])
        relf = np.sqrt(((got_f - exp_f) ** 2).sum(1).mean() / (exp_f ** 2).sum(1).mean())
        assert relf < 1e-2

    def test_energy_accuracy(self, small_system):
        m, pset, owner, _, _ = self.run_parallel(small_system, 4)
        pe, _ = ewald_sum(small_system.pos, small_system.q, small_system.box, accuracy=1e-12)
        E = 0.5 * (np.concatenate(pset.q) * np.concatenate(pset.pot)).sum()
        Ee = 0.5 * (small_system.q * pe).sum()
        assert abs(E - Ee) / abs(Ee) < 5e-3

    def test_nprocs_invariance(self, small_system):
        pots = []
        for P in (1, 5):
            m, pset, owner, _, _ = self.run_parallel(small_system, P)
            order = np.argsort(np.concatenate([np.flatnonzero(owner == r) for r in range(P)]))
            pots.append(np.concatenate(pset.pot)[order])
        np.testing.assert_allclose(pots[0], pots[1], rtol=1e-10)

    def test_method_b_drops_ghosts(self, small_system):
        m, pset, owner, report, fcs = self.run_parallel(small_system, 4, "B")
        assert report.changed
        # total count unchanged: ghosts were removed before returning
        assert int(report.new_counts.sum()) == small_system.n
        # every particle ended on the rank owning its position
        grid = fcs.solver.grid
        for r in range(4):
            np.testing.assert_array_equal(grid.rank_of_positions(pset.pos[r]), r)

    def test_open_boundaries_rejected(self):
        m = Machine(2)
        fcs = fcs_init("p2nfft", m)
        with pytest.raises(ValueError, match="periodic"):
            fcs.set_common(box=(10.0, 10.0, 10.0), periodic=False)

    def test_neighborhood_strategy_with_max_move(self, small_system):
        m = Machine(8)
        pset, owner = random_particle_set(small_system, 8, seed=6)
        fcs = fcs_init("p2nfft", m, cutoff=2.0)
        fcs.set_common(box=small_system.box, periodic=True)
        fcs.set_resort(True)
        fcs.tune(pset)
        fcs.run(pset)  # first run: establishes grid order
        fcs.set_max_particle_move(0.01)
        rep = fcs.run(pset)
        assert rep.strategy == "grid+neighborhood"
        rep2 = fcs.run(pset)
        assert rep2.strategy == "grid+alltoall"
