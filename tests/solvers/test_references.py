"""Reference solvers: direct summation and Ewald (incl. Madelung constant)."""

import numpy as np
import pytest

from repro.solvers.direct import direct_energy, direct_sum
from repro.solvers.ewald_ref import ewald_energy, ewald_sum, suggest_alpha


class TestDirect:
    def test_two_charges(self):
        pos = np.array([[0.0, 0, 0], [2.0, 0, 0]])
        q = np.array([1.0, -1.0])
        pot, field = direct_sum(pos, q)
        assert pot[0] == pytest.approx(-0.5)
        assert pot[1] == pytest.approx(0.5)
        # attraction: field at particle 0 points toward particle 1
        assert field[0, 0] == pytest.approx(0.25)
        assert direct_energy(pos, q) == pytest.approx(-0.5)

    def test_newtons_third_law(self, rng):
        pos = rng.uniform(0, 5, (30, 3))
        q = rng.uniform(-1, 1, 30)
        _, field = direct_sum(pos, q)
        force = q[:, None] * field
        np.testing.assert_allclose(force.sum(axis=0), 0.0, atol=1e-10)

    def test_chunking_invariant(self, rng):
        pos = rng.uniform(0, 5, (50, 3))
        q = rng.uniform(-1, 1, 50)
        p1, f1 = direct_sum(pos, q, chunk=7)
        p2, f2 = direct_sum(pos, q, chunk=1000)
        np.testing.assert_allclose(p1, p2)
        np.testing.assert_allclose(f1, f2)

    def test_minimum_image(self):
        box = np.array([10.0, 10.0, 10.0])
        pos = np.array([[0.5, 5, 5], [9.5, 5, 5]])
        q = np.array([1.0, 1.0])
        pot, _ = direct_sum(pos, q, box=box)
        assert pot[0] == pytest.approx(1.0)

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            direct_sum(np.zeros((3, 2)), np.zeros(3))


class TestEwald:
    def test_alpha_independence(self, rng):
        n = 20
        box = np.array([6.0, 6.0, 6.0])
        pos = rng.uniform(0, 6, (n, 3))
        q = np.ones(n)
        q[n // 2:] = -1
        # both alphas fully converged (erfc(alpha * L/2) ~ 1e-7 and smaller)
        e1 = ewald_energy(pos, q, box, alpha=1.25, kmax=16)
        e2 = ewald_energy(pos, q, box, alpha=1.6, kmax=20)
        assert e1 == pytest.approx(e2, rel=1e-6)

    def test_field_is_negative_gradient(self, rng):
        n = 8
        box = np.array([5.0, 5.0, 5.0])
        pos = rng.uniform(0, 5, (n, 3))
        q = np.ones(n)
        q[n // 2:] = -1
        pot, field = ewald_sum(pos, q, box, alpha=1.2, kmax=12)
        h = 1e-5
        for d in range(3):
            pp = pos.copy()
            pp[0, d] += h
            pm = pos.copy()
            pm[0, d] -= h
            pot_p, _ = ewald_sum(pp, q, box, alpha=1.2, kmax=12)
            pot_m, _ = ewald_sum(pm, q, box, alpha=1.2, kmax=12)
            grad = (pot_p[0] - pot_m[0]) / (2 * h)
            assert field[0, d] == pytest.approx(-grad, rel=1e-4, abs=1e-7)

    def test_madelung_nacl(self):
        """The NaCl Madelung constant: phi at each ion = -1.7476 q / a."""
        m = 4  # 4x4x4 unit cells of the rock-salt lattice
        a = 1.0  # nearest-neighbor distance
        coords = np.array(
            [(i, j, k) for i in range(m) for j in range(m) for k in range(m)],
            dtype=np.float64,
        )
        q = np.where(coords.sum(axis=1) % 2 == 0, 1.0, -1.0)
        box = np.array([m * a] * 3)
        pot, _ = ewald_sum(coords * a, q, box, accuracy=1e-10)
        madelung = pot * q  # q_i phi_i / (q^2/a)
        np.testing.assert_allclose(madelung, -1.747564594633, rtol=1e-8)

    def test_wigner_bcc_vs_known(self):
        """Single charge + background: the Wigner self potential of a
        simple cubic lattice is -2.8372975 / L (known Madelung-type value)."""
        box = np.array([1.0, 1.0, 1.0])
        pot, _ = ewald_sum(np.zeros((1, 3)), np.ones(1), box, accuracy=1e-10)
        assert pot[0] == pytest.approx(-2.837297479, rel=1e-7)

    def test_suggest_alpha_positive(self):
        assert suggest_alpha(np.array([5.0, 5.0, 5.0]), 100) > 0

    def test_momentum_conservation(self, rng):
        n = 16
        box = np.array([7.0, 7.0, 7.0])
        pos = rng.uniform(0, 7, (n, 3))
        q = np.ones(n)
        q[n // 2:] = -1
        _, field = ewald_sum(pos, q, box, accuracy=1e-9)
        force = q[:, None] * field
        np.testing.assert_allclose(force.sum(axis=0), 0.0, atol=1e-8)
