"""Reference solvers: direct summation and Ewald (incl. Madelung constant),
plus cross-solver checks of the approximate solvers against the direct one."""

import numpy as np
import pytest

from repro.core.handle import fcs_init
from repro.core.particles import ParticleSet
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine
from repro.solvers.direct import direct_energy, direct_sum
from repro.solvers.ewald_ref import ewald_energy, ewald_sum, suggest_alpha


class TestDirect:
    def test_two_charges(self):
        pos = np.array([[0.0, 0, 0], [2.0, 0, 0]])
        q = np.array([1.0, -1.0])
        pot, field = direct_sum(pos, q)
        assert pot[0] == pytest.approx(-0.5)
        assert pot[1] == pytest.approx(0.5)
        # attraction: field at particle 0 points toward particle 1
        assert field[0, 0] == pytest.approx(0.25)
        assert direct_energy(pos, q) == pytest.approx(-0.5)

    def test_newtons_third_law(self, rng):
        pos = rng.uniform(0, 5, (30, 3))
        q = rng.uniform(-1, 1, 30)
        _, field = direct_sum(pos, q)
        force = q[:, None] * field
        np.testing.assert_allclose(force.sum(axis=0), 0.0, atol=1e-10)

    def test_chunking_invariant(self, rng):
        pos = rng.uniform(0, 5, (50, 3))
        q = rng.uniform(-1, 1, 50)
        p1, f1 = direct_sum(pos, q, chunk=7)
        p2, f2 = direct_sum(pos, q, chunk=1000)
        np.testing.assert_allclose(p1, p2)
        np.testing.assert_allclose(f1, f2)

    def test_minimum_image(self):
        box = np.array([10.0, 10.0, 10.0])
        pos = np.array([[0.5, 5, 5], [9.5, 5, 5]])
        q = np.array([1.0, 1.0])
        pot, _ = direct_sum(pos, q, box=box)
        assert pot[0] == pytest.approx(1.0)

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            direct_sum(np.zeros((3, 2)), np.zeros(3))


class TestEwald:
    def test_alpha_independence(self, rng):
        n = 20
        box = np.array([6.0, 6.0, 6.0])
        pos = rng.uniform(0, 6, (n, 3))
        q = np.ones(n)
        q[n // 2:] = -1
        # both alphas fully converged (erfc(alpha * L/2) ~ 1e-7 and smaller)
        e1 = ewald_energy(pos, q, box, alpha=1.25, kmax=16)
        e2 = ewald_energy(pos, q, box, alpha=1.6, kmax=20)
        assert e1 == pytest.approx(e2, rel=1e-6)

    def test_field_is_negative_gradient(self, rng):
        n = 8
        box = np.array([5.0, 5.0, 5.0])
        pos = rng.uniform(0, 5, (n, 3))
        q = np.ones(n)
        q[n // 2:] = -1
        pot, field = ewald_sum(pos, q, box, alpha=1.2, kmax=12)
        h = 1e-5
        for d in range(3):
            pp = pos.copy()
            pp[0, d] += h
            pm = pos.copy()
            pm[0, d] -= h
            pot_p, _ = ewald_sum(pp, q, box, alpha=1.2, kmax=12)
            pot_m, _ = ewald_sum(pm, q, box, alpha=1.2, kmax=12)
            grad = (pot_p[0] - pot_m[0]) / (2 * h)
            assert field[0, d] == pytest.approx(-grad, rel=1e-4, abs=1e-7)

    def test_madelung_nacl(self):
        """The NaCl Madelung constant: phi at each ion = -1.7476 q / a."""
        m = 4  # 4x4x4 unit cells of the rock-salt lattice
        a = 1.0  # nearest-neighbor distance
        coords = np.array(
            [(i, j, k) for i in range(m) for j in range(m) for k in range(m)],
            dtype=np.float64,
        )
        q = np.where(coords.sum(axis=1) % 2 == 0, 1.0, -1.0)
        box = np.array([m * a] * 3)
        pot, _ = ewald_sum(coords * a, q, box, accuracy=1e-10)
        madelung = pot * q  # q_i phi_i / (q^2/a)
        np.testing.assert_allclose(madelung, -1.747564594633, rtol=1e-8)

    def test_wigner_bcc_vs_known(self):
        """Single charge + background: the Wigner self potential of a
        simple cubic lattice is -2.8372975 / L (known Madelung-type value)."""
        box = np.array([1.0, 1.0, 1.0])
        pot, _ = ewald_sum(np.zeros((1, 3)), np.ones(1), box, accuracy=1e-10)
        assert pot[0] == pytest.approx(-2.837297479, rel=1e-7)

    def test_suggest_alpha_positive(self):
        assert suggest_alpha(np.array([5.0, 5.0, 5.0]), 100) > 0

    def test_momentum_conservation(self, rng):
        n = 16
        box = np.array([7.0, 7.0, 7.0])
        pos = rng.uniform(0, 7, (n, 3))
        q = np.ones(n)
        q[n // 2:] = -1
        _, field = ewald_sum(pos, q, box, accuracy=1e-9)
        force = q[:, None] * field
        np.testing.assert_allclose(force.sum(axis=0), 0.0, atol=1e-8)


def _solve(solver, nprocs, system, seed=0, **solver_kwargs):
    """Run one solver on a randomly distributed copy of ``system`` and
    return id-ordered (pot, field) for cross-solver comparison."""
    machine = Machine(nprocs)
    rng = np.random.default_rng(seed)
    owner = rng.integers(0, nprocs, system.n)
    particles = ParticleSet(
        [system.pos[owner == r].copy() for r in range(nprocs)],
        [system.q[owner == r].copy() for r in range(nprocs)],
        capacity_factor=4.0,
    )
    ids = [np.flatnonzero(owner == r) for r in range(nprocs)]
    with fcs_init(solver, machine, **solver_kwargs) as fcs:
        fcs.set_common(box=system.box, offset=system.offset, periodic=True)
        fcs.tune(particles, 1e-4)
        fcs.run(particles)
    order = np.argsort(np.concatenate(ids))
    pot = np.concatenate(particles.pot)[order]
    field = np.concatenate(particles.field)[order]
    return pot, field


class TestCrossSolver:
    """The approximate parallel solvers against the direct reference: same
    system, same layout, potentials and fields must agree to the solvers'
    accuracy — independent of the paper's redistribution machinery, this
    pins down the physics each differential trajectory is built on."""

    @pytest.fixture(scope="class")
    def reference(self):
        system = silica_melt_system(64, seed=11)
        pot, field = _solve("direct", 4, system, seed=11)
        return system, pot, field

    @pytest.mark.parametrize("nprocs", [4, 8])
    def test_fmm_matches_direct(self, reference, nprocs):
        system, ref_pot, ref_field = reference
        pot, field = _solve("fmm", nprocs, system, seed=11)
        # the FMM's periodic potential differs from the Ewald reference by
        # a uniform gauge constant (background/self-term convention); only
        # potential *differences* and fields are physical
        shift = float((pot - ref_pot).mean())
        pot_scale = float(np.abs(ref_pot).max())
        field_scale = float(np.abs(ref_field).max())
        assert float(np.abs(pot - ref_pot - shift).max()) < 2e-2 * pot_scale
        assert float(np.abs(field - ref_field).max()) < 2e-2 * field_scale

    @pytest.mark.parametrize("nprocs", [4, 8])
    def test_p2nfft_matches_direct(self, reference, nprocs):
        system, ref_pot, ref_field = reference
        pot, field = _solve("p2nfft", nprocs, system, seed=11)
        pot_scale = float(np.abs(ref_pot).max())
        field_scale = float(np.abs(ref_field).max())
        assert float(np.abs(pot - ref_pot).max()) < 2e-2 * pot_scale
        assert float(np.abs(field - ref_field).max()) < 2e-2 * field_scale

    def test_solver_layout_independence(self, reference):
        """The same solver on different rank counts must agree with itself
        far more tightly than with the reference — the decomposition must
        not change the physics."""
        system, _, _ = reference
        pot4, field4 = _solve("fmm", 4, system, seed=11)
        pot8, field8 = _solve("fmm", 8, system, seed=11)
        np.testing.assert_allclose(pot4, pot8, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(field4, field8, rtol=1e-9, atol=1e-10)
