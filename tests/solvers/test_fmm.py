"""FMM tree and parallel solver: accuracy vs references, parallel
consistency, redistribution contracts."""

import numpy as np
import pytest

from repro.core.handle import fcs_init
from repro.core.particles import ParticleSet
from repro.md.distributions import distribute
from repro.simmpi.machine import Machine
from repro.solvers.direct import direct_sum
from repro.solvers.ewald_ref import ewald_sum
from repro.solvers.fmm.tree import FMMTree, leaf_index_of_positions
from conftest import random_particle_set


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(4)
    n = 400
    L = 8.0
    pos = rng.uniform(0, L, (n, 3))
    q = np.ones(n)
    q[n // 2:] = -1
    return pos, q, np.array([L, L, L])


class TestTreeOpen:
    def test_accuracy_converges(self, cloud):
        pos, q, box = cloud
        pd, fd = direct_sum(pos, q)
        errs = []
        for p in (3, 5):
            tree = FMMTree(3, p, box, np.zeros(3), periodic=False)
            pot, field, _ = tree.evaluate(pos, q)
            errs.append(np.sqrt(((pot - pd) ** 2).mean()))
        assert errs[1] < errs[0] / 3
        assert errs[1] / np.sqrt((pd ** 2).mean()) < 3e-3

    def test_field_accuracy(self, cloud):
        pos, q, box = cloud
        _, fd = direct_sum(pos, q)
        tree = FMMTree(3, 5, box, np.zeros(3), periodic=False)
        _, field, _ = tree.evaluate(pos, q)
        rel = np.sqrt(((field - fd) ** 2).sum(1).mean() / (fd ** 2).sum(1).mean())
        assert rel < 2e-3

    def test_order_independent_of_input_order(self, cloud):
        pos, q, box = cloud
        tree = FMMTree(3, 4, box, np.zeros(3), periodic=False)
        pot1, _, _ = tree.evaluate(pos, q)
        perm = np.random.default_rng(0).permutation(pos.shape[0])
        pot2, _, _ = tree.evaluate(pos[perm], q[perm])
        np.testing.assert_allclose(pot2, pot1[perm], rtol=1e-12)

    def test_stats_populated(self, cloud):
        pos, q, box = cloud
        tree = FMMTree(3, 3, box, np.zeros(3), periodic=False)
        _, _, stats = tree.evaluate(pos, q)
        assert stats.near_pairs > 0
        assert stats.m2l_ops > 0
        assert stats.p2m_particles == pos.shape[0]


class TestTreePeriodic:
    def test_matches_ewald_up_to_surface_term(self, cloud):
        """The shell-summed (vacuum) FMM differs from tinfoil Ewald by the
        known dipole surface term; after correction they agree."""
        pos, q, box = cloud
        pe, fe = ewald_sum(pos, q, box, accuracy=1e-10)
        tree = FMMTree(3, 5, box, np.zeros(3), periodic=True, lattice_shells=3)
        pot, field, _ = tree.evaluate(pos, q)
        V = box.prod()
        D = (q[:, None] * pos).sum(0)
        pot_tf = pot - 4 * np.pi / (3 * V) * (pos @ D)
        field_tf = field + 4 * np.pi / (3 * V) * D
        dp = pot_tf - pe
        dp -= dp.mean()
        assert np.sqrt((dp ** 2).mean() / (pe ** 2).mean()) < 1e-2
        df = field_tf - fe
        assert np.sqrt((df ** 2).sum(1).mean() / (fe ** 2).sum(1).mean()) < 5e-3

    def test_energy_accuracy(self, cloud):
        pos, q, box = cloud
        pe, _ = ewald_sum(pos, q, box, accuracy=1e-10)
        tree = FMMTree(3, 5, box, np.zeros(3), periodic=True, lattice_shells=3)
        pot, _, _ = tree.evaluate(pos, q)
        V = box.prod()
        D = (q[:, None] * pos).sum(0)
        pot_tf = pot - 4 * np.pi / (3 * V) * (pos @ D)
        E = 0.5 * (q * pot_tf).sum()
        Ee = 0.5 * (q * pe).sum()
        # |Ee| of a small random cloud is heavily cancellation-reduced, so
        # the relative tolerance is looser than the per-potential accuracy;
        # the dense melt systems of the MD tests reach ~1e-3
        assert abs(E - Ee) / abs(Ee) < 6e-3

    def test_lattice_shells_converge(self, cloud):
        pos, q, box = cloud
        pe, _ = ewald_sum(pos, q, box, accuracy=1e-10)
        V = box.prod()
        D = (q[:, None] * pos).sum(0)
        errs = []
        for S in (1, 3):
            tree = FMMTree(3, 4, box, np.zeros(3), periodic=True, lattice_shells=S)
            pot, _, _ = tree.evaluate(pos, q)
            pot_tf = pot - 4 * np.pi / (3 * V) * (pos @ D)
            dp = pot_tf - pe
            dp -= dp.mean()
            errs.append(np.sqrt((dp ** 2).mean()))
        assert errs[1] < errs[0]

    def test_periodic_requires_depth3(self, cloud):
        _, _, box = cloud
        with pytest.raises(ValueError, match="depth >= 3"):
            FMMTree(2, 3, box, np.zeros(3), periodic=True)


class TestLeafIndex:
    def test_clamp_vs_wrap(self):
        box = np.array([4.0, 4.0, 4.0])
        pos = np.array([[4.5, 1.0, 1.0]])
        wrapped = leaf_index_of_positions(pos, np.zeros(3), box, 2, True)
        clamped = leaf_index_of_positions(pos, np.zeros(3), box, 2, False)
        assert wrapped[0] != clamped[0]


class TestParallelSolver:
    def run_parallel(self, system, nprocs, method="A", **kwargs):
        m = Machine(nprocs)
        pset, owner = random_particle_set(system, nprocs, seed=5)
        fcs = fcs_init("fmm", m, order=4, depth=3, lattice_shells=2, **kwargs)
        fcs.set_common(box=system.box, offset=system.offset, periodic=True)
        if method == "B":
            fcs.set_resort(True)
        fcs.tune(pset)
        report = fcs.run(pset)
        return m, pset, owner, report, fcs

    def test_parallel_matches_sequential(self, small_system):
        """The distributed computation (halo exchange, per-rank near field)
        must reproduce the single-tree evaluation exactly."""
        m, pset, owner, report, _ = self.run_parallel(small_system, 6)
        tree = FMMTree(3, 4, small_system.box, small_system.offset, True, lattice_shells=2)
        pot_seq, field_seq, _ = tree.evaluate(small_system.pos, small_system.q)
        # apply the solver's tinfoil correction to the sequential result
        V = small_system.box.prod()
        D = (small_system.q[:, None] * small_system.pos).sum(0)
        pot_seq = pot_seq - 4 * np.pi / (3 * V) * (small_system.pos @ D)
        got = np.concatenate(pset.pot)
        expected = np.concatenate([pot_seq[owner == r] for r in range(6)])
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)

    def test_nprocs_invariance(self, small_system):
        results = []
        for P in (1, 3, 8):
            m, pset, owner, _, _ = self.run_parallel(small_system, P)
            full = np.empty(small_system.n)
            offs = 0
            order = np.argsort(np.concatenate([np.flatnonzero(owner == r) for r in range(P)]))
            full = np.concatenate(pset.pot)[order]
            results.append(full)
        np.testing.assert_allclose(results[1], results[0], rtol=1e-10)
        np.testing.assert_allclose(results[2], results[0], rtol=1e-10)

    def test_method_b_same_results_changed_order(self, small_system):
        mA, psetA, ownerA, _, _ = self.run_parallel(small_system, 4, "A")
        mB, psetB, ownerB, repB, _ = self.run_parallel(small_system, 4, "B")
        assert repB.changed
        # match by position: each particle's potential identical
        posA = np.concatenate(psetA.pos)
        posB = np.concatenate(psetB.pos)
        potA = np.concatenate(psetA.pot)
        potB = np.concatenate(psetB.pot)
        kA = np.round(posA * 1e9).astype(np.int64)
        kB = np.round(posB * 1e9).astype(np.int64)
        iA = np.lexsort(kA.T)
        iB = np.lexsort(kB.T)
        np.testing.assert_array_equal(kA[iA], kB[iB])
        np.testing.assert_allclose(potA[iA], potB[iB], rtol=1e-10)

    def test_skip_mode_zero_results_real_redistribution(self, small_system):
        m, pset, owner, report, fcs = self.run_parallel(
            small_system, 4, "B", compute="skip"
        )
        assert report.changed
        assert np.concatenate(pset.pot).max() == 0.0
        # redistribution really happened: counts changed per rank order
        assert m.trace.get("sort").time > 0
        assert m.trace.get("near").time > 0  # modeled compute charged

    def test_counts_preserved(self, small_system):
        m, pset, owner, report, _ = self.run_parallel(small_system, 4, "B")
        old = np.bincount(owner, minlength=4)
        np.testing.assert_array_equal(report.new_counts, old)
