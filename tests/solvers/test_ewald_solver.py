"""The parallel classical Ewald solver (baseline method "ewald")."""

import numpy as np
import pytest

from repro.core.handle import fcs_init
from repro.md.simulation import Simulation, SimulationConfig
from repro.simmpi.machine import Machine
from repro.solvers.ewald_ref import ewald_sum
from conftest import random_particle_set


def run(system, nprocs, method="A", accuracy=1e-4, **kwargs):
    m = Machine(nprocs)
    pset, owner = random_particle_set(system, nprocs, seed=7)
    fcs = fcs_init("ewald", m, cutoff=4.0, **kwargs)
    fcs.set_common(box=system.box, periodic=True)
    if method == "B":
        fcs.set_resort(True)
    fcs.tune(pset, accuracy)
    report = fcs.run(pset)
    return m, pset, owner, report, fcs


class TestAccuracy:
    def test_matches_reference(self, small_system):
        m, pset, owner, _, _ = run(small_system, 4)
        pe, fe = ewald_sum(small_system.pos, small_system.q, small_system.box, accuracy=1e-12)
        got = np.concatenate(pset.pot)
        exp = np.concatenate([pe[owner == r] for r in range(4)])
        rms = np.sqrt(((got - exp) ** 2).mean() / (exp ** 2).mean())
        assert rms < 3e-3
        gotf = np.concatenate(pset.field)
        expf = np.concatenate([fe[owner == r] for r in range(4)])
        rmsf = np.sqrt(((gotf - expf) ** 2).sum(1).mean() / (expf ** 2).sum(1).mean())
        assert rmsf < 3e-3

    def test_energy(self, small_system):
        m, pset, owner, _, _ = run(small_system, 4)
        pe, _ = ewald_sum(small_system.pos, small_system.q, small_system.box, accuracy=1e-12)
        E = 0.5 * (np.concatenate(pset.q) * np.concatenate(pset.pot)).sum()
        Ee = 0.5 * (small_system.q * pe).sum()
        assert abs(E - Ee) / abs(Ee) < 1e-3

    def test_agrees_with_other_solvers(self, small_system):
        energies = {}
        for solver in ("ewald", "p2nfft"):
            m = Machine(4)
            pset, _ = random_particle_set(small_system, 4, seed=7)
            fcs = fcs_init(solver, m, cutoff=4.0)
            fcs.set_common(box=small_system.box, periodic=True)
            fcs.tune(pset, 1e-4)
            fcs.run(pset)
            energies[solver] = 0.5 * (
                np.concatenate(pset.q) * np.concatenate(pset.pot)
            ).sum()
        assert energies["ewald"] == pytest.approx(energies["p2nfft"], rel=3e-3)


class TestMethodB:
    def test_resort_roundtrip(self, small_system):
        m, pset, owner, report, fcs = run(small_system, 4, method="B")
        assert report.changed
        old_pos = [small_system.pos[owner == r] * 2.0 for r in range(4)]
        tagged = fcs.resort(old_pos)
        for r in range(4):
            np.testing.assert_allclose(tagged[r], pset.pos[r] * 2.0)

    def test_grid_ownership_after_b(self, small_system):
        m, pset, owner, report, fcs = run(small_system, 4, method="B")
        for r in range(4):
            np.testing.assert_array_equal(
                fcs.solver.grid.rank_of_positions(pset.pos[r]), r
            )


class TestIntegration:
    def test_md_energy_conservation(self, small_system):
        cfg = SimulationConfig(
            solver="ewald",
            method="B",
            dt=0.05,
            distribution="random",
            track_energy=True,
            accuracy=1e-4,
            solver_kwargs={"cutoff": 4.0},
            seed=2,
        )
        sim = Simulation(Machine(4), small_system, cfg)
        recs = sim.run(3)
        E = [r.energy for r in recs]
        assert abs(E[-1] - E[0]) / abs(E[0]) < 1e-3

    def test_skip_mode(self, small_system):
        m, pset, owner, report, _ = run(small_system, 4, method="B", compute="skip")
        assert report.changed
        assert m.trace.get("far").time > 0
        assert m.trace.get("near").time > 0

    def test_open_rejected(self):
        fcs = fcs_init("ewald", Machine(2))
        with pytest.raises(ValueError, match="periodic"):
            fcs.set_common(box=(10.0, 10.0, 10.0), periodic=False)

    def test_in_registry(self):
        from repro.core.handle import available_solvers

        assert "ewald" in available_solvers()
