"""Batcher's merge-exchange network: validity via the zero-one principle."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sorting.batcher import comparator_count, merge_exchange_rounds


def apply_network(rounds, values):
    v = list(values)
    for comparators in rounds:
        for lo, hi in comparators:
            if v[lo] > v[hi]:
                v[lo], v[hi] = v[hi], v[lo]
    return v


class TestStructure:
    def test_empty(self):
        assert merge_exchange_rounds(0) == []
        assert merge_exchange_rounds(1) == []

    def test_two(self):
        assert merge_exchange_rounds(2) == [[(0, 1)]]

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 8, 13, 16])
    def test_rounds_disjoint(self, n):
        for comparators in merge_exchange_rounds(n):
            seen = set()
            for lo, hi in comparators:
                assert lo < hi
                assert lo not in seen and hi not in seen
                seen.add(lo)
                seen.add(hi)

    def test_comparator_count_n_log2_n(self):
        # merge exchange uses ~ n/4 log^2 n comparators
        assert comparator_count(64) <= 64 * 36 / 2

    def test_round_count(self):
        # t(t+1)/2 rounds for n = 2^t
        assert len(merge_exchange_rounds(16)) == 10
        assert len(merge_exchange_rounds(64)) == 21


class TestZeroOnePrinciple:
    """A comparator network sorts all inputs iff it sorts all 0/1 inputs."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8])
    def test_all_binary_inputs(self, n):
        rounds = merge_exchange_rounds(n)
        for bits in itertools.product((0, 1), repeat=n):
            out = apply_network(rounds, bits)
            assert out == sorted(bits), f"fails on {bits}"

    @given(st.lists(st.integers(-1000, 1000), min_size=2, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_sorts_arbitrary(self, values):
        rounds = merge_exchange_rounds(len(values))
        assert apply_network(rounds, values) == sorted(values)

    def test_negative_n(self):
        with pytest.raises(ValueError):
            merge_exchange_rounds(-1)
