"""Cross-sort oracle: merge-exchange sort vs partition sort.

The two parallel sorting methods of the paper ([15] Batcher merge-exchange,
[12] partition/sample sort) are two transports for the same specification:
"globally sort the distributed blocks by key, preserving the per-rank
counts".  With unique keys the result is therefore *unique* — whichever
method ran, every rank must end up with the identical (key, payload)
arrays.  These properties fuzz that equivalence over random systems, random
max-movement bounds (the almost-sorted regime merge-exchange is optimized
for), and the all-particles-on-one-rank initial distribution of Fig. 6.
"""

from typing import List, Tuple

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.particles import ColumnBlock
from repro.simmpi.machine import Machine
from repro.sorting.merge_sort import merge_exchange_sort
from repro.sorting.partition_sort import partition_sort

MAX_EXAMPLES = 25


def make_blocks(keys_per_rank: List[np.ndarray]) -> List[ColumnBlock]:
    """Blocks with a payload column encoding each particle's global index."""
    blocks = []
    offset = 0
    for keys in keys_per_rank:
        keys = np.asarray(keys, dtype=np.uint64)
        ident = np.arange(offset, offset + keys.shape[0], dtype=np.float64)
        offset += keys.shape[0]
        blocks.append(ColumnBlock(key=keys, val=ident))
    return blocks


def run_both_sorts(
    keys_per_rank: List[np.ndarray],
) -> Tuple[List[ColumnBlock], bool, List[ColumnBlock]]:
    """Run merge-exchange and partition sort on identical fresh inputs."""
    nprocs = len(keys_per_rank)
    merged, ok = merge_exchange_sort(
        Machine(nprocs), make_blocks(keys_per_rank), "key"
    )
    parted = partition_sort(Machine(nprocs), make_blocks(keys_per_rank), "key")
    return merged, ok, parted


def assert_identical_orders(
    merged: List[ColumnBlock], parted: List[ColumnBlock]
) -> None:
    for r, (bm, bp) in enumerate(zip(merged, parted)):
        np.testing.assert_array_equal(
            bm["key"], bp["key"], err_msg=f"rank {r}: key orders differ"
        )
        np.testing.assert_array_equal(
            bm["val"], bp["val"], err_msg=f"rank {r}: payloads diverged from keys"
        )


def unique_random_keys(
    nprocs: int, per_rank: int, seed: int
) -> List[np.ndarray]:
    """Unique uint64 keys, randomly scattered across equal-size ranks."""
    rng = np.random.default_rng(seed)
    total = nprocs * per_rank
    keys = rng.permutation(np.arange(total, dtype=np.uint64) * 17 + 3)
    return [keys[r * per_rank:(r + 1) * per_rank] for r in range(nprocs)]


class TestCrossSortRandomSystems:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        nprocs=st.sampled_from([2, 4, 8]),
        per_rank=st.integers(min_value=0, max_value=24),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_identical_orders_for_random_systems(self, nprocs, per_rank, seed):
        keys = unique_random_keys(nprocs, per_rank, seed)
        merged, ok, parted = run_both_sorts(keys)
        # equal per-rank counts: the comparator network is guaranteed to sort
        assert ok, "merge-exchange network failed on equal-size blocks"
        assert_identical_orders(merged, parted)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        nprocs=st.sampled_from([2, 4, 8]),
        counts_seed=st.integers(min_value=0, max_value=2**32 - 1),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_unequal_counts_agree_whenever_network_sorts(
        self, nprocs, counts_seed, seed
    ):
        rng = np.random.default_rng(counts_seed)
        counts = rng.integers(0, 24, nprocs)
        total = int(counts.sum())
        keys = np.random.default_rng(seed).permutation(
            np.arange(total, dtype=np.uint64) * 11 + 1
        )
        bounds = np.concatenate(([0], np.cumsum(counts)))
        keys_per_rank = [keys[bounds[r]:bounds[r + 1]] for r in range(nprocs)]
        merged, ok, parted = run_both_sorts(keys_per_rank)
        # counts are preserved by both methods regardless of the ok flag
        for r in range(nprocs):
            assert merged[r].n == int(counts[r])
            assert parted[r].n == int(counts[r])
        if ok:
            assert_identical_orders(merged, parted)
        else:
            # unequal blocks may defeat the comparator network [16]; the
            # fallback contract is "same multiset, partition result sorted"
            np.testing.assert_array_equal(
                np.sort(np.concatenate([b["key"] for b in merged])),
                np.sort(np.concatenate([b["key"] for b in parted])),
            )


class TestCrossSortMaxMovement:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        nprocs=st.sampled_from([2, 4, 8]),
        per_rank=st.integers(min_value=1, max_value=24),
        bound=st.integers(min_value=0, max_value=1000),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_bounded_movement_since_sorted_state(
        self, nprocs, per_rank, bound, seed
    ):
        """Almost-sorted inputs: keys drift by at most ``bound`` since the
        previous globally sorted state (the method-B steady state the merge
        sort's overlap windows exploit).  Key spacing exceeds twice the
        bound, so keys stay unique and the global order is well defined."""
        rng = np.random.default_rng(seed)
        total = nprocs * per_rank
        spacing = 2 * bound + 2
        base = np.arange(total, dtype=np.int64) * spacing + bound
        drift = rng.integers(-bound, bound + 1, total)
        keys = (base + drift).astype(np.uint64)
        keys_per_rank = [
            keys[r * per_rank:(r + 1) * per_rank] for r in range(nprocs)
        ]
        merged, ok, parted = run_both_sorts(keys_per_rank)
        assert ok
        assert_identical_orders(merged, parted)
        # the result really is globally sorted

        flat = np.concatenate([b["key"] for b in merged])
        assert np.all(flat[1:] >= flat[:-1])


class TestCrossSortFig6Distribution:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        nprocs=st.sampled_from([4, 8]),
        total=st.integers(min_value=0, max_value=64),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_all_particles_on_one_rank(self, nprocs, total, seed):
        """Fig. 6: every particle starts on a single process.  Neither sort
        rebalances (counts are preserved), so all particles must stay on
        rank 0, locally sorted, under both methods."""
        rng = np.random.default_rng(seed)
        keys = rng.permutation(np.arange(total, dtype=np.uint64) * 5 + 2)
        keys_per_rank = [keys] + [
            np.empty(0, dtype=np.uint64) for _ in range(nprocs - 1)
        ]
        merged, ok, parted = run_both_sorts(keys_per_rank)
        assert ok
        assert_identical_orders(merged, parted)
        assert merged[0].n == total
        assert all(b.n == 0 for b in merged[1:])
        np.testing.assert_array_equal(merged[0]["key"], np.sort(keys))
