"""Weighted splitter selection and work-balanced partitioning.

Property tests for the load-balanced mode of
:mod:`repro.sorting.partition_sort` and the split-point arithmetic of
:mod:`repro.core.balance`:

* the weight-balance bound: no part exceeds ``total/P + max(w)`` work,
* uniform weights reduce *bitwise* to the count-based splits,
* splits are invariant under input permutation across ranks and under
  empty ranks (the splitters are a function of the global multiset).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balance import count_split_bounds, work_split_bounds
from repro.core.particles import ColumnBlock
from repro.simmpi.machine import Machine
from repro.sorting.partition_sort import partition_sort, select_splitters


def make_blocks(keys_per_rank, weights_per_rank=None):
    out = []
    for r, keys in enumerate(keys_per_rank):
        keys = np.asarray(keys, dtype=np.uint64)
        cols = dict(key=keys, val=keys.astype(np.float64) + 0.5)
        if weights_per_rank is not None:
            cols["weight"] = np.asarray(weights_per_rank[r], dtype=np.float64)
        out.append(ColumnBlock(**cols))
    return out


# -- work_split_bounds ---------------------------------------------------------


class TestWorkSplitBounds:
    @given(
        weights=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        nparts=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=200, deadline=None)
    def test_weight_balance_bound(self, weights, nparts):
        """Every part's work stays below ``total/P + max(w)`` — the
        granularity limit of contiguous weighted splitting."""
        w = np.asarray(weights, dtype=np.float64)
        bounds = work_split_bounds(w, nparts)
        assert bounds[0] == 0 and bounds[-1] == w.shape[0]
        assert np.all(np.diff(bounds) >= 0)
        total = float(w.sum())
        if total <= 0.0:
            return
        limit = total / nparts + float(w.max()) + 1e-9 * total
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            assert float(w[lo:hi].sum()) <= limit

    @given(
        n=st.integers(min_value=0, max_value=300),
        nparts=st.integers(min_value=1, max_value=16),
        scale=st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0, 8.0]),
    )
    @settings(max_examples=200, deadline=None)
    def test_uniform_weights_reduce_to_count_splits(self, n, nparts, scale):
        """Constant power-of-two weights give *bitwise* the count-based
        bounds: the cumulative-work targets are then exact binary scalings
        of the count targets, so searchsorted sees identical comparisons."""
        w = np.full(n, scale, dtype=np.float64)
        np.testing.assert_array_equal(
            work_split_bounds(w, nparts), count_split_bounds(n, nparts)
        )

    @given(
        n=st.integers(min_value=0, max_value=100),
        nparts=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_zero_weights_fall_back_to_counts(self, n, nparts):
        w = np.zeros(n, dtype=np.float64)
        np.testing.assert_array_equal(
            work_split_bounds(w, nparts), count_split_bounds(n, nparts)
        )


# -- select_splitters ----------------------------------------------------------


def split_by(splitters, all_keys):
    """Part sizes induced by ``splitters`` on the sorted global key set."""
    s = np.sort(np.concatenate([np.asarray(k, dtype=np.uint64) for k in all_keys]))
    edges = np.searchsorted(s, splitters, side="left")
    return np.diff(np.concatenate([[0], edges, [s.shape[0]]]))


keys_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=500), min_size=0, max_size=40),
    min_size=2,
    max_size=6,
)


class TestSelectSplitters:
    @given(keys=keys_strategy, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_uniform_weights_bitwise_reduction(self, keys, data):
        """Constant power-of-two per-element weights choose the same
        splitters as the count-based path, bit for bit."""
        scale = data.draw(st.sampled_from([0.5, 1.0, 2.0, 4.0]))
        P = len(keys)
        sorted_keys = [np.sort(np.asarray(k, dtype=np.uint64)) for k in keys]
        weights = [np.full(k.shape[0], scale) for k in sorted_keys]
        m1, m2 = Machine(P), Machine(P)
        plain = select_splitters(m1, sorted_keys, oversampling=8)
        weighted = select_splitters(m2, sorted_keys, oversampling=8, weights=weights)
        np.testing.assert_array_equal(plain, weighted)

    @given(keys=keys_strategy, seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_permutation_invariance(self, keys, seed):
        """Shuffling elements across ranks does not change the balanced
        partition: the data plane computes the exact work split from the
        global (key, weight) multiset, so ownership is irrelevant.  (The
        splitter *agreement* is sampling-based and only charged for its
        cost — the partition itself is exact, as in [12].)"""
        P = len(keys)
        flat = np.sort(np.concatenate([np.asarray(k) for k in keys]).astype(np.uint64))
        rng = np.random.default_rng(seed)
        owner_a = rng.integers(0, P, flat.shape[0])
        owner_b = rng.permutation(owner_a)

        def run(owner):
            ks = [np.sort(flat[owner == r]) for r in range(P)]
            ws = [(k % 7 + 1).astype(np.float64) for k in ks]  # weight keyed to key
            out = partition_sort(
                Machine(P), make_blocks(ks, ws), "key", "s", balance_key="weight"
            )
            return [b["key"] for b in out]

        for a, b in zip(run(owner_a), run(owner_b)):
            np.testing.assert_array_equal(a, b)

    @given(keys=keys_strategy)
    @settings(max_examples=60, deadline=None)
    def test_empty_rank_invariance(self, keys):
        """An all-on-one-rank layout (every other rank empty) partitions
        into the same per-rank key sets as the spread layout."""
        P = len(keys)
        flat = np.sort(np.concatenate([np.asarray(k) for k in keys]).astype(np.uint64))
        spread = [np.sort(np.asarray(k, dtype=np.uint64)) for k in keys]
        lumped = [flat] + [np.empty(0, dtype=np.uint64)] * (P - 1)

        def run(layout):
            ws = [(k % 5 + 1).astype(np.float64) for k in layout]
            out = partition_sort(
                Machine(P), make_blocks(layout, ws), "key", "s", balance_key="weight"
            )
            return [b["key"] for b in out]

        for a, b in zip(run(spread), run(lumped)):
            np.testing.assert_array_equal(a, b)


# -- partition_sort with balance_key -------------------------------------------


class TestBalancedPartitionSort:
    @given(
        keys=keys_strategy,
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_balanced_sort_is_sorted_and_preserves_multiset(self, keys, seed):
        P = len(keys)
        m = Machine(P)
        rng = np.random.default_rng(seed)
        weights = [rng.integers(1, 9, len(k)).astype(np.float64) for k in keys]
        blocks = make_blocks(keys, weights)
        out = partition_sort(m, blocks, "key", "s", balance_key="weight")
        got = np.concatenate([b["key"] for b in out])
        assert np.all(got[:-1] <= got[1:]) if got.shape[0] else True
        want = np.sort(np.concatenate([np.asarray(k, dtype=np.uint64) for k in keys]))
        np.testing.assert_array_equal(np.sort(got), want)
        # the weight column rides the exchange, aligned with its key
        for b in out:
            np.testing.assert_allclose(b["val"], b["key"].astype(np.float64) + 0.5)

    def test_balanced_sort_equalizes_work(self, rng):
        """A skewed layout (all heavy keys on one rank) partitions into
        near-equal work parts, not near-equal counts."""
        P = 4
        m = Machine(P)
        # 40 heavy elements (weight 10) + 160 light (weight 1)
        heavy = np.sort(rng.integers(0, 100, 40)).astype(np.uint64)
        light = np.sort(rng.integers(100, 1000, 160)).astype(np.uint64)
        keys = [heavy, light[:60], light[60:120], light[120:]]
        weights = [
            np.full(40, 10.0),
            np.full(60, 1.0),
            np.full(60, 1.0),
            np.full(40, 1.0),
        ]
        out = partition_sort(m, make_blocks(keys, weights), "key", "s",
                             balance_key="weight")
        total = 40 * 10.0 + 160 * 1.0
        works = [
            np.where(b["key"] < 100, 10.0, 1.0).sum() for b in out
        ]
        assert sum(works) == total
        # bound: every part below total/P + max weight (plus sampling slack)
        assert max(works) <= total / P + 10.0 + 0.25 * total / P

    def test_balance_key_and_target_counts_are_exclusive(self, rng):
        m = Machine(2)
        blocks = make_blocks([[1, 2], [3, 4]], [[1.0, 1.0], [1.0, 1.0]])
        try:
            partition_sort(
                m, blocks, "key", "s", target_counts=[2, 2], balance_key="weight"
            )
        except ValueError:
            return
        raise AssertionError("expected ValueError")
