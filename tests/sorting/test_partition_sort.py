"""Partition-based parallel sorting: exact part sizes, global order."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.particles import ColumnBlock
from repro.simmpi.machine import Machine
from repro.sorting.partition_sort import partition_sort, select_splitters


def make_blocks(keys_per_rank):
    out = []
    for keys in keys_per_rank:
        keys = np.asarray(keys, dtype=np.uint64)
        out.append(ColumnBlock(key=keys, val=keys.astype(np.float64) + 0.5))
    return out


def check_output(out, target_counts):
    last = None
    for b, c in zip(out, target_counts):
        assert b.n == c
        keys = b["key"]
        assert np.all(keys[:-1] <= keys[1:])
        np.testing.assert_allclose(b["val"], keys.astype(np.float64) + 0.5)
        if keys.shape[0]:
            if last is not None:
                assert last <= keys[0]
            last = keys[-1]


class TestCorrectness:
    def test_counts_preserved_by_default(self, rng):
        """No load balancing: part sizes default to the input counts —
        the ScaFaCoS FMM behaviour behind Fig. 6's single-process case."""
        P = 6
        counts = [10, 0, 25, 5, 60, 0]
        m = Machine(P)
        keys = [rng.integers(0, 1000, c) for c in counts]
        out = partition_sort(m, make_blocks(keys), "key", "s")
        check_output(out, counts)

    def test_explicit_balanced_counts(self, rng):
        P = 4
        m = Machine(P)
        keys = [rng.integers(0, 1000, c) for c in (100, 0, 0, 0)]
        out = partition_sort(m, make_blocks(keys), "key", "s", target_counts=[25] * 4)
        check_output(out, [25] * 4)

    def test_single_process_stays_single(self, rng):
        m = Machine(4)
        keys = [rng.integers(0, 100, 40), [], [], []]
        out = partition_sort(m, make_blocks(keys), "key", "s")
        assert [b.n for b in out] == [40, 0, 0, 0]
        assert np.all(np.diff(out[0]["key"].astype(np.int64)) >= 0)

    def test_multiset_preserved(self, rng):
        P = 8
        m = Machine(P)
        keys = [rng.integers(0, 50, 30) for _ in range(P)]  # many duplicates
        out = partition_sort(m, make_blocks(keys), "key", "s")
        all_in = np.sort(np.concatenate(keys).astype(np.uint64))
        all_out = np.sort(np.concatenate([b["key"] for b in out]))
        np.testing.assert_array_equal(all_in, all_out)

    def test_bad_target_counts(self, rng):
        m = Machine(2)
        keys = [rng.integers(0, 10, 4), rng.integers(0, 10, 4)]
        with pytest.raises(ValueError):
            partition_sort(m, make_blocks(keys), "key", "s", target_counts=[4, 5])

    def test_single_rank(self, rng):
        m = Machine(1)
        out = partition_sort(m, make_blocks([rng.integers(0, 100, 20)]), "key", "s")
        assert np.all(np.diff(out[0]["key"].astype(np.int64)) >= 0)

    @given(
        st.lists(
            st.lists(st.integers(0, 10 ** 9), min_size=0, max_size=25),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property(self, keys_per_rank):
        P = len(keys_per_rank)
        m = Machine(P)
        out = partition_sort(m, make_blocks(keys_per_rank), "key", "s")
        check_output(out, [len(k) for k in keys_per_rank])


class TestCosts:
    def test_uses_collective_alltoall(self, rng):
        """Every step pays the dense count exchange (vs merge sort)."""
        P = 8
        m = Machine(P)
        keys = [rng.integers(0, 1000, 100) for _ in range(P)]
        partition_sort(m, make_blocks(keys), "key", "s")
        assert m.elapsed() > 0
        assert m.trace.get("s").messages > 0

    def test_sorted_input_cheap_payload(self, rng):
        """Steady-state input (already partitioned) sends almost nothing."""
        P = 8
        per = 200
        base = np.sort(rng.integers(0, 10 ** 6, P * per).astype(np.uint64))
        sorted_keys = [base[r * per:(r + 1) * per] for r in range(P)]
        m1 = Machine(P)
        partition_sort(m1, make_blocks(sorted_keys), "key", "s")
        m2 = Machine(P)
        partition_sort(m2, make_blocks([rng.permutation(base)[r * per:(r + 1) * per] for r in range(P)]), "key", "s")
        # splitter samples are a fixed overhead in both; the payload difference dominates
        assert m1.trace.get("s").bytes < m2.trace.get("s").bytes / 2
        assert m1.elapsed() < m2.elapsed()


def test_select_splitters_monotone(rng):
    P = 6
    m = Machine(P)
    keys = [np.sort(rng.integers(0, 10 ** 6, 100).astype(np.uint64)) for _ in range(P)]
    spl = select_splitters(m, keys, 16, "s")
    assert spl.shape == (P - 1,)
    assert np.all(np.diff(spl.astype(np.int64)) >= 0)
