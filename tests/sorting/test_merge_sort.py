"""Merge-based parallel sorting: correctness + almost-sorted efficiency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.particles import ColumnBlock
from repro.simmpi.machine import Machine
from repro.sorting.merge_sort import merge_exchange_sort


def make_blocks(machine, keys_per_rank, payload_factor=2.0):
    blocks = []
    for keys in keys_per_rank:
        keys = np.asarray(keys, dtype=np.uint64)
        blocks.append(
            ColumnBlock(key=keys, val=keys.astype(np.float64) * payload_factor)
        )
    return blocks


def check_sorted(blocks, counts):
    last = None
    for i, b in enumerate(blocks):
        assert b.n == counts[i], "counts must be preserved"
        keys = b["key"]
        assert np.all(keys[:-1] <= keys[1:]), "locally sorted"
        np.testing.assert_allclose(b["val"], keys.astype(np.float64) * 2.0)
        if keys.shape[0]:
            if last is not None:
                assert last <= keys[0], "globally partitioned"
            last = keys[-1]


class TestCorrectness:
    def test_random(self, rng):
        P = 8
        m = Machine(P)
        keys = [rng.integers(0, 1000, 50) for _ in range(P)]
        blocks = make_blocks(m, keys)
        out, ok = merge_exchange_sort(m, blocks, "key", "s")
        check_sorted(out, [50] * P)
        all_in = np.sort(np.concatenate(keys))
        all_out = np.sort(np.concatenate([b["key"] for b in out]))
        np.testing.assert_array_equal(all_in.astype(np.uint64), all_out)

    def test_unequal_counts(self, rng):
        P = 5
        m = Machine(P)
        counts = [3, 40, 0, 17, 8]
        keys = [rng.integers(0, 100, c) for c in counts]
        out, ok = merge_exchange_sort(m, make_blocks(m, keys), "key", "s")
        for b, c in zip(out, counts):
            assert b.n == c

    def test_single_rank(self, rng):
        m = Machine(1)
        keys = [rng.integers(0, 100, 20)]
        out, ok = merge_exchange_sort(m, make_blocks(m, keys), "key", "s")
        assert np.all(np.diff(out[0]["key"].astype(np.int64)) >= 0)

    def test_already_sorted_noop_data(self):
        P = 4
        m = Machine(P)
        keys = [np.arange(r * 10, r * 10 + 10, dtype=np.uint64) for r in range(P)]
        out, ok = merge_exchange_sort(m, make_blocks(m, keys), "key", "s", presorted=True)
        for r in range(P):
            np.testing.assert_array_equal(out[r]["key"], keys[r])

    @given(
        st.lists(
            st.lists(st.integers(0, 10 ** 6), min_size=0, max_size=30),
            min_size=2,
            max_size=9,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_sorted_permutation(self, keys_per_rank):
        P = len(keys_per_rank)
        m = Machine(P)
        blocks = make_blocks(m, keys_per_rank)
        out, ok = merge_exchange_sort(m, blocks, "key", "s")
        # the network guarantees global order only for equal-size blocks;
        # the verification flag must be truthful either way
        globally_sorted = True
        last = None
        for b, k in zip(out, keys_per_rank):
            assert b.n == len(k), "counts preserved"
            keys = b["key"]
            assert np.all(keys[:-1] <= keys[1:]), "locally sorted"
            np.testing.assert_allclose(b["val"], keys.astype(np.float64) * 2.0)
            if keys.shape[0]:
                if last is not None and last > keys[0]:
                    globally_sorted = False
                last = keys[-1]
        assert ok == globally_sorted
        all_in = np.sort(np.concatenate([np.asarray(k, dtype=np.uint64) for k in keys_per_rank]))
        all_out = np.sort(np.concatenate([b["key"] for b in out])) if P else all_in
        np.testing.assert_array_equal(all_in, all_out)

    def test_equal_counts_always_sorted(self, rng):
        """The classical guarantee: equal block sizes always sort."""
        for trial in range(30):
            P = int(rng.integers(2, 10))
            keys = [rng.integers(0, 30, 6) for _ in range(P)]
            m = Machine(P)
            out, ok = merge_exchange_sort(m, make_blocks(m, keys), "key", "s")
            assert ok
            check_sorted(out, [6] * P)


class TestAlmostSortedEfficiency:
    def test_sorted_input_moves_no_particle_data(self, rng):
        """Already ordered pairs exchange only control messages."""
        P = 8
        per = 100
        m = Machine(P)
        base = np.sort(rng.integers(0, 10 ** 6, P * per).astype(np.uint64))
        keys = [base[r * per:(r + 1) * per] for r in range(P)]
        merge_exchange_sort(m, make_blocks(m, keys), "key", "s", verify=False)
        st_ = m.trace.get("s")
        # only 24-byte control messages were exchanged
        rounds_msgs = st_.messages
        assert st_.bytes == rounds_msgs * 24

    def test_almost_sorted_cheaper_than_random(self, rng):
        P = 8
        per = 200
        base = np.sort(rng.integers(0, 10 ** 6, P * per).astype(np.uint64))
        # almost sorted: a few local perturbations
        almost = base.copy()
        idx = rng.choice(P * per, 20, replace=False)
        almost[idx] = almost[idx] + 5

        m1 = Machine(P)
        merge_exchange_sort(
            m1, make_blocks(m1, [almost[r * per:(r + 1) * per] for r in range(P)]), "key", "s",
            verify=False,
        )
        m2 = Machine(P)
        shuffled = rng.permutation(base)
        merge_exchange_sort(
            m2, make_blocks(m2, [shuffled[r * per:(r + 1) * per] for r in range(P)]), "key", "s",
            verify=False,
        )
        assert m1.trace.get("s").bytes < m2.trace.get("s").bytes / 5
        assert m1.elapsed() < m2.elapsed()

    def test_uses_no_collectives(self, rng):
        """Merge sort is pure point-to-point: message count is bounded by
        2 messages per comparator plus window exchanges."""
        P = 16
        m = Machine(P)
        keys = [rng.integers(0, 1000, 30) for _ in range(P)]
        merge_exchange_sort(m, make_blocks(m, keys), "key", "s", verify=False)
        from repro.sorting.batcher import comparator_count

        assert m.trace.get("s").messages <= 4 * comparator_count(P)
