"""Backend observability: the ``backend.*`` gauge schema.

Every engine keeps host-side transport counters (exchanges, messages, shm
bytes, tickets, tasks, spawn/wait nanoseconds) that
:func:`repro.backend.export_metrics` publishes into a
:class:`~repro.obs.metrics.MetricsRegistry` as ``backend.*`` gauges.
These are *host* observability — none of them feed modeled time — so the
only contract is schema stability and that real traffic moves them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import export_metrics, resolve_backend
from repro.obs.metrics import MetricsRegistry

EXPECTED_GAUGES = {
    "backend.exchanges",
    "backend.messages",
    "backend.shm_bytes",
    "backend.tickets",
    "backend.tasks",
    "backend.spawn_ns",
    "backend.wait_ns",
    "backend.workers",
}


def _exported(backend):
    registry = MetricsRegistry()
    export_metrics(backend, registry)
    return {s["name"]: s["value"] for s in registry.samples()}


def test_inprocess_schema_is_complete_and_zero_cost():
    backend = resolve_backend("inprocess")
    table = _exported(backend)
    assert EXPECTED_GAUGES <= set(table)
    # the in-process engine never touches shared memory or spawns anything
    assert table["backend.shm_bytes"] == 0.0
    assert table["backend.spawn_ns"] == 0.0


@pytest.mark.timeout(120)
def test_process_counters_track_real_traffic(process_backend):
    before = _exported(process_backend)
    payload = np.arange(32, dtype=np.float64)
    process_backend.deliver(
        [{1: payload}, {2: payload}, {3: payload}, {0: payload}], 4
    )
    after = _exported(process_backend)
    assert after["backend.workers"] == float(process_backend.workers)
    assert after["backend.exchanges"] == before["backend.exchanges"] + 1
    assert after["backend.messages"] == before["backend.messages"] + 4
    assert after["backend.shm_bytes"] > before["backend.shm_bytes"]
    assert after["backend.spawn_ns"] > 0.0  # workers were actually spawned
