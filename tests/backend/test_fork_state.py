"""Fork-unsafe module state: spawn workers must never inherit it.

The coordinator process accumulates module-level mutable state as it runs:
the solver registry (``repro.core.handle``), the backend singleton table
(``repro.backend.base``), the live-shm registry (``repro.backend.shm``),
and whatever caches a prior in-process simulation warmed.  Workers are
started with the ``spawn`` method so none of that is inherited by fork —
these tests pin the property from both sides:

* **worker side** — a probe task reports what a worker interpreter
  actually holds (fresh modules, empty registries, child process),
* **coordinator side** — a process-backend run executed *after* an
  in-process run in the same pytest session (caches hot, registries
  populated, singletons live) still lands on the untouched-session
  fingerprints.
"""

from __future__ import annotations

import os

import pytest

from backend.test_equivalence_matrix import assert_cells_identical, run_cell


@pytest.mark.timeout(120)
def test_workers_are_spawned_children_not_forks(process_backend):
    """Probe each worker: child process, distinct PID, no inherited state."""
    reports = process_backend.map_tasks(
        "repro.backend.process._probe_worker_state",
        [() for _ in range(process_backend.workers)],
    )
    pids = {r["pid"] for r in reports}
    assert os.getpid() not in pids
    for report in reports:
        assert report["is_child"] is True
        # the coordinator's registries must not have crossed over: the
        # worker has no resolved backend singletons and no live arenas
        # of its own at rest
        assert report["backend_singletons"] == 0
        assert report["live_shm_segments"] == []


@pytest.mark.timeout(120)
def test_worker_registries_are_spawn_fresh(process_backend):
    """The coordinator's lazily-populated solver registry must not cross
    into workers.  This session has run full simulations, so the
    coordinator registry holds every built-in solver; a spawn-fresh worker
    interpreter re-imports the modules but its registry dict starts empty
    (a fork would have carried the populated one over)."""
    from repro.core.handle import available_solvers

    assert "fmm" in available_solvers()  # coordinator registry is populated
    (report,) = process_backend.map_tasks(
        "repro.backend.process._probe_worker_state", [()]
    )
    loaded = set(report["repro_modules"])
    assert "repro.backend.process" in loaded  # the worker loop itself
    assert report["solver_registry"] == []
    # simulation/verification layers are not on the worker import chain
    # either; only a task importing them brings them in
    assert "repro.md.simulation" not in loaded
    assert "repro.verify.invariants" not in loaded


@pytest.mark.timeout(240)
def test_process_run_after_inprocess_run_is_unaffected(process_backend):
    """The ordering regression: dirty the coordinator first, then check
    that a process-backend trajectory still matches the reference.

    The in-process run populates the solver registry, warms numpy and
    solver caches and touches the machine/trace plumbing; under a fork
    start method all of that would be frozen into the workers.  Under
    spawn the subsequent process-backend run must be bitwise unaffected.
    """
    reference = run_cell("fmm", "B", None)  # dirties module state too
    again = run_cell("fmm", "B", None)
    assert_cells_identical(reference, again, "fmm/B inprocess repeatability")
    candidate = run_cell("fmm", "B", process_backend)
    assert_cells_identical(reference, candidate, "fmm/B process-after-inprocess")


@pytest.mark.timeout(240)
def test_interleaving_backends_does_not_leak_state(process_backend):
    """Alternate engines within one session: every run, either engine,
    lands on the same fingerprints (no cross-run contamination through
    module state in either direction)."""
    first_process = run_cell("direct", "B+move", process_backend)
    inproc = run_cell("direct", "B+move", None)
    second_process = run_cell("direct", "B+move", process_backend)
    assert_cells_identical(first_process, inproc, "direct/B+move inproc-between")
    assert_cells_identical(first_process, second_process, "direct/B+move repeat")
