"""Delivery aliasing contract (docs/backends.md).

* in-process data plane: inter-rank payloads are delivered **by reference**
  — the received array IS the sender's array object;
* process data plane: inter-rank payloads arrive as fresh decoded copies;
* self-sends return the original payload object on **every** backend (MPI
  local-delivery semantics).

The corollary every call site must honor: received payloads are read-only.
Mutating one in place corrupts sender state under the in-process engine
only — a silent cross-backend divergence.  ``ReadOnlyBackend`` turns such a
mutation into a hard ``ValueError`` and a short simulation matrix sweeps
the redistribution call sites under it, staged algorithm engines included.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.inprocess import InProcessBackend
from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi import Machine
from repro.simmpi.collectives import alltoallv
from repro.simmpi.p2p import send_round


def payload_arrays(payload):
    if payload is None:
        return []
    if isinstance(payload, np.ndarray):
        return [payload]
    return list(payload)


# ----------------------------------------------------------- the contract


class TestInProcessAliasing:
    def test_alltoallv_delivers_references(self):
        machine = Machine(3)
        block = np.arange(4.0)
        recv = alltoallv(machine, [{1: block}, {}, {}], "sort")
        ((src, delivered),) = recv[1]
        assert src == 0
        assert delivered is block

    def test_self_send_returns_original_object(self):
        machine = Machine(3)
        block = np.arange(4.0)
        recv = alltoallv(machine, [{0: block}, {}, {}], "sort")
        assert recv[0][0][1] is block

    def test_send_round_delivers_references(self):
        machine = Machine(2)
        payload = (np.arange(3.0), np.arange(3))
        ((_, delivered),) = send_round(machine, [(0, 1, payload)], "sort")[1]
        assert delivered is payload

    def test_staged_engine_final_recv_references_shipped_columns(self):
        # pairwise ships each payload exactly once: reference delivery
        # survives the staged round
        machine = Machine(2)
        machine.set_collective_algos("alltoallv=pairwise")
        block = np.arange(5.0)
        recv = alltoallv(machine, [{1: block}, {}], "sort")
        assert recv[1][0][1] is block


class TestProcessAliasing:
    def test_inter_rank_payloads_are_fresh_copies(self, process_backend):
        machine = Machine(3)
        machine.attach_backend(process_backend)
        block = np.arange(4.0)
        recv = alltoallv(machine, [{1: block}, {}, {}], "sort")
        ((_, delivered),) = recv[1]
        assert delivered is not block
        np.testing.assert_array_equal(delivered, block)
        delivered += 100.0  # mutating a copy must not reach the sender
        np.testing.assert_array_equal(block, np.arange(4.0))

    def test_self_send_returns_original_object(self, process_backend):
        machine = Machine(3)
        machine.attach_backend(process_backend)
        block = np.arange(4.0)
        recv = alltoallv(machine, [{0: block}, {}, {}], "sort")
        assert recv[0][0][1] is block

    @pytest.mark.parametrize("algo", ["pairwise", "bruck"])
    def test_staged_payloads_are_fresh_copies(self, process_backend, algo):
        machine = Machine(4)
        machine.attach_backend(process_backend)
        machine.set_collective_algos(f"alltoallv={algo}")
        blocks = [np.full(3, float(i)) for i in range(4)]
        sends = [
            {j: blocks[i] for j in range(4) if j != i} for i in range(4)
        ]
        recv = alltoallv(machine, sends, "sort")
        for dst in range(4):
            for src, payload in recv[dst]:
                for arr in payload_arrays(payload):
                    assert arr is not blocks[src]
                    np.testing.assert_array_equal(arr, blocks[src])


# --------------------------------------- mutation sweep over the call sites


class ReadOnlyBackend(InProcessBackend):
    """In-process delivery with inter-rank arrays delivered write-protected.

    Any call site that mutates a received payload in place — legal-looking
    under reference delivery, silently divergent under a process backend —
    raises ``ValueError: assignment destination is read-only`` instead.
    Self-transfers keep the original writable object, matching the real
    engines.
    """

    name = "inprocess-readonly"

    @staticmethod
    def _protect(payload):
        def view(arr):
            out = arr.view()
            out.flags.writeable = False
            return out

        if payload is None:
            return None
        if isinstance(payload, np.ndarray):
            return view(payload)
        if isinstance(payload, tuple):
            return tuple(view(a) for a in payload)
        return [view(a) for a in payload]

    def deliver(self, sends, nprocs):
        protected = [
            {
                dst: (p if dst == src else self._protect(p))
                for dst, p in targets.items()
            }
            for src, targets in enumerate(sends)
        ]
        return super().deliver(protected, nprocs)

    def route(self, transfers, nprocs):
        return super().route(
            [
                (src, dst, p if dst == src else self._protect(p))
                for src, dst, p in transfers
            ],
            nprocs,
        )


@pytest.mark.parametrize("solver,method", [("direct", "A"), ("fmm", "B+move")])
@pytest.mark.parametrize(
    "algos", [None, "bruck+binomial-tree+allgatherv=ring", "alltoallv=pairwise"]
)
def test_no_call_site_mutates_received_payloads(solver, method, algos):
    machine = Machine(4)
    machine.attach_backend(ReadOnlyBackend())
    system = silica_melt_system(24, seed=0)
    config = SimulationConfig(
        solver=solver, method=method, seed=0, collective_algos=algos
    )
    sim = Simulation(machine, system, config)
    try:
        sim.run(2)
    finally:
        sim.fcs.destroy()
