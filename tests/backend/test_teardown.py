"""Timeout/teardown hardening: a dead worker is a diagnostic, not a hang.

Crash tests use their own throwaway :class:`ProcessBackend` instances (a
crash poisons the pool by design — rank-payload state died with the
worker), run under the conftest watchdog so a regression fails fast, and
finish with the autouse leak fixture verifying that error paths released
every shared-memory segment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import BackendError, BackendWorkerError, shm
from repro.backend.process import ProcessBackend


def _sends(nprocs=4):
    """A full ring exchange so every worker participates."""
    return [
        {(src + 1) % nprocs: np.full(8, float(src))} for src in range(nprocs)
    ]


@pytest.mark.timeout(120)
def test_worker_crash_surfaces_named_diagnostic(watchdog):
    backend = ProcessBackend(workers=2, timeout=60.0)
    try:
        backend.kill_worker(1, exitcode=3)
        with pytest.raises(BackendWorkerError) as exc:
            watchdog(lambda: backend.deliver(_sends(), 4), timeout=90.0)
        message = str(exc.value)
        # the diagnostic must name the dead worker, the virtual ranks it
        # owned, how it died, and that the exchange is unrecoverable
        assert "worker 1" in message
        assert "virtual ranks 1, 3" in message
        assert "exitcode=3" in message
        assert "the exchange cannot complete" in message
    finally:
        backend.close()


@pytest.mark.timeout(120)
def test_pool_is_poisoned_after_crash(watchdog):
    """After a worker death the backend refuses further work outright."""
    backend = ProcessBackend(workers=2, timeout=60.0)
    try:
        backend.kill_worker(0)
        with pytest.raises(BackendWorkerError):
            watchdog(lambda: backend.deliver(_sends(), 4), timeout=90.0)
        assert backend.closed
        with pytest.raises(BackendError):
            backend.deliver(_sends(), 4)
    finally:
        backend.close()


@pytest.mark.timeout(120)
def test_crash_mid_exchange_releases_arenas(watchdog):
    """Error paths must release send+recv arenas (finally-block contract);
    the autouse fixture re-checks after teardown."""
    backend = ProcessBackend(workers=2, timeout=60.0)
    try:
        backend.kill_worker(1)
        with pytest.raises(BackendWorkerError):
            watchdog(lambda: backend.deliver(_sends(), 4), timeout=90.0)
        assert shm.live_segments() == []
    finally:
        backend.close()


@pytest.mark.timeout(120)
def test_task_exception_names_worker_and_op(watchdog):
    """A task raising inside a worker is an error report, not a crash: the
    pool stays usable and the traceback crosses the pipe."""
    backend = ProcessBackend(workers=2, timeout=60.0)
    try:
        with pytest.raises(BackendWorkerError) as exc:
            watchdog(
                lambda: backend.map_tasks("math.sqrt", [(-1.0,)]), timeout=90.0
            )
        assert "failed during" in str(exc.value)
        assert "math domain error" in str(exc.value)
        assert not backend.closed
        # still alive and correct after the failed call
        assert backend.map_tasks("math.hypot", [(3.0, 4.0)]) == [5.0]
    finally:
        backend.close()


@pytest.mark.timeout(120)
def test_close_is_idempotent_and_final():
    backend = ProcessBackend(workers=2, timeout=60.0)
    assert backend.ping() == backend.ping()  # workers answer consistently
    backend.close()
    backend.close()  # idempotent
    assert backend.closed
    with pytest.raises(BackendError):
        backend.ping()


@pytest.mark.timeout(120)
def test_closed_backend_cannot_attach(process_backend):
    """machine.attach_backend refuses a dead engine up front."""
    from repro.simmpi.machine import Machine

    backend = ProcessBackend(workers=1, timeout=60.0)
    backend.close()
    with pytest.raises(RuntimeError):
        Machine(4).attach_backend(backend)
    # a live engine attaches fine (sanity check on the positive path)
    Machine(4).attach_backend(process_backend)
