"""Property suite for the shared-memory payload codec.

Whatever structure-of-arrays payload the transports hand the backend —
mixed dtypes, empty ranks, zero-length columns, single particles,
structured dtypes — must come back *byte for byte* after a round trip
through an arena.  The layout arithmetic is additionally pinned at
synthetic sizes far beyond ``INT32_MAX`` (pure-int offsets can't wrap;
nothing is allocated at those sizes).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.shm import (
    ALIGNMENT,
    ShmArena,
    arena_layout,
    decode_payload,
    encode_payloads,
    write_columns,
)

# dtypes the simulation transports actually ship (particle columns, index
# vectors, flags) plus a structured record dtype for good measure
DTYPES = st.sampled_from(
    [
        np.dtype(np.float64),
        np.dtype(np.float32),
        np.dtype(np.int64),
        np.dtype(np.int32),
        np.dtype(np.uint8),
        np.dtype(np.bool_),
        np.dtype([("id", np.int64), ("q", np.float64)]),
    ]
)


@st.composite
def columns(draw):
    """One ndarray column: any supported dtype, 0..12 rows, 1-D or (n,3)."""
    dtype = draw(DTYPES)
    n = draw(st.integers(min_value=0, max_value=12))
    if dtype.names is None and draw(st.booleans()):
        shape = (n, 3)
    else:
        shape = (n,)
    if dtype.names is not None:
        arr = np.zeros(shape, dtype=dtype)
        arr["id"] = draw(
            st.lists(st.integers(-(2**40), 2**40), min_size=n, max_size=n)
        )
        arr["q"] = np.linspace(-1.0, 1.0, num=max(n, 1))[:n]
        return arr
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    if dtype.kind == "f":
        return rng.standard_normal(shape).astype(dtype)
    if dtype.kind == "b":
        return rng.integers(0, 2, size=shape).astype(dtype)
    info = np.iinfo(dtype)
    return rng.integers(info.min, info.max, size=shape, dtype=dtype)


@st.composite
def payloads(draw):
    """A payload as the transports define it: array | tuple | list | None."""
    kind = draw(st.sampled_from(["array", "tuple", "list", "none"]))
    if kind == "none":
        return None
    if kind == "array":
        return draw(columns())
    cols = draw(st.lists(columns(), min_size=0, max_size=4))
    return tuple(cols) if kind == "tuple" else list(cols)


def roundtrip(batch, **encode_kwargs):
    specs, total, flat = encode_payloads(batch, **encode_kwargs)
    with ShmArena(total) as arena:
        write_columns(arena.buf, specs, flat)
        return [decode_payload(arena.buf, spec) for spec in specs]


def assert_payload_equal(original, decoded):
    if original is None:
        assert decoded is None
        return
    if isinstance(original, np.ndarray):
        assert isinstance(decoded, np.ndarray)
        assert decoded.dtype == original.dtype
        assert decoded.shape == original.shape
        assert decoded.tobytes() == np.ascontiguousarray(original).tobytes()
        return
    assert type(decoded) is type(original)
    assert len(decoded) == len(original)
    for a, b in zip(original, decoded):
        assert_payload_equal(a, b)


@settings(max_examples=120, deadline=None)
@given(st.lists(payloads(), min_size=0, max_size=6))
def test_mixed_payload_batch_roundtrips_bytewise(batch):
    for original, decoded in zip(batch, roundtrip(batch)):
        assert_payload_equal(original, decoded)


def test_edge_shapes_roundtrip():
    """The named hard cases: empty rank, zero-length, single particle."""
    batch = [
        None,  # rank with no outgoing message
        np.empty((0, 3), dtype=np.float64),  # empty rank payload
        (np.empty(0, dtype=np.int64), np.empty((0, 3))),  # zero-length tuple
        np.array([[1.5, -2.5, 3.5]]),  # single particle
        [np.array([7], dtype=np.int32)],  # single-element list payload
    ]
    for original, decoded in zip(batch, roundtrip(batch)):
        assert_payload_equal(original, decoded)


def test_decoded_arrays_are_fresh_and_writable():
    """Decoded arrays must not alias the arena (it gets unlinked)."""
    (decoded,) = roundtrip([np.arange(6.0)])
    decoded[0] = 99.0  # would raise on a read-only shm view
    assert decoded[0] == 99.0


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=2**41),  # up to 2 TiB per block
        min_size=0,
        max_size=8,
    )
)
def test_arena_layout_huge_sizes_pure_int(sizes):
    """Offset arithmetic holds far past INT32_MAX without allocating."""
    offsets, total = arena_layout(sizes)
    assert len(offsets) == len(sizes)
    cursor = 0
    for offset, size in zip(offsets, sizes):
        assert offset % ALIGNMENT == 0
        assert offset >= cursor
        assert offset - cursor < ALIGNMENT
        cursor = offset + size
    assert total == cursor
    assert isinstance(total, int) and all(isinstance(o, int) for o in offsets)


def test_arena_layout_rejects_negative_sizes():
    with pytest.raises(ValueError, match="negative block size"):
        arena_layout([8, -1])


def test_object_dtype_rejected():
    with pytest.raises(TypeError, match="object-dtype arrays cannot travel"):
        encode_payloads([np.array([{"a": 1}], dtype=object)])


def test_tuple_of_non_arrays_rejected_by_default():
    """Strings must not be silently coerced into '<U1' arrays."""
    with pytest.raises(TypeError, match="must contain only ndarrays"):
        encode_payloads([("hello", 3)])


def test_pickle_fallback_roundtrips_arbitrary_objects():
    """The SPMD mailboxes carry arbitrary objects — pickle lane only."""
    batch = [("hello", 3), {"k": [1, 2]}, 1.5, np.arange(4)]
    decoded = roundtrip(batch, allow_pickle=True)
    assert decoded[0] == ("hello", 3)
    assert decoded[1] == {"k": [1, 2]}
    assert decoded[2] == 1.5
    assert_payload_equal(batch[3], decoded[3])


def test_pickle_fallback_preserves_float_bits():
    """Objects taking the pickle lane keep exact float bit patterns."""
    value = (0.1 + 0.2, np.float64(1e-301).item(), -0.0)
    (decoded,) = roundtrip([value], allow_pickle=True)
    assert [v.hex() for v in decoded] == [v.hex() for v in value]
