"""Property-based differential tests of the collective-algorithm engines.

For random sparse traffic patterns — empty ranks, self-sends-only ranks,
zero-length columns included — every algorithm on every backend must
deliver identical recv payloads, and for a fixed algorithm the auditor
ledger fingerprint must be backend-independent.  Message counts are held
to their closed forms wherever one exists.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simmpi import JUROPA, Machine
from repro.simmpi.collectives import allgatherv, allreduce, alltoallv
from repro.verify.audit import enable_auditing
from repro.verify.dst import ledger_fingerprint

ALLTOALLV_ALGOS = ("direct", "pairwise", "bruck")
SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def traffic(draw):
    """(P, sends): a sparse mixed-kind pattern over a small machine."""
    P = draw(st.integers(min_value=2, max_value=6))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    style = draw(st.sampled_from(["random", "empty-ranks", "self-only"]))
    sends = []
    for i in range(P):
        targets = {}
        if style == "self-only":
            targets[i] = rng.standard_normal(draw(st.integers(0, 3)))
        elif style == "empty-ranks" and i % 2 == 0:
            pass  # rank sends nothing at all
        else:
            for j in range(P):
                if not draw(st.booleans()):
                    continue
                n = draw(st.integers(min_value=0, max_value=4))
                if draw(st.booleans()):
                    targets[j] = rng.standard_normal(n)
                else:
                    targets[j] = (
                        rng.standard_normal(n),
                        rng.integers(0, 100, n),
                    )
        sends.append(targets)
    return P, sends


def recv_fingerprint(recv):
    out = []
    for lst in recv:
        row = []
        for src, p in lst:
            cols = [p] if isinstance(p, np.ndarray) else list(p)
            row.append(
                (src, type(p).__name__)
                + tuple((c.dtype.str, c.shape, c.tobytes()) for c in cols)
            )
        out.append(tuple(row))
    return out


@given(traffic())
@SETTINGS
def test_alltoallv_payloads_identical_across_algos_and_backends(
    process_backend, case
):
    P, sends = case
    results = {}
    ledgers = {}
    for algo in ALLTOALLV_ALGOS:
        for backend in (None, process_backend):
            machine = Machine(P, profile=JUROPA)
            if backend is not None:
                machine.attach_backend(backend)
            if algo != "direct":
                machine.set_collective_algos(f"alltoallv={algo}")
            auditor = enable_auditing(machine)
            results[(algo, backend is None)] = recv_fingerprint(
                alltoallv(machine, sends, "sort")
            )
            auditor.assert_quiescent()
            ledgers[(algo, backend is None)] = ledger_fingerprint(auditor)
    reference = results[("direct", True)]
    assert all(fp == reference for fp in results.values())
    # ledgers are backend-independent per algorithm (they legitimately
    # differ *between* algorithms — that's the point of the engines)
    for algo in ALLTOALLV_ALGOS:
        assert ledgers[(algo, True)] == ledgers[(algo, False)]


@given(traffic())
@SETTINGS
def test_pairwise_message_count_matches_closed_form(case):
    P, sends = case
    machine = Machine(P, profile=JUROPA)
    machine.set_collective_algos("alltoallv=pairwise")
    auditor = enable_auditing(machine)
    alltoallv(machine, sends, "sort")
    expected_msgs = sum(1 for i, t in enumerate(sends) for j in t if j != i)
    expected_bytes = sum(
        sum(c.nbytes for c in ([p] if isinstance(p, np.ndarray) else p))
        for i, t in enumerate(sends)
        for j, p in t.items()
        if j != i
    )
    led = auditor.algo_ledger.get("sort")
    assert (led.messages if led else 0) == expected_msgs
    assert (led.bytes if led else 0) == expected_bytes


@given(traffic())
@SETTINGS
def test_bruck_message_count_within_log_bound(case):
    P, sends = case
    machine = Machine(P, profile=JUROPA)
    machine.set_collective_algos("alltoallv=bruck")
    auditor = enable_auditing(machine)
    alltoallv(machine, sends, "sort")
    led = auditor.algo_ledger.get("sort")
    bound = P * int(np.ceil(np.log2(P)))
    assert (led.messages if led else 0) <= bound


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(0, 2**32 - 1),
    st.sampled_from(["ring", "recursive-doubling"]),
)
@SETTINGS
def test_allgatherv_payloads_identical_across_backends(
    process_backend, P, seed, algo
):
    rng = np.random.default_rng(seed)
    arrays = [rng.standard_normal(int(rng.integers(0, 4))) for _ in range(P)]
    reference = allgatherv(Machine(P, profile=JUROPA), arrays, "gather")
    for backend in (None, process_backend):
        machine = Machine(P, profile=JUROPA)
        if backend is not None:
            machine.attach_backend(backend)
        machine.set_collective_algos(f"allgatherv={algo}")
        got = allgatherv(machine, arrays, "gather")
        assert [a.tobytes() for a in got] == [a.tobytes() for a in reference]
    expected = (
        P * (P - 1) if algo == "ring" else P * int(np.ceil(np.log2(P)))
    )
    machine = Machine(P, profile=JUROPA)
    machine.set_collective_algos(f"allgatherv={algo}")
    auditor = enable_auditing(machine)
    allgatherv(machine, arrays, "gather")
    assert auditor.algo_ledger["gather"].messages == expected


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(0, 2**32 - 1),
    st.sampled_from(["sum", "max", "min"]),
    st.sampled_from(["binomial-tree", "recursive-halving-doubling"]),
)
@SETTINGS
def test_allreduce_results_identical_across_backends(
    process_backend, P, seed, op, algo
):
    rng = np.random.default_rng(seed)
    values = [rng.standard_normal(3) for _ in range(P)]
    reference = allreduce(Machine(P, profile=JUROPA), values, op=op, phase="tune")
    for backend in (None, process_backend):
        machine = Machine(P, profile=JUROPA)
        if backend is not None:
            machine.attach_backend(backend)
        machine.set_collective_algos(f"allreduce={algo}")
        got = allreduce(machine, values, op=op, phase="tune")
        assert np.asarray(got).tobytes() == np.asarray(reference).tobytes()
    machine = Machine(P, profile=JUROPA)
    machine.set_collective_algos(f"allreduce={algo}")
    auditor = enable_auditing(machine)
    allreduce(machine, values, op=op, phase="tune")
    if algo == "recursive-halving-doubling" and P & (P - 1) == 0:
        expected = 2 * P * int(np.log2(P))
    else:
        expected = 2 * (P - 1)  # binomial tree (incl. the non-pow2 fallback)
    assert auditor.algo_ledger["tune"].messages == expected


@pytest.mark.parametrize("algo", ["pairwise", "bruck"])
def test_zero_length_columns_ship_losslessly(process_backend, algo):
    # all-empty payloads: zero bytes but real messages and real deliveries
    P = 4
    sends = [
        {j: np.empty(0) for j in range(P) if j != i} for i in range(P)
    ]
    for backend in (None, process_backend):
        machine = Machine(P, profile=JUROPA)
        if backend is not None:
            machine.attach_backend(backend)
        machine.set_collective_algos(f"alltoallv={algo}")
        auditor = enable_auditing(machine)
        recv = alltoallv(machine, sends, "sort")
        assert [len(lst) for lst in recv] == [P - 1] * P
        assert auditor.algo_ledger["sort"].bytes == 0
        assert auditor.algo_ledger["sort"].messages > 0
        auditor.assert_quiescent()
