"""Cross-backend differential matrix: process == inprocess, bit for bit.

The backend contract (:mod:`repro.backend`) is that an execution engine may
only change *where payload bytes live in transit* — never what arrives, in
what order the coordinator observes it, or what modeled time it costs.
These tests hold the ``process`` engine to that contract across the full
solver × redistribution-method grid by comparing three independent
bitwise observables against the in-process reference:

* ``state_fingerprint`` — per-component digests of the physics state,
* ``ledger_fingerprint`` — the communication auditor's per-phase ledgers,
* ``step_breakdown_hex`` — per-step phase times as ``float.hex`` patterns
  (any drift in modeled-cost charging shows up here first).

Plus two hard cells: the clustered two-cluster system with the dynamic
load balancer active (the weighted-repartition exchange path), and a
checkpoint captured *under* the process engine restored *under* the
in-process engine (engines are host machinery, not simulation state).
"""

from __future__ import annotations

import pytest

from repro.ckpt import capture_checkpoint, restore_simulation
from repro.ckpt.equivalence import step_breakdown_hex
from repro.md.distributions import clustered_system
from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine
from repro.verify.audit import enable_auditing
from repro.verify.dst import ledger_fingerprint
from repro.verify.invariants import state_fingerprint

SOLVERS = ("direct", "ewald", "fmm", "p2nfft")
METHODS = ("A", "B", "B+move")

NPROCS = 4
N_PARTICLES = 48
STEPS = 2


def run_cell(solver, method, backend, *, distribution="homogeneous", steps=STEPS):
    """One trajectory; returns its three bitwise observables."""
    machine = Machine(NPROCS)
    solver_kwargs = {}
    balance_kwargs = {}
    if distribution == "clustered":
        system = clustered_system("two-cluster", N_PARTICLES, seed=0)
        balance_kwargs = dict(
            load_balance="dynamic",
            balance_trigger=1.02,
            balance_rearm=1.01,
            capacity_factor=6.0,
        )
        if solver == "fmm":
            solver_kwargs["work_model"] = "density"
    else:
        system = silica_melt_system(N_PARTICLES, seed=0)
    config = SimulationConfig(
        solver=solver,
        method=method,
        seed=0,
        track_energy=True,
        solver_kwargs=solver_kwargs,
        backend=backend,
        **balance_kwargs,
    )
    sim = Simulation(machine, system, config)
    auditor = enable_auditing(machine)
    sim.initialize()
    for _ in range(steps):
        sim.step()
    auditor.assert_quiescent()
    out = (
        state_fingerprint(sim),
        ledger_fingerprint(auditor),
        step_breakdown_hex(sim.records),
    )
    sim.fcs.destroy()
    return out


def assert_cells_identical(reference, candidate, label):
    ref_state, ref_ledger, ref_times = reference
    got_state, got_ledger, got_times = candidate
    assert got_state == ref_state, f"{label}: state fingerprint moved"
    assert got_ledger == ref_ledger, f"{label}: ledger fingerprint moved"
    assert got_times == ref_times, f"{label}: modeled step times moved"


@pytest.mark.timeout(240)
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("solver", SOLVERS)
def test_process_backend_matches_inprocess(solver, method, process_backend):
    """solver × method grid: every observable is backend-independent."""
    reference = run_cell(solver, method, None)
    candidate = run_cell(solver, method, process_backend)
    assert_cells_identical(reference, candidate, f"{solver}/{method}/process")


@pytest.mark.timeout(240)
def test_inprocess_spec_matches_default():
    """``backend="inprocess"`` is the explicit spelling of the default."""
    reference = run_cell("direct", "B", None)
    candidate = run_cell("direct", "B", "inprocess")
    assert_cells_identical(reference, candidate, "direct/B/inprocess")


@pytest.mark.timeout(240)
@pytest.mark.parametrize("method", ("A", "B+move"))
def test_clustered_dynamic_balance_cell(method, process_backend):
    """Two-cluster system + dynamic load balancer: the weighted repartition
    exchanges also ride the backend transport and must not perturb it."""
    reference = run_cell("fmm", method, None, distribution="clustered", steps=3)
    candidate = run_cell(
        "fmm", method, process_backend, distribution="clustered", steps=3
    )
    assert_cells_identical(reference, candidate, f"fmm/{method}/clustered")


@pytest.mark.timeout(240)
def test_checkpoint_crosses_backends(process_backend):
    """Save under ``process``, restore under inprocess: same trajectory.

    A checkpoint records the engine *spec* (host machinery, not state), so
    a restore is free to run under any engine — and must land on the same
    fingerprints either way.
    """
    # uninterrupted reference, no backend
    machine = Machine(NPROCS)
    system = silica_melt_system(N_PARTICLES, seed=0)
    config = SimulationConfig(solver="fmm", method="B", seed=0, track_energy=True)
    ref = Simulation(machine, system, config)
    ref.initialize()
    for _ in range(4):
        ref.step()
    ref_fp = state_fingerprint(ref)
    ref.fcs.destroy()

    # run the first half under the process engine, checkpoint there
    machine = Machine(NPROCS)
    system = silica_melt_system(N_PARTICLES, seed=0)
    config = SimulationConfig(
        solver="fmm", method="B", seed=0, track_energy=True,
        backend=process_backend,
    )
    sim = Simulation(machine, system, config)
    sim.initialize()
    sim.step()
    sim.step()
    ckpt = capture_checkpoint(sim)
    sim.fcs.destroy()
    assert ckpt.config["backend"] == "process"

    # restore under the in-process engine and finish the trajectory
    ckpt.config["backend"] = None
    resumed = restore_simulation(ckpt, machine=Machine(NPROCS))
    assert resumed.machine.backend is None
    resumed.step()
    resumed.step()
    assert state_fingerprint(resumed) == ref_fp
    resumed.fcs.destroy()
