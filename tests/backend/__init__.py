# package marker: keeps tests/backend off sys.path so this directory's
# conftest.py cannot shadow tests/conftest.py for the suites that do
# `from conftest import ...` (pytest then imports us as backend.*)
