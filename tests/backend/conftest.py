"""Fixtures for the cross-backend differential suite.

Two invariants every test in this directory runs under:

* **no leaked shared memory** — ``assert_no_shm_leaks`` (autouse) fails any
  test that leaves a ``SharedMemory`` segment created by this process
  unreleased, including tests that kill workers mid-exchange;
* **no hangs** — process-backend tests carry ``pytest.mark.timeout``
  markers (honored when pytest-timeout is installed) *and* the hang-prone
  ones run under :func:`run_with_watchdog`, which fails the test from a
  watchdog thread even without the plugin.
"""

from __future__ import annotations

import threading

import pytest

from repro.backend import shm
from repro.backend.process import ProcessBackend


@pytest.fixture(autouse=True)
def assert_no_shm_leaks():
    """Every test must release the shared-memory segments it creates."""
    before = set(shm.live_segments())
    yield
    leaked = sorted(set(shm.live_segments()) - before)
    assert not leaked, f"leaked shared-memory segments: {leaked}"


@pytest.fixture(scope="session")
def process_backend():
    """One shared 2-worker process engine for the whole session (spawning
    workers is the expensive part; the engine is stateless between calls)."""
    backend = ProcessBackend(workers=2, timeout=120.0)
    yield backend
    backend.close()


@pytest.fixture
def watchdog():
    """Hang-proofing helper: run a callable on a daemon thread and fail the
    test if it doesn't finish (the ``tests/simmpi/test_spmd`` pattern — a
    stuck exchange must become a test failure, never a stuck pytest).
    Returns the callable's value, re-raises its exception.
    """

    def run_with_watchdog(fn, timeout=90.0):
        result: dict = {}

        def target():
            try:
                result["value"] = fn()
            except BaseException as exc:  # surfaces in the calling thread
                result["error"] = exc

        t = threading.Thread(target=target, daemon=True)
        t.start()
        t.join(timeout)
        if t.is_alive():
            pytest.fail(f"operation did not finish within {timeout}s (hang)")
        if "error" in result:
            raise result["error"]
        return result.get("value")

    return run_with_watchdog
