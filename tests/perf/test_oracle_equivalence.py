"""Bitwise equivalence of every vectorized hot kernel against its retained
scalar oracle.

Each vectorized kernel in the tree keeps its original implementation under a
``*_reference`` name and routes through it inside
:func:`repro.perf.instrument.reference_mode`.  The contract checked here is
strict: *bitwise identical* outputs (``np.array_equal`` on equal dtypes —
never ``allclose``), identical dict key orders, identical modeled clocks,
traces and error messages.  Host speed is the only thing the vectorization
is allowed to change.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.particles import ColumnBlock
from repro.core.plan import ResortPlan
from repro.core.resort import pack_resort_index
from repro.perf import instrument
from repro.simmpi.machine import Machine
from repro.solvers.common.pairs import ragged_cross, ragged_cross_reference
from repro.solvers.fmm.expansions import (
    derivative_tensors,
    derivative_tensors_reference,
)
from repro.solvers.p2nfft.linked_cell import LinkedCellNearField
from repro.sorting.partition_sort import (
    partition_destinations,
    partition_destinations_reference,
    split_by_destination,
    split_by_destination_reference,
)


def assert_same_arrays(vec, ref):
    """Bitwise array equality including dtype and shape."""
    assert type(vec) is type(ref) or (
        isinstance(vec, np.ndarray) and isinstance(ref, np.ndarray)
    )
    assert vec.dtype == ref.dtype
    assert vec.shape == ref.shape
    assert np.array_equal(vec, ref)


# ------------------------------------------------------------- ragged_cross

#: (t_start, t_len, s_start, s_len) per segment; zero lengths and empty
#: tables are the important edge cases
segment_tables = st.lists(
    st.tuples(
        st.integers(0, 40),
        st.integers(0, 7),
        st.integers(0, 40),
        st.integers(0, 7),
    ),
    min_size=0,
    max_size=40,
)


class TestRaggedCross:
    @given(segment_tables)
    def test_bitwise(self, segs):
        t_starts = np.array([s[0] for s in segs], dtype=np.int64)
        t_ends = t_starts + np.array([s[1] for s in segs], dtype=np.int64)
        s_starts = np.array([s[2] for s in segs], dtype=np.int64)
        s_ends = s_starts + np.array([s[3] for s in segs], dtype=np.int64)
        vec_ti, vec_si = ragged_cross(t_starts, t_ends, s_starts, s_ends)
        ref_ti, ref_si = ragged_cross_reference(t_starts, t_ends, s_starts, s_ends)
        assert_same_arrays(vec_ti, ref_ti)
        assert_same_arrays(vec_si, ref_si)

    def test_reference_mode_dispatch(self):
        t_starts = np.array([0, 3], dtype=np.int64)
        t_ends = np.array([3, 5], dtype=np.int64)
        s_starts = np.array([1, 0], dtype=np.int64)
        s_ends = np.array([4, 2], dtype=np.int64)
        with instrument.reference_mode():
            ti, si = ragged_cross(t_starts, t_ends, s_starts, s_ends)
        ref_ti, ref_si = ragged_cross_reference(t_starts, t_ends, s_starts, s_ends)
        assert_same_arrays(ti, ref_ti)
        assert_same_arrays(si, ref_si)

    def test_all_empty_segments(self):
        z = np.zeros(5, dtype=np.int64)
        vec = ragged_cross(z, z, z, z)
        ref = ragged_cross_reference(z, z, z, z)
        for a, b in zip(vec, ref):
            assert_same_arrays(a, b)
            assert a.size == 0


# --------------------------------------------------------- partition sort

@st.composite
def destination_problems(draw):
    n = draw(st.integers(0, 200))
    P = draw(st.integers(1, 9))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    order = rng.permutation(n).astype(np.int64)
    cuts = np.sort(rng.integers(0, n + 1, P - 1)) if P > 1 else np.empty(0, np.int64)
    bounds = np.concatenate(([0], cuts, [n])).astype(np.int64)
    return order, bounds, rng


class TestPartitionSort:
    @given(destination_problems())
    def test_destinations_bitwise(self, problem):
        order, bounds, _rng = problem
        vec = partition_destinations(order, bounds)
        ref = partition_destinations_reference(order, bounds)
        assert_same_arrays(vec, ref)

    @given(destination_problems())
    def test_split_bitwise(self, problem):
        order, bounds, rng = problem
        n = order.shape[0]
        P = bounds.shape[0] - 1
        d = rng.integers(0, P, n).astype(np.int64)
        block = ColumnBlock(
            keys=rng.integers(0, 1 << 50, n).astype(np.uint64),
            pos=rng.standard_normal((n, 3)),
            ids=np.arange(n, dtype=np.int64),
        )
        vec = split_by_destination(block, d)
        ref = split_by_destination_reference(block, d)
        # identical key *order*, not just identical key sets
        assert list(vec) == list(ref)
        for dst in vec:
            assert vec[dst].names() == ref[dst].names()
            for name in vec[dst].names():
                assert_same_arrays(vec[dst][name], ref[dst][name])

    def test_split_empty_block(self):
        block = ColumnBlock(keys=np.empty(0, dtype=np.uint64))
        d = np.empty(0, dtype=np.int64)
        assert split_by_destination(block, d) == {}
        assert split_by_destination_reference(block, d) == {}


# ----------------------------------------------------- derivative tensors

class TestDerivativeTensors:
    @given(
        st.integers(2, 6),
        st.integers(1, 40),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_bitwise(self, order, m, seed):
        rng = np.random.default_rng(seed)
        d = rng.normal(scale=10.0, size=(m, 3))
        # keep displacements away from the origin (well-separated cells)
        d[np.linalg.norm(d, axis=1) < 2.0] += 6.0
        vec = derivative_tensors(d, order)
        ref = derivative_tensors_reference(d, order)
        assert_same_arrays(vec, ref)

    def test_single_displacement(self):
        d = np.array([3.0, -2.0, 5.0])
        vec = derivative_tensors(d, 6)
        ref = derivative_tensors_reference(d, 6)
        assert_same_arrays(vec, ref)

    def test_reference_mode_dispatch(self):
        d = np.array([[3.0, -2.0, 5.0], [-1.0, 4.0, 2.0]])
        with instrument.reference_mode():
            routed = derivative_tensors(d, 4)
        assert_same_arrays(routed, derivative_tensors_reference(d, 4))


# ----------------------------------------------------- linked-cell pairs

@st.composite
def linked_cell_problems(draw):
    # small boxes exercise the dims < 3 dedup branch, large ones the
    # common 27-distinct-neighbors geometry
    rc = draw(st.floats(0.8, 2.5))
    edges = draw(
        st.tuples(
            st.floats(2.0, 9.0), st.floats(2.0, 9.0), st.floats(2.0, 9.0)
        )
    )
    seed = draw(st.integers(0, 2**31 - 1))
    nt = draw(st.integers(0, 25))
    ns = draw(st.integers(0, 60))
    box = np.array(edges) * rc
    return box, rc, seed, nt, ns


class TestCandidatePairs:
    @given(linked_cell_problems())
    @settings(max_examples=60, deadline=None)
    def test_bitwise(self, problem):
        box, rc, seed, nt, ns = problem
        nf = LinkedCellNearField(box, np.zeros(3), rc, alpha=0.7)
        rng = np.random.default_rng(seed)
        tpos = rng.uniform(0.0, 1.0, (nt, 3)) * box
        spos = rng.uniform(0.0, 1.0, (ns, 3)) * box
        s_sorted = np.sort(nf.cell_ids(spos))
        t_ids = nf.cell_ids(tpos)
        t_sorted = np.sort(t_ids)
        cells, first = np.unique(t_sorted, return_index=True)
        if first.size:
            last = np.concatenate((first[1:], [t_sorted.shape[0]])).astype(first.dtype)
        else:
            last = first.copy()
        cx = cells // (nf.dims[1] * nf.dims[2])
        cy = (cells // nf.dims[2]) % nf.dims[1]
        cz = cells % nf.dims[2]
        vec = nf.candidate_pairs(first, last, s_sorted, cx, cy, cz, ns)
        ref = nf.candidate_pairs_reference(first, last, s_sorted, cx, cy, cz, ns)
        for a, b in zip(vec, ref):
            assert_same_arrays(a, b)

    def test_dedup_geometry_is_exercised(self):
        """dims < 3 (wrapped neighbors coincide) must flow through _dedup."""
        nf = LinkedCellNearField(np.array([2.0, 2.0, 2.0]), np.zeros(3), 1.0, 0.7)
        assert nf.needs_dedup
        big = LinkedCellNearField(np.array([9.0, 9.0, 9.0]), np.zeros(3), 1.0, 0.7)
        assert not big.needs_dedup


# ------------------------------------------------------------ resort plan

def _resort_problem(n, P, seed, *, local=False):
    """Random (or banded-local) resort indices + mixed columns."""
    rng = np.random.default_rng(seed)
    counts = rng.multinomial(n, np.ones(P) / P).astype(np.int64)
    off = np.concatenate(([0], np.cumsum(counts)))
    perm = np.arange(n)
    if local:
        w = max(2 * (n // P), 1)
        for s in range(0, n, w):
            seg = perm[s : s + 2 * w].copy()
            rng.shuffle(seg)
            perm[s : s + 2 * w] = seg
    else:
        rng.shuffle(perm)
    tgt_rank = np.searchsorted(off[1:], perm, side="right")
    tgt_pos = perm - off[tgt_rank]
    idx = [
        pack_resort_index(tgt_rank[off[r] : off[r + 1]], tgt_pos[off[r] : off[r + 1]])
        for r in range(P)
    ]
    counts_l = [int(c) for c in counts]
    cols = [
        [rng.standard_normal((counts_l[r], 3)) for r in range(P)],
        [rng.standard_normal(counts_l[r]) for r in range(P)],
        [rng.integers(0, 1 << 40, counts_l[r]) for r in range(P)],
    ]
    return idx, counts_l, cols


def _run_plan(idx, counts, cols, comm, reference):
    machine = Machine(len(counts))
    with instrument.reference_mode(reference):
        plan = ResortPlan(machine, idx, counts, counts, comm=comm)
        out = plan.execute(cols)
    return machine, plan, out


def assert_plan_runs_identical(idx, counts, cols, comm):
    m_vec, p_vec, out_vec = _run_plan(idx, counts, cols, comm, reference=False)
    m_ref, p_ref, out_ref = _run_plan(idx, counts, cols, comm, reference=True)
    # redistributed data: bitwise per column per rank
    assert len(out_vec) == len(out_ref)
    for cv, cr in zip(out_vec, out_ref):
        for av, ar in zip(cv, cr):
            assert_same_arrays(av, ar)
    # modeled clocks and trace: the virtual machine must not notice which
    # implementation ran
    assert np.array_equal(m_vec.clocks, m_ref.clocks)
    assert m_vec.trace.snapshot() == m_ref.trace.snapshot()
    assert m_vec.trace.counters() == m_ref.trace.counters()
    # plan-level statistics
    for field in ("compiles", "cache_hits", "executions", "fused_columns", "bytes_moved"):
        assert getattr(p_vec.stats, field) == getattr(p_ref.stats, field)


class TestResortPlan:
    @given(
        st.integers(0, 160),
        st.integers(1, 6),
        st.integers(0, 2**31 - 1),
        st.sampled_from(["alltoall", "neighborhood"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_full_equivalence(self, n, P, seed, comm):
        idx, counts, cols = _resort_problem(n, P, seed)
        assert_plan_runs_identical(idx, counts, cols, comm)

    def test_banded_neighborhood(self):
        """The method-B brownian-local shape the benchmarks use."""
        idx, counts, cols = _resort_problem(512, 8, 17, local=True)
        assert_plan_runs_identical(idx, counts, cols, "neighborhood")

    @pytest.mark.parametrize("reference", [False, True])
    def test_error_messages_identical(self, reference):
        """Validation failures must raise the same message on both paths."""
        idx, counts, cols = _resort_problem(64, 4, 5)
        machine = Machine(4)
        plan = ResortPlan(machine, idx, counts, counts)
        bad = [list(col) for col in cols]
        bad[1] = list(bad[1])
        bad[1][3] = bad[1][3][:-1]  # drop one row of column 1 on rank 3
        with instrument.reference_mode(reference):
            with pytest.raises(ValueError) as exc:
                plan.execute(bad)
        assert "column 1, rank 3" in str(exc.value)
