"""Golden regression pin of the Fig. 7 configuration at reduced scale.

The vectorized hot paths must leave the *simulated* experiment untouched:
state fingerprints, communication ledgers and the modeled per-step phase
breakdown of a Fig.-7-shaped run (JUROPA profile, random initial
distribution, brownian dynamics, solver compute skipped) are pinned here
bitwise — breakdown times as exact ``float.hex()`` strings, state as sha256
digests.  The same run is also executed under
:func:`repro.perf.instrument.reference_mode` and must match the goldens
identically: vectorization may change host speed only.

If these goldens ever need updating, something changed modeled behavior —
that is a semantics change and must be justified on its own terms, never as
a performance side effect (see ``docs/performance.md``).

Regenerate after an *intentional* semantics change with::

    PYTHONPATH=src python tests/perf/test_golden_invariance.py
"""

import numpy as np
import pytest

from repro.bench.harness import make_machine, step_breakdown
from repro.simmpi.costmodel import JUROPA
from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.perf import instrument
from repro.verify.audit import enable_auditing
from repro.verify.dst import ledger_fingerprint
from repro.verify.invariants import state_fingerprint

#: reduced fig7 scale: same config knobs as bench.figures.fig7, fewer
#: particles/ranks/steps
N, NPROCS, STEPS, SEED = 256, 8, 2, 42


def run_fig7_small(solver, method, *, reference=False):
    machine = make_machine(NPROCS, JUROPA)
    auditor = enable_auditing(machine)
    system = silica_melt_system(N, seed=SEED)
    subdomain = float(system.box.min()) / round(NPROCS ** (1.0 / 3.0))
    cfg = SimulationConfig(
        solver=solver,
        method=method,
        distribution="random",
        seed=SEED,
        dynamics="brownian",
        brownian_step=0.005 * subdomain,
        solver_kwargs={"compute": "skip"},
    )
    sim = Simulation(machine, system, cfg)
    with instrument.reference_mode(reference):
        sim.run(STEPS)
    return sim, auditor


def observables(solver, method, *, reference=False):
    sim, auditor = run_fig7_small(solver, method, reference=reference)
    breakdown = []
    for rec in sim.records:
        b = step_breakdown(rec)
        breakdown.append({k: float(b[k]).hex() for k in sorted(b)})
    return {
        "state": state_fingerprint(sim),
        "ledger": ledger_fingerprint(auditor),
        "breakdown": breakdown,
    }


CASES = [("fmm", "B"), ("p2nfft", "B"), ("p2nfft", "A")]

# --- committed goldens (sha256 digests / float.hex breakdown times) ------
GOLDEN = {
 "fmm/B": {
  "breakdown": [
   {
    "redist": "0x1.d346dc5e4c260p-13",
    "resort": "0x1.5cc2604332800p-14",
    "restore": "0x0.0p+0",
    "sort": "0x1.864e43454b4c0p-14",
    "total": "0x1.34ad2108e4646p-3"
   },
   {
    "redist": "0x1.b46ba46aa4800p-14",
    "resort": "0x1.b38ba9e6dc000p-16",
    "restore": "0x0.0p+0",
    "sort": "0x1.f1460bdb2f000p-15",
    "total": "0x1.346eef26fe44fp-3"
   },
   {
    "redist": "0x1.b01c99d787000p-14",
    "resort": "0x1.a97aaeecd0000p-16",
    "restore": "0x0.0p+0",
    "sort": "0x1.ee065a6d84000p-15",
    "total": "0x1.346e5bc60f24ep-3"
   }
  ],
  "ledger": "066434d85f81b204cca10e6bd8a0fbbb1e94d8ef05f7e5cbd045f15597b0878c",
  "state": {
   "accelerations": "fd9243e1ba57263ed469c3bdbd7ade6ec5254e7ed924a9f5737fa44749933cc0",
   "charges": "6dbe4f4bb60cca9f8da1eebe3d944539f01d7855d01d77a0b1e682ae752303ca",
   "dynamics": "6eac46a9d3f7cfde3ba23faf8486c497295b2caaf815168c7c43b21440d02125",
   "fields": "fd9243e1ba57263ed469c3bdbd7ade6ec5254e7ed924a9f5737fa44749933cc0",
   "ids": "0da285ee2d8cfa35361e11f11661c68e2da1645348ac531fbe4108622567a4e3",
   "layout": "7bb27b2f7a968b08c510cda12a81fa2d156611b85890abe725a7572fd409e6d5",
   "positions": "7cc37b858fb6874d6eb7ac084d1838564b3e17ec8d58febfd05c14782a6d36d5",
   "potentials": "e5a00aa9991ac8a5ee3109844d84a55583bd20572ad3ffcd42792f3c36b183ad",
   "velocities": "25613b4eeb66979bb1e82082e4b474341a2b3f52c8e3c851a1874227ba18d28e"
  }
 },
 "p2nfft/A": {
  "breakdown": [
   {
    "redist": "0x1.c71e7c840374ep-14",
    "resort": "0x0.0p+0",
    "restore": "0x1.964091748a5e8p-15",
    "sort": "0x1.f7fc67937c8b4p-15",
    "total": "0x1.8aab97c08ae69p-12"
   },
   {
    "redist": "0x1.c71e7c840374cp-14",
    "resort": "0x0.0p+0",
    "restore": "0x1.964091748a5e0p-15",
    "sort": "0x1.f7fc67937c8b8p-15",
    "total": "0x1.8aab97c08ae6bp-12"
   },
   {
    "redist": "0x1.c71e7c8403748p-14",
    "resort": "0x0.0p+0",
    "restore": "0x1.964091748a5e0p-15",
    "sort": "0x1.f7fc67937c8b0p-15",
    "total": "0x1.8aab97c08ae69p-12"
   }
  ],
  "ledger": "9190a43d96d5d96df85c73fe5130ff4135459cbe80e12e4603fbf939705d1b78",
  "state": {
   "accelerations": "fd9243e1ba57263ed469c3bdbd7ade6ec5254e7ed924a9f5737fa44749933cc0",
   "charges": "bb218c1d4b008e1c4419671f55ce812b138038a2c469f716958961363aed0dd0",
   "dynamics": "3d4357cddbfaec709c18e52d543a3ee7a8017ddb12668fb3240ee36487ba4c2e",
   "fields": "fd9243e1ba57263ed469c3bdbd7ade6ec5254e7ed924a9f5737fa44749933cc0",
   "ids": "85778f60d010f5bf1ae2265b09775131285ec96f581818a301aeac2459161b08",
   "layout": "7bb27b2f7a968b08c510cda12a81fa2d156611b85890abe725a7572fd409e6d5",
   "positions": "59661e2b0152d466929aa7e72c4092e2c563638995b9d0d97662389ee5cba5bf",
   "potentials": "e5a00aa9991ac8a5ee3109844d84a55583bd20572ad3ffcd42792f3c36b183ad",
   "velocities": "dbb28f72a66fc8964006418b3605143ae0d0c1735eeaa1c5723d76caf15eb62e"
  }
 },
 "p2nfft/B": {
  "breakdown": [
   {
    "redist": "0x1.8d725f019c277p-13",
    "resort": "0x1.5b85358ec2fa8p-14",
    "restore": "0x0.0p+0",
    "sort": "0x1.f7fc67937c8b4p-15",
    "total": "0x1.df9d2820581d1p-12"
   },
   {
    "redist": "0x1.b063b6d95aa68p-14",
    "resort": "0x1.ab6ce64621340p-16",
    "restore": "0x0.0p+0",
    "sort": "0x1.edd799ee2ed80p-15",
    "total": "0x1.8648f27f46a96p-12"
   },
   {
    "redist": "0x1.af3b5c8bf6080p-14",
    "resort": "0x1.a66468c91dd00p-16",
    "restore": "0x0.0p+0",
    "sort": "0x1.edd799ee2ed80p-15",
    "total": "0x1.85fedbebed817p-12"
   }
  ],
  "ledger": "59812db57f231ac408512d2a09c81e085c1cb3a4035b67487a20de6adbe39d26",
  "state": {
   "accelerations": "fd9243e1ba57263ed469c3bdbd7ade6ec5254e7ed924a9f5737fa44749933cc0",
   "charges": "d008c7ecd07d00a0a2ae48d1c209b09b76e288d2521ca53a1597b007553f2bf6",
   "dynamics": "b6dd37db7b95fe33a897ff9b21961a0adc59c72079d59efe2110bf4abf342511",
   "fields": "fd9243e1ba57263ed469c3bdbd7ade6ec5254e7ed924a9f5737fa44749933cc0",
   "ids": "05e790022b25e8d451cacffa149be800169dad238533e6895e9bc33d43abf1f8",
   "layout": "ecfb38976b3d5f20ce18bfc63a08f40672cae407de9d8d1bc8cbdfab631d2ccb",
   "positions": "bfed89aa0dbb00fa4f872a9450cbcec7d83785d56a8f45c8321d54e0a09e0b25",
   "potentials": "e5a00aa9991ac8a5ee3109844d84a55583bd20572ad3ffcd42792f3c36b183ad",
   "velocities": "fd9c7833919f5f170199b790b96b486bd41d095c51b2ad038c8135aecc8ccf0a"
  }
 }
}


@pytest.mark.parametrize("solver,method", CASES)
class TestFig7Golden:
    def test_vectorized_matches_golden(self, solver, method):
        got = observables(solver, method)
        want = GOLDEN[f"{solver}/{method}"]
        assert got["state"] == want["state"]
        assert got["ledger"] == want["ledger"]
        assert got["breakdown"] == want["breakdown"]

    def test_reference_mode_matches_golden(self, solver, method):
        """The scalar oracles reproduce the goldens bit for bit too."""
        got = observables(solver, method, reference=True)
        want = GOLDEN[f"{solver}/{method}"]
        assert got["state"] == want["state"]
        assert got["ledger"] == want["ledger"]
        assert got["breakdown"] == want["breakdown"]


def _regenerate():
    import json

    out = {f"{s}/{m}": observables(s, m) for s, m in CASES}
    print("GOLDEN = " + json.dumps(out, indent=1, sort_keys=True))


if __name__ == "__main__":
    _regenerate()
