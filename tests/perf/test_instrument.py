"""Unit tests of :mod:`repro.perf.instrument` — the kernel-timer registry,
the reference-mode dispatch switch, and host-wall phase attribution.

The invariant guarded throughout: instrumentation observes, it never
perturbs.  Modeled clocks, traces and kernel outputs must be bitwise
unchanged whether collection / wall attribution is on or off.
"""

import tracemalloc

import numpy as np

from repro.perf import instrument
from repro.simmpi.machine import Machine


def run_machine_ops(machine):
    """A tiny deterministic workload touching compute and communication."""
    P = machine.nprocs
    machine.compute(np.full(P, 1e-6), "near")
    from repro.simmpi.collectives import alltoallv

    sends = [
        {(r + 1) % P: np.arange(8, dtype=np.float64) + r} for r in range(P)
    ]
    alltoallv(machine, sends, "sort")
    machine.compute(np.full(P, 2e-6), "near")


class TestKernelRegistry:
    def test_record_is_noop_when_not_collecting(self):
        instrument.reset()
        assert not instrument.collecting()
        instrument.record("k", 100, ops=5)
        assert instrument.stats("k").calls == 0

    def test_collect_records_and_clears(self):
        instrument.record("stale", 1)  # ignored: not collecting
        with instrument.collect() as reg:
            assert instrument.collecting()
            instrument.record("k", 100, ops=5)
            instrument.record("k", 50, ops=3, alloc_bytes=16)
            assert reg["k"].calls == 2
        assert not instrument.collecting()
        s = instrument.stats("k")
        assert (s.calls, s.ns, s.ops, s.alloc_bytes) == (2, 150, 8, 16)
        assert s.ns_per_op == 150 / 8
        with instrument.collect(clear=True):
            pass
        assert instrument.stats("k").calls == 0

    def test_collect_clear_false_accumulates(self):
        with instrument.collect():
            instrument.record("k", 10, ops=1)
        with instrument.collect(clear=False):
            instrument.record("k", 10, ops=1)
        assert instrument.stats("k").calls == 2
        instrument.reset()

    def test_snapshot_is_a_copy(self):
        with instrument.collect():
            instrument.record("k", 10, ops=2)
            snap = instrument.snapshot()
            instrument.record("k", 10, ops=2)
        assert snap["k"].calls == 1
        assert instrument.stats("k").calls == 2
        instrument.reset()

    def test_kernel_timer_times_and_counts(self):
        with instrument.collect():
            with instrument.kernel_timer("timed", ops=7):
                sum(range(1000))
        s = instrument.stats("timed")
        assert s.calls == 1 and s.ops == 7 and s.ns > 0
        instrument.reset()

    def test_kernel_timer_noop_when_off(self):
        instrument.reset()
        with instrument.kernel_timer("never", ops=7):
            pass
        assert instrument.stats("never").calls == 0

    def test_zero_ops_ns_per_op_falls_back_to_ns(self):
        s = instrument.KernelStats(calls=1, ns=42, ops=0)
        assert s.ns_per_op == 42.0


class TestReferenceMode:
    def test_nesting_restores_previous_state(self):
        assert not instrument.prefer_reference()
        with instrument.reference_mode():
            assert instrument.prefer_reference()
            with instrument.reference_mode(False):
                assert not instrument.prefer_reference()
            assert instrument.prefer_reference()
        assert not instrument.prefer_reference()

    def test_restored_on_exception(self):
        try:
            with instrument.reference_mode():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not instrument.prefer_reference()


class TestAllocationTracing:
    def test_alloc_counted_only_when_tracing(self):
        with instrument.collect(trace_alloc=True):
            with instrument.kernel_timer("alloc", ops=1):
                buf = np.ones(1 << 16)  # ~512 KiB survives the span
        assert instrument.stats("alloc").alloc_bytes > 0
        del buf
        assert not tracemalloc.is_tracing()
        with instrument.collect():
            with instrument.kernel_timer("noalloc", ops=1):
                buf2 = np.ones(1 << 16)
        assert instrument.stats("noalloc").alloc_bytes == 0
        del buf2
        instrument.reset()

    def test_collect_leaves_foreign_tracing_running(self):
        tracemalloc.start()
        try:
            with instrument.collect(trace_alloc=True):
                pass
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()


class TestWallPhaseAttribution:
    def test_wall_attributed_without_perturbing_model(self):
        plain = Machine(4)
        run_machine_ops(plain)
        with instrument.wall_phases():
            assert instrument.wall_phases_enabled()
            attributed = Machine(4)
            run_machine_ops(attributed)
        assert not instrument.wall_phases_enabled()

        snap_plain = plain.trace.snapshot()
        snap_attr = attributed.trace.snapshot()
        assert set(snap_plain) == set(snap_attr)
        # modeled fields are bitwise unchanged by wall attribution ...
        assert np.array_equal(plain.clocks, attributed.clocks)
        for label in snap_plain:
            a, b = snap_plain[label], snap_attr[label]
            assert (a.time, a.messages, a.bytes, a.calls) == (
                b.time,
                b.messages,
                b.bytes,
                b.calls,
            )
            # ... while host wall time is only present when enabled
            assert a.wall_ns == 0
        assert sum(s.wall_ns for s in snap_attr.values()) > 0

    def test_wall_attribution_off_outside_block(self):
        machine = Machine(2)
        run_machine_ops(machine)
        assert all(s.wall_ns == 0 for s in machine.trace.snapshot().values())
