"""Differential oracle: A/B/B+move agreement and bounded method-B volume."""

import numpy as np
import pytest

from repro.verify.differential import (
    METHODS,
    DifferentialFailure,
    compare_states,
    differential_check,
    redistribution_volume,
    run_trajectory,
    sweep,
)


class TestCompareStates:
    @staticmethod
    def _state(n=6, seed=0):
        rng = np.random.default_rng(seed)
        return {
            "ids": np.arange(n),
            "pos": rng.uniform(size=(n, 3)),
            "vel": rng.uniform(size=(n, 3)),
            "q": rng.uniform(size=n),
            "pot": rng.uniform(size=n),
        }

    def test_identical_states_agree(self):
        s = self._state()
        assert compare_states(s, dict(s)) is None

    def test_rounding_noise_tolerated(self):
        s = self._state()
        t = dict(s)
        t["pos"] = s["pos"] * (1 + 1e-13)
        assert compare_states(s, t) is None

    def test_deviation_reported(self):
        s = self._state()
        t = dict(s)
        t["vel"] = s["vel"] + 1e-3
        msg = compare_states(s, t)
        assert msg is not None and msg.startswith("vel")

    def test_id_mismatch_reported(self):
        s = self._state()
        t = dict(s)
        t["ids"] = s["ids"].copy()
        t["ids"][0] = 99
        assert "id sets differ" in compare_states(s, t)


class TestTrajectories:
    def test_trajectory_runs_all_invariants(self):
        result = run_trajectory("fmm", "B", 4, steps=2, n_particles=24)
        assert result.invariants_passed >= 8 * 3  # >= 8 checks x 3 asserts
        assert result.state["ids"].shape == (24,)

    def test_volume_counts_redistribution_phases_only(self):
        result = run_trajectory("fmm", "A", 4, steps=2, n_particles=24)
        nbytes, messages = redistribution_volume(result.records)
        assert (nbytes, messages) == (
            result.redistribution_bytes,
            result.redistribution_messages,
        )
        assert nbytes > 0  # method A restores every step


class TestDifferentialCheck:
    @pytest.mark.parametrize("solver", ["fmm", "p2nfft"])
    def test_methods_agree(self, solver):
        report = differential_check(solver, 4, steps=2, n_particles=24)
        assert report.ok, report.failures
        assert set(report.trajectories) == set(METHODS)

    def test_volume_ordering_fmm(self):
        """The executable Figures 7-8 claim: method B (and B+move) moves at
        most as much data as method A, and B+move at most as much as B
        (merge strategy beats full sort under a movement bound)."""
        report = differential_check("fmm", 8, steps=3, n_particles=32)
        assert report.ok, report.failures
        vols = report.volumes
        assert vols["B"] <= vols["A"]
        assert vols["B+move"] <= vols["B"]

    def test_direct_solver_trivial_cell(self):
        report = differential_check("direct", 4, steps=1, n_particles=16)
        assert report.ok
        assert all(v == 0 for v in report.volumes.values())

    def test_raise_on_failure_flag(self, monkeypatch):
        """A state disagreement must surface as DifferentialFailure when
        raise_on_failure is set (and as report.failures otherwise)."""
        import repro.verify.differential as differential

        monkeypatch.setattr(
            differential, "compare_states", lambda *a, **k: "forced mismatch"
        )
        report = differential.differential_check(
            "direct", 4, steps=1, n_particles=16
        )
        assert not report.ok
        assert any("forced mismatch" in f for f in report.failures)
        with pytest.raises(DifferentialFailure, match="forced mismatch"):
            differential.differential_check(
                "direct", 4, steps=1, n_particles=16, raise_on_failure=True
            )

    def test_summary_renders(self):
        report = differential_check("direct", 4, steps=1, n_particles=16)
        text = report.summary()
        assert "direct" in text and "ok" in text


class TestSweep:
    def test_quick_grid(self):
        reports = sweep(
            solvers=("direct", "fmm"), shapes=(4, 8), steps=1, n_particles=16
        )
        assert len(reports) == 4
        assert all(r.ok for r in reports)
