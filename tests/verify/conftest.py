"""Fixtures for the verification-subsystem tests."""

import pytest

from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine
from repro.verify import InvariantChecker, enable_auditing
from repro.verify.testing import auto_verify


@pytest.fixture
def verified():
    """One-decorator opt-in as a fixture: every Simulation constructed inside
    the test is audited and invariant-checked after each step."""
    with auto_verify():
        yield


@pytest.fixture
def sim_factory():
    """Build a small audited simulation plus its invariant checker."""

    def build(solver="fmm", method="B", nprocs=4, n=24, seed=2, **cfg_kwargs):
        machine = Machine(nprocs)
        sim = Simulation(
            machine,
            silica_melt_system(n, seed=seed),
            SimulationConfig(
                solver=solver, method=method, distribution="random",
                seed=seed, **cfg_kwargs,
            ),
        )
        auditor = enable_auditing(machine)
        checker = InvariantChecker(sim)
        return sim, checker, auditor

    return build
