"""Invariant registry: positive runs, corruption detection, registration."""

import numpy as np
import pytest

from repro.core.resort import pack_resort_index
from repro.verify import (
    InvariantChecker,
    InvariantViolation,
    all_invariants,
    check_resort_permutation,
    get_invariant,
    run_invariants,
)
from repro.verify.invariants import _REGISTRY, SKIPPED, invariant


class TestRegistry:
    def test_at_least_eight_invariants(self):
        assert len(all_invariants()) >= 8

    def test_names_unique_and_described(self):
        invs = all_invariants()
        assert len({i.name for i in invs}) == len(invs)
        assert all(i.description for i in invs)

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown invariant"):
            get_invariant("no-such-check")

    def test_duplicate_registration_rejected(self):
        name = all_invariants()[0].name
        with pytest.raises(ValueError, match="already registered"):
            invariant(name, "dup")(lambda c: None)

    def test_custom_registration(self):
        @invariant("test-only-check", "a throwaway check")
        def _check(checker):
            return None

        try:
            assert get_invariant("test-only-check").check is _check
        finally:
            del _REGISTRY["test-only-check"]


class TestLiveSimulation:
    def test_all_pass_on_healthy_run(self, sim_factory):
        sim, checker, auditor = sim_factory(track_energy=True)
        sim.run(2)
        results = checker.assert_ok()
        passed = [r.name for r in results if r.status == "passed"]
        assert len(passed) >= 8
        assert not any(r.failed for r in results)
        auditor.assert_quiescent()

    def test_selected_names_only(self, sim_factory):
        sim, checker, _ = sim_factory()
        sim.run(1)
        results = checker.run(["particle-count", "charge-conservation"])
        assert [r.name for r in results] == [
            "particle-count",
            "charge-conservation",
        ]

    def test_lost_particle_detected(self, sim_factory):
        sim, checker, _ = sim_factory()
        sim.run(1)
        # drop one particle from a nonempty rank behind the library's back
        r = next(i for i, p in enumerate(sim.particles.pos) if p.shape[0])
        for cols in (sim.particles.pos, sim.particles.q, sim.particles.pot,
                     sim.particles.field, sim.vel, sim.acc, sim.ids):
            cols[r] = cols[r][:-1]
        results = {res.name: res for res in checker.run()}
        assert results["particle-count"].failed

    def test_charge_corruption_detected(self, sim_factory):
        sim, checker, _ = sim_factory()
        sim.run(1)
        r = next(i for i, q in enumerate(sim.particles.q) if q.shape[0])
        sim.particles.q[r] = sim.particles.q[r] + 0.5
        results = {res.name: res for res in checker.run()}
        assert results["charge-conservation"].failed

    def test_duplicated_identity_detected(self, sim_factory):
        sim, checker, _ = sim_factory()
        sim.run(1)
        r = next(i for i, ids in enumerate(sim.ids) if ids.shape[0] >= 2)
        ids = sim.ids[r].copy()
        ids[0] = ids[1]
        sim.ids[r] = ids
        results = {res.name: res for res in checker.run()}
        assert results["identity-permutation"].failed

    def test_nan_potential_detected(self, sim_factory):
        sim, checker, _ = sim_factory()
        sim.run(1)
        r = next(i for i, p in enumerate(sim.particles.pot) if p.shape[0])
        sim.particles.pot[r] = sim.particles.pot[r].copy()
        sim.particles.pot[r][0] = np.nan
        results = {res.name: res for res in checker.run()}
        assert results["results-finite"].failed

    def test_assert_ok_raises_with_detail(self, sim_factory):
        sim, checker, _ = sim_factory()
        sim.run(1)
        r = next(i for i, q in enumerate(sim.particles.q) if q.shape[0])
        sim.particles.q[r] = sim.particles.q[r] + 0.5
        with pytest.raises(InvariantViolation, match="charge"):
            checker.assert_ok()

    def test_energy_drift_skipped_without_tracking(self, sim_factory):
        sim, checker, _ = sim_factory(track_energy=False)
        sim.run(1)
        results = {res.name: res for res in checker.run()}
        assert results["energy-drift"].status == "skipped"

    def test_trace_accounting_detects_ledger_mismatch(self, sim_factory):
        sim, checker, auditor = sim_factory()
        sim.run(1)
        assert "sort" in auditor.ledger
        auditor.ledger["sort"].messages += 7  # simulate a lost message
        results = {res.name: res for res in checker.run()}
        assert results["trace-accounting"].failed

    def test_one_shot_helper(self, sim_factory):
        sim, _, _ = sim_factory()
        sim.run(1)
        results = run_invariants(sim)
        assert any(r.status == "passed" for r in results)


class TestResortPermutationCheck:
    """The acceptance-criterion negative test: corrupting a resort index
    must flip the permutation invariant to failed."""

    @staticmethod
    def _valid_indices(nprocs=3):
        # identity redistribution: rank r keeps its 2 particles in place
        idx = [
            pack_resort_index(
                np.full(2, r, dtype=np.int64), np.arange(2, dtype=np.int64)
            )
            for r in range(nprocs)
        ]
        return idx, [2] * nprocs, nprocs

    def test_valid_passes(self):
        idx, counts, nprocs = self._valid_indices()
        assert check_resort_permutation(idx, counts, nprocs) is None

    def test_corrupted_duplicate_target_fails(self):
        idx, counts, nprocs = self._valid_indices()
        corrupted = idx[0].copy()
        corrupted[1] = corrupted[0]  # two particles claim one slot
        idx[0] = corrupted
        msg = check_resort_permutation(idx, counts, nprocs)
        assert msg is not None and "not a permutation" in msg

    def test_corrupted_rank_out_of_range_fails(self):
        idx, counts, nprocs = self._valid_indices()
        corrupted = idx[0].copy()
        corrupted[0] = pack_resort_index(
            np.array([nprocs + 5]), np.array([0])
        )[0]
        idx[0] = corrupted
        msg = check_resort_permutation(idx, counts, nprocs)
        assert msg is not None and "out of range" in msg

    def test_corrupted_position_overflow_fails(self):
        idx, counts, nprocs = self._valid_indices()
        corrupted = idx[0].copy()
        corrupted[0] = pack_resort_index(np.array([0]), np.array([99]))[0]
        idx[0] = corrupted
        msg = check_resort_permutation(idx, counts, nprocs)
        assert msg is not None and "exceeds" in msg

    def test_ghost_index_fails(self):
        idx, counts, nprocs = self._valid_indices()
        corrupted = idx[0].copy()
        corrupted[0] = -1
        idx[0] = corrupted
        msg = check_resort_permutation(idx, counts, nprocs)
        assert msg is not None and "ghost" in msg

    def test_live_corruption_detected(self, sim_factory):
        """End-to-end: corrupt the solver-produced resort indices of a live
        method-B run; the resort-permutation invariant must fail."""
        sim, checker, _ = sim_factory(solver="fmm", method="B")
        sim.run(1)
        report = sim.fcs.last_report
        assert report is not None and report.changed
        results = {r.name: r for r in checker.run()}
        assert results["resort-permutation"].status == "passed"
        r = next(
            i for i, idx in enumerate(report.resort_indices) if idx.shape[0] >= 2
        )
        report.resort_indices[r][1] = report.resort_indices[r][0]
        results = {r.name: r for r in checker.run()}
        assert results["resort-permutation"].failed


class TestAutoVerify:
    def test_decorator_instruments_simulation(self, verified, sim_factory):
        sim, _, _ = sim_factory()
        sim.run(2)  # implicit asserts after initialize and each step
        assert hasattr(sim, "_verify_checker")
        assert any(
            r.status == "passed" for r in sim._verify_checker.history
        )

    def test_scope_restores_methods(self):
        from repro.md.simulation import Simulation
        from repro.verify.testing import auto_verify

        original_step = Simulation.step
        with auto_verify():
            assert Simulation.step is not original_step
        assert Simulation.step is original_step

    def test_catches_corruption_inside_scope(self, sim_factory):
        from repro.md.simulation import Simulation
        from repro.verify.testing import auto_verify

        original_step = Simulation.step

        def corrupting_step(self):
            record = original_step(self)
            r = next(i for i, q in enumerate(self.particles.q) if q.shape[0])
            self.particles.q[r] = self.particles.q[r] + 1.0
            return record

        Simulation.step = corrupting_step
        try:
            with auto_verify():
                sim, _, _ = sim_factory()
                sim.initialize()
                with pytest.raises(InvariantViolation):
                    sim.step()
        finally:
            Simulation.step = original_step
