"""DST chaos-resume: kill a trajectory mid-run, resume from checkpoint.

Two workflows under test: ``run_dst(kill_at=K)`` kills every *perturbed*
trajectory after its step-``K`` fingerprint check and resumes it from a
:mod:`repro.ckpt` checkpoint while still holding it to the uninterrupted
reference schedule; ``run_resume_sweep`` takes a checkpoint *file* a dead
job left behind and resumes it under many perturbation seeds.
"""

import os

import pytest

from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine
from repro.verify.dst import DstFailure, run_dst, run_resume_sweep
from repro.verify.invariants import all_invariants


class TestKillResume:
    def test_kill_and_resume_matches_uninterrupted_reference(self):
        report = run_dst(
            ["fmm"],
            ["B+move"],
            seed_list=[3],
            steps=3,
            nprocs=2,
            n_particles=12,
            probe_rounds=0,
            kill_at=2,
        )
        assert report.ok, [f.detail for f in report.failures]
        assert report.trajectories == 2

    def test_kill_at_zero_and_at_last_step(self):
        for kill_at in (0, 2):
            report = run_dst(
                ["direct"],
                ["B"],
                seed_list=[5],
                steps=2,
                nprocs=2,
                n_particles=12,
                probe_rounds=0,
                kill_at=kill_at,
            )
            assert report.ok, [f.detail for f in report.failures]

    def test_kill_with_ckpt_dir_round_trips_through_file(self, tmp_path):
        report = run_dst(
            ["ewald"],
            ["B"],
            seed_list=[4],
            steps=2,
            nprocs=2,
            n_particles=12,
            probe_rounds=0,
            kill_at=1,
            ckpt_dir=str(tmp_path),
        )
        assert report.ok, [f.detail for f in report.failures]
        assert os.listdir(tmp_path) == ["ewald-B-kill1.ckpt.ndjson"]

    def test_kill_at_out_of_range_raises(self):
        with pytest.raises(ValueError, match="kill_at"):
            run_dst(
                ["direct"], ["A"], seed_list=[1], steps=2, nprocs=2,
                n_particles=12, probe_rounds=0, kill_at=5,
            )

    def test_failure_repro_command_carries_kill_at(self):
        failure = DstFailure("fmm", "B+move", 17, "boom", kill_at=2)
        cmd = failure.repro_command(nprocs=4, steps=5, particles=24)
        assert "--kill-at 2" in cmd
        assert "--seed-list 17" in cmd


@pytest.fixture
def checkpoint_file(tmp_path):
    sim = Simulation(
        Machine(2),
        silica_melt_system(12, seed=0),
        SimulationConfig(
            solver="fmm", method="B", track_energy=True,
            checkpoint_every=2, checkpoint_dir=str(tmp_path),
        ),
    )
    try:
        sim.run(2)
    finally:
        sim.fcs.destroy()
    return str(tmp_path / "step-000002.ckpt.ndjson")


class TestResumeSweep:
    def test_resume_sweep_passes(self, checkpoint_file):
        report = run_resume_sweep(
            checkpoint_file, steps=2, seed_list=[0, 4]
        )
        assert report.ok, [f.detail for f in report.failures]
        assert report.trajectories == 3  # reference + 2 seeds
        assert report.solvers == ("fmm",)

    def test_failure_repro_command_carries_resume_from(self, checkpoint_file):
        failure = DstFailure(
            "fmm", "B", 4, "boom", resume_from=checkpoint_file
        )
        cmd = failure.repro_command(nprocs=2, steps=2, particles=12)
        assert f"--resume-from {checkpoint_file}" in cmd
        assert "--seed-list 4" in cmd

    def test_cli_resume_from(self, checkpoint_file, capsys):
        from repro.verify.__main__ import main

        rc = main(
            ["dst", "--resume-from", checkpoint_file, "--steps", "2",
             "--seed-list", "3"]
        )
        assert rc == 0
        assert "[ok]" in capsys.readouterr().out

    def test_cli_kill_at(self, capsys):
        from repro.verify.__main__ import main

        rc = main(
            ["dst", "--solvers", "direct", "--methods", "B", "--steps", "2",
             "--particles", "12", "--nprocs", "2", "--seed-list", "3",
             "--kill-at", "1"]
        )
        assert rc == 0
        assert "[ok]" in capsys.readouterr().out


def test_restart_equivalence_invariant_registered():
    assert "ckpt-restart-equivalence" in {
        inv.name for inv in all_invariants()
    }
