"""Communication auditor: count symmetry, p2p matching, neighbor contract."""

import numpy as np
import pytest

from repro.core.particles import ColumnBlock
from repro.simmpi.cart import CartGrid
from repro.simmpi.collectives import alltoallv, allreduce, neighborhood_alltoallv
from repro.simmpi.machine import Machine
from repro.simmpi.p2p import exchange_pairs, send_round, sendrecv
from repro.verify import (
    CommAuditError,
    CommAuditor,
    check_count_symmetry,
    enable_auditing,
    verify_exchange_schedule,
)


class TestCountSymmetry:
    def test_symmetric_table_accepted(self):
        send = np.array([[0, 3], [2, 0]])
        check_count_symmetry(send, send.T)

    def test_asymmetric_table_rejected(self):
        """The acceptance-criterion negative test: an injected asymmetric
        count table must raise with the offending (src, dst) pair named."""
        send = np.array([[0, 3], [2, 0]])
        recv = np.array([[0, 2], [1, 0]])  # rank 1 expects 1, rank 0 sends 3
        with pytest.raises(CommAuditError, match="asymmetric alltoallv counts"):
            check_count_symmetry(send, recv)

    def test_message_names_ranks(self):
        send = np.zeros((3, 3), dtype=np.int64)
        send[1, 2] = 5
        recv = np.zeros((3, 3), dtype=np.int64)
        with pytest.raises(CommAuditError, match="rank 1 sends 5 to rank 2"):
            check_count_symmetry(send, recv)

    def test_negative_counts_rejected(self):
        send = np.array([[0, -1], [0, 0]])
        with pytest.raises(CommAuditError, match="non-negative"):
            check_count_symmetry(send, send.T)

    def test_non_square_rejected(self):
        with pytest.raises(CommAuditError, match="square"):
            check_count_symmetry(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_property_symmetric_tables_pass(self):
        from hypothesis import given, settings

        from repro.verify.strategies import symmetric_count_tables

        @given(symmetric_count_tables())
        @settings(max_examples=50, deadline=None)
        def run(pair):
            send, recv = pair
            check_count_symmetry(send, recv)

        run()


class TestExchangeSchedule:
    def test_valid_schedule(self):
        verify_exchange_schedule([[(0, 1), (2, 3)], [(1, 2)]], 4)

    def test_rank_in_two_pairs_rejected(self):
        """A rank scheduled into two simultaneous exchanges is the virtual
        deadlock of a mis-scheduled Batcher merge-exchange round."""
        with pytest.raises(CommAuditError, match="virtual deadlock"):
            verify_exchange_schedule([[(0, 1), (1, 2)]], 4)

    def test_self_pair_rejected(self):
        with pytest.raises(CommAuditError, match="paired with itself"):
            verify_exchange_schedule([[(2, 2)]], 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(CommAuditError, match="outside"):
            verify_exchange_schedule([[(0, 7)]], 4)


class TestP2PMatching:
    def test_sendrecv_is_matched(self):
        machine = Machine(4)
        auditor = enable_auditing(machine)
        sendrecv(machine, 0, 2, np.zeros(8), phase="x")
        auditor.assert_quiescent()
        assert auditor.n_p2p_calls == 1

    def test_unmatched_send_detected(self):
        """The acceptance-criterion negative test: a posted send with no
        matching receive must fail assert_quiescent."""
        auditor = CommAuditor(4)
        auditor.post_send(1, 3, 64)
        with pytest.raises(CommAuditError, match="unmatched point-to-point"):
            auditor.assert_quiescent()

    def test_unexpected_recv_detected(self):
        auditor = CommAuditor(4)
        with pytest.raises(CommAuditError, match="no matching posted send"):
            auditor.complete_recv(0, 1)

    def test_nonstrict_collects(self):
        auditor = CommAuditor(4, strict=False)
        auditor.post_send(0, 1, 8)
        auditor.assert_quiescent()
        assert len(auditor.violations) == 1

    def test_send_round_audited(self):
        machine = Machine(4)
        auditor = enable_auditing(machine)
        send_round(
            machine,
            [(0, 1, np.zeros(4)), (2, 3, np.zeros(4)), (1, 1, np.zeros(4))],
            phase="x",
        )
        auditor.assert_quiescent()
        # self-send excluded from the ledger, like the trace
        assert auditor.ledger["x"].messages == 2

    def test_exchange_pairs_audited(self):
        machine = Machine(4)
        auditor = enable_auditing(machine)
        exchange_pairs(
            machine, [(0, 1, np.zeros(8), np.zeros(8))], phase="x"
        )
        auditor.assert_quiescent()
        assert auditor.ledger["x"].messages == 2


class TestAlltoallvAudit:
    def test_ledger_matches_trace(self):
        machine = Machine(4)
        auditor = enable_auditing(machine)
        sends = [
            {1: np.zeros(10), 0: np.zeros(2)},
            {2: np.zeros(5)},
            {},
            {0: np.zeros(7)},
        ]
        alltoallv(machine, sends, phase="sort")
        stats = machine.trace.get("sort")
        assert auditor.ledger["sort"].messages == stats.messages
        assert auditor.ledger["sort"].bytes == stats.bytes

    def test_invalid_target_rank_detected(self):
        auditor = CommAuditor(4)
        with pytest.raises(CommAuditError, match="invalid rank"):
            auditor.observe_alltoallv(
                [{9: np.zeros(4)}, {}, {}, {}], "x", "dense"
            )

    def test_collectives_mirrored(self):
        machine = Machine(4)
        auditor = enable_auditing(machine)
        allreduce(machine, [np.ones(3)] * 4, op="sum", phase="far")
        assert auditor.ledger["far"].messages == machine.trace.get("far").messages


class TestNeighborContract:
    # 4x2x2 grid: x-extent 4 means ranks two x-cells apart are NOT
    # neighbors (a 2x2x2 grid has no non-neighbor pair to test against)
    NPROCS = 16

    @classmethod
    def _grid_machine(cls):
        machine = Machine(cls.NPROCS)
        grid = CartGrid(machine.nprocs, box=(10.0, 10.0, 10.0), dims=(4, 2, 2))
        table = grid.neighbor_table(include_self=True)
        auditor = enable_auditing(machine, neighbor_table=table)
        return machine, grid, auditor

    @classmethod
    def _stranger(cls, grid):
        neighbors = {
            int(x)
            for x in np.asarray(grid.neighbor_table(include_self=True)[0]).ravel()
        }
        return next(r for r in range(cls.NPROCS) if r not in neighbors)

    def test_neighbor_traffic_accepted(self):
        machine, grid, auditor = self._grid_machine()
        neighbor = int(grid.neighbor_table(include_self=False)[0][0])
        sends = [{} for _ in range(self.NPROCS)]
        sends[0] = {neighbor: np.zeros(8)}
        neighborhood_alltoallv(machine, sends, phase="halo")
        assert auditor.ledger["halo"].messages == 1

    def test_non_neighbor_traffic_rejected(self):
        machine, grid, _ = self._grid_machine()
        sends = [{} for _ in range(self.NPROCS)]
        sends[0] = {self._stranger(grid): np.zeros(8)}
        with pytest.raises(CommAuditError, match="not a declared neighbor"):
            neighborhood_alltoallv(machine, sends, phase="halo")

    def test_dense_alltoall_exempt(self):
        """The neighbor contract only binds the sparse count-exchange path;
        a general alltoallv may talk to anyone."""
        machine, grid, auditor = self._grid_machine()
        sends = [{} for _ in range(self.NPROCS)]
        sends[0] = {self._stranger(grid): np.zeros(8)}
        alltoallv(machine, sends, phase="sort")
        assert auditor.ledger["sort"].messages == 1

    def test_fine_grained_neighborhood_audited(self):
        """End-to-end: a neighborhood fine-grained redistribution between
        Cartesian neighbors passes under a declared-neighbor auditor."""
        from repro.core.fine_grained import fine_grained_redistribute

        machine, grid, auditor = self._grid_machine()
        table = grid.neighbor_table(include_self=False)
        blocks = [
            ColumnBlock(x=np.full(2, float(r))) for r in range(self.NPROCS)
        ]
        fine_grained_redistribute(
            machine,
            blocks,
            lambda r, b: np.full(b.n, int(table[r][0]), dtype=np.int64),
            "halo",
            comm="neighborhood",
        )
        auditor.assert_quiescent()
        assert auditor.ledger["halo"].messages > 0


class TestEnableAuditing:
    def test_attaches_and_snapshots_baseline(self):
        machine = Machine(4)
        machine.barrier(phase="warmup")  # pre-attach traffic
        auditor = enable_auditing(machine)
        assert machine.auditor is auditor
        assert "warmup" in auditor.trace_baseline
