"""DST runner: schedule-independence sweep, probes, failure reporting."""

import numpy as np
import pytest

from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.chaos import Perturbation
from repro.simmpi.machine import Machine
from repro.verify.audit import enable_auditing
from repro.verify.dst import (
    DEFAULT_METHODS,
    DEFAULT_SOLVERS,
    DstFailure,
    _Reference,
    _run_cell,
    ledger_fingerprint,
    run_dst,
    run_order_invariance_probe,
)
from repro.verify.invariants import state_fingerprint


class TestSweep:
    def test_small_sweep_passes(self):
        report = run_dst(
            ["direct"],
            ["A", "B"],
            seeds=2,
            steps=2,
            nprocs=4,
            n_particles=16,
            probe_rounds=1,
        )
        assert report.ok, report.failures
        # 2 cells x (1 reference + 2 seeds)
        assert report.trajectories == 6
        assert report.probes == 3  # 1 round x (reference + 2 seeds)
        assert "ok" in report.summary()

    def test_explicit_seed_list_including_null(self):
        report = run_dst(
            ["direct"],
            ["B+move"],
            steps=2,
            nprocs=4,
            n_particles=16,
            seed_list=[0, 5],
            probe_rounds=1,
        )
        assert report.ok, report.failures
        assert report.seeds == [0, 5]

    def test_progress_callback_is_used(self):
        lines = []
        run_dst(
            ["direct"],
            ["A"],
            seeds=1,
            steps=1,
            nprocs=4,
            n_particles=16,
            probe_rounds=0,
            progress=lines.append,
        )
        assert any("direct/A" in line for line in lines)

    def test_default_matrix_excludes_adaptive(self):
        assert "adaptive" not in DEFAULT_METHODS
        assert set(DEFAULT_SOLVERS) == {"direct", "ewald", "fmm", "p2nfft"}


class TestDivergenceDetection:
    """Negative paths: a tampered reference must be caught and reported."""

    def run_cell(self, perturbation=None, reference=None):
        return _run_cell(
            "direct",
            "B",
            4,
            steps=2,
            n_particles=16,
            system_seed=0,
            perturbation=perturbation,
            reference=reference,
        )

    def test_tampered_state_fingerprint_fails(self):
        reference = self.run_cell()
        bad = _Reference(
            checkpoints=[dict(c) for c in reference.checkpoints],
            ledger=reference.ledger,
        )
        bad.checkpoints[1]["positions"] = "0" * 64
        with pytest.raises(AssertionError, match="schedule-independence"):
            self.run_cell(perturbation=Perturbation.sample(3), reference=bad)

    def test_tampered_ledger_fails(self):
        reference = self.run_cell()
        bad = _Reference(checkpoints=reference.checkpoints, ledger="deadbeef")
        with pytest.raises(AssertionError, match="ledger"):
            self.run_cell(perturbation=Perturbation.sample(3), reference=bad)

    def test_sweep_reports_failure_with_repro_command(self):
        """An injected time->physics coupling must surface as a DstFailure
        carrying a runnable one-line repro command."""
        failure = DstFailure(
            solver="fmm", method="B+move", seed=17, detail="diverged"
        )
        cmd = failure.repro_command(nprocs=4, steps=5, particles=24)
        assert cmd == (
            "python -m repro.verify dst --solvers fmm --methods 'B+move' "
            "--steps 5 --particles 24 --nprocs 4 "
            "--distributions homogeneous --seed-list 17"
        )

    def test_clustered_failure_repro_command_pins_distribution(self):
        """A failing seed on the balance perturbation axis reproduces with
        the clustered workload, not the homogeneous default."""
        failure = DstFailure(
            solver="fmm",
            method="B",
            seed=23,
            detail="diverged",
            distribution="clustered",
        )
        cmd = failure.repro_command(nprocs=4, steps=5, particles=24)
        assert cmd == (
            "python -m repro.verify dst --solvers fmm --methods 'B' "
            "--steps 5 --particles 24 --nprocs 4 "
            "--distributions clustered --seed-list 23"
        )


class TestFingerprints:
    def make_sim(self, method="B"):
        machine = Machine(4)
        sim = Simulation(
            machine,
            silica_melt_system(16, seed=0),
            SimulationConfig(solver="direct", method=method, seed=0),
        )
        auditor = enable_auditing(machine)
        sim.initialize()
        return sim, auditor

    def test_state_fingerprint_component_keys(self):
        sim, _ = self.make_sim()
        fp = state_fingerprint(sim)
        for key in ("layout", "ids", "positions", "velocities", "dynamics"):
            assert key in fp
        assert all(len(v) == 64 for v in fp.values())  # sha256 hex

    def test_state_fingerprint_tracks_state(self):
        sim, _ = self.make_sim()
        before = state_fingerprint(sim)
        assert state_fingerprint(sim) == before  # pure
        sim.step()
        after = state_fingerprint(sim)
        assert after["positions"] != before["positions"]

    def test_ledger_fingerprint_tracks_traffic(self):
        sim, auditor = self.make_sim()
        before = ledger_fingerprint(auditor)
        assert ledger_fingerprint(auditor) == before  # pure
        sim.step()
        assert ledger_fingerprint(auditor) != before


class TestCli:
    def test_dst_subcommand_smoke(self, capsys):
        from repro.verify.__main__ import main

        code = main(
            [
                "dst",
                "--solvers", "direct",
                "--methods", "A",
                "--seeds", "1",
                "--steps", "1",
                "--particles", "16",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[ok] dst:" in out

    def test_dst_subcommand_seed_list(self, capsys):
        from repro.verify.__main__ import main_dst

        code = main_dst(
            [
                "--solvers", "direct",
                "--methods", "B",
                "--seed-list", "4",
                "--steps", "1",
                "--particles", "16",
            ]
        )
        assert code == 0
        assert "seeds=1" in capsys.readouterr().out

    def test_dst_clustered_distribution_axis(self, capsys):
        """The balance perturbation axis: the two-cluster workload with
        dynamic balancing is schedule-independent — the rebalance fires at
        the same step and produces bitwise-identical state under every
        perturbation seed."""
        from repro.verify.__main__ import main_dst

        code = main_dst(
            [
                "--solvers", "fmm",
                "--methods", "B",
                "--seeds", "2",
                "--steps", "2",
                "--particles", "96",
                "--distributions", "clustered",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "distributions=['clustered']" in out


class TestOrderInvarianceProbe:
    def test_probe_passes_for_sampled_seeds(self):
        failures = run_order_invariance_probe(4, [1, 2, 3], rounds=2)
        assert failures == []

    def test_probe_flags_divergence_not_silence(self):
        """The probe program really exercises wildcard receives: the traffic
        pattern must contain at least one rank with several sources."""
        from repro.verify.dst import _PROBE_SALT, _probe_traffic

        rng = np.random.default_rng([_PROBE_SALT, 0, 0])
        sends, expected = _probe_traffic(4, rng)
        assert sum(expected) == sum(len(s) for s in sends)
        assert max(expected) >= 1
