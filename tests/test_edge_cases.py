"""Cross-cutting edge cases: empty ranks, single ranks, tiny systems,
capacity limits, degenerate geometry — the situations a downstream user
hits first."""

import numpy as np
import pytest

from repro.core.handle import fcs_init
from repro.core.particles import ParticleSet
from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine


@pytest.fixture(scope="module")
def tiny_system():
    return silica_melt_system(64, seed=11)


class TestMoreRanksThanParticlesPerRank:
    """P close to n: many ranks hold very few (or zero) particles."""

    @pytest.mark.parametrize("solver", ["fmm", "p2nfft"])
    def test_sparse_ranks(self, tiny_system, solver):
        P = 16
        m = Machine(P)
        rng = np.random.default_rng(0)
        owner = rng.integers(0, P, tiny_system.n)
        pset = ParticleSet(
            [tiny_system.pos[owner == r].copy() for r in range(P)],
            [tiny_system.q[owner == r].copy() for r in range(P)],
        )
        kwargs = {"order": 3, "depth": 3, "lattice_shells": 1} if solver == "fmm" else {}
        fcs = fcs_init(solver, m, **kwargs)
        fcs.set_common(box=tiny_system.box, periodic=True)
        fcs.tune(pset)
        report = fcs.run(pset)
        assert not report.changed
        assert np.isfinite(np.concatenate(pset.pot)).all()

    def test_empty_rank_method_b(self, tiny_system):
        """A rank starting with zero particles participates correctly."""
        P = 4
        m = Machine(P)
        owner = np.zeros(tiny_system.n, dtype=np.int64)
        owner[tiny_system.n // 2:] = 1  # ranks 2, 3 empty
        pset = ParticleSet(
            [tiny_system.pos[owner == r].copy() for r in range(P)],
            [tiny_system.q[owner == r].copy() for r in range(P)],
            capacities=[tiny_system.n] * P,
        )
        fcs = fcs_init("p2nfft", m, cutoff=3.0)
        fcs.set_common(box=tiny_system.box, periodic=True)
        fcs.set_resort(True)
        fcs.tune(pset)
        report = fcs.run(pset)
        assert report.changed
        assert int(report.new_counts.sum()) == tiny_system.n


class TestSingleRank:
    @pytest.mark.parametrize("solver", ["fmm", "p2nfft", "direct"])
    def test_p1(self, tiny_system, solver):
        m = Machine(1)
        pset = ParticleSet([tiny_system.pos.copy()], [tiny_system.q.copy()])
        kwargs = {"order": 3, "depth": 3, "lattice_shells": 1} if solver == "fmm" else {}
        fcs = fcs_init(solver, m, **kwargs)
        fcs.set_common(box=tiny_system.box, periodic=True)
        fcs.tune(pset)
        fcs.run(pset)
        assert np.isfinite(pset.pot[0]).all()

    def test_p1_simulation(self, tiny_system):
        sim = Simulation(
            Machine(1),
            tiny_system,
            SimulationConfig(
                solver="p2nfft", method="B", dt=0.02, distribution="grid"
            ),
        )
        sim.run(2)
        assert sim.records[-1].changed


class TestResortBytes:
    def test_roundtrip(self, tiny_system):
        P = 4
        m = Machine(P)
        rng = np.random.default_rng(1)
        owner = rng.integers(0, P, tiny_system.n)
        pset = ParticleSet(
            [tiny_system.pos[owner == r].copy() for r in range(P)],
            [tiny_system.q[owner == r].copy() for r in range(P)],
        )
        fcs = fcs_init("p2nfft", m, cutoff=3.0)
        fcs.set_common(box=tiny_system.box, periodic=True)
        fcs.set_resort(True)
        fcs.tune(pset)
        old_pos = [p.copy() for p in pset.pos]
        fcs.run(pset)
        # per-particle 8-byte records = the position-derived tag
        tags = [
            np.round(p[:, 0] * 1e6).astype(np.int64).view(np.uint8).reshape(-1, 8)
            for p in old_pos
        ]
        out = fcs.resort(tags)
        for r in range(P):
            expected = np.round(pset.pos[r][:, 0] * 1e6).astype(np.int64)
            got = out[r].reshape(-1, 8).copy().view(np.int64).ravel()
            np.testing.assert_array_equal(got, expected)


class TestOutOfBoxPositions:
    def test_positions_outside_box_wrap(self, tiny_system):
        """Positions slightly outside the box must not crash either solver
        (they wrap, like the integrator does)."""
        P = 2
        m = Machine(P)
        pos = tiny_system.pos.copy()
        pos[0] += tiny_system.box  # one full period off
        half = tiny_system.n // 2
        pset = ParticleSet(
            [pos[:half], pos[half:]], [tiny_system.q[:half], tiny_system.q[half:]]
        )
        fcs = fcs_init("p2nfft", m, cutoff=3.0)
        fcs.set_common(box=tiny_system.box, periodic=True)
        fcs.tune(pset)
        fcs.run(pset)
        assert np.isfinite(np.concatenate(pset.pot)).all()


class TestMachineExtremes:
    def test_large_machine_construction(self):
        m = Machine(16384, profile=None)
        assert m.nprocs == 16384

    def test_torus_16384_juqueen(self):
        from repro.simmpi.costmodel import JUQUEEN

        m = Machine(16384, profile=JUQUEEN)
        assert m.topology.nnodes == 1024
