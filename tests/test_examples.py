"""Every example stays runnable (subprocess smoke tests, smallest args)."""

import subprocess
import sys

import pytest

EXAMPLES = [
    ("domain_decomposition_viz.py", ["4", "8"]),
    ("resort_indices_demo.py", []),
    ("spmd_halo_exchange.py", []),
    ("quickstart.py", []),
    ("md_coupled_simulation.py", ["2"]),
    ("thermostatted_md.py", ["2"]),
]


@pytest.mark.parametrize("script,args", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, f"examples/{script}", *args],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print something"
