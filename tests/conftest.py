"""Shared fixtures: small machines, particle systems, distributions.

The Hypothesis strategies shared across the property-test suites live in
:mod:`repro.verify.strategies` (importable from test modules and downstream
code alike); they are re-exported here for discoverability.
"""

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.core.particles import ParticleSet
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine
from repro.verify.strategies import (  # noqa: F401  (re-exported for tests)
    multiplicity_maps,
    permutations,
    position_arrays,
    rank_arrays,
    rank_position_arrays,
    symmetric_count_tables,
)

# In CI, print the reproduction blob (`@reproduce_failure(...)`) of every
# failing Hypothesis example so the seed survives the ephemeral runner; the
# DST runner prints its own one-line repro command the same way.
settings.register_profile("ci", print_blob=True, deadline=None)
if os.environ.get("CI"):
    settings.load_profile("ci")


@pytest.fixture
def machine4():
    return Machine(4)


@pytest.fixture
def machine8():
    return Machine(8)


@pytest.fixture(scope="session")
def small_system():
    """400 ions at paper density (box ~19.5)."""
    return silica_melt_system(400, seed=3)


@pytest.fixture(scope="session")
def medium_system():
    """2000 ions at paper density (box ~33.3)."""
    return silica_melt_system(2000, seed=1)


def random_particle_set(system, nprocs, seed=0, capacity_factor=4.0):
    """Distribute a system uniformly at random among ranks."""
    rng = np.random.default_rng(seed)
    owner = rng.integers(0, nprocs, system.n)
    pos = [system.pos[owner == r].copy() for r in range(nprocs)]
    q = [system.q[owner == r].copy() for r in range(nprocs)]
    return ParticleSet(pos, q, capacity_factor=capacity_factor), owner


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
