"""The adaptive method-selection extension (beyond the paper).

The controller measures per-step redistribution costs online, trials the
inactive method periodically, switches eagerly when the active method
degrades, and treats the layout-refresh step of a switch into method B as a
transient.  The payoff: under heavy drift it avoids most of method A's
growing cost; under light drift it exploits the fact that right after any B
step the application holds the solver layout, making method A temporarily
almost free.
"""

import numpy as np
import pytest

from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine


@pytest.fixture(scope="module")
def system():
    return silica_melt_system(4096, seed=4)


def run_method(system, method, drift_frac, steps=24, nprocs=32, adapt_every=5):
    subdomain = float(system.box[0]) / round(nprocs ** (1 / 3))
    cfg = SimulationConfig(
        solver="p2nfft",
        method=method,
        distribution="grid",
        dynamics="brownian",
        brownian_step=drift_frac * subdomain,
        adapt_every=adapt_every,
        solver_kwargs={"compute": "skip"},
        seed=1,
    )
    sim = Simulation(Machine(nprocs), system, cfg)
    sim.run(steps)
    total = sum(
        r.phase_time("sort")
        + r.phase_time("restore")
        + r.phase_time("resort")
        + r.phase_time("resort_index")
        for r in sim.records[1:]
    )
    return total, sim


class TestAdaptive:
    def test_starts_with_b(self, system):
        _, sim = run_method(system, "adaptive", 0.05, steps=1)
        assert sim.records[1].method == "B"

    def test_trials_both_methods(self, system):
        _, sim = run_method(system, "adaptive", 0.05, steps=14, adapt_every=3)
        methods = {r.method for r in sim.records[1:]}
        assert methods == {"A", "B"}

    def test_beats_pure_a_under_heavy_drift(self, system):
        tot_a, _ = run_method(system, "A", 0.3)
        tot_adaptive, sim = run_method(system, "adaptive", 0.3)
        assert tot_adaptive < tot_a
        # it must actually have used B epochs to refresh the layout
        assert sum(r.method == "B" for r in sim.records[1:]) >= 3

    def test_competitive_under_light_drift(self, system):
        tot_a, _ = run_method(system, "A", 0.01)
        tot_b, _ = run_method(system, "B", 0.01)
        tot_adaptive, _ = run_method(system, "adaptive", 0.01)
        assert tot_adaptive < 1.4 * min(tot_a, tot_b)

    def test_physics_unaffected(self, system):
        """Adaptive switching must not corrupt particle identities."""
        _, sim = run_method(system, "adaptive", 0.1, steps=9, adapt_every=2)
        st = sim.gather_state()
        np.testing.assert_array_equal(st["ids"], np.arange(system.n))

    def test_fixed_methods_never_adapt(self, system):
        _, sim = run_method(system, "B", 0.05, steps=6)
        assert all(r.method == "B" for r in sim.records)
        _, sim = run_method(system, "A", 0.05, steps=6)
        assert all(r.method == "A" for r in sim.records)
