"""The three initial distributions of Sect. IV-B."""

import numpy as np
import pytest

from repro.md.distributions import DISTRIBUTIONS, distribute
from repro.simmpi.cart import CartGrid


class TestDistribute:
    def test_single(self, small_system):
        pset, vel, owner = distribute(small_system, 4, "single")
        assert pset.nlocal(0) == small_system.n
        assert pset.nlocal(1) == 0
        assert np.all(owner == 0)
        assert pset.capacities[0] >= small_system.n

    def test_random_covers_all(self, small_system):
        pset, vel, owner = distribute(small_system, 4, "random", seed=1)
        assert pset.total() == small_system.n
        assert len(np.unique(owner)) == 4

    def test_grid_ownership(self, small_system):
        pset, vel, owner = distribute(small_system, 8, "grid")
        grid = CartGrid(8, small_system.box, small_system.offset)
        np.testing.assert_array_equal(
            owner, grid.rank_of_positions(small_system.pos)
        )
        for r in range(8):
            np.testing.assert_array_equal(grid.rank_of_positions(pset.pos[r]), r)

    def test_velocities_follow(self, small_system):
        sys2 = small_system
        pset, vel, owner = distribute(sys2, 4, "random", seed=2)
        for r in range(4):
            assert vel[r].shape == pset.pos[r].shape

    def test_data_integrity(self, small_system):
        """Every particle appears exactly once with its own charge."""
        pset, vel, owner = distribute(small_system, 4, "random", seed=3)
        got = np.concatenate(pset.q)
        expected = np.concatenate([small_system.q[owner == r] for r in range(4)])
        np.testing.assert_array_equal(got, expected)

    def test_unknown_kind(self, small_system):
        with pytest.raises(ValueError, match="unknown distribution"):
            distribute(small_system, 4, "zigzag")

    def test_names_constant(self):
        assert DISTRIBUTIONS == ("single", "random", "grid")
