"""Trajectory and checkpoint I/O."""

import numpy as np
import pytest

from repro.md.io import (
    load_checkpoint,
    read_xyz,
    resume_simulation,
    save_checkpoint,
    write_xyz,
)
from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine


class TestXYZ:
    def test_roundtrip(self, tmp_path, rng):
        path = str(tmp_path / "frame.xyz")
        pos = rng.uniform(0, 5, (10, 3))
        q = np.where(rng.random(10) > 0.5, 1.0, -1.0)
        vel = rng.normal(size=(10, 3))
        write_xyz(path, pos, q, vel, comment="step 7")
        p2, q2, v2, comment = read_xyz(path)
        np.testing.assert_allclose(p2, pos, atol=1e-9)
        np.testing.assert_array_equal(q2, q)
        np.testing.assert_allclose(v2, vel, atol=1e-9)
        assert comment == "step 7"

    def test_multi_frame(self, tmp_path, rng):
        path = str(tmp_path / "traj.xyz")
        frames = [rng.uniform(size=(4, 3)) for _ in range(3)]
        q = np.array([1.0, -1.0, 1.0, -1.0])
        for i, f in enumerate(frames):
            write_xyz(path, f, q, comment=f"frame {i}", append=i > 0)
        for i, f in enumerate(frames):
            p, _, v, c = read_xyz(path, frame=i)
            np.testing.assert_allclose(p, f, atol=1e-9)
            assert v is None
            assert c == f"frame {i}"

    def test_missing_frame(self, tmp_path):
        path = str(tmp_path / "one.xyz")
        write_xyz(path, np.zeros((1, 3)), np.ones(1))
        with pytest.raises(ValueError):
            read_xyz(path, frame=5)

    def test_bad_shapes(self, tmp_path):
        with pytest.raises(ValueError):
            write_xyz(str(tmp_path / "x.xyz"), np.zeros((2, 3)), np.zeros(3))


class TestCheckpoint:
    def make_sim(self, system, nprocs):
        cfg = SimulationConfig(
            solver="p2nfft",
            method="B",
            dt=0.02,
            distribution="random",
            dynamics="brownian",
            brownian_step=0.1,
            solver_kwargs={"compute": "skip"},
            seed=5,
        )
        return Simulation(Machine(nprocs), system, cfg)

    def test_save_load(self, tmp_path):
        system = silica_melt_system(256, seed=9)
        sim = self.make_sim(system, 4)
        sim.run(2)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, sim)
        data = load_checkpoint(path)
        assert data["pos"].shape == (256, 3)
        assert data["step_index"] == 2
        state = sim.gather_state()
        np.testing.assert_allclose(data["pos"], state["pos"])
        np.testing.assert_array_equal(data["q"], state["q"])

    def test_resume_on_different_nprocs(self, tmp_path):
        """A checkpoint written at P=4 restarts at P=7: the redistribution
        machinery makes the layout a free choice."""
        system = silica_melt_system(256, seed=9)
        sim = self.make_sim(system, 4)
        sim.run(2)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, sim)

        cfg = SimulationConfig(
            solver="p2nfft",
            method="B",
            dt=0.02,
            distribution="grid",
            dynamics="brownian",
            brownian_step=0.1,
            solver_kwargs={"compute": "skip"},
            seed=5,
        )
        resumed = resume_simulation(path, Machine(7), cfg)
        assert resumed.step_index == 2
        assert resumed.particles.total() == 256
        # state matches the saved positions (id-ordered)
        old = sim.gather_state()
        new = resumed.gather_state()
        np.testing.assert_allclose(new["pos"], old["pos"])
        np.testing.assert_allclose(new["vel"], old["vel"])
        resumed.run(1)  # and it can continue stepping
        assert resumed.particles.total() == 256
