"""Velocity initialisation and temperature control."""

import numpy as np
import pytest

from repro.md.thermostat import (
    BerendsenThermostat,
    maxwell_boltzmann,
    temperature,
    temperature_global,
)
from repro.simmpi.machine import Machine


class TestMaxwellBoltzmann:
    def test_target_temperature_exact(self):
        vel = maxwell_boltzmann([500, 300, 200], 2.5, seed=1)
        all_v = np.concatenate(vel)
        assert temperature_global(all_v) == pytest.approx(2.5, rel=1e-12)

    def test_zero_momentum(self):
        vel = maxwell_boltzmann([400, 600], 1.0, seed=2)
        np.testing.assert_allclose(np.concatenate(vel).sum(axis=0), 0.0, atol=1e-9)

    def test_distribution_independent_of_split(self):
        a = np.concatenate(maxwell_boltzmann([1000], 1.0, seed=3))
        b = np.concatenate(maxwell_boltzmann([250, 250, 500], 1.0, seed=3))
        np.testing.assert_allclose(a, b)

    def test_zero_temperature(self):
        vel = maxwell_boltzmann([100], 0.0)
        assert np.all(np.concatenate(vel) == 0.0)

    def test_empty_ranks(self):
        vel = maxwell_boltzmann([0, 50, 0], 1.0)
        assert vel[0].shape == (0, 3) and vel[2].shape == (0, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            maxwell_boltzmann([10], -1.0)


class TestTemperature:
    def test_distributed_matches_global(self, machine4):
        rng = np.random.default_rng(0)
        vel = [rng.normal(size=(50, 3)) for _ in range(4)]
        t_dist = temperature(machine4, vel)
        t_glob = temperature_global(np.concatenate(vel))
        assert t_dist == pytest.approx(t_glob)

    def test_empty(self, machine4):
        assert temperature(machine4, [np.zeros((0, 3))] * 4) == 0.0

    def test_charges_communication(self, machine4):
        temperature(machine4, [np.ones((5, 3))] * 4, phase="t")
        assert machine4.trace.get("t").time > 0


class TestBerendsen:
    def test_drives_toward_target(self, machine4):
        rng = np.random.default_rng(1)
        vel = [rng.normal(0, 2.0, (100, 3)) for _ in range(4)]
        thermo = BerendsenThermostat(target=1.0, tau=0.5, dt=0.1)
        for _ in range(50):
            vel = thermo.apply(machine4, vel)
        t_final = temperature(machine4, vel)
        assert t_final == pytest.approx(1.0, rel=0.05)

    def test_heats_cold_system(self, machine4):
        vel = [np.full((50, 3), 0.01) for _ in range(4)]
        thermo = BerendsenThermostat(target=5.0, tau=1.0, dt=0.2)
        t0 = temperature(machine4, vel)
        vel = thermo.apply(machine4, vel)
        assert temperature(machine4, vel) > t0

    def test_zero_velocities_stay(self, machine4):
        vel = [np.zeros((10, 3))] * 4
        thermo = BerendsenThermostat(target=1.0, tau=1.0, dt=0.1)
        out = thermo.apply(machine4, vel)
        assert all(np.all(v == 0) for v in out)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BerendsenThermostat(-1.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            BerendsenThermostat(1.0, 0.0, 0.1)
