"""Leapfrog integration: Eqs. (1)-(2), movement measurement."""

import numpy as np
import pytest

from repro.md.integrator import accelerations, position_update, velocity_update
from repro.simmpi.machine import Machine


class TestAccelerations:
    def test_a_equals_qE_over_m(self):
        q = [np.array([2.0, -1.0])]
        field = [np.array([[1.0, 0, 0], [0, 3.0, 0]])]
        a = accelerations(q, field, mass=2.0)
        np.testing.assert_allclose(a[0], [[1.0, 0, 0], [0, -1.5, 0]])


class TestPositionUpdate:
    def test_equation_one(self, machine4):
        pos = [np.array([[1.0, 0, 0]])] + [np.zeros((0, 3))] * 3
        vel = [np.array([[2.0, 0, 0]])] + [np.zeros((0, 3))] * 3
        acc = [np.array([[4.0, 0, 0]])] + [np.zeros((0, 3))] * 3
        new, mv = position_update(machine4, pos, vel, acc, dt=0.5)
        # x + v dt + a dt^2 / 2 = 1 + 1 + 0.5
        assert new[0][0, 0] == pytest.approx(2.5)
        assert mv == pytest.approx(1.5)

    def test_wrap(self, machine4):
        box = np.full(3, 10.0)
        pos = [np.array([[9.9, 0, 0]])] + [np.zeros((0, 3))] * 3
        vel = [np.array([[2.0, 0, 0]])] + [np.zeros((0, 3))] * 3
        acc = [np.zeros((1, 3))] + [np.zeros((0, 3))] * 3
        new, mv = position_update(machine4, pos, vel, acc, dt=0.5, box=box)
        assert new[0][0, 0] == pytest.approx(0.9)
        assert mv == pytest.approx(1.0)  # movement is the step, not the wrap

    def test_max_move_global(self, machine4):
        pos = [np.zeros((1, 3)) for _ in range(4)]
        vel = [np.zeros((1, 3)) for _ in range(4)]
        vel[3] = np.array([[0.0, 3.0, 4.0]])  # |v| = 5
        acc = [np.zeros((1, 3)) for _ in range(4)]
        _, mv = position_update(machine4, pos, vel, acc, dt=1.0)
        assert mv == pytest.approx(5.0)

    def test_charges_time(self, machine4):
        pos = [np.zeros((10, 3))] * 4
        position_update(machine4, pos, pos, pos, 0.1, phase="integrate")
        assert machine4.trace.get("integrate").time > 0


class TestVelocityUpdate:
    def test_equation_two(self, machine4):
        vel = [np.array([[1.0, 0, 0]])] + [np.zeros((0, 3))] * 3
        a0 = [np.array([[2.0, 0, 0]])] + [np.zeros((0, 3))] * 3
        a1 = [np.array([[4.0, 0, 0]])] + [np.zeros((0, 3))] * 3
        out = velocity_update(machine4, vel, a0, a1, dt=0.5)
        # v + (a0 + a1)/2 dt = 1 + 3*0.5
        assert out[0][0, 0] == pytest.approx(2.5)


class TestLeapfrogProperties:
    def harmonic_trajectory(self, dt, steps):
        """1-D harmonic oscillator x'' = -x via the same update equations."""
        m = Machine(1)
        pos = [np.array([[1.0, 0.0, 0.0]])]
        vel = [np.zeros((1, 3))]
        acc = [np.array([[-1.0, 0.0, 0.0]])]
        xs = [1.0]
        for _ in range(steps):
            pos, _ = position_update(m, pos, vel, acc, dt)
            acc_new = [-pos[0]]
            vel = velocity_update(m, vel, acc, acc_new, dt)
            acc = acc_new
            xs.append(pos[0][0, 0])
        return np.asarray(xs), pos, vel, acc

    def test_energy_conservation_harmonic(self):
        dt = 0.05
        xs, pos, vel, acc = self.harmonic_trajectory(dt, 500)
        E = 0.5 * vel[0][0, 0] ** 2 + 0.5 * pos[0][0, 0] ** 2
        assert E == pytest.approx(0.5, rel=1e-3)  # initial E = 0.5

    def test_time_reversibility(self):
        dt = 0.05
        m = Machine(1)
        pos = [np.array([[1.0, 0.0, 0.0]])]
        vel = [np.array([[0.3, 0.0, 0.0]])]
        acc = [-pos[0]]
        for _ in range(50):
            pos, _ = position_update(m, pos, vel, acc, dt)
            an = [-pos[0]]
            vel = velocity_update(m, vel, acc, an, dt)
            acc = an
        # reverse velocities and integrate back
        vel = [-vel[0]]
        for _ in range(50):
            pos, _ = position_update(m, pos, vel, acc, dt)
            an = [-pos[0]]
            vel = velocity_update(m, vel, acc, an, dt)
            acc = an
        assert pos[0][0, 0] == pytest.approx(1.0, abs=1e-10)
        assert vel[0][0, 0] == pytest.approx(-0.3, abs=1e-10)
