"""SimulationConfig rejects unknown and conflicting knobs with actionable
errors (API v2, docs/migration.md)."""

import pytest

from repro.md.simulation import SimulationConfig


class TestUnknownKnobs:
    def test_unknown_method(self):
        with pytest.raises(ValueError, match="method must be one of"):
            SimulationConfig(method="C")

    def test_unknown_dynamics(self):
        with pytest.raises(ValueError, match="dynamics"):
            SimulationConfig(dynamics="newtonian")

    def test_unknown_load_balance(self):
        with pytest.raises(ValueError, match="load_balance"):
            SimulationConfig(load_balance="sometimes")

    def test_unknown_distribution(self):
        with pytest.raises(ValueError, match="distribution"):
            SimulationConfig(distribution="gridd")

    def test_solver_kwargs_must_be_dict(self):
        with pytest.raises(ValueError, match="solver_kwargs"):
            SimulationConfig(solver_kwargs=[("order", 3)])


class TestRangeKnobs:
    @pytest.mark.parametrize("knob", ["dt", "accuracy", "mass"])
    def test_positive_required(self, knob):
        with pytest.raises(ValueError, match=knob):
            SimulationConfig(**{knob: 0.0})

    def test_negative_brownian_step(self):
        with pytest.raises(ValueError, match="brownian_step"):
            SimulationConfig(brownian_step=-0.1)

    def test_adapt_every(self):
        with pytest.raises(ValueError, match="adapt_every"):
            SimulationConfig(adapt_every=0)

    def test_capacity_factor(self):
        with pytest.raises(ValueError, match="capacity_factor"):
            SimulationConfig(capacity_factor=0.5)


class TestConflictingKnobs:
    def test_inverted_balance_hysteresis(self):
        with pytest.raises(ValueError, match="conflicting balance knobs"):
            SimulationConfig(balance_trigger=1.1, balance_rearm=1.5)

    def test_rearm_below_one(self):
        with pytest.raises(ValueError, match="conflicting balance knobs"):
            SimulationConfig(balance_trigger=1.5, balance_rearm=0.9)

    def test_dynamic_balance_without_phases(self):
        with pytest.raises(ValueError, match="balance_phases"):
            SimulationConfig(load_balance="dynamic", balance_phases=())

    def test_legal_combinations_accepted(self):
        # deliberately unchecked: dynamic balancing with method A or a
        # non-rebalanceable solver (DST/conformance exercise these)
        SimulationConfig(load_balance="dynamic", method="A")
        SimulationConfig(load_balance="dynamic", solver="direct")
        SimulationConfig(solver="not-a-solver")  # registry validates later
        SimulationConfig(balance_trigger=1.5, balance_rearm=1.5)
