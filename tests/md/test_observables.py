"""Energy/momentum/drift observables."""

import numpy as np
import pytest

from repro.md.observables import (
    kinetic_energy,
    max_drift,
    mean_drift,
    potential_energy,
    total_momentum,
)


def test_kinetic_energy():
    vel = [np.array([[3.0, 0, 0]]), np.array([[0.0, 4.0, 0]])]
    assert kinetic_energy(vel) == pytest.approx(0.5 * 9 + 0.5 * 16)
    assert kinetic_energy(vel, mass=2.0) == pytest.approx(9 + 16)


def test_potential_energy():
    q = [np.array([1.0, -1.0])]
    pot = [np.array([2.0, 4.0])]
    assert potential_energy(q, pot) == pytest.approx(0.5 * (2.0 - 4.0))


def test_total_momentum():
    vel = [np.array([[1.0, 0, 0]]), np.array([[-1.0, 0, 0]]), np.zeros((0, 3))]
    np.testing.assert_allclose(total_momentum(vel), 0.0)


def test_drift_minimum_image():
    box = np.full(3, 10.0)
    a = np.array([[9.8, 0, 0], [5.0, 5.0, 5.0]])
    b = np.array([[0.2, 0, 0], [5.0, 5.0, 6.0]])
    assert max_drift(a, b, box) == pytest.approx(1.0)
    assert mean_drift(a, b, box) == pytest.approx(0.7)


def test_drift_empty():
    assert max_drift(np.zeros((0, 3)), np.zeros((0, 3))) == 0.0
    assert mean_drift(np.zeros((0, 3)), np.zeros((0, 3))) == 0.0
