"""Particle system generation: neutrality, spacing, density scaling."""

import numpy as np
import pytest

from repro.md.systems import PAPER_BOX_EDGE, PAPER_N, silica_melt_system


class TestSilicaMelt:
    def test_neutral(self):
        s = silica_melt_system(1000, seed=0)
        assert s.q.sum() == 0.0
        assert set(np.unique(s.q)) == {-1.0, 1.0}

    def test_paper_density_scaling(self):
        s = silica_melt_system(2000)
        paper_density = PAPER_N / PAPER_BOX_EDGE ** 3
        assert s.density == pytest.approx(paper_density, rel=1e-6)

    def test_full_size_box(self):
        s = silica_melt_system(PAPER_N // 512, box_edge=PAPER_BOX_EDGE / 8)
        assert s.box[0] == PAPER_BOX_EDGE / 8

    def test_positions_inside_box(self):
        s = silica_melt_system(500, seed=2)
        assert np.all(s.pos >= 0) and np.all(s.pos < s.box)

    def test_minimum_distance(self):
        s = silica_melt_system(600, seed=1, jitter=0.3)
        m = int(np.ceil(600 ** (1 / 3)))
        spacing = s.box[0] / m
        guaranteed = (1 - 2 * 0.3) * spacing
        d = s.pos[:, None, :] - s.pos[None, :, :]
        d -= np.round(d / s.box) * s.box
        r2 = (d * d).sum(2)
        np.fill_diagonal(r2, np.inf)
        assert np.sqrt(r2.min()) >= guaranteed - 1e-9

    def test_zero_velocities(self):
        s = silica_melt_system(100)
        assert np.all(s.vel == 0)

    def test_deterministic(self):
        a = silica_melt_system(200, seed=7)
        b = silica_melt_system(200, seed=7)
        np.testing.assert_array_equal(a.pos, b.pos)
        np.testing.assert_array_equal(a.q, b.q)

    def test_homogeneous(self):
        """Octant occupation is balanced (the paper's 'sufficiently
        homogeneously distributed' property)."""
        s = silica_melt_system(8000, seed=3)
        octant = (
            (s.pos[:, 0] > s.box[0] / 2).astype(int) * 4
            + (s.pos[:, 1] > s.box[1] / 2).astype(int) * 2
            + (s.pos[:, 2] > s.box[2] / 2).astype(int)
        )
        counts = np.bincount(octant, minlength=8)
        assert counts.max() < 1.2 * counts.min()

    def test_odd_n_rejected(self):
        with pytest.raises(ValueError):
            silica_melt_system(101)

    def test_bad_jitter(self):
        with pytest.raises(ValueError):
            silica_melt_system(100, jitter=0.6)
