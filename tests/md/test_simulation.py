"""The coupled simulation: Fig. 3 loop, method A/B equivalence, physics."""

import numpy as np
import pytest

from repro.md.observables import max_drift, mean_drift, total_momentum
from repro.md.simulation import Simulation, SimulationConfig
from repro.simmpi.machine import Machine


def make_sim(system, solver="fmm", method="A", nprocs=4, **kwargs):
    machine = Machine(nprocs)
    defaults = dict(
        solver=solver,
        method=method,
        dt=0.05,
        distribution="random",
        track_energy=True,
        seed=2,
    )
    if solver == "fmm":
        defaults["solver_kwargs"] = {"order": 4, "depth": 3, "lattice_shells": 2}
    defaults.update(kwargs)
    return Simulation(machine, system, SimulationConfig(**defaults))


class TestProtocol:
    def test_step_before_initialize(self, small_system):
        sim = make_sim(small_system)
        with pytest.raises(RuntimeError, match="initialize"):
            sim.step()

    def test_double_initialize(self, small_system):
        sim = make_sim(small_system)
        sim.initialize()
        with pytest.raises(RuntimeError, match="already"):
            sim.initialize()

    def test_records_accumulate(self, small_system):
        sim = make_sim(small_system)
        recs = sim.run(3)
        assert len(recs) == 4  # initial + 3 steps
        assert [r.step for r in recs] == [0, 1, 2, 3]
        assert all(r.total_time > 0 for r in recs)

    def test_bad_method(self):
        with pytest.raises(ValueError):
            SimulationConfig(method="C")

    def test_bad_dynamics(self):
        with pytest.raises(ValueError):
            SimulationConfig(dynamics="magic")


class TestPhysics:
    @pytest.mark.parametrize("solver", ["fmm", "p2nfft"])
    def test_energy_conservation(self, medium_system, solver):
        sim = make_sim(medium_system, solver=solver, nprocs=4)
        recs = sim.run(4)
        E = [r.energy for r in recs]
        assert abs(E[-1] - E[0]) / abs(E[0]) < 1e-4

    def test_momentum_stays_zero(self, medium_system):
        sim = make_sim(medium_system, solver="p2nfft", nprocs=4)
        sim.run(3)
        p = total_momentum(sim.vel)
        # per-step force sums are ~1e-2 relative to individual forces
        scale = max(abs(v).max() for v in sim.vel if v.size) * medium_system.n
        assert np.abs(p).max() < 1e-2 * scale

    def test_solvers_agree(self, medium_system):
        simf = make_sim(medium_system, solver="fmm", nprocs=4)
        simp = make_sim(medium_system, solver="p2nfft", nprocs=4)
        Ef = simf.run(1)[0].energy
        Ep = simp.run(1)[0].energy
        assert Ef == pytest.approx(Ep, rel=5e-3)


class TestMethodEquivalence:
    @pytest.mark.parametrize("solver", ["fmm", "p2nfft"])
    def test_a_and_b_produce_identical_trajectories(self, small_system, solver):
        """Method B changes only the data distribution, never the physics."""
        simA = make_sim(small_system, solver=solver, method="A")
        simB = make_sim(small_system, solver=solver, method="B")
        simA.run(3)
        simB.run(3)
        a = simA.gather_state()
        b = simB.gather_state()
        np.testing.assert_array_equal(a["ids"], b["ids"])
        np.testing.assert_allclose(a["pos"], b["pos"], rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(a["vel"], b["vel"], rtol=1e-10, atol=1e-12)

    def test_b_move_also_identical(self, small_system):
        simA = make_sim(small_system, solver="fmm", method="A")
        simM = make_sim(small_system, solver="fmm", method="B+move")
        simA.run(3)
        simM.run(3)
        a = simA.gather_state()
        m = simM.gather_state()
        np.testing.assert_allclose(a["pos"], m["pos"], rtol=1e-12, atol=1e-12)
        # the movement-limited strategies were actually used
        strategies = [r.strategy for r in simM.records[1:]]
        assert any(s.startswith("merge") for s in strategies)

    def test_ids_conserved(self, small_system):
        sim = make_sim(small_system, method="B")
        sim.run(3)
        st = sim.gather_state()
        np.testing.assert_array_equal(st["ids"], np.arange(small_system.n))


class TestMethodBehaviour:
    def test_method_a_never_changes(self, small_system):
        sim = make_sim(small_system, method="A")
        sim.run(2)
        assert all(not r.changed for r in sim.records)

    def test_method_b_changes(self, small_system):
        sim = make_sim(small_system, method="B")
        sim.run(2)
        assert all(r.changed for r in sim.records)

    def test_max_move_recorded(self, small_system):
        sim = make_sim(small_system)
        recs = sim.run(2)
        assert recs[0].max_move == 0.0
        assert recs[1].max_move > 0

    def test_phase_records(self, small_system):
        sim = make_sim(small_system, method="B")
        recs = sim.run(1)
        step = recs[1]
        assert step.phase_time("sort") > 0
        assert step.phase_time("resort") > 0
        assert step.phase_time("restore") == 0

    def test_brownian_dynamics(self, small_system):
        sim = make_sim(
            small_system,
            method="B",
            dynamics="brownian",
            brownian_step=0.3,
            track_energy=False,
            solver_kwargs={"order": 3, "depth": 3, "lattice_shells": 2, "compute": "skip"},
        )
        sim.run(3)
        for rec in sim.records[2:]:
            assert rec.max_move == pytest.approx(0.3, rel=0.05)

    def test_drift_observables(self, small_system):
        sim = make_sim(
            small_system,
            dynamics="brownian",
            brownian_step=0.2,
            track_energy=False,
            solver_kwargs={"order": 3, "depth": 3, "lattice_shells": 2, "compute": "skip"},
        )
        initial = sim.gather_state()["pos"]
        sim.run(5)
        final = sim.gather_state()["pos"]
        assert 0 < mean_drift(initial, final, sim.system.box) <= max_drift(
            initial, final, sim.system.box
        )
        assert max_drift(initial, final, sim.system.box) <= 5 * 0.2 + 1e-9
