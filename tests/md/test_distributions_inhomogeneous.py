"""The inhomogeneous (clustered) system generators and their conformance.

Two layers:

* generator properties — determinism, charge neutrality, the paper's box
  convention, and the density *contrast* that makes each distribution a
  load-balancing workload in the first place,
* conformance — for every generator and every redistribution method, a
  dynamically balanced FMM run reproduces the unbalanced trajectory (the
  solver-level solver × generator matrix lives in
  ``tests/core/test_balance.py``).
"""

import numpy as np
import pytest

from repro.md.distributions import (
    CLUSTERED_KINDS,
    clustered_system,
    distribute,
)
from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import PAPER_BOX_EDGE, PAPER_N
from repro.simmpi.machine import Machine
from repro.verify.differential import compare_states
from repro.zorder.morton import morton_keys_of_positions


# -- generator properties ------------------------------------------------------


class TestGenerators:
    @pytest.mark.parametrize("kind", CLUSTERED_KINDS)
    def test_deterministic(self, kind):
        a = clustered_system(kind, 256, seed=9)
        b = clustered_system(kind, 256, seed=9)
        np.testing.assert_array_equal(a.pos, b.pos)
        np.testing.assert_array_equal(a.q, b.q)

    @pytest.mark.parametrize("kind", CLUSTERED_KINDS)
    def test_charge_neutral_and_in_box(self, kind):
        system = clustered_system(kind, 512, seed=3)
        assert system.q.sum() == 0.0
        assert set(np.unique(system.q)) == {-1.0, 1.0}
        assert np.all(system.pos >= 0.0)
        assert np.all(system.pos < system.box)
        assert np.all(system.vel == 0.0)

    @pytest.mark.parametrize("kind", CLUSTERED_KINDS)
    def test_paper_box_convention(self, kind):
        """Same density convention as the homogeneous silica melt, so
        clustered and homogeneous systems of equal n share a box."""
        n = 4096
        system = clustered_system(kind, n)
        expected = PAPER_BOX_EDGE * (n / PAPER_N) ** (1.0 / 3.0)
        np.testing.assert_allclose(system.box, expected)

    @pytest.mark.parametrize("kind", CLUSTERED_KINDS)
    def test_density_contrast(self, kind):
        """Leaf-box occupancies must be *skewed*: the busiest box holds
        far more than the mean — otherwise the generator is no
        load-balancing workload at all."""
        n = 4096
        system = clustered_system(kind, n, seed=1)
        keys = morton_keys_of_positions(system.pos, np.zeros(3), system.box, depth=3)
        _, counts = np.unique(keys, return_counts=True)
        mean_occupancy = n / 512.0  # 8^3 boxes at level 3
        assert counts.max() >= 4.0 * mean_occupancy

    def test_validation(self):
        with pytest.raises(ValueError):
            clustered_system("blob", 64)
        with pytest.raises(ValueError):
            clustered_system("plummer", 65)  # odd n breaks neutrality

    @pytest.mark.parametrize("kind", CLUSTERED_KINDS)
    def test_distributes_under_every_scheme(self, kind):
        system = clustered_system(kind, 256, seed=5)
        for scheme in ("single", "random", "grid"):
            pset, vel, owner = distribute(system, 8, scheme, seed=1)
            assert pset.total() == system.n


# -- conformance: generator x method, balanced vs unbalanced -------------------


def run(kind, method, load_balance):
    machine = Machine(4)
    sim = Simulation(
        machine,
        clustered_system(kind, 96, seed=4),
        SimulationConfig(
            solver="fmm",
            method=method,
            distribution="random",
            seed=4,
            dynamics="force",
            solver_kwargs={"work_model": "density"},
            load_balance=load_balance,
            balance_trigger=1.02,
            balance_rearm=1.01,
            capacity_factor=6.0,
        ),
    )
    sim.run(2)
    return sim.gather_state(), machine.trace.counter("balance.rebalances")


class TestConformanceByMethod:
    @pytest.mark.parametrize("method", ["A", "B", "B+move"])
    @pytest.mark.parametrize("kind", CLUSTERED_KINDS)
    def test_balanced_equals_unbalanced(self, kind, method):
        reference, ref_rebalances = run(kind, method, "off")
        balanced, rebalances = run(kind, method, "dynamic")
        assert ref_rebalances == 0
        assert rebalances >= 1  # the aggressive trigger really fired
        assert compare_states(reference, balanced) is None
