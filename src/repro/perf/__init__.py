"""Wall-clock performance subsystem (``repro.perf``).

Everything else in the repository measures the *modeled* virtual clock of
the simulated machine; this package measures — and optimizes — the host
wall clock of the harness itself:

* :mod:`repro.perf.instrument` — kernel timers, allocation counters, the
  per-phase wall-time hook into :class:`~repro.simmpi.tracing.Trace`, and
  the global switch routing vectorized kernels through their retained
  ``*_reference`` scalar oracles,
* :mod:`repro.perf.harness` — the benchmark definitions behind
  ``python -m repro.perf``: per-kernel ns/op of the vectorized hot paths
  against their oracles, an end-to-end fig7 wall measurement, and the
  committed-baseline regression gate emitting ``BENCH_wallclock.json``.

Vectorization must never change *what* the experiments compute: the modeled
clock charges by workload counts, and the equivalence suite under
``tests/perf/`` pins every vectorized kernel bitwise to its oracle.  See
``docs/performance.md``.
"""

from repro.perf.instrument import (
    KernelStats,
    collect,
    collecting,
    kernel_timer,
    prefer_reference,
    record,
    reference_mode,
    reset,
    snapshot,
    stats,
    wall_phases,
    wall_phases_enabled,
)

__all__ = [
    "KernelStats",
    "collect",
    "collecting",
    "kernel_timer",
    "prefer_reference",
    "record",
    "reference_mode",
    "reset",
    "snapshot",
    "stats",
    "wall_phases",
    "wall_phases_enabled",
]
