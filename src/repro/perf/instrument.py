"""Wall-clock observability primitives: kernel timers, allocation counters,
and the vectorized-vs-scalar-oracle dispatch switch.

The whole repository charges *modeled* (virtual-clock) time through the
:class:`~repro.simmpi.machine.Machine`; this module is the only place that
touches the *host* clock.  Three independent facilities, all global and all
off by default:

kernel timers
    Hot kernels report ``(wall ns, op count, net allocated bytes)`` per call
    into a process-global registry while a :func:`collect` block is active.
    When collection is off the per-call overhead is a single module-global
    flag check.

wall-phase attribution
    While a :func:`wall_phases` block is active, every
    :meth:`Machine.advance <repro.simmpi.machine.Machine.advance>` attributes
    the host nanoseconds elapsed since the machine's previous charge point
    to the charged phase label, via :meth:`Trace.record_wall
    <repro.simmpi.tracing.Trace.record_wall>`.  Every simulated phase then
    carries both modeled seconds and host wall seconds.  The attribution is
    a charge-point partition of host time: the code that *produces* a charge
    owns the host time leading up to it — exact for the single-machine
    benchmark runs, approximate when several machines interleave.

reference mode
    Each vectorized hot kernel retains its original scalar implementation
    under a ``*_reference`` name; inside a :func:`reference_mode` block the
    public entry points route through the oracles instead.  The equivalence
    test suite (``tests/perf/``) asserts the two paths are bitwise identical
    in outputs, modeled clocks and trace — host speed is the *only* thing
    the switch may change.

Allocation counters piggyback on :mod:`tracemalloc`: when the interpreter is
tracing (``collect(trace_alloc=True)`` starts it), kernel timers and phase
attribution additionally record the net traced bytes over the measured span
(negative when the span frees more than it allocates).
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
import tracemalloc
from typing import Dict, Iterator, Optional

__all__ = [
    "KernelStats",
    "collect",
    "collecting",
    "export_metrics",
    "kernel_timer",
    "prefer_reference",
    "record",
    "reference_mode",
    "reset",
    "snapshot",
    "stats",
    "wall_phases",
    "wall_phases_enabled",
]

# module-global switches: read on hot paths, mutated only by the context
# managers below (the harness and the test suites are single-threaded)
_COLLECTING = False
_REFERENCE = False
_WALL_PHASES = False


@dataclasses.dataclass
class KernelStats:
    """Aggregated wall-clock statistics of one named kernel.

    ``ops`` is the kernel's own workload unit (pairs built, rows packed,
    tensor entries filled, ...) so ``ns_per_op`` is comparable across calls
    of different sizes.  ``alloc_bytes`` is the net tracemalloc delta over
    the timed spans (0 unless tracemalloc was tracing).
    """

    calls: int = 0
    ns: int = 0
    ops: int = 0
    alloc_bytes: int = 0

    @property
    def ns_per_op(self) -> float:
        return self.ns / self.ops if self.ops else float(self.ns)

    def add(self, ns: int, ops: int, alloc_bytes: int = 0) -> None:
        self.calls += 1
        self.ns += int(ns)
        self.ops += int(ops)
        self.alloc_bytes += int(alloc_bytes)


_REGISTRY: Dict[str, KernelStats] = {}


def collecting() -> bool:
    """Whether kernel timers are currently recording."""
    return _COLLECTING


def prefer_reference() -> bool:
    """Whether kernels should route through their ``*_reference`` oracles."""
    return _REFERENCE


def wall_phases_enabled() -> bool:
    """Whether machines attribute host wall time to trace phases."""
    return _WALL_PHASES


def record(name: str, ns: int, ops: int = 1, alloc_bytes: int = 0) -> None:
    """Report one kernel invocation (no-op unless :func:`collect` is active)."""
    if not _COLLECTING:
        return
    entry = _REGISTRY.get(name)
    if entry is None:
        entry = _REGISTRY[name] = KernelStats()
    entry.add(ns, ops, alloc_bytes)


def stats(name: str) -> KernelStats:
    """Aggregated stats of one kernel (zeros if never recorded)."""
    return _REGISTRY.get(name, KernelStats())


def snapshot() -> Dict[str, KernelStats]:
    """Copy of the whole kernel registry."""
    return {k: dataclasses.replace(v) for k, v in _REGISTRY.items()}


def reset() -> None:
    """Clear the kernel registry."""
    _REGISTRY.clear()


def _traced_bytes() -> int:
    return tracemalloc.get_traced_memory()[0] if tracemalloc.is_tracing() else 0


@contextlib.contextmanager
def kernel_timer(name: str, ops: int = 1) -> Iterator[None]:
    """Time a block as one kernel invocation of ``ops`` operations.

    Cheap no-op when collection is off.  Used by the instrumented kernels
    themselves; benchmark code may also use it directly.
    """
    if not _COLLECTING:
        yield
        return
    a0 = _traced_bytes()
    t0 = time.perf_counter_ns()
    try:
        yield
    finally:
        ns = time.perf_counter_ns() - t0
        record(name, ns, ops, _traced_bytes() - a0)


@contextlib.contextmanager
def collect(*, clear: bool = True, trace_alloc: bool = False) -> Iterator[Dict[str, KernelStats]]:
    """Enable kernel timers for the duration of the block.

    Yields the live registry dict.  ``clear`` empties the registry on entry;
    ``trace_alloc`` starts :mod:`tracemalloc` for the block (stopped again on
    exit unless it was already tracing), enabling the allocation counters.
    """
    global _COLLECTING
    if clear:
        reset()
    started_tracing = False
    if trace_alloc and not tracemalloc.is_tracing():
        tracemalloc.start()
        started_tracing = True
    prev = _COLLECTING
    _COLLECTING = True
    try:
        yield _REGISTRY
    finally:
        _COLLECTING = prev
        if started_tracing:
            tracemalloc.stop()


@contextlib.contextmanager
def reference_mode(active: bool = True) -> Iterator[None]:
    """Route the vectorized kernels through their scalar oracles."""
    global _REFERENCE
    prev = _REFERENCE
    _REFERENCE = bool(active)
    try:
        yield
    finally:
        _REFERENCE = prev


@contextlib.contextmanager
def wall_phases(*, trace_alloc: bool = False) -> Iterator[None]:
    """Attribute host wall nanoseconds to trace phase labels.

    Machines constructed *or charged* inside the block attribute the host
    time between consecutive charge points to the later charge's phase; see
    the module docstring for the attribution semantics.
    """
    global _WALL_PHASES
    started_tracing = False
    if trace_alloc and not tracemalloc.is_tracing():
        tracemalloc.start()
        started_tracing = True
    prev = _WALL_PHASES
    _WALL_PHASES = True
    try:
        yield
    finally:
        _WALL_PHASES = prev
        if started_tracing:
            tracemalloc.stop()


def wall_anchor() -> tuple:
    """Current ``(perf_counter_ns, traced_bytes)`` charge-point anchor."""
    return time.perf_counter_ns(), _traced_bytes()


def export_metrics(registry=None):
    """Fold the current kernel snapshot into a
    :class:`~repro.obs.metrics.MetricsRegistry` under the ``kernel.*``
    names (creating a fresh registry when none is given)."""
    from repro.obs.metrics import MetricsRegistry, merge_kernel_stats

    if registry is None:
        registry = MetricsRegistry()
    merge_kernel_stats(registry, snapshot())
    return registry
