"""Wall-clock benchmark harness: vectorized kernels vs their scalar oracles.

Every kernel vectorized in this repository keeps its original
implementation alive under a ``*_reference`` name (routed to by
:func:`repro.perf.instrument.reference_mode`).  This harness benchmarks
both paths on inputs shaped like the ``default`` benchmark preset's real
call sites (``--quick`` switches to the ``quick`` preset's shapes), then
runs the Fig. 7 experiment end-to-end for a whole-pipeline wall time and a
small wall-phase-attributed simulation for the modeled-vs-host per-phase
profile.

Results go to ``BENCH_wallclock.json``.  The regression gate compares the
*speedup ratios* (reference wall / vectorized wall) against the committed
``benchmarks/baseline_wallclock.json``: ratios are machine-portable where
absolute nanoseconds are not, so CI can fail on a >25 % relative
regression of any kernel without pinning hardware.

Wall-clock numbers NEVER feed back into the simulation: the modeled
virtual clock, the trace byte/message counters and every state fingerprint
are bitwise identical with and without instrumentation, and identical
between the vectorized and reference paths (enforced by ``tests/perf/``).
"""

from __future__ import annotations

import dataclasses
import json
import platform
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.perf import instrument

__all__ = [
    "KernelResult",
    "KERNEL_BENCHES",
    "run_kernel_benches",
    "run_fig7_wall",
    "run_phase_profile",
    "build_report",
    "check_against_baseline",
    "GATE_TOLERANCE",
]

#: maximum tolerated relative regression of a kernel's speedup ratio
GATE_TOLERANCE = 0.25


@dataclasses.dataclass
class KernelResult:
    """One kernel's vectorized-vs-reference wall measurement."""

    name: str
    ops: int
    vec_ns: int
    ref_ns: int

    @property
    def speedup(self) -> float:
        return self.ref_ns / self.vec_ns if self.vec_ns else float("inf")

    @property
    def vec_ns_per_op(self) -> float:
        return self.vec_ns / self.ops if self.ops else float(self.vec_ns)

    @property
    def ref_ns_per_op(self) -> float:
        return self.ref_ns / self.ops if self.ops else float(self.ref_ns)

    def to_json(self) -> Dict:
        return {
            "ops": self.ops,
            "vec_ns": self.vec_ns,
            "ref_ns": self.ref_ns,
            "vec_ns_per_op": self.vec_ns_per_op,
            "ref_ns_per_op": self.ref_ns_per_op,
            "speedup": self.speedup,
        }


def _best_of(fn: Callable[[], None], repeats: int) -> int:
    """Minimum wall nanoseconds of ``repeats`` runs (first run warms up)."""
    fn()
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter_ns()
        fn()
        ns = time.perf_counter_ns() - t0
        if best is None or ns < best:
            best = ns
    return int(best)


def _measure(
    name: str,
    ops: int,
    vec: Callable[[], object],
    repeats: int,
) -> KernelResult:
    def run_ref() -> None:
        with instrument.reference_mode():
            vec()

    vec_ns = _best_of(vec, repeats)
    ref_ns = _best_of(run_ref, repeats)
    return KernelResult(name=name, ops=ops, vec_ns=vec_ns, ref_ns=ref_ns)


# --------------------------------------------------------------------- shapes
#
# Each bench constructs deterministic inputs mirroring the kernel's real
# call shape at the requested preset scale, asserts vec == reference once,
# and returns (ops, thunk).  Shapes were probed from actual runs: e.g. a
# default-preset P2NFFT near field hands ``candidate_pairs`` ~54 occupied
# target cells, ~1.6k targets and ~5.5k sources per rank (rc from
# ``optimize_cutoff`` at the silica density).


def _preset_scale(quick: bool) -> Tuple[int, int]:
    """(n, nprocs) of the benched preset."""
    from repro.bench.harness import PRESETS

    scale = PRESETS["quick" if quick else "default"]
    return scale.n, scale.nprocs


def _bench_ragged_cross(quick: bool) -> Tuple[int, Callable[[], object]]:
    """Segment tables shaped like one rank's linked-cell neighborhood scan:
    27 offsets x occupied cells, ~(n / P / cells) particles per cell."""
    from repro.solvers.common.pairs import ragged_cross

    rng = np.random.default_rng(2024)
    ncells, mean = (16, 6.0) if quick else (54, 30.0)
    nseg = 27 * ncells
    nt = rng.poisson(mean, nseg).astype(np.int64)
    ns = rng.poisson(mean, nseg).astype(np.int64)
    t_starts = np.concatenate(([0], np.cumsum(nt)[:-1]))
    s_starts = np.concatenate(([0], np.cumsum(ns)[:-1]))
    t_ends = t_starts + nt
    s_ends = s_starts + ns
    ti, si = ragged_cross(t_starts, t_ends, s_starts, s_ends)
    with instrument.reference_mode():
        rti, rsi = ragged_cross(t_starts, t_ends, s_starts, s_ends)
    assert np.array_equal(ti, rti) and np.array_equal(si, rsi)
    return int(ti.shape[0]), lambda: ragged_cross(t_starts, t_ends, s_starts, s_ends)


def _bench_linked_cell(quick: bool) -> Tuple[int, Callable[[], object]]:
    """One rank's near-field binning at the preset's silica scale: targets
    in a ``(n/P)``-particle subdomain, sources adding the rc ghost shell."""
    from repro.solvers.p2nfft.linked_cell import LinkedCellNearField
    from repro.solvers.p2nfft.tuning import optimize_cutoff, suggest_cutoff

    n, P = _preset_scale(quick)
    edge = 248.0 * (n / 829_440.0) ** (1.0 / 3.0)
    box = np.full(3, edge)
    try:
        rc = optimize_cutoff(box, n, 1e-3)
    except ValueError:
        rc = suggest_cutoff(box, n)
    lc = LinkedCellNearField(box, np.zeros(3), rc, 1.0)

    rng = np.random.default_rng(11)
    sub = edge / round(P ** (1.0 / 3.0))
    nt = max(n // P, 1)
    halo = sub + 2.0 * rc
    ns_count = max(int(round(nt * (halo / sub) ** 3)), nt)
    tpos = rng.random((nt, 3)) * sub
    spos = rng.random((ns_count, 3)) * halo - rc

    t_cells = lc.cell_ids(tpos)
    s_cells = lc.cell_ids(spos)
    t_sorted = t_cells[np.argsort(t_cells, kind="stable")]
    s_sorted = s_cells[np.argsort(s_cells, kind="stable")]
    cells, t_first = np.unique(t_sorted, return_index=True)
    t_last = np.concatenate((t_first[1:], [t_sorted.shape[0]]))
    cz = cells % lc.dims[2]
    cy = (cells // lc.dims[2]) % lc.dims[1]
    cx = cells // (lc.dims[1] * lc.dims[2])
    args = (t_first, t_last, s_sorted, cx, cy, cz, ns_count)

    ti, si = lc.candidate_pairs(*args)
    with instrument.reference_mode():
        rti, rsi = lc.candidate_pairs(*args)
    assert np.array_equal(ti, rti) and np.array_equal(si, rsi)
    return int(ti.shape[0]), lambda: lc.candidate_pairs(*args)


def _bench_derivative_tensors(quick: bool) -> Tuple[int, Callable[[], object]]:
    """The default FMM M2L table build: 316 lattice displacements at
    ``order = 2p`` (the tuner picks p = 5 at accuracy 1e-3)."""
    from repro.solvers.fmm.expansions import derivative_tensors, multi_index_set

    order = 10
    m = 64 if quick else 316
    rng = np.random.default_rng(7)
    # interaction-list displacements: lattice offsets at separation >= 2
    pts = rng.uniform(-4.0, 4.0, (m, 3))
    pts[np.abs(pts).max(axis=1) < 2.0] += np.sign(pts[np.abs(pts).max(axis=1) < 2.0]) * 2.0
    a = derivative_tensors(pts, order)
    with instrument.reference_mode():
        b = derivative_tensors(pts, order)
    assert np.array_equal(a, b)
    ops = m * multi_index_set(order).ncoef
    return int(ops), lambda: derivative_tensors(pts, order)


def _resort_problem(quick: bool):
    """A method-B style banded (brownian-local) resort problem plus three
    mixed columns at the preset scale."""
    from repro.core.plan import ResortPlan
    from repro.core.resort import pack_resort_index
    from repro.simmpi.machine import Machine

    n, P = _preset_scale(quick)
    rng = np.random.default_rng(17)
    counts = rng.multinomial(n, np.ones(P) / P).astype(np.int64)
    off = np.concatenate(([0], np.cumsum(counts)))
    perm = np.arange(n)
    w = max(2 * (n // P), 1)
    for s in range(0, n, w):
        seg = perm[s : s + 2 * w].copy()
        rng.shuffle(seg)
        perm[s : s + 2 * w] = seg
    tgt_rank = np.searchsorted(off[1:], perm, side="right")
    tgt_pos = perm - off[tgt_rank]
    idx = [
        pack_resort_index(
            tgt_rank[off[r] : off[r + 1]], tgt_pos[off[r] : off[r + 1]]
        )
        for r in range(P)
    ]
    cols = [
        [rng.standard_normal((int(counts[r]), 3)) for r in range(P)],
        [rng.standard_normal(int(counts[r])) for r in range(P)],
        [rng.integers(0, 1 << 40, int(counts[r])) for r in range(P)],
    ]
    counts_l = [int(c) for c in counts]
    return Machine, ResortPlan, idx, counts_l, cols


def _bench_resort_compile(quick: bool) -> Tuple[int, Callable[[], object]]:
    """Plan compilation (``ResortPlan.__init__``) at preset scale."""
    Machine, ResortPlan, idx, counts, _cols = _resort_problem(quick)
    P = len(counts)

    def build():
        return ResortPlan(Machine(P), idx, counts, counts)

    return int(sum(counts)), build


def _bench_resort_execute(quick: bool) -> Tuple[int, Callable[[], object]]:
    """Plan execution (fused three-column exchange) at preset scale."""
    Machine, ResortPlan, idx, counts, cols = _resort_problem(quick)
    plan = ResortPlan(Machine(len(counts)), idx, counts, counts)
    out = plan.execute(cols)
    with instrument.reference_mode():
        ref = plan.execute(cols)
    for c in range(len(cols)):
        for r in range(len(counts)):
            assert np.array_equal(out[c][r], ref[c][r])
    record_bytes = 8 * 3 + 8 + 8
    return int(sum(counts)) * record_bytes, lambda: plan.execute(cols)


def _bench_partition_destinations(quick: bool) -> Tuple[int, Callable[[], object]]:
    """Destination assignment of the global sample-sort order."""
    from repro.sorting.partition_sort import partition_destinations

    n, P = _preset_scale(quick)
    rng = np.random.default_rng(23)
    order = rng.permutation(n).astype(np.int64)
    counts = rng.multinomial(n, np.ones(P) / P).astype(np.int64)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    a = partition_destinations(order, bounds)
    with instrument.reference_mode():
        b = partition_destinations(order, bounds)
    assert np.array_equal(a, b)
    return int(n), lambda: partition_destinations(order, bounds)


def _bench_partition_split(quick: bool) -> Tuple[int, Callable[[], object]]:
    """One rank's partition split: preset-scale local block scattered to
    up to P destinations."""
    from repro.core.particles import ColumnBlock
    from repro.sorting.partition_sort import split_by_destination

    n, P = _preset_scale(quick)
    rows = max(n // P, 1)
    rng = np.random.default_rng(29)
    block = ColumnBlock(
        key=rng.integers(0, 1 << 60, rows).astype(np.uint64),
        pos=rng.standard_normal((rows, 3)),
        q=rng.standard_normal(rows),
        index=rng.integers(0, 1 << 40, rows),
    )
    d = rng.integers(0, P, rows)
    a = split_by_destination(block, d)
    with instrument.reference_mode():
        b = split_by_destination(block, d)
    assert list(a) == list(b)
    for dst in a:
        for pa, pb in zip(a[dst].payload(), b[dst].payload()):
            assert np.array_equal(pa, pb)
    return int(rows), lambda: split_by_destination(block, d)


#: name -> (input builder, repeats at default scale, repeats at quick scale)
KERNEL_BENCHES: Dict[str, Tuple[Callable[[bool], Tuple[int, Callable]], int, int]] = {
    "pairs.ragged_cross": (_bench_ragged_cross, 9, 15),
    "linked_cell.candidate_pairs": (_bench_linked_cell, 9, 15),
    "fmm.derivative_tensors": (_bench_derivative_tensors, 9, 15),
    "resort_plan.compile": (_bench_resort_compile, 5, 9),
    "resort_plan.execute": (_bench_resort_execute, 5, 9),
    "partition_sort.destinations": (_bench_partition_destinations, 9, 15),
    "partition_sort.split": (_bench_partition_split, 9, 15),
}


def run_kernel_benches(quick: bool = False, verbose: bool = True) -> Dict[str, KernelResult]:
    results: Dict[str, KernelResult] = {}
    for name, (builder, rep_default, rep_quick) in KERNEL_BENCHES.items():
        ops, thunk = builder(quick)
        res = _measure(name, ops, thunk, rep_quick if quick else rep_default)
        results[name] = res
        if verbose:
            print(
                f"  {name:32s} vec {res.vec_ns / 1e6:9.3f} ms   "
                f"ref {res.ref_ns / 1e6:9.3f} ms   speedup {res.speedup:5.2f}x"
            )
    return results


# ----------------------------------------------------------------- end-to-end


def run_fig7_wall(
    quick: bool = False, verbose: bool = True, backend: Optional[str] = None
) -> Dict:
    """Wall-time the Fig. 7 experiment end-to-end (modeled results unused).

    With ``backend`` (e.g. ``"process"`` / ``"process:4"``) the four
    independent (solver, method) cells additionally run fanned out over the
    engine's workers; the serial run is always measured as the speedup
    reference, the two results are asserted equal, and the report carries
    both timings plus ``host_cpus`` — a 1-core host cannot show a speedup
    no matter the worker count, and the report must say so honestly.
    """
    import os

    from repro.bench.figures import fig7

    preset = "quick" if quick else "default"
    t0 = time.perf_counter_ns()
    serial = fig7(preset, quiet=True)
    wall_ns = time.perf_counter_ns() - t0
    if verbose:
        print(f"  fig7 --preset {preset}: {wall_ns / 1e9:.2f} s wall (serial)")
    out = {
        "preset": preset,
        "wall_ns": int(wall_ns),
        "wall_s": wall_ns / 1e9,
        "host_cpus": os.cpu_count(),
    }
    if backend is not None:
        from repro.backend import resolve_backend

        engine = resolve_backend(backend)
        engine_desc = f"{engine.name}:{engine.workers}" if engine.workers else engine.name
        t0 = time.perf_counter_ns()
        parallel = fig7(preset, quiet=True, backend=engine)
        backend_ns = time.perf_counter_ns() - t0
        if parallel != serial:
            raise AssertionError(
                f"fig7 under backend {engine_desc} diverged from the serial run"
            )
        speedup = wall_ns / backend_ns if backend_ns else float("inf")
        out["backend"] = {
            "engine": engine.name,
            "workers": engine.workers,
            "wall_ns": int(backend_ns),
            "wall_s": backend_ns / 1e9,
            "speedup_vs_serial": speedup,
            "results_identical": True,
        }
        if verbose:
            print(
                f"  fig7 --preset {preset}: {backend_ns / 1e9:.2f} s wall "
                f"({engine_desc}; {speedup:.2f}x vs serial on "
                f"{out['host_cpus']} host cpu(s))"
            )
    return out


def run_phase_profile(
    quick: bool = False, verbose: bool = True, algos: Optional[str] = None
) -> Dict:
    """Modeled seconds vs host wall seconds per simulated phase.

    Runs a short method-B P2NFFT trajectory (the Fig. 7 configuration at
    reduced step count) under wall-phase attribution and kernel collection;
    the returned profile carries, per phase, the modeled virtual-clock
    seconds next to the attributed host nanoseconds and net allocated
    bytes — the tentpole observability deliverable.

    ``algos`` routes the trajectory's collectives through the named staged
    algorithm engines (:mod:`repro.simmpi.algos` spec grammar), shifting the
    modeled phase seconds; physics and host wall attribution semantics are
    unchanged.  The fig7 experiment never takes this knob — its serial-vs-
    backend identity assertion is baseline-gated.
    """
    from repro.bench.harness import PRESETS, make_machine, make_system
    from repro.md.simulation import Simulation, SimulationConfig
    from repro.simmpi.costmodel import JUROPA

    scale = PRESETS["quick"]  # profile stays CI-sized at every preset
    steps = 2
    machine = make_machine(scale.nprocs, JUROPA)
    system = make_system(scale.n, scale.seed)
    subdomain = float(system.box.min()) / round(scale.nprocs ** (1.0 / 3.0))
    cfg = SimulationConfig(
        solver="p2nfft",
        method="B",
        distribution="random",
        seed=scale.seed,
        dynamics="brownian",
        brownian_step=0.005 * subdomain,
        solver_kwargs={"compute": "skip"},
        collective_algos=algos,
    )
    with instrument.collect(trace_alloc=True) as registry:
        with instrument.wall_phases():
            sim = Simulation(machine, system, cfg)
            sim.run(steps)
        kernels = {k: dataclasses.asdict(v) for k, v in registry.items()}
    phases = {}
    for name, st in machine.trace.snapshot().items_sorted():
        phases[name] = {
            "modeled_s": st.time,
            "wall_ns": st.wall_ns,
            "wall_s": st.wall_ns / 1e9,
            "alloc_bytes": st.alloc_bytes,
            "calls": st.calls,
        }
    if verbose:
        total_modeled = sum(p["modeled_s"] for p in phases.values())
        total_wall = sum(p["wall_s"] for p in phases.values())
        print(
            f"  phase profile ({len(phases)} phases): modeled "
            f"{total_modeled:.4f} s vs host {total_wall:.2f} s"
        )
    return {
        "config": {
            "solver": "p2nfft",
            "method": "B",
            "n": scale.n,
            "nprocs": scale.nprocs,
            "steps": steps,
            "collective_algos": algos or "direct",
        },
        "phases": phases,
        "recorded_kernels": kernels,
    }


# -------------------------------------------------------------------- report


def build_report(
    quick: bool = False,
    *,
    with_fig7: bool = True,
    verbose: bool = True,
    backend: Optional[str] = None,
    algos: Optional[str] = None,
) -> Dict:
    preset = "quick" if quick else "default"
    if verbose:
        print(f"repro.perf: kernel benches at {preset}-preset shapes")
    kernels = run_kernel_benches(quick, verbose)
    report = {
        "schema": "repro.perf/wallclock-v1",
        "preset": preset,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "kernels": {k: v.to_json() for k, v in kernels.items()},
    }
    if with_fig7:
        report["fig7"] = run_fig7_wall(quick, verbose, backend=backend)
    report["phase_profile"] = run_phase_profile(quick, verbose, algos=algos)
    return report


def check_against_baseline(
    report: Dict, baseline: Dict, tolerance: float = GATE_TOLERANCE
) -> List[str]:
    """Speedup-ratio regression check; returns failure messages (empty = pass).

    A kernel fails when its measured speedup drops more than ``tolerance``
    (relative) below the committed baseline speedup for the same preset.
    Kernels present only on one side are reported as failures too, so the
    baseline can't silently drift out of sync with the bench set.
    """
    failures: List[str] = []
    entry = baseline.get("presets", {}).get(report["preset"])
    if entry is None:
        return [f"baseline has no entry for preset {report['preset']!r}"]
    base_kernels = entry.get("kernels", {})
    seen = set()
    for name, res in report["kernels"].items():
        base = base_kernels.get(name)
        if base is None:
            failures.append(f"{name}: missing from baseline (run --update-baseline)")
            continue
        seen.add(name)
        floor = base["speedup"] * (1.0 - tolerance)
        if res["speedup"] < floor:
            failures.append(
                f"{name}: speedup {res['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base['speedup']:.2f}x - {tolerance:.0%})"
            )
    for name in base_kernels:
        if name not in seen:
            failures.append(f"{name}: in baseline but no longer benched")
    return failures


def baseline_from_report(report: Dict, existing: Optional[Dict] = None) -> Dict:
    """Merge a report's speedups into (a copy of) the baseline structure."""
    base = {"schema": "repro.perf/baseline-v1", "presets": {}}
    if existing:
        base["presets"].update(existing.get("presets", {}))
    base["presets"][report["preset"]] = {
        "kernels": {
            name: {"speedup": round(res["speedup"], 3)}
            for name, res in report["kernels"].items()
        }
    }
    return base


def write_json(path: str, payload: Dict) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
