"""Command-line wall-clock benchmark runner.

    PYTHONPATH=src python -m repro.perf [--quick] [--update-baseline]
        [--out BENCH_wallclock.json] [--baseline benchmarks/baseline_wallclock.json]
        [--no-fig7] [--tolerance 0.25] [--backend process[:N]] [--workers N]
        [--algos SPEC]

Benches every vectorized kernel against its retained scalar oracle at the
selected preset's call shapes, wall-times the Fig. 7 experiment end to end,
profiles modeled-vs-host time per simulated phase, writes the JSON report
and gates the kernel *speedup ratios* against the committed baseline
(exit 1 on a >25 % relative regression).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.perf.harness import (
    GATE_TOLERANCE,
    baseline_from_report,
    build_report,
    check_against_baseline,
    write_json,
)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.perf", description=__doc__.splitlines()[0]
    )
    ap.add_argument(
        "--quick",
        action="store_true",
        help="bench at the quick preset's shapes (CI smoke scale)",
    )
    ap.add_argument(
        "--out",
        default="BENCH_wallclock.json",
        help="report output path (default: BENCH_wallclock.json)",
    )
    ap.add_argument(
        "--baseline",
        default=os.path.join("benchmarks", "baseline_wallclock.json"),
        help="committed speedup-ratio baseline to gate against",
    )
    ap.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run instead of gating",
    )
    ap.add_argument(
        "--no-fig7",
        action="store_true",
        help="skip the end-to-end fig7 wall timing",
    )
    ap.add_argument(
        "--backend",
        default=None,
        metavar="ENGINE",
        help="additionally wall-time fig7 over an execution backend "
        "('process' or 'process:N'); records per-backend wall and speedup",
    )
    ap.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for --backend process (shorthand for process:N)",
    )
    ap.add_argument(
        "--algos",
        default=None,
        metavar="SPEC",
        help="run the phase profile with staged collective algorithms "
        "(repro.simmpi.algos spec, e.g. 'bruck' or 'alltoallv=pairwise'); "
        "fig7 and the kernel gates always run at the direct baseline",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=GATE_TOLERANCE,
        help="maximum tolerated relative speedup regression (default 0.25)",
    )
    args = ap.parse_args(argv)

    backend = args.backend
    if args.workers is not None:
        if backend is None:
            ap.error("--workers requires --backend")
        backend = f"{backend.partition(':')[0]}:{args.workers}"

    report = build_report(
        args.quick, with_fig7=not args.no_fig7, backend=backend, algos=args.algos
    )
    write_json(args.out, report)
    print(f"wrote {args.out}")

    existing = None
    if os.path.exists(args.baseline):
        with open(args.baseline) as fh:
            existing = json.load(fh)

    if args.update_baseline:
        write_json(args.baseline, baseline_from_report(report, existing))
        print(f"updated {args.baseline}")
        return 0

    if existing is None:
        print(
            f"no baseline at {args.baseline}; run with --update-baseline to create it",
            file=sys.stderr,
        )
        return 1
    failures = check_against_baseline(report, existing, args.tolerance)
    if failures:
        print("speedup regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(
        f"speedup gate passed ({len(report['kernels'])} kernels within "
        f"{args.tolerance:.0%} of baseline)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
