"""``python -m repro.obs`` — run a scenario with the recorder attached and
emit the trace artifacts.

Runs a fig7-style coupled simulation (random initial distribution, brownian
drift, modeled compute skipped), writes

* ``trace.json`` — Chrome ``trace_event`` JSON; open in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``,
* ``spans.ndjson`` — the deterministic NDJSON span/metric snapshot,

and prints a per-rank timeline summary plus the per-phase attribution table
of the paper's figure decompositions (sort/restore/resort/total).  The
process exits non-zero if the span stream fails to reproduce the trace's
per-phase aggregates bit-for-bit — the CLI doubles as the subsystem's
self-check.

Chaos/DST runs are tagged: ``--chaos-seed N`` applies
``Perturbation.sample(N)`` to the machine and stamps the seed and the
perturbation description into both artifacts' metadata.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.export import write_chrome_trace, write_ndjson
from repro.obs.spans import enable_observability

__all__ = ["main", "run_scenario"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="run an observed scenario and export span/metric artifacts",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke scenario (8 ranks, 1024 particles, 2 steps)",
    )
    parser.add_argument("--solver", default="fmm", help="solver name (default: fmm)")
    parser.add_argument(
        "--method", default="B", help="redistribution method (default: B)"
    )
    parser.add_argument("--nprocs", type=int, default=16, help="virtual ranks")
    parser.add_argument("--particles", type=int, default=4096, help="particle count")
    parser.add_argument("--steps", type=int, default=3, help="time steps")
    parser.add_argument(
        "--chaos-seed", type=int, default=None, metavar="N",
        help="apply the DST chaos harness perturbation sampled from seed N",
    )
    parser.add_argument(
        "--reference", action="store_true",
        help="route vectorized kernels through their scalar oracles",
    )
    parser.add_argument(
        "--capacity", type=int, default=1 << 20,
        help="per-rank span ring capacity (default: 1Mi spans)",
    )
    parser.add_argument(
        "--no-per-rank", action="store_true",
        help="record only the machine-wide critical-path stream",
    )
    parser.add_argument(
        "--out-dir", default=".", metavar="DIR",
        help="directory for trace.json / spans.ndjson (default: .)",
    )
    return parser


def run_scenario(args: argparse.Namespace) -> int:
    from repro.bench.harness import make_machine, make_system, step_breakdown
    from repro.md.simulation import Simulation, SimulationConfig
    from repro.perf import instrument
    from repro.simmpi.chaos import Perturbation
    from repro.simmpi.costmodel import JUROPA

    nprocs = 8 if args.quick else args.nprocs
    n = 1024 if args.quick else args.particles
    steps = 2 if args.quick else args.steps

    perturbation: Optional[Perturbation] = None
    if args.chaos_seed is not None:
        perturbation = Perturbation.sample(args.chaos_seed)

    machine = make_machine(nprocs, JUROPA, perturbation=perturbation)
    recorder = enable_observability(
        machine, capacity=args.capacity, per_rank=not args.no_per_rank
    )
    system = make_system(n, seed=1)
    subdomain = float(system.box.min()) / round(nprocs ** (1.0 / 3.0))
    config = SimulationConfig(
        solver=args.solver,
        method=args.method,
        distribution="random",
        seed=1,
        dynamics="brownian",
        brownian_step=0.005 * subdomain,
        solver_kwargs={"compute": "skip"},
        perturbation=perturbation,
    )
    sim = Simulation(machine, system, config)
    if args.reference:
        with instrument.reference_mode():
            sim.run(steps)
    else:
        sim.run(steps)

    meta: Dict[str, Any] = {
        "scenario": "fig7-step",
        "solver": args.solver,
        "method": args.method,
        "nprocs": nprocs,
        "particles": n,
        "steps": steps,
        "mode": "reference" if args.reference else "vectorized",
    }
    if perturbation is not None:
        meta["chaos_seed"] = args.chaos_seed
        meta["perturbation"] = perturbation.describe()

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = out_dir / "trace.json"
    ndjson_path = out_dir / "spans.ndjson"
    write_chrome_trace(trace_path, recorder, meta=meta)
    write_ndjson(ndjson_path, recorder, meta=meta)

    ok = _report(machine, recorder, sim, step_breakdown)
    print(f"\nwrote {trace_path} ({recorder.span_count()} spans) and {ndjson_path}")
    print("open the trace in Perfetto: https://ui.perfetto.dev  (Open trace file)")
    if not ok:
        print("FAILED: span sums diverge from the trace aggregates", file=sys.stderr)
        return 1
    return 0


def _report(machine, recorder, sim, step_breakdown) -> bool:
    """Print the timeline/attribution tables; return span/trace parity."""
    trace = machine.trace

    print(f"== per-rank timeline ({machine.nprocs} ranks, "
          f"{machine.elapsed():.3e}s virtual) ==")
    busy = recorder.rank_busy()
    elapsed = machine.elapsed()
    if busy:
        for rank in sorted(busy):
            b = busy[rank]
            util = b / elapsed if elapsed > 0 else 0.0
            nspans = recorder.span_count(rank)
            print(f"  rank {rank:>3}: {nspans:>6} spans, busy {b:.3e}s "
                  f"({util:6.1%}), clock {machine.clocks[rank]:.3e}s")
    else:
        print("  (per-rank streams disabled)")

    print("\n== phase attribution (modeled seconds; span sums vs trace) ==")
    sums = recorder.phase_sums()
    ok = recorder.complete
    labels = sorted(set(trace.labels()) | set(sums))
    header = f"  {'phase':<14} {'calls':>6} {'time':>12} {'messages':>9} " \
             f"{'bytes':>12}  span parity"
    print(header)
    for label in labels:
        stats = trace.phase(label)
        span = sums.get(label, {"time": 0.0, "messages": 0, "bytes": 0, "calls": 0})
        match = (
            span["time"] == stats.time
            and span["messages"] == stats.messages
            and span["bytes"] == stats.bytes
            and span["calls"] == stats.calls
        )
        if stats.calls == 0 and span["calls"] == 0:
            match = True
        ok = ok and match
        print(f"  {label:<14} {stats.calls:>6} {stats.time:>12.4e} "
              f"{stats.messages:>9} {stats.bytes:>12}  "
              f"{'bit-exact' if match else 'DIVERGED'}")

    print("\n== paper figure decomposition (per step) ==")
    print(f"  {'step':>4} {'sort':>12} {'restore':>12} {'resort':>12} "
          f"{'redist':>12} {'total':>12}")
    for rec in sim.records:
        b = step_breakdown(rec)
        print(f"  {rec.step:>4} {b['sort']:>12.4e} {b['restore']:>12.4e} "
              f"{b['resort']:>12.4e} {b['redist']:>12.4e} {b['total']:>12.4e}")

    print("\n== metrics ==")
    for sample in recorder.metrics.samples():
        label_str = ",".join(f"{k}={v}" for k, v in sorted(sample["labels"].items()))
        name = sample["name"] + (f"{{{label_str}}}" if label_str else "")
        if sample["type"] == "histogram":
            print(f"  {name:<40} count={sample['count']} sum={sample['sum']:.0f}")
        else:
            print(f"  {name:<40} {sample['value']}")
    return ok


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    return run_scenario(args)
