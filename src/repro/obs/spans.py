"""Span-based structured tracing over the simulated machine.

Every cost the :class:`~repro.simmpi.machine.Machine` charges — clock
advances, collectives, point-to-point rounds, SPMD sends/receives — emits a
:class:`Span` into a bounded per-rank ring buffer when an
:class:`ObsRecorder` is attached (``machine.obs``, mirroring the
``machine.auditor`` attachment pattern).  Higher layers add *section* spans
(solver runs, simulation steps, plan compiles/executions) and *mark* spans
(balance triggers), giving the flat charge stream a tree structure.

Span taxonomy
-------------
``kind="charge"``
    One trace charge, recorded on the machine-wide critical path
    (``rank == MACHINE_RANK``).  ``time`` carries the *exact* float the
    charge site reported into :meth:`Trace.record
    <repro.simmpi.tracing.Trace.record>`, in the same call order — so
    folding the charge spans per phase reproduces the trace aggregates
    bit-for-bit (the ``span-accounting`` invariant and the golden NDJSON
    tests pin this).
``kind="rank"``
    The per-rank view of a charge: one span per rank whose local clock
    moved, anchored to that rank's clock interval.  Rank clocks lag the
    machine maximum, so rank spans are *not* time-contained in their parent
    section — containment is a critical-path property (see
    docs/observability.md).
``kind="section"``
    A structural span opened/closed around a region (``fcs.run``, ``step``,
    ``resort_plan.compile``...).  Appended to the buffer at close, so
    children precede their parent in stream order; the tree is rebuilt via
    ``id``/``parent``.
``kind="mark"``
    An instantaneous event (zero duration), e.g. a balance trigger.

The recorder is **opt-in and cost-free when absent**: every hot-path hook is
an ``is not None`` check, so a run without a recorder is byte-identical to a
run on a build without the observability layer at all.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "MACHINE_RANK",
    "ROOT_SPAN",
    "Span",
    "ObsRecorder",
    "enable_observability",
    "machine_span",
]

#: pseudo-rank of machine-wide (critical-path) spans
MACHINE_RANK = -1

#: parent id of top-level spans
ROOT_SPAN = -1


@dataclasses.dataclass(frozen=True)
class Span:
    """One observed interval: ``(rank, phase, parent, t_start, t_end, attrs)``.

    ``time`` is the span's attributed duration; for ``kind="charge"`` it is
    the exact critical-path seconds charged into the trace (``t_end -
    t_start`` up to float rounding — ``time`` is authoritative for sums).
    """

    id: int
    parent: int
    rank: int
    phase: str
    op: str
    kind: str
    t_start: float
    t_end: float
    time: float
    messages: int = 0
    nbytes: int = 0
    attrs: Tuple[Tuple[str, Any], ...] = ()

    def attrs_dict(self) -> Dict[str, Any]:
        return dict(self.attrs)


def _freeze_attrs(attrs: Optional[Dict[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    if not attrs:
        return ()
    return tuple(sorted(attrs.items()))


class ObsRecorder:
    """Bounded per-rank span buffers plus a live metrics registry.

    Attach with :func:`enable_observability`; every buffer is a ring of
    ``capacity`` spans (oldest spans are dropped, counted per rank in
    :attr:`dropped`).  ``per_rank=False`` records only the machine-wide
    stream, halving the per-charge overhead for large machines.
    """

    def __init__(
        self,
        machine,
        *,
        capacity: int = 65536,
        per_rank: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.machine = machine
        self.nprocs = int(machine.nprocs)
        self.capacity = int(capacity)
        self.per_rank = bool(per_rank)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._rings: Dict[int, deque] = {MACHINE_RANK: deque(maxlen=self.capacity)}
        if self.per_rank:
            for r in range(self.nprocs):
                self._rings[r] = deque(maxlen=self.capacity)
        self._dropped: Dict[int, int] = {}
        self._ids = itertools.count(1)
        self._stack: List[int] = []
        #: True while the recorder observed *every* charge since the trace
        #: was last empty — the precondition for bit-for-bit span/trace
        #: parity (cleared when attached to a machine that already charged)
        self.complete_from_start = (
            machine.trace.total_time() == 0.0
            and machine.trace.total_messages() == 0
        )

    # -- low-level append ------------------------------------------------------

    def _append(self, rank: int, span: Span) -> None:
        ring = self._rings[rank]
        if len(ring) == ring.maxlen:
            self._dropped[rank] = self._dropped.get(rank, 0) + 1
        ring.append(span)

    def _parent(self) -> int:
        return self._stack[-1] if self._stack else ROOT_SPAN

    # -- charge hooks (called by simmpi hot paths) -----------------------------

    def on_charge(
        self,
        phase: Optional[str],
        op: str,
        time: float,
        t_start: float,
        t_end: float,
        messages: int,
        nbytes: int,
        rank_before: Optional[np.ndarray],
        clocks: np.ndarray,
    ) -> None:
        """Record one trace charge: a machine-wide ``charge`` span carrying
        the exact charged ``time``, plus per-rank ``rank`` spans for every
        rank whose clock moved (when ``per_rank``)."""
        label = phase if phase is not None else "other"
        self._append(
            MACHINE_RANK,
            Span(
                id=next(self._ids),
                parent=self._parent(),
                rank=MACHINE_RANK,
                phase=label,
                op=op,
                kind="charge",
                t_start=t_start,
                t_end=t_end,
                time=time,
                messages=messages,
                nbytes=nbytes,
            ),
        )
        if rank_before is not None and self.per_rank:
            parent = self._parent()
            for r in range(self.nprocs):
                delta = clocks[r] - rank_before[r]
                if delta != 0.0:
                    self._append(
                        r,
                        Span(
                            id=next(self._ids),
                            parent=parent,
                            rank=r,
                            phase=label,
                            op=op,
                            kind="rank",
                            t_start=float(rank_before[r]),
                            t_end=float(clocks[r]),
                            time=float(delta),
                        ),
                    )
        m = self.metrics
        if messages:
            m.counter("comm.messages", phase=label).inc(messages)
        if nbytes:
            m.counter("comm.bytes", phase=label).inc(nbytes)
            m.histogram("comm.payload_nbytes").observe(nbytes)

    def on_rank_charge(
        self,
        phase: Optional[str],
        op: str,
        time: float,
        rank: int,
        rank_t_start: float,
        rank_t_end: float,
        t_end: float,
        messages: int = 0,
        nbytes: int = 0,
    ) -> None:
        """Record a charge originating on a single rank (SPMD send/recv):
        the machine-wide ``charge`` span for trace parity plus the one
        rank-local span."""
        label = phase if phase is not None else "other"
        self._append(
            MACHINE_RANK,
            Span(
                id=next(self._ids),
                parent=self._parent(),
                rank=MACHINE_RANK,
                phase=label,
                op=op,
                kind="charge",
                t_start=t_end - time,
                t_end=t_end,
                time=time,
                messages=messages,
                nbytes=nbytes,
            ),
        )
        if self.per_rank and rank_t_end != rank_t_start:
            self._append(
                rank,
                Span(
                    id=next(self._ids),
                    parent=self._parent(),
                    rank=rank,
                    phase=label,
                    op=op,
                    kind="rank",
                    t_start=rank_t_start,
                    t_end=rank_t_end,
                    time=rank_t_end - rank_t_start,
                ),
            )
        m = self.metrics
        if messages:
            m.counter("comm.messages", phase=label).inc(messages)
        if nbytes:
            m.counter("comm.bytes", phase=label).inc(nbytes)
            m.histogram("comm.payload_nbytes").observe(nbytes)

    # -- structural spans ------------------------------------------------------

    @contextmanager
    def span(self, phase: str, *, op: str = "section", **attrs):
        """Open a structural span around a region of virtual time.

        The span is appended when the region closes; spans emitted inside
        the region carry its id as ``parent``.
        """
        sid = next(self._ids)
        parent = self._parent()
        t0 = self.machine.elapsed()
        self._stack.append(sid)
        try:
            yield sid
        finally:
            self._stack.pop()
            t1 = self.machine.elapsed()
            self._append(
                MACHINE_RANK,
                Span(
                    id=sid,
                    parent=parent,
                    rank=MACHINE_RANK,
                    phase=phase,
                    op=op,
                    kind="section",
                    t_start=t0,
                    t_end=t1,
                    time=t1 - t0,
                    attrs=_freeze_attrs(attrs),
                ),
            )

    def mark(self, phase: str, *, op: str = "mark", **attrs) -> None:
        """Record an instantaneous event at the current virtual time."""
        t = self.machine.elapsed()
        self._append(
            MACHINE_RANK,
            Span(
                id=next(self._ids),
                parent=self._parent(),
                rank=MACHINE_RANK,
                phase=phase,
                op=op,
                kind="mark",
                t_start=t,
                t_end=t,
                time=0.0,
                attrs=_freeze_attrs(attrs),
            ),
        )

    # -- read API --------------------------------------------------------------

    def ranks(self) -> List[int]:
        """Buffered ranks in deterministic order (machine stream first)."""
        return [MACHINE_RANK] + [r for r in range(self.nprocs) if r in self._rings]

    def spans(self, rank: Optional[int] = None) -> Iterator[Span]:
        """Iterate spans — one rank's stream, or all streams in rank order."""
        if rank is not None:
            yield from self._rings[rank]
            return
        for r in self.ranks():
            yield from self._rings[r]

    def span_count(self, rank: Optional[int] = None) -> int:
        if rank is not None:
            return len(self._rings[rank])
        return sum(len(ring) for ring in self._rings.values())

    @property
    def dropped(self) -> Dict[int, int]:
        """Spans evicted from full rings, per rank (empty when none)."""
        return dict(self._dropped)

    @property
    def complete(self) -> bool:
        """Whether the machine stream still holds *every* charge observed:
        attached before the first charge and nothing evicted.  Only then do
        :meth:`phase_sums` match the trace exactly."""
        return self.complete_from_start and not self._dropped.get(MACHINE_RANK)

    def phase_sums(self) -> Dict[str, Dict[str, Any]]:
        """Fold the machine-stream charge spans back into per-phase
        aggregates ``{phase: {time, messages, bytes, calls}}``.

        Sums run in buffer (= charge) order, replaying the trace's float
        accumulation order — when :attr:`complete`, ``time`` matches
        :class:`~repro.simmpi.tracing.Trace` bit-for-bit.
        """
        sums: Dict[str, Dict[str, Any]] = {}
        for span in self._rings[MACHINE_RANK]:
            if span.kind != "charge":
                continue
            entry = sums.get(span.phase)
            if entry is None:
                entry = sums[span.phase] = {
                    "time": 0.0, "messages": 0, "bytes": 0, "calls": 0
                }
            entry["time"] += span.time
            entry["messages"] += span.messages
            entry["bytes"] += span.nbytes
            entry["calls"] += 1
        return sums

    def rank_busy(self) -> Dict[int, float]:
        """Per-rank busy seconds: summed rank-span durations."""
        out: Dict[int, float] = {}
        for r in self.ranks():
            if r == MACHINE_RANK:
                continue
            out[r] = sum(s.time for s in self._rings[r])
        return out

    def clear(self) -> None:
        """Drop all buffered spans, dropped counts and metrics (the machine
        calls this from ``reset_clocks`` so spans never outlive the trace
        they mirror)."""
        for ring in self._rings.values():
            ring.clear()
        self._dropped.clear()
        self._stack.clear()
        self.metrics.clear()
        self.complete_from_start = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ObsRecorder(nprocs={self.nprocs}, spans={self.span_count()}, "
            f"capacity={self.capacity}, dropped={sum(self._dropped.values())})"
        )


def enable_observability(
    machine,
    *,
    capacity: int = 65536,
    per_rank: bool = True,
    metrics: Optional[MetricsRegistry] = None,
) -> ObsRecorder:
    """Attach an :class:`ObsRecorder` to ``machine`` (as ``machine.obs``).

    Mirrors :func:`repro.verify.enable_auditing`: the recorder observes
    every subsequent charge; detach by setting ``machine.obs = None``.
    Attach before the first charge for bit-for-bit span/trace parity.
    """
    recorder = ObsRecorder(
        machine, capacity=capacity, per_rank=per_rank, metrics=metrics
    )
    machine.obs = recorder
    return recorder


class _NullSpan:
    """Zero-cost stand-in for :meth:`ObsRecorder.span` when no recorder is
    attached."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


def machine_span(machine, phase: str, *, op: str = "section", **attrs):
    """Structural span on ``machine``'s recorder, or a no-op context when
    none is attached — the one-liner instrumentation hook for higher layers
    (``core.plan``, ``core.handle``, ``md.simulation``)."""
    obs = getattr(machine, "obs", None)
    if obs is None:
        return _NULL_SPAN
    return obs.span(phase, op=op, **attrs)
