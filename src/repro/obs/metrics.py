"""Metrics registry: counters, gauges and histograms with a stable schema.

Names are dotted lowercase (``comm.messages``, ``resort_plan.cache_hits``,
``balance.lambda``); labels are keyword arguments with string values
(``phase="sort"``, ``solver="fmm"``).  The registry is deterministic:
:meth:`MetricsRegistry.samples` lists every instrument sorted by
``(name, labels)``, so two identical runs export identical metric tables.

Schema (the stable names fed by the subsystems)
-----------------------------------------------
``comm.messages{phase}`` / ``comm.bytes{phase}``
    point-to-point and collective traffic per trace phase (fed by the
    :class:`~repro.obs.spans.ObsRecorder` charge hooks in ``simmpi``).
``comm.payload_nbytes``
    histogram of per-charge payload sizes.
``resort_plan.compiles`` / ``.cache_hits`` / ``.executions`` /
``.fused_columns`` / ``.bytes_moved``
    the plan engine (``core.plan``/``core.handle``).
``balance.lambda`` (gauge) / ``balance.triggers`` / ``balance.rebalances``
    the load-balancing subsystem (``core.balance`` events observed by
    ``md.simulation`` and the FMM repartitioner).
``solver.runs{solver}``
    solver executions per method name (``core.handle``).
``kernel.wall_ns{kernel}`` / ``kernel.calls{kernel}``
    host wall time of instrumented kernels, merged from
    :mod:`repro.perf.instrument` via :func:`merge_kernel_stats`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BYTE_BOUNDS",
    "from_trace",
    "merge_kernel_stats",
]

#: default histogram bucket upper bounds for payload sizes (bytes)
DEFAULT_BYTE_BOUNDS = (256, 4096, 65536, 1048576, 16777216)

LabelItems = Tuple[Tuple[str, str], ...]


class Counter:
    """Monotonically increasing integer counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += int(amount)


class Gauge:
    """Last-written float value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bound cumulative histogram with sum and count."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BYTE_BOUNDS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last bucket = +inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create store of named, labeled instruments."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], Any] = {}

    def _get(self, name: str, labels: Dict[str, Any], factory, kind: str):
        key = (str(name), _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        elif type(metric).__name__.lower() != kind:
            raise TypeError(
                f"metric {name!r}{dict(key[1])} already registered as "
                f"{type(metric).__name__}, requested {kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(name, labels, Counter, "counter")

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(name, labels, Gauge, "gauge")

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None, **labels: Any
    ) -> Histogram:
        factory = (lambda: Histogram(bounds)) if bounds is not None else Histogram
        return self._get(name, labels, factory, "histogram")

    def samples(self) -> List[Dict[str, Any]]:
        """Deterministic flat export: one dict per instrument, sorted by
        ``(name, labels)``."""
        out: List[Dict[str, Any]] = []
        for (name, labels) in sorted(self._metrics):
            metric = self._metrics[(name, labels)]
            sample: Dict[str, Any] = {"name": name, "labels": dict(labels)}
            if isinstance(metric, Counter):
                sample["type"] = "counter"
                sample["value"] = metric.value
            elif isinstance(metric, Gauge):
                sample["type"] = "gauge"
                sample["value"] = metric.value
            else:
                sample["type"] = "histogram"
                sample["buckets"] = list(
                    zip(list(metric.bounds) + ["+inf"], metric.bucket_counts)
                )
                sample["count"] = metric.count
                sample["sum"] = metric.sum
            out.append(sample)
        return out

    def value(self, name: str, **labels: Any) -> Any:
        """Convenience read of one counter/gauge value (0/None if absent)."""
        key = (str(name), _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            return 0
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        return metric.count

    def clear(self) -> None:
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self._metrics)} instruments)"


def from_trace(trace) -> MetricsRegistry:
    """Build a snapshot registry from a bare :class:`Trace` — the fallback
    behind :attr:`FCS.metrics <repro.core.handle.FCS.metrics>` when no
    recorder is attached.  Trace event counters become counters; per-phase
    messages/bytes become ``comm.*{phase}`` counters."""
    registry = MetricsRegistry()
    for name, value in sorted(trace.counters().items()):
        registry.counter(name).inc(value)
    for label in trace.labels():
        stats = trace.phase(label)
        if stats.messages:
            registry.counter("comm.messages", phase=label).inc(stats.messages)
        if stats.bytes:
            registry.counter("comm.bytes", phase=label).inc(stats.bytes)
    return registry


def merge_kernel_stats(registry: MetricsRegistry, stats: Dict[str, Any]) -> None:
    """Fold a :func:`repro.perf.instrument.snapshot` into ``registry`` under
    the ``kernel.*`` names."""
    for kernel in sorted(stats):
        st = stats[kernel]
        registry.counter("kernel.wall_ns", kernel=kernel).inc(int(st.ns))
        registry.counter("kernel.calls", kernel=kernel).inc(int(st.calls))
        registry.counter("kernel.ops", kernel=kernel).inc(int(st.ops))
