"""Unified observability layer: span tracing, metrics, timeline export.

The three pieces (see docs/observability.md):

* :mod:`repro.obs.spans` — the :class:`ObsRecorder` attached to a machine
  (``enable_observability``) captures every charged cost as a span in a
  bounded per-rank ring buffer, plus structural section/mark spans from the
  higher layers.
* :mod:`repro.obs.metrics` — a deterministic counters/gauges/histograms
  registry with a stable names/labels schema, fed by ``simmpi``,
  ``core.plan``, ``core.balance`` and the solvers.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto-loadable)
  and a deterministic NDJSON snapshot format for golden tests.

``python -m repro.obs`` runs a paper-style scenario with the recorder
attached and emits the trace artifacts plus per-rank timeline and
phase-attribution tables.

The layer is strictly opt-in: without a recorder attached every hook is a
``machine.obs is None`` check and runs are byte-identical to builds without
the subsystem.
"""

from repro.obs.export import (
    read_ndjson,
    to_chrome_trace,
    to_ndjson,
    write_chrome_trace,
    write_ndjson,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_kernel_stats,
)
from repro.obs.spans import (
    MACHINE_RANK,
    ObsRecorder,
    Span,
    enable_observability,
    machine_span,
)

__all__ = [
    "MACHINE_RANK",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsRecorder",
    "Span",
    "enable_observability",
    "machine_span",
    "merge_kernel_stats",
    "read_ndjson",
    "to_chrome_trace",
    "to_ndjson",
    "write_chrome_trace",
    "write_ndjson",
]
