"""Span-stream exporters: Chrome ``trace_event`` JSON and deterministic NDJSON.

Chrome trace format
-------------------
:func:`to_chrome_trace` produces the ``trace_event`` JSON object format
(``{"traceEvents": [...]}``) loadable directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.  Virtual-machine seconds
map to trace microseconds; the machine-wide critical path renders as thread
0 ("machine (critical path)"), each virtual rank as its own thread.
Structural sections and charges are complete ("X") events; marks are instant
("i") events.

Deterministic NDJSON
--------------------
:func:`to_ndjson` writes one JSON object per line with sorted keys and no
ambient data (no timestamps, no hostnames), so identical runs produce
byte-identical snapshots — the format the golden span tests pin.  Durations
additionally carry their exact bit pattern in ``*_hex`` fields
(``float.hex``), making bit-for-bit regressions visible in diffs.  The
header line carries run metadata (rank count, perturbation/chaos seed tag,
dropped-span counts); span lines follow in stream order, then one line per
metric sample.  :func:`read_ndjson` parses a snapshot back into
``(meta, spans, metrics)`` for round-trip tests and offline tooling.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.spans import MACHINE_RANK, ObsRecorder, Span

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_ndjson",
    "write_ndjson",
    "read_ndjson",
]

NDJSON_VERSION = 1


def _dumps(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# -- Chrome trace_event ---------------------------------------------------------


def _tid(rank: int) -> int:
    """Thread id per rank: machine stream on tid 0, rank r on tid r + 1."""
    return 0 if rank == MACHINE_RANK else rank + 1


def to_chrome_trace(
    recorder: ObsRecorder, *, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Render the span buffers as a Chrome ``trace_event`` JSON object."""
    events: List[Dict[str, Any]] = [
        {
            "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
            "args": {"name": "repro virtual machine"},
        },
        {
            "ph": "M", "pid": 0, "tid": 0, "name": "thread_name",
            "args": {"name": "machine (critical path)"},
        },
    ]
    for rank in recorder.ranks():
        if rank == MACHINE_RANK:
            continue
        events.append(
            {
                "ph": "M", "pid": 0, "tid": _tid(rank), "name": "thread_name",
                "args": {"name": f"rank {rank}"},
            }
        )
    for span in recorder.spans():
        args: Dict[str, Any] = {"op": span.op, "kind": span.kind}
        if span.messages:
            args["messages"] = span.messages
        if span.nbytes:
            args["bytes"] = span.nbytes
        args.update(span.attrs_dict())
        event: Dict[str, Any] = {
            "pid": 0,
            "tid": _tid(span.rank),
            "name": span.phase,
            "cat": span.kind,
            "ts": span.t_start * 1e6,
            "args": args,
        }
        if span.kind == "mark":
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = max(span.t_end - span.t_start, 0.0) * 1e6
        events.append(event)
    trace: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
    }
    return trace


def write_chrome_trace(
    path, recorder: ObsRecorder, *, meta: Optional[Dict[str, Any]] = None
) -> None:
    """Write :func:`to_chrome_trace` output to ``path`` (deterministically:
    events keep stream order, keys are sorted)."""
    with open(path, "w", encoding="utf-8") as fh:
        trace = to_chrome_trace(recorder, meta=meta)
        events = trace.pop("traceEvents")
        fh.write('{"traceEvents":[\n')
        fh.write(",\n".join(_dumps(e) for e in events))
        fh.write("\n]")
        for key in sorted(trace):
            fh.write(f",{_dumps(key)}:{_dumps(trace[key])}")
        fh.write("}\n")


# -- deterministic NDJSON -------------------------------------------------------


def _span_record(span: Span) -> Dict[str, Any]:
    rec: Dict[str, Any] = {
        "kind": span.kind,
        "id": span.id,
        "parent": span.parent,
        "rank": span.rank,
        "phase": span.phase,
        "op": span.op,
        "t_start": span.t_start,
        "t_start_hex": float(span.t_start).hex(),
        "t_end": span.t_end,
        "t_end_hex": float(span.t_end).hex(),
        "time": span.time,
        "time_hex": float(span.time).hex(),
    }
    if span.messages:
        rec["messages"] = span.messages
    if span.nbytes:
        rec["nbytes"] = span.nbytes
    if span.attrs:
        rec["attrs"] = span.attrs_dict()
    return rec


def to_ndjson(
    recorder: ObsRecorder, *, meta: Optional[Dict[str, Any]] = None
) -> List[str]:
    """Render the recorder as deterministic NDJSON lines (no trailing
    newlines)."""
    header: Dict[str, Any] = {
        "kind": "meta",
        "version": NDJSON_VERSION,
        "nprocs": recorder.nprocs,
        "capacity": recorder.capacity,
        "per_rank": recorder.per_rank,
        "complete": recorder.complete,
        "dropped": {str(r): n for r, n in sorted(recorder.dropped.items())},
        "notes": dict(recorder.machine.trace.notes()),
    }
    header.update(meta or {})
    lines = [_dumps(header)]
    for span in recorder.spans():
        lines.append(_dumps(_span_record(span)))
    for sample in recorder.metrics.samples():
        record = {"kind": "metric"}
        record.update(sample)
        lines.append(_dumps(record))
    return lines


def write_ndjson(
    path, recorder: ObsRecorder, *, meta: Optional[Dict[str, Any]] = None
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        for line in to_ndjson(recorder, meta=meta):
            fh.write(line)
            fh.write("\n")


def read_ndjson(
    lines: Iterable[str],
) -> Tuple[Dict[str, Any], List[Span], List[Dict[str, Any]]]:
    """Parse NDJSON lines (or an open file) back into ``(meta, spans,
    metrics)``.

    Span floats are restored from the ``*_hex`` fields, so a parsed span
    stream is bit-for-bit equal to the recorded one (the round-trip
    property the chaos-tagged export test asserts).
    """
    meta: Dict[str, Any] = {}
    spans: List[Span] = []
    metrics: List[Dict[str, Any]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        kind = obj.get("kind")
        if kind == "meta":
            meta = obj
        elif kind == "metric":
            metrics.append(obj)
        else:
            attrs = obj.get("attrs", {})
            spans.append(
                Span(
                    id=int(obj["id"]),
                    parent=int(obj["parent"]),
                    rank=int(obj["rank"]),
                    phase=obj["phase"],
                    op=obj["op"],
                    kind=kind,
                    t_start=float.fromhex(obj["t_start_hex"]),
                    t_end=float.fromhex(obj["t_end_hex"]),
                    time=float.fromhex(obj["time_hex"]),
                    messages=int(obj.get("messages", 0)),
                    nbytes=int(obj.get("nbytes", 0)),
                    attrs=tuple(sorted(attrs.items())),
                )
            )
    return meta, spans, metrics
