"""Per-collective algorithm engines with topology-aware staged charging.

The default collectives in :mod:`repro.simmpi.collectives` charge each call
with one closed-form LogGP formula (the ``direct`` algorithm).  This module
provides the *mechanistic* alternatives an MPI implementation actually
chooses between, executed as explicit rounds of
:func:`repro.simmpi.p2p.send_round` messages — every staged message ships
**real payload data** and is charged individually with its topology hop
distance, so the small-message/large-message crossovers between algorithms
emerge from the machine model instead of being asserted by a formula.

Algorithm matrix
----------------
===========  ==========================================================
collective   algorithms (besides ``direct`` and ``auto``)
===========  ==========================================================
alltoallv    ``pairwise`` (P−1 exchange-pair rounds, XOR schedule on
             power-of-two rank counts, ring schedule otherwise),
             ``bruck`` (⌈log₂P⌉ staged-forwarding rounds; each round
             ships every payload whose relative destination has the
             round bit set to the rank ``2^k`` ahead)
allgatherv   ``ring`` (P−1 neighbor rounds), ``recursive-doubling``
             (⌈log₂P⌉ rounds; XOR partners on powers of two, the
             dissemination variant otherwise)
allreduce    ``binomial-tree`` (reduce-up + broadcast-down, 2(P−1)
             messages), ``recursive-halving-doubling``
             (reduce-scatter + allgather on vector halves; falls back
             to ``binomial-tree`` on non-power-of-two rank counts)
bcast        ``binomial-tree``
gatherv      ``binomial-tree`` (leaves forward bundled contributions)
scatterv     ``binomial-tree`` (root pushes subtree bundles down)
===========  ==========================================================

The hard data-plane contract: **every algorithm returns bitwise-identical
results to ``direct``** on both execution backends.  Staged engines ship
the real arrays through the rounds but never reassociate reductions — the
``allreduce`` result is always computed by the canonical rank-ordered
reduction, the staged rounds only model (and really perform) the
communication.  Only modeled clocks and per-phase message/byte totals may
differ between algorithms.

``auto`` resolves per call from the message volume, the rank count and the
topology diameter using the machine's **nominal** (pre-perturbation) cost
model, so the selection is identical across chaos seeds and the DST ledger
fingerprints stay schedule-independent.

Accounting: before running its rounds an engine self-reports the planned
per-phase staged totals to the auditor (:meth:`CommAuditor
.observe_algo_collective <repro.verify.audit.CommAuditor
.observe_algo_collective>`) and then executes the rounds inside
:meth:`CommAuditor.algo_scope <repro.verify.audit.CommAuditor.algo_scope>`;
the ``collective-algo-accounting`` invariant asserts the two agree exactly
— staged forwarding must balance in the ledger.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.simmpi.machine import Machine
from repro.simmpi.collectives import Payload, payload_nbytes
from repro.simmpi.p2p import send_round

__all__ = [
    "ALGO_CHOICES",
    "CollectiveAlgos",
    "parse_algos",
    "resolve",
    "record_choice",
    "alltoallv_staged",
    "allgatherv_staged",
    "allreduce_staged",
    "bcast_staged",
    "gatherv_staged",
    "scatterv_staged",
]

#: accepted algorithm names per collective (``auto`` resolves per call)
ALGO_CHOICES: Dict[str, Tuple[str, ...]] = {
    "alltoallv": ("direct", "pairwise", "bruck", "auto"),
    "allgatherv": ("direct", "ring", "recursive-doubling", "auto"),
    "allreduce": ("direct", "binomial-tree", "recursive-halving-doubling", "auto"),
    "bcast": ("direct", "binomial-tree", "auto"),
    "gatherv": ("direct", "binomial-tree", "auto"),
    "scatterv": ("direct", "binomial-tree", "auto"),
}


@dataclasses.dataclass(frozen=True)
class CollectiveAlgos:
    """Frozen per-collective algorithm selection.

    ``"direct"`` everywhere reproduces the historical closed-form charging
    byte for byte; any other name routes that collective through the staged
    engines in this module.
    """

    alltoallv: str = "direct"
    allgatherv: str = "direct"
    allreduce: str = "direct"
    bcast: str = "direct"
    gatherv: str = "direct"
    scatterv: str = "direct"

    def __post_init__(self) -> None:
        for collective, choices in ALGO_CHOICES.items():
            algo = getattr(self, collective)
            if algo not in choices:
                raise ValueError(
                    f"unknown {collective} algorithm {algo!r}; "
                    f"choose from {', '.join(choices)}"
                )

    @property
    def is_direct(self) -> bool:
        """True when every collective uses the default ``direct`` path."""
        return all(
            getattr(self, collective) == "direct" for collective in ALGO_CHOICES
        )

    @property
    def spec(self) -> str:
        """Canonical spec string (round-trips through :func:`parse_algos`)."""
        items = [
            f"{collective}={getattr(self, collective)}"
            for collective in sorted(ALGO_CHOICES)
            if getattr(self, collective) != "direct"
        ]
        return "+".join(items) if items else "direct"


def parse_algos(spec) -> Optional[CollectiveAlgos]:
    """Parse a collective-algorithm spec.

    Grammar: ``spec := item ('+' item)*`` with ``item := NAME |
    COLLECTIVE '=' NAME``.  A bare algorithm name applies to every
    collective that supports it (``"bruck"`` means
    ``alltoallv=bruck``, ``"binomial-tree"`` selects the tree engine for
    allreduce/bcast/gatherv/scatterv, ``"auto"`` turns on per-call
    selection everywhere); explicit ``collective=name`` items pin one
    collective each, e.g. ``"alltoallv=bruck+allgatherv=ring"``.

    ``None`` and ``"direct"`` return ``None`` — the caller should leave the
    machine's default (zero-overhead) path untouched.  A
    :class:`CollectiveAlgos` instance passes through unchanged.
    """
    if spec is None:
        return None
    if isinstance(spec, CollectiveAlgos):
        return None if spec.is_direct else spec
    if not isinstance(spec, str):
        raise TypeError(f"collective_algos must be a string, got {type(spec)!r}")
    chosen: Dict[str, str] = {}
    for raw in spec.split("+"):
        item = raw.strip()
        if not item:
            raise ValueError(f"empty item in collective-algorithm spec {spec!r}")
        if "=" in item:
            collective, _, algo = item.partition("=")
            collective = collective.strip()
            algo = algo.strip()
            if collective not in ALGO_CHOICES:
                raise ValueError(
                    f"unknown collective {collective!r} in spec {spec!r}; "
                    f"choose from {', '.join(sorted(ALGO_CHOICES))}"
                )
            if algo not in ALGO_CHOICES[collective]:
                raise ValueError(
                    f"unknown {collective} algorithm {algo!r} in spec {spec!r}; "
                    f"choose from {', '.join(ALGO_CHOICES[collective])}"
                )
            if collective in chosen and chosen[collective] != algo:
                raise ValueError(
                    f"conflicting algorithms for {collective} in spec {spec!r}"
                )
            chosen[collective] = algo
        else:
            matched = [c for c, names in ALGO_CHOICES.items() if item in names]
            if not matched:
                known = sorted({n for names in ALGO_CHOICES.values() for n in names})
                raise ValueError(
                    f"unknown algorithm {item!r} in spec {spec!r}; "
                    f"choose from {', '.join(known)}"
                )
            for collective in matched:
                if collective in chosen and chosen[collective] != item:
                    raise ValueError(
                        f"conflicting algorithms for {collective} in spec {spec!r}"
                    )
                chosen[collective] = item
    algos = CollectiveAlgos(**chosen)
    return None if algos.is_direct else algos


# -- payload plumbing ---------------------------------------------------------


def _payload_cols(payload: Payload) -> Tuple[str, List[np.ndarray]]:
    """Split a payload into its container kind and flat column list."""
    if payload is None:
        return "none", []
    if isinstance(payload, np.ndarray):
        return "array", [payload]
    if isinstance(payload, tuple):
        return "tuple", list(payload)
    if isinstance(payload, list):
        return "list", list(payload)
    raise TypeError(f"unsupported payload type {type(payload)!r}")


def _rebuild_payload(kind: str, cols: List[np.ndarray]) -> Payload:
    if kind == "none":
        return None
    if kind == "array":
        return cols[0]
    if kind == "tuple":
        return tuple(cols)
    return list(cols)


def _ceil_log2(nprocs: int) -> int:
    return int(np.ceil(np.log2(nprocs))) if nprocs > 1 else 0


# -- accounting ---------------------------------------------------------------


def record_choice(machine: Machine, collective: str, algo: str) -> None:
    """Record the (possibly auto-resolved) algorithm chosen for one call."""
    auditor = machine.auditor
    if auditor is not None and hasattr(auditor, "count_algo_call"):
        auditor.count_algo_call(collective, algo)
    obs = machine.obs
    if obs is not None:
        obs.metrics.counter(
            "comm.algo.calls", collective=collective, algo=algo
        ).inc()


def _begin_staged(
    machine: Machine,
    collective: str,
    algo: str,
    phase: Optional[str],
    messages: int,
    nbytes: int,
) -> None:
    """Self-report the planned staged totals before the rounds run.

    The plan is derived from the schedule alone (payload sizes, never
    values); the auditor independently re-accounts every round inside
    :func:`_scope`, and the ``collective-algo-accounting`` invariant
    asserts the two agree exactly.
    """
    auditor = machine.auditor
    if auditor is not None and hasattr(auditor, "observe_algo_collective"):
        auditor.observe_algo_collective(collective, algo, phase, messages, nbytes)
    obs = machine.obs
    if obs is not None:
        obs.metrics.counter(
            "comm.algo.messages", collective=collective, algo=algo
        ).inc(messages)
        obs.metrics.counter(
            "comm.algo.bytes", collective=collective, algo=algo
        ).inc(nbytes)


def _scope(machine: Machine):
    auditor = machine.auditor
    if auditor is None or not hasattr(auditor, "algo_scope"):
        return contextlib.nullcontext()
    return auditor.algo_scope()


# -- auto selection -----------------------------------------------------------


def _nominal_model(machine: Machine):
    # the *pre-perturbation* model: auto selection must not depend on the
    # chaos seed, or ledgers would diverge between DST cells
    return getattr(machine, "nominal_model", None) or machine.model


def _latency_term(model, diameter: int) -> float:
    return model.overhead + model.latency + model.hop_latency * (diameter / 2.0)


def resolve(machine: Machine, collective: str, algo: str, **metrics) -> str:
    """Resolve ``algo`` (possibly ``"auto"``) to a concrete algorithm name.

    ``metrics`` carries the per-call sizing the selector needs:
    ``sends=`` for alltoallv, ``nbytes=`` (total or item bytes) for the
    other collectives.  Non-``auto`` names pass through unchanged except
    for documented fallbacks (``recursive-halving-doubling`` on a
    non-power-of-two rank count runs as ``binomial-tree``).
    """
    P = machine.nprocs
    if collective == "allreduce" and algo in ("recursive-halving-doubling", "auto"):
        if P & (P - 1) and algo == "recursive-halving-doubling":
            return "binomial-tree"
    if algo != "auto":
        return algo
    model = _nominal_model(machine)
    diam = machine.topology.diameter()
    lat = _latency_term(model, diam)
    K = _ceil_log2(P)
    if collective == "alltoallv":
        n_msgs = 0
        total = 0
        for src, targets in enumerate(metrics["sends"]):
            for dst, payload in targets.items():
                if dst != src:
                    n_msgs += 1
                    total += payload_nbytes(payload)
        if n_msgs == 0:
            return "pairwise"  # nothing ships: zero staged rounds
        fan = n_msgs / P
        vol = total / P
        o_eff = model.overhead * (1.0 + model.congestion * fan / 64.0)
        t_direct = (
            o_eff * fan
            + model.latency
            + model.hop_latency * diam / 2.0
            + vol / model.bandwidth
        )
        t_pairwise = (P - 1) * lat + vol / model.bandwidth
        # Bruck forwards ~half the accumulated items per round: log-round
        # latency bought with a log-factor bandwidth overhead
        t_bruck = K * lat + (vol * K / 2.0) / model.bandwidth
        candidates = [("bruck", t_bruck), ("pairwise", t_pairwise), ("direct", t_direct)]
    elif collective == "allgatherv":
        total = float(metrics["nbytes"])
        bw_term = (P - 1) / max(P, 1) * total / model.bandwidth
        candidates = [
            ("recursive-doubling", K * lat + bw_term),
            ("ring", (P - 1) * lat + bw_term),
        ]
    elif collective == "allreduce":
        nbytes = float(metrics["nbytes"])
        t_binomial = 2.0 * K * (lat + nbytes / model.bandwidth)
        # halving-doubling pays two posts per rank per round but only ships
        # each vector element ~twice in total
        t_rhd = 2.0 * K * (lat + model.overhead) + 2.0 * nbytes / model.bandwidth
        candidates = [("binomial-tree", t_binomial)]
        if P & (P - 1) == 0:
            candidates.append(("recursive-halving-doubling", t_rhd))
    else:
        # the rooted collectives have a single staged shape
        return "binomial-tree"
    best = min(candidates, key=lambda item: item[1])
    return best[0]


# -- alltoallv ----------------------------------------------------------------


def _charge_count_exchange(
    machine: Machine, phase: Optional[str], count_exchange: str, op: str
) -> None:
    """The dense MPI_Alltoall count exchange preceding a general
    redistribution — identical to the term the direct path folds into its
    closed-form charge."""
    if count_exchange == "dense":
        t = machine.model.bruck_alltoall_time(
            machine.nprocs, 8.0, machine.topology.diameter()
        )
        machine.advance(t * machine.comm_factor(), phase, messages=0, nbytes=0, op=op)
    elif count_exchange not in ("sparse", "cached"):
        raise ValueError(
            f"count_exchange must be 'dense', 'sparse' or 'cached', got {count_exchange!r}"
        )


def _finish_alltoallv(
    recv: List[List[Tuple[int, Payload]]], sends: Sequence[Dict[int, Payload]]
) -> List[List[Tuple[int, Payload]]]:
    """Append the (free, never-staged) self-sends and source-sort."""
    for src, targets in enumerate(sends):
        if src in targets:
            recv[src].append((src, targets[src]))
    for lst in recv:
        lst.sort(key=lambda item: item[0])
    return recv


def alltoallv_staged(
    machine: Machine,
    sends: Sequence[Dict[int, Payload]],
    phase: Optional[str],
    *,
    count_exchange: str,
    algo: str,
) -> List[List[Tuple[int, Payload]]]:
    """Staged alltoallv: ``pairwise`` or ``bruck`` rounds over ``send_round``.

    Self-sends never enter a round (local move, free — exactly like the
    direct path); the returned ``recv`` lists are bitwise- and
    order-identical to :func:`repro.simmpi.collectives.alltoallv`.
    """
    auditor = machine.auditor
    if auditor is not None:
        # the same count-table/neighborhood validation the direct path gets;
        # the ledger is fed by the staged rounds instead of the send table
        auditor.observe_alltoallv(sends, phase, count_exchange, record=False)
    machine.synchronize()
    op = f"alltoallv.{algo}"
    _charge_count_exchange(machine, phase, count_exchange, op)
    if algo == "pairwise":
        return _alltoallv_pairwise(machine, sends, phase, op, algo)
    if algo == "bruck":
        return _alltoallv_bruck(machine, sends, phase, op, algo)
    raise ValueError(f"unknown alltoallv algorithm {algo!r}")


def _alltoallv_pairwise(
    machine: Machine,
    sends: Sequence[Dict[int, Payload]],
    phase: Optional[str],
    op: str,
    algo: str,
) -> List[List[Tuple[int, Payload]]]:
    P = machine.nprocs
    pow2 = P & (P - 1) == 0
    rounds: List[List[Tuple[int, int]]] = []
    planned_msgs = 0
    planned_bytes = 0
    for r in range(1, P):
        batch = []
        for i in range(P):
            peer = (i ^ r) if pow2 else (i + r) % P
            if peer in sends[i]:
                batch.append((i, peer))
                planned_msgs += 1
                planned_bytes += payload_nbytes(sends[i][peer])
        if batch:
            rounds.append(batch)
    _begin_staged(machine, "alltoallv", algo, phase, planned_msgs, planned_bytes)
    recv: List[List[Tuple[int, Payload]]] = [[] for _ in range(P)]
    with _scope(machine):
        for batch in rounds:
            round_recv = send_round(
                machine, [(i, j, sends[i][j]) for i, j in batch], phase, op=op
            )
            for dst in range(P):
                recv[dst].extend(round_recv[dst])
    return _finish_alltoallv(recv, sends)


def _alltoallv_bruck(
    machine: Machine,
    sends: Sequence[Dict[int, Payload]],
    phase: Optional[str],
    op: str,
    algo: str,
) -> List[List[Tuple[int, Payload]]]:
    P = machine.nprocs
    # flatten the send table into routed items; item t travels from
    # srcs[t] to dsts[t] across the staged rounds
    kinds: List[str] = []
    colss: List[List[np.ndarray]] = []
    srcs: List[int] = []
    dsts: List[int] = []
    sizes: List[int] = []
    holdings: List[List[int]] = [[] for _ in range(P)]
    for src, targets in enumerate(sends):
        for dst in sorted(targets):
            if dst == src:
                continue
            kind, cols = _payload_cols(targets[dst])
            holdings[src].append(len(kinds))
            kinds.append(kind)
            colss.append(cols)
            srcs.append(src)
            dsts.append(dst)
            sizes.append(payload_nbytes(targets[dst]))
    n_rounds = _ceil_log2(P)
    # symbolic pass: the same routing rule over item ids alone yields the
    # planned totals the auditor will check the executed rounds against
    planned_msgs = 0
    planned_bytes = 0
    sym = [list(h) for h in holdings]
    for k in range(n_rounds):
        step = 1 << k
        nxt: List[List[int]] = [[] for _ in range(P)]
        for i in range(P):
            moved = [t for t in sym[i] if ((dsts[t] - i) % P) & step]
            nxt[i].extend(t for t in sym[i] if not ((dsts[t] - i) % P) & step)
            if moved:
                planned_msgs += 1
                planned_bytes += sum(sizes[t] for t in moved)
                nxt[(i + step) % P].extend(moved)
        sym = nxt
    _begin_staged(machine, "alltoallv", algo, phase, planned_msgs, planned_bytes)
    with _scope(machine):
        for k in range(n_rounds):
            step = 1 << k
            moves: List[List[int]] = [[] for _ in range(P)]
            stays: List[List[int]] = [[] for _ in range(P)]
            for i in range(P):
                for t in holdings[i]:
                    if ((dsts[t] - i) % P) & step:
                        moves[i].append(t)
                    else:
                        stays[i].append(t)
            transfers = []
            senders = []
            for i in range(P):
                if moves[i]:
                    flat = [c for t in moves[i] for c in colss[t]]
                    transfers.append((i, (i + step) % P, tuple(flat)))
                    senders.append(i)
            holdings = stays
            if not transfers:
                continue
            round_recv = send_round(machine, transfers, phase, op=op)
            for i in senders:
                j = (i + step) % P
                payload = next(p for s, p in round_recv[j] if s == i)
                pos = 0
                for t in moves[i]:
                    width = len(colss[t])
                    colss[t] = list(payload[pos : pos + width])
                    pos += width
                    holdings[j].append(t)
    recv: List[List[Tuple[int, Payload]]] = [[] for _ in range(P)]
    for i in range(P):
        for t in holdings[i]:
            recv[i].append((srcs[t], _rebuild_payload(kinds[t], colss[t])))
    return _finish_alltoallv(recv, sends)


# -- allgatherv ---------------------------------------------------------------


def allgatherv_staged(
    machine: Machine,
    arrays: Sequence[np.ndarray],
    phase: Optional[str],
    algo: str,
) -> List[np.ndarray]:
    """Staged allgatherv; per-rank results equal ``direct``'s bitwise."""
    machine.synchronize()
    if algo == "ring":
        return _allgatherv_ring(machine, arrays, phase, algo)
    if algo == "recursive-doubling":
        return _allgatherv_rd(machine, arrays, phase, algo)
    raise ValueError(f"unknown allgatherv algorithm {algo!r}")


def _allgatherv_ring(
    machine: Machine,
    arrays: Sequence[np.ndarray],
    phase: Optional[str],
    algo: str,
) -> List[np.ndarray]:
    P = machine.nprocs
    op = f"allgatherv.{algo}"
    total = sum(a.nbytes for a in arrays)
    # every block travels the full ring: one message per rank per round
    _begin_staged(machine, "allgatherv", algo, phase, P * (P - 1), (P - 1) * total)
    held: List[Dict[int, np.ndarray]] = [{i: arrays[i]} for i in range(P)]
    with _scope(machine):
        for r in range(1, P):
            transfers = [
                (i, (i + 1) % P, held[i][(i - r + 1) % P]) for i in range(P)
            ]
            round_recv = send_round(machine, transfers, phase, op=op)
            for j in range(P):
                ((_, payload),) = round_recv[j]
                held[j][(j - r) % P] = payload
    return [np.concatenate([held[i][b] for b in range(P)]) for i in range(P)]


def _allgatherv_rd(
    machine: Machine,
    arrays: Sequence[np.ndarray],
    phase: Optional[str],
    algo: str,
) -> List[np.ndarray]:
    P = machine.nprocs
    op = f"allgatherv.{algo}"
    sizes = [a.nbytes for a in arrays]
    pow2 = P & (P - 1) == 0
    n_rounds = _ceil_log2(P)
    # symbolic plan: XOR partners on powers of two, dissemination otherwise
    sym = [{i} for i in range(P)]
    schedule: List[List[Tuple[int, int]]] = []
    planned_msgs = 0
    planned_bytes = 0
    for k in range(n_rounds):
        step = 1 << k
        batch = [
            (i, (i ^ step) if pow2 else (i + step) % P) for i in range(P)
        ]
        schedule.append(batch)
        nxt = [set(s) for s in sym]
        for i, j in batch:
            planned_msgs += 1
            planned_bytes += sum(sizes[b] for b in sym[i])
            nxt[j] |= sym[i]
        sym = nxt
    _begin_staged(machine, "allgatherv", algo, phase, planned_msgs, planned_bytes)
    held: List[Dict[int, np.ndarray]] = [{i: arrays[i]} for i in range(P)]
    with _scope(machine):
        for batch in schedule:
            metas = []
            transfers = []
            for i, j in batch:
                ids = sorted(held[i])
                metas.append((i, j, ids))
                transfers.append((i, j, tuple(held[i][b] for b in ids)))
            round_recv = send_round(machine, transfers, phase, op=op)
            for i, j, ids in metas:
                payload = next(p for s, p in round_recv[j] if s == i)
                for b, arr in zip(ids, payload):
                    if b not in held[j]:
                        held[j][b] = arr
    return [np.concatenate([held[i][b] for b in range(P)]) for i in range(P)]


# -- allreduce ----------------------------------------------------------------


def allreduce_staged(
    machine: Machine,
    vecs: Sequence[np.ndarray],
    result_1d: np.ndarray,
    phase: Optional[str],
    algo: str,
) -> None:
    """Stage the communication of an allreduce whose result is already known.

    ``vecs`` are the per-rank contribution vectors (flattened, in the
    reduction's working dtype) and ``result_1d`` the canonical reduction
    over them — computed by the caller with the exact rank-ordered
    operation the ``direct`` path uses, because a staged tree reduction
    would reassociate floating-point sums and break the bitwise contract.
    The engine ships the real contribution/result arrays through the
    rounds purely to model (and exercise, on any backend) the traffic.
    """
    machine.synchronize()
    if algo == "binomial-tree":
        _allreduce_binomial(machine, vecs, result_1d, phase, algo)
    elif algo == "recursive-halving-doubling":
        _allreduce_rhd(machine, vecs, result_1d, phase, algo)
    else:
        raise ValueError(f"unknown allreduce algorithm {algo!r}")


def _allreduce_binomial(
    machine: Machine,
    vecs: Sequence[np.ndarray],
    result_1d: np.ndarray,
    phase: Optional[str],
    algo: str,
) -> None:
    P = machine.nprocs
    op = f"allreduce.{algo}"
    sizes = [v.nbytes for v in vecs]
    n_rounds = _ceil_log2(P)
    # reduce-up: rank v (lowest set bit 2^k) forwards its accumulated
    # contribution bundle to v - 2^k in round k; P-1 messages total
    sym = [{i} for i in range(P)]
    reduce_sched: List[List[Tuple[int, int]]] = []
    planned_msgs = 0
    planned_bytes = 0
    for k in range(n_rounds):
        step = 1 << k
        batch = [(v, v - step) for v in range(step, P, 2 * step)]
        reduce_sched.append(batch)
        for s, d in batch:
            planned_msgs += 1
            planned_bytes += sum(sizes[b] for b in sym[s])
            sym[d] |= sym[s]
    # broadcast-down of the result along the reversed tree: P-1 messages
    bcast_sched: List[List[Tuple[int, int]]] = []
    for k in reversed(range(n_rounds)):
        step = 1 << k
        batch = [(v, v + step) for v in range(0, P, 2 * step) if v + step < P]
        bcast_sched.append(batch)
        planned_msgs += len(batch)
        planned_bytes += len(batch) * result_1d.nbytes
    _begin_staged(machine, "allreduce", algo, phase, planned_msgs, planned_bytes)
    held: List[Dict[int, np.ndarray]] = [{i: vecs[i]} for i in range(P)]
    with _scope(machine):
        for batch in reduce_sched:
            if not batch:
                continue
            metas = []
            transfers = []
            for s, d in batch:
                ids = sorted(held[s])
                metas.append((s, d, ids))
                transfers.append((s, d, tuple(held[s][b] for b in ids)))
            round_recv = send_round(machine, transfers, phase, op=op)
            for s, d, ids in metas:
                payload = next(p for ss, p in round_recv[d] if ss == s)
                for b, arr in zip(ids, payload):
                    held[d][b] = arr
        for batch in bcast_sched:
            if batch:
                send_round(
                    machine, [(s, d, result_1d) for s, d in batch], phase, op=op
                )


def _allreduce_rhd(
    machine: Machine,
    vecs: Sequence[np.ndarray],
    result_1d: np.ndarray,
    phase: Optional[str],
    algo: str,
) -> None:
    P = machine.nprocs  # power of two (resolve() guarantees it)
    op = f"allreduce.{algo}"
    n = int(result_1d.size)
    itemsize = int(result_1d.itemsize)
    n_rounds = _ceil_log2(P)
    seg = [(0, n)] * P
    sched: List[Tuple[str, List[Tuple[int, int, int, int]]]] = []
    planned_msgs = 0
    planned_bytes = 0
    # reduce-scatter by recursive halving: each rank gives its partner the
    # half of the vector the partner will own
    for k in range(n_rounds):
        d = P >> (k + 1)
        batch = []
        nxt = list(seg)
        for i in range(P):
            j = i ^ d
            lo, hi = seg[i]
            mid = (lo + hi) // 2
            if i < j:
                give, keep = (mid, hi), (lo, mid)
            else:
                give, keep = (lo, mid), (mid, hi)
            batch.append((i, j, give[0], give[1]))
            nxt[i] = keep
        seg = nxt
        sched.append(("halving", batch))
        planned_msgs += len(batch)
        planned_bytes += sum((hi - lo) * itemsize for _, _, lo, hi in batch)
    # allgather of the owned result segments by recursive doubling
    for k in reversed(range(n_rounds)):
        d = P >> (k + 1)
        batch = [(i, i ^ d, seg[i][0], seg[i][1]) for i in range(P)]
        nxt = [
            (min(seg[i][0], seg[i ^ d][0]), max(seg[i][1], seg[i ^ d][1]))
            for i in range(P)
        ]
        seg = nxt
        sched.append(("doubling", batch))
        planned_msgs += len(batch)
        planned_bytes += sum((hi - lo) * itemsize for _, _, lo, hi in batch)
    _begin_staged(machine, "allreduce", algo, phase, planned_msgs, planned_bytes)
    with _scope(machine):
        for tag, batch in sched:
            transfers = []
            for i, j, lo, hi in batch:
                source = vecs[i] if tag == "halving" else result_1d
                transfers.append((i, j, np.ascontiguousarray(source[lo:hi])))
            send_round(machine, transfers, phase, op=op)


# -- rooted binomial trees ----------------------------------------------------


def bcast_staged(
    machine: Machine,
    arr: np.ndarray,
    root: int,
    phase: Optional[str],
    algo: str,
) -> None:
    """Binomial-tree broadcast of ``arr`` from ``root`` (data plane only —
    the caller constructs the canonical per-rank return values)."""
    machine.synchronize()
    P = machine.nprocs
    op = f"bcast.{algo}"
    ship = np.ascontiguousarray(np.atleast_1d(arr))
    n_rounds = _ceil_log2(P)
    planned_msgs = max(0, P - 1)
    _begin_staged(
        machine, "bcast", algo, phase, planned_msgs, planned_msgs * int(ship.nbytes)
    )
    act = lambda v: (v + root) % P  # noqa: E731 - tree runs on virtual ranks
    held: Dict[int, np.ndarray] = {root: ship}
    with _scope(machine):
        for k in range(n_rounds):
            step = 1 << k
            batch = [(v, v + step) for v in range(step) if v + step < P]
            if not batch:
                continue
            transfers = [(act(v), act(u), held[act(v)]) for v, u in batch]
            round_recv = send_round(machine, transfers, phase, op=op)
            for v, u in batch:
                payload = next(p for s, p in round_recv[act(u)] if s == act(v))
                held[act(u)] = payload


def gatherv_staged(
    machine: Machine,
    arrays: Sequence[np.ndarray],
    root: int,
    phase: Optional[str],
    algo: str,
) -> None:
    """Binomial-tree gather: leaves forward bundled contributions upward.

    Data plane only — the caller assembles the canonical root result."""
    machine.synchronize()
    P = machine.nprocs
    op = f"gatherv.{algo}"
    sizes = [a.nbytes for a in arrays]
    act = lambda v: (v + root) % P  # noqa: E731
    n_rounds = _ceil_log2(P)
    sym = [{act(v)} for v in range(P)]
    sched: List[List[Tuple[int, int]]] = []
    planned_msgs = 0
    planned_bytes = 0
    for k in range(n_rounds):
        step = 1 << k
        batch = [(v, v - step) for v in range(step, P, 2 * step)]
        sched.append(batch)
        for s, d in batch:
            planned_msgs += 1
            planned_bytes += sum(sizes[b] for b in sym[s])
            sym[d] |= sym[s]
    _begin_staged(machine, "gatherv", algo, phase, planned_msgs, planned_bytes)
    held: List[Dict[int, np.ndarray]] = [{act(v): arrays[act(v)]} for v in range(P)]
    with _scope(machine):
        for batch in sched:
            if not batch:
                continue
            metas = []
            transfers = []
            for s, d in batch:
                ids = sorted(held[s])
                metas.append((s, d, ids))
                transfers.append(
                    (act(s), act(d), tuple(held[s][b] for b in ids))
                )
            round_recv = send_round(machine, transfers, phase, op=op)
            for s, d, ids in metas:
                payload = next(p for ss, p in round_recv[act(d)] if ss == act(s))
                for b, arr in zip(ids, payload):
                    held[d][b] = arr


def scatterv_staged(
    machine: Machine,
    arrays: Sequence[np.ndarray],
    root: int,
    phase: Optional[str],
    algo: str,
) -> None:
    """Binomial-tree scatter: the root pushes subtree bundles down.

    Data plane only — the caller returns the canonical per-rank parts."""
    machine.synchronize()
    P = machine.nprocs
    op = f"scatterv.{algo}"
    sizes = [a.nbytes for a in arrays]
    act = lambda v: (v + root) % P  # noqa: E731
    n_rounds = _ceil_log2(P)
    # round k (top-down): virtual rank v ≡ 0 (mod 2^{k+1}) hands virtual
    # ranks [v+2^k, v+2^{k+1}) their parts to its child v + 2^k
    sched: List[List[Tuple[int, int, List[int]]]] = []
    planned_msgs = 0
    planned_bytes = 0
    for k in reversed(range(n_rounds)):
        step = 1 << k
        batch = []
        for v in range(0, P, 2 * step):
            u = v + step
            if u < P:
                subtree = [act(w) for w in range(u, min(u + step, P))]
                batch.append((v, u, subtree))
                planned_msgs += 1
                planned_bytes += sum(sizes[b] for b in subtree)
        sched.append(batch)
    _begin_staged(machine, "scatterv", algo, phase, planned_msgs, planned_bytes)
    held: List[Dict[int, np.ndarray]] = [dict() for _ in range(P)]
    held[0] = {i: arrays[i] for i in range(P)}
    with _scope(machine):
        for batch in sched:
            if not batch:
                continue
            metas = []
            transfers = []
            for v, u, subtree in batch:
                ids = sorted(subtree)
                metas.append((v, u, ids))
                transfers.append(
                    (act(v), act(u), tuple(held[v][b] for b in ids))
                )
            round_recv = send_round(machine, transfers, phase, op=op)
            for v, u, ids in metas:
                payload = next(p for s, p in round_recv[act(u)] if s == act(v))
                for b, arr in zip(ids, payload):
                    held[u][b] = arr
