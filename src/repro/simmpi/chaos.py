"""Deterministic chaos harness: seeded perturbations of the simulated machine.

The simulated MPI layer is only trustworthy if the physics it transports is
*schedule-independent*: positions, forces, energies, resort outcomes and the
auditor's communication ledgers must be bitwise identical no matter how fast
individual ranks run, how degraded individual links are, or in which legal
order messages are delivered.  Only the virtual clocks and the per-phase
trace times may respond to such perturbations (and should, the way the
LogGP model predicts).

This module provides the seeded fault/schedule injection that the
deterministic-simulation-test runner (:mod:`repro.verify.dst`) sweeps:

* :class:`Perturbation` — an immutable, seeded configuration of machine
  faults: per-rank compute-rate jitter and stragglers, globally and per-rank
  degraded link bandwidth, extra per-message latency, and virtual clock skew
  at startup.  A machine consults it when charging costs (never when moving
  data), so a perturbation can change *when* things happen but not *what*
  happens.
* :class:`MailboxScheduler` — a seeded scheduler shim for the SPMD layer
  that permutes message delivery order and thread wake order among the
  *legal* choices (MPI non-overtaking order per source is preserved;
  wildcard receives may consume sources in any order).

A perturbation with every knob at zero is the null perturbation: applying it
leaves the machine byte-identical to an unperturbed one (all scale factors
are exactly ``1.0`` and no model constant is touched).
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import List, Optional, Sequence, TypeVar

import numpy as np

from repro.simmpi.costmodel import CostModel

__all__ = ["Perturbation", "MailboxScheduler"]

T = TypeVar("T")

#: independent RNG stream salts (stable across releases: fingerprints of
#: recorded failing seeds must keep reproducing)
_SALT_COMPUTE = 0x5EED_C0DE
_SALT_COMM = 0x11_4B
_SALT_SKEW = 0xC10C
_SALT_SCHED = 0x5C_4ED
_SALT_SAMPLE = 0xD57


@dataclasses.dataclass(frozen=True)
class Perturbation:
    """A seeded set of machine faults consulted when charging costs.

    Attributes
    ----------
    seed:
        drives every per-rank draw below; two machines perturbed with equal
        configurations are perturbed identically.
    compute_jitter:
        lognormal sigma of the per-rank compute-rate factors (0 = uniform
        ranks); models OS noise and DVFS wobble.
    straggler_fraction / straggler_slowdown:
        each rank independently becomes a straggler with probability
        ``straggler_fraction``; stragglers run compute/copy phases
        ``straggler_slowdown`` times slower.
    bandwidth_degradation:
        global fractional loss of inter-node link bandwidth in ``[0, 1)``
        (0.25 means every link runs at 75%).
    degraded_link_fraction / degraded_link_slowdown:
        each rank's NIC independently degrades with probability
        ``degraded_link_fraction``; every message touching a degraded rank
        takes ``degraded_link_slowdown`` times longer on the wire.
    extra_latency:
        seconds added to the per-message CPU overhead ``o`` (charged on
        every message, intra- and inter-node).
    clock_skew:
        per-rank virtual clocks start uniformly in ``[0, clock_skew)``
        instead of at zero (unsynchronized node boot).
    reorder:
        permute SPMD mailbox delivery and thread wake order among legal
        choices (see :class:`MailboxScheduler`).
    """

    seed: int = 0
    compute_jitter: float = 0.0
    straggler_fraction: float = 0.0
    straggler_slowdown: float = 4.0
    bandwidth_degradation: float = 0.0
    degraded_link_fraction: float = 0.0
    degraded_link_slowdown: float = 2.0
    extra_latency: float = 0.0
    clock_skew: float = 0.0
    reorder: bool = False

    def __post_init__(self) -> None:
        for name in ("compute_jitter", "extra_latency", "clock_skew"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        for name in ("straggler_fraction", "degraded_link_fraction"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if not 0.0 <= self.bandwidth_degradation < 1.0:
            raise ValueError("bandwidth_degradation must be in [0, 1)")
        for name in ("straggler_slowdown", "degraded_link_slowdown"):
            if getattr(self, name) < 1.0:
                raise ValueError(f"{name} must be >= 1")

    # -- construction -------------------------------------------------------

    @classmethod
    def sample(cls, seed: int) -> "Perturbation":
        """Draw a full perturbation from one integer seed (the DST sweep).

        ``seed == 0`` is reserved for the null perturbation — the reference
        schedule every other seed is compared against.
        """
        if seed == 0:
            return cls(seed=0)
        rng = np.random.default_rng([_SALT_SAMPLE, int(seed)])
        return cls(
            seed=int(seed),
            compute_jitter=float(rng.uniform(0.0, 0.5)),
            straggler_fraction=float(rng.uniform(0.0, 0.35)),
            straggler_slowdown=float(rng.uniform(2.0, 8.0)),
            bandwidth_degradation=float(rng.uniform(0.0, 0.6)),
            degraded_link_fraction=float(rng.uniform(0.0, 0.5)),
            degraded_link_slowdown=float(rng.uniform(1.5, 5.0)),
            extra_latency=float(rng.uniform(0.0, 1e-4)),
            clock_skew=float(rng.uniform(0.0, 1e-3)),
            reorder=True,
        )

    # -- queries ------------------------------------------------------------

    @property
    def is_null(self) -> bool:
        """True when every knob is off: applying this changes nothing."""
        return (
            self.compute_jitter == 0.0
            and self.straggler_fraction == 0.0
            and self.bandwidth_degradation == 0.0
            and self.degraded_link_fraction == 0.0
            and self.extra_latency == 0.0
            and self.clock_skew == 0.0
            and not self.reorder
        )

    def describe(self) -> str:
        """Compact one-line summary (stored as a trace note, printed by DST)."""
        if self.is_null:
            return f"null(seed={self.seed})"
        knobs = []
        if self.compute_jitter:
            knobs.append(f"jitter={self.compute_jitter:.3g}")
        if self.straggler_fraction:
            knobs.append(
                f"stragglers={self.straggler_fraction:.3g}x{self.straggler_slowdown:.3g}"
            )
        if self.bandwidth_degradation:
            knobs.append(f"bw-{self.bandwidth_degradation:.3g}")
        if self.degraded_link_fraction:
            knobs.append(
                f"links={self.degraded_link_fraction:.3g}x{self.degraded_link_slowdown:.3g}"
            )
        if self.extra_latency:
            knobs.append(f"lat+{self.extra_latency:.3g}s")
        if self.clock_skew:
            knobs.append(f"skew={self.clock_skew:.3g}s")
        if self.reorder:
            knobs.append("reorder")
        return f"seed={self.seed} " + " ".join(knobs)

    # -- what the machine consults ------------------------------------------

    def compute_factors(self, nprocs: int) -> Optional[np.ndarray]:
        """Per-rank compute/copy time multipliers (``None`` when uniform)."""
        if self.compute_jitter == 0.0 and self.straggler_fraction == 0.0:
            return None
        rng = np.random.default_rng([_SALT_COMPUTE, self.seed])
        factors = np.ones(nprocs, dtype=np.float64)
        if self.compute_jitter:
            factors *= np.exp(rng.normal(0.0, self.compute_jitter, nprocs))
        if self.straggler_fraction:
            stragglers = rng.random(nprocs) < self.straggler_fraction
            factors[stragglers] *= self.straggler_slowdown
        return factors

    def comm_factors(self, nprocs: int) -> Optional[np.ndarray]:
        """Per-rank communication time multipliers (``None`` when uniform).

        A message is as slow as its slowest endpoint: primitives scale each
        message's wire time by ``max(factor[src], factor[dst])``.
        """
        if self.degraded_link_fraction == 0.0:
            return None
        rng = np.random.default_rng([_SALT_COMM, self.seed])
        factors = np.ones(nprocs, dtype=np.float64)
        degraded = rng.random(nprocs) < self.degraded_link_fraction
        factors[degraded] *= self.degraded_link_slowdown
        return factors

    def initial_clocks(self, nprocs: int) -> Optional[np.ndarray]:
        """Per-rank startup clock offsets (``None`` for synchronized start)."""
        if self.clock_skew == 0.0:
            return None
        rng = np.random.default_rng([_SALT_SKEW, self.seed])
        return rng.uniform(0.0, self.clock_skew, nprocs)

    def effective_model(self, model: CostModel) -> CostModel:
        """The cost model with the global link/latency degradations applied.

        The machine keeps the *unperturbed* model around as
        ``Machine.nominal_model``: decision logic that must stay
        schedule-independent — notably the ``algo="auto"`` collective-
        algorithm selector (:func:`repro.simmpi.algos.resolve`) — reads the
        nominal constants, so a chaos seed can stretch the clocks but never
        change *which* algorithm runs.
        """
        return model.perturbed(
            extra_overhead=self.extra_latency,
            bandwidth_factor=1.0 - self.bandwidth_degradation,
        )

    def scheduler(self) -> Optional["MailboxScheduler"]:
        """A fresh seeded SPMD scheduler shim, or ``None`` without reorder."""
        if not self.reorder:
            return None
        return MailboxScheduler(seed=(_SALT_SCHED << 32) ^ self.seed)


class MailboxScheduler:
    """Seeded permutation of SPMD delivery and wake order among legal choices.

    *Legal* means MPI matching semantics are preserved: messages from one
    source that match the same receive pattern are consumed in posting order
    (non-overtaking), but a wildcard receive facing several eligible sources
    may pick any of them.  Thread wake order is perturbed by injecting tiny
    seeded sleeps before threads contend for the runtime lock, so the OS
    interleaves rank programs differently under every seed.

    Schedule choices are drawn from a seeded :class:`random.Random`; because
    real OS threads race for the shim, the exact interleaving is best-effort
    reproducible — which is fine, since the property under test must hold
    for *every* legal schedule, not one specific schedule.
    """

    def __init__(self, seed: int = 0, *, yield_probability: float = 0.5,
                 max_sleep: float = 1e-4) -> None:
        self._rng = random.Random(seed)
        self.yield_probability = float(yield_probability)
        self.max_sleep = float(max_sleep)

    def choose(self, n: int) -> int:
        """Pick one of ``n`` legal delivery candidates."""
        if n <= 1:
            return 0
        return self._rng.randrange(n)

    def shuffled(self, items: Sequence[T]) -> List[T]:
        """A permuted copy (used for rank-thread start order)."""
        out = list(items)
        self._rng.shuffle(out)
        return out

    def maybe_yield(self) -> None:
        """Possibly stall the calling thread briefly to perturb wake order.

        Must be called WITHOUT the runtime lock held.
        """
        r = self._rng.random()
        if r < self.yield_probability:
            time.sleep(r * self.max_sleep)
