"""Collective communication primitives.

All primitives move **real data** between per-rank NumPy arrays and charge
modeled time to the machine clocks.  The data plane uses the following
conventions:

* a *distributed value* is a Python list of length ``nprocs`` whose ``i``-th
  entry is rank ``i``'s local data;
* sparse send specifications are ``list[dict[int, payload]]`` — rank ``i``
  sends ``sends[i][j]`` to rank ``j``; absent keys mean "nothing to send"
  and cost nothing beyond the count exchange;
* a *payload* is an ``ndarray`` or a tuple of ``ndarray`` columns that travel
  together in one message (structure-of-arrays particle data); its size is
  the sum of the column ``nbytes``.

The all-to-all primitives implement the cost semantics of the paper's
fine-grained data redistribution operation [13,14]: a dense
``MPI_Alltoall`` count exchange followed by point-to-point transfers of the
non-empty blocks.  ``count_exchange="sparse"`` models the neighborhood
variant (Sect. III-B) where the communication structure is known a priori
and the dense count exchange is skipped — this is the primitive whose cost
advantage produces the Fig. 9 (right) crossover.

Algorithm engines
-----------------
By default every collective charges one closed-form LogGP formula (the
``direct`` algorithm — byte-identical to the historical behavior).  With
:meth:`Machine.set_collective_algos
<repro.simmpi.machine.Machine.set_collective_algos>` the collectives route
through the staged per-algorithm engines of :mod:`repro.simmpi.algos`
(pairwise/Bruck alltoallv, ring/recursive-doubling allgatherv,
binomial-tree/recursive-halving-doubling allreduce, binomial trees for the
rooted collectives) which ship the same real data through explicit
:func:`~repro.simmpi.p2p.send_round` rounds with per-hop charging.  Every
algorithm returns bitwise-identical payloads; only modeled clocks and
message/byte totals differ.

Delivery aliasing contract
--------------------------
Payloads are delivered *by reference* under the default in-process data
plane (the received array **is** the sender's array object) and as fresh
decoded copies under a process backend — except self-sends, which return
the original object on every backend (MPI self-send semantics).  Receivers
therefore MUST NOT mutate received payloads in place; doing so corrupts
sender state under the in-process engine only and is exactly the class of
bug the cross-backend differential tests exist to catch.  Treat every
received payload as read-only and copy before writing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.simmpi.machine import Machine

__all__ = [
    "payload_nbytes",
    "alltoallv",
    "neighborhood_alltoallv",
    "allgatherv",
    "allgather_scalars",
    "allreduce",
    "bcast",
    "gatherv",
    "scatterv",
]

Payload = object  # ndarray or tuple/list of ndarrays


def payload_nbytes(payload: Payload) -> int:
    """Total byte size of a payload (array or tuple of arrays)."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (tuple, list)):
        return sum(p.nbytes for p in payload)
    raise TypeError(f"unsupported payload type {type(payload)!r}")


def _validate_sends(nprocs: int, sends: Sequence[Dict[int, Payload]]) -> None:
    """Reject invalid destination ranks *before* any auditing or charging.

    Both execution backends must raise the same ``ValueError`` with no
    auditor ledger entry and no clock movement for a rejected call —
    historically only the in-process delivery loop checked targets, after
    the auditor had observed the sends and costs were charged.
    """
    for src, targets in enumerate(sends):
        for dst in targets:
            if not 0 <= dst < nprocs:
                raise ValueError(f"rank {src} sends to invalid rank {dst}")


def _algo_for(machine: Machine, collective: str) -> Optional[str]:
    """The configured non-direct algorithm for ``collective``, or ``None``.

    ``None`` keeps the historical closed-form path (and is the only
    possibility when no :class:`~repro.simmpi.algos.CollectiveAlgos` is
    attached, or on a single-rank machine where no algorithm stages any
    message).  The returned name may still be ``"auto"``; the caller
    resolves it per call.
    """
    algos = machine.collective_algos
    if algos is None or machine.nprocs == 1:
        return None
    algo = getattr(algos, collective)
    return None if algo == "direct" else algo


def _charge_alltoall(
    machine: Machine,
    sends: Sequence[Dict[int, Payload]],
    phase: Optional[str],
    count_exchange: str,
) -> None:
    """Clock/trace accounting shared by the all-to-all variants."""
    P = machine.nprocs
    model = machine.model
    topo = machine.topology

    # collect all (src, dst, size) message triples, then vectorize the
    # accounting (topology hop lookups batched into one call)
    src_list = []
    dst_list = []
    size_list = []
    for src, targets in enumerate(sends):
        for dst, payload in targets.items():
            if dst != src:
                src_list.append(src)
                dst_list.append(dst)
                size_list.append(payload_nbytes(payload))
    n_messages = len(src_list)
    srcs = np.asarray(src_list, dtype=np.int64)
    dsts = np.asarray(dst_list, dtype=np.int64)
    sizes = np.asarray(size_list, dtype=np.float64)

    n_targets = np.bincount(srcs, minlength=P).astype(np.int64)
    send_bytes = np.bincount(srcs, weights=sizes, minlength=P)
    recv_bytes = np.bincount(dsts, weights=sizes, minlength=P)
    if n_messages:
        hops = machine.topology.hops(srcs, dsts)
        inter = hops > 0
        total_internode = float(sizes[inter].sum())
        hop_weight = float(sizes.sum())
        avg_hops = (
            float((hops * sizes).sum()) / hop_weight
            if hop_weight > 0
            else float(topo.diameter()) / 2.0
        )
    else:
        total_internode = 0.0
        avg_hops = float(topo.diameter()) / 2.0

    machine.synchronize()
    per_rank = model.alltoall_rank_time(n_targets, send_bytes, recv_bytes, avg_hops)
    per_rank = per_rank + model.copy_time(send_bytes + recv_bytes)
    if count_exchange == "dense":
        # MPI_Alltoall of one count integer (8 bytes) per peer, modeled as
        # Bruck's algorithm (what MPI implementations use for tiny items)
        per_rank = per_rank + model.bruck_alltoall_time(P, 8.0, topo.diameter())
    elif count_exchange not in ("sparse", "cached"):
        raise ValueError(
            f"count_exchange must be 'dense', 'sparse' or 'cached', got {count_exchange!r}"
        )
    bis = model.bisection_time(total_internode, topo.bisection_links())
    per_rank = np.maximum(per_rank, bis)
    if machine.comm_factors is not None:
        # a degraded NIC slows down every message that rank posts or receives
        per_rank = per_rank * machine.comm_factors
    machine.advance(
        per_rank,
        phase,
        messages=n_messages,
        nbytes=int(send_bytes.sum()),
        op="alltoallv",
    )


def _deliver(
    machine: Machine, sends: Sequence[Dict[int, Payload]]
) -> List[List[Tuple[int, Payload]]]:
    """Move payloads: ``recv[j]`` is a source-ordered list of ``(src, payload)``.

    With an attached execution backend the payload bytes travel through it
    (e.g. shared memory + worker processes); without one, the historical
    in-process list shuffle runs inline.  Charging happened before this
    point either way — delivery is pure data plane.

    Aliasing contract (see the module docstring): in-process delivery hands
    the receiver a *reference* to the sender's payload object; a process
    backend decodes fresh copies for inter-rank messages and returns the
    original object for self-sends.  Receivers must treat payloads as
    read-only.  Destination validation happened in :func:`_validate_sends`
    before any auditing or charging; the check here is defensive only (it
    guards direct callers of the backend protocol).
    """
    nprocs = machine.nprocs
    backend = machine.backend
    if backend is not None:
        return backend.deliver(sends, nprocs)
    recv: List[List[Tuple[int, Payload]]] = [[] for _ in range(nprocs)]
    for src, targets in enumerate(sends):
        for dst, payload in targets.items():
            if not 0 <= dst < nprocs:
                raise ValueError(f"rank {src} sends to invalid rank {dst}")
            recv[dst].append((src, payload))
    for lst in recv:
        lst.sort(key=lambda item: item[0])
    return recv


def alltoallv(
    machine: Machine,
    sends: Sequence[Dict[int, Payload]],
    phase: Optional[str] = None,
    *,
    count_exchange: str = "dense",
) -> List[List[Tuple[int, Payload]]]:
    """Sparse all-to-all exchange (the fine-grained redistribution transport).

    Parameters
    ----------
    sends:
        ``sends[i][j]`` is the payload rank ``i`` sends to rank ``j``.
        Self-sends are delivered for free (local move, charged as a copy).
    count_exchange:
        ``"dense"`` (default) charges the ``MPI_Alltoall`` count exchange
        that a general redistribution needs; ``"sparse"`` skips it (known
        neighborhood communication structure, peer-checked by an attached
        auditor); ``"cached"`` also skips it — the counts are part of a
        precompiled communication schedule (a
        :class:`~repro.core.plan.ResortPlan`), which may target arbitrary
        ranks, so no neighborhood contract applies.

    Returns
    -------
    ``recv`` with ``recv[j]`` a list of ``(source_rank, payload)`` sorted by
    source rank, matching MPI's per-source receive-block semantics.
    """
    if len(sends) != machine.nprocs:
        raise ValueError(f"sends has {len(sends)} entries, machine has {machine.nprocs} ranks")
    _validate_sends(machine.nprocs, sends)
    algo = _algo_for(machine, "alltoallv")
    if algo is not None:
        from repro.simmpi import algos as _algos

        resolved = _algos.resolve(machine, "alltoallv", algo, sends=sends)
        _algos.record_choice(machine, "alltoallv", resolved)
        if resolved != "direct":
            return _algos.alltoallv_staged(
                machine, sends, phase, count_exchange=count_exchange, algo=resolved
            )
    if machine.auditor is not None:
        machine.auditor.observe_alltoallv(sends, phase, count_exchange)
    _charge_alltoall(machine, sends, phase, count_exchange)
    return _deliver(machine, sends)


def neighborhood_alltoallv(
    machine: Machine,
    sends: Sequence[Dict[int, Payload]],
    phase: Optional[str] = None,
) -> List[List[Tuple[int, Payload]]]:
    """Neighborhood exchange: all-to-all restricted to known peers.

    Identical data plane to :func:`alltoallv` but modeled as pre-posted
    non-blocking point-to-point communication without the dense count
    exchange (Sect. III-B of the paper).  Callers are responsible for only
    sending to actual neighbors; the cost advantage over :func:`alltoallv`
    is the per-peer (instead of per-rank) message overhead.
    """
    return alltoallv(machine, sends, phase, count_exchange="sparse")


def allgatherv(
    machine: Machine,
    contributions: Sequence[np.ndarray],
    phase: Optional[str] = None,
) -> List[np.ndarray]:
    """Every rank receives the concatenation of all contributions.

    Modeled as a ring/bruck allgather: each rank ultimately receives the
    full concatenated volume; latency is logarithmic.
    """
    P = machine.nprocs
    if len(contributions) != P:
        raise ValueError(f"{len(contributions)} contributions for {P} ranks")
    arrays = [np.ascontiguousarray(a) for a in contributions]
    total_bytes = float(sum(a.nbytes for a in arrays))
    algo = _algo_for(machine, "allgatherv")
    if algo is not None:
        from repro.simmpi import algos as _algos

        resolved = _algos.resolve(machine, "allgatherv", algo, nbytes=total_bytes)
        _algos.record_choice(machine, "allgatherv", resolved)
        if resolved != "direct":
            return _algos.allgatherv_staged(machine, arrays, phase, resolved)
    machine.synchronize()
    t = machine.model.tree_collective_time(P, 0.0, machine.topology.diameter())
    t += (P - 1) / max(P, 1) * total_bytes / machine.model.bandwidth if P > 1 else 0.0
    t *= machine.comm_factor()
    t += float(machine.model.copy_time(total_bytes))
    if machine.auditor is not None:
        machine.auditor.observe_collective(
            phase, max(0, P - 1) * 1, int(total_bytes) * max(0, P - 1)
        )
    machine.advance(t, phase, messages=max(0, P - 1) * 1, nbytes=int(total_bytes) * max(0, P - 1), op="allgatherv")
    gathered = np.concatenate(arrays) if arrays else np.empty(0)
    return [gathered.copy() for _ in range(P)] if P > 1 else [gathered]


def allgather_scalars(
    machine: Machine,
    values: Sequence[float] | np.ndarray,
    phase: Optional[str] = None,
) -> np.ndarray:
    """Allgather of one scalar per rank; returns the shared vector."""
    P = machine.nprocs
    vals = np.asarray(values, dtype=np.float64)
    if vals.shape != (P,):
        raise ValueError(f"expected shape ({P},), got {vals.shape}")
    machine.synchronize()
    t = machine.model.tree_collective_time(P, 8.0 * P, machine.topology.diameter())
    t *= machine.comm_factor()
    if machine.auditor is not None:
        machine.auditor.observe_collective(phase, 2 * max(0, P - 1), 8 * P * max(0, P - 1))
    machine.advance(t, phase, messages=2 * max(0, P - 1), nbytes=8 * P * max(0, P - 1), op="allgather")
    return vals.copy()


def allreduce(
    machine: Machine,
    values: Sequence | np.ndarray,
    op: str = "sum",
    phase: Optional[str] = None,
) -> np.ndarray | float:
    """Reduce per-rank values with ``op`` in {'sum','max','min'}; all ranks get the result.

    ``values`` is a length-``nprocs`` sequence of scalars or equal-shape
    arrays (one per rank).

    Integer inputs (every rank contributing a signed/unsigned integer
    dtype) reduce **exactly** in their promoted integer dtype and the
    result preserves it — no round trip through ``float64``, which silently
    rounds values above ``2**53``.  Scalar integer reductions return a
    NumPy integer scalar; everything else keeps the historical float path
    bitwise-identical.
    """
    P = machine.nprocs
    if len(values) != P:
        raise ValueError(f"{len(values)} values for {P} ranks")
    as_given = [np.asarray(v) for v in values]
    int_exact = all(a.dtype.kind in "iu" for a in as_given)
    if int_exact:
        work_dtype = np.result_type(*as_given)
        stacked = np.asarray([a.astype(work_dtype, copy=False) for a in as_given])
    else:
        stacked = np.asarray([np.asarray(v, dtype=np.float64) for v in values])
    if op == "sum":
        result = stacked.sum(axis=0)
    elif op == "max":
        result = stacked.max(axis=0)
    elif op == "min":
        result = stacked.min(axis=0)
    else:
        raise ValueError(f"unsupported op {op!r}")
    if int_exact:
        item_bytes = float(stacked[0].nbytes)
    else:
        item_bytes = float(np.asarray(values[0], dtype=np.float64).nbytes)
    algo = _algo_for(machine, "allreduce")
    if algo is not None:
        from repro.simmpi import algos as _algos

        resolved = _algos.resolve(machine, "allreduce", algo, nbytes=item_bytes)
        _algos.record_choice(machine, "allreduce", resolved)
        if resolved != "direct":
            # the staged engine only models (and really ships) the traffic;
            # the result stays the canonical rank-ordered reduction above,
            # because a tree reduction would reassociate float sums
            vecs = [
                np.ascontiguousarray(np.atleast_1d(stacked[i])) for i in range(P)
            ]
            _algos.allreduce_staged(
                machine, vecs, np.ascontiguousarray(np.atleast_1d(result)),
                phase, resolved,
            )
            if result.ndim == 0:
                return result[()] if int_exact else float(result)
            return result
    machine.synchronize()
    t = machine.model.tree_collective_time(P, item_bytes, machine.topology.diameter())
    t *= machine.comm_factor()
    if machine.auditor is not None:
        machine.auditor.observe_collective(
            phase, 2 * max(0, P - 1), int(item_bytes) * 2 * max(0, P - 1)
        )
    machine.advance(t, phase, messages=2 * max(0, P - 1), nbytes=int(item_bytes) * 2 * max(0, P - 1), op="allreduce")
    if result.ndim == 0:
        return result[()] if int_exact else float(result)
    return result


def bcast(
    machine: Machine,
    value: np.ndarray | float,
    root: int = 0,
    phase: Optional[str] = None,
) -> List:
    """Broadcast ``value`` from ``root``; returns per-rank copies."""
    machine.check_rank(root)
    P = machine.nprocs
    arr = np.asarray(value)
    algo = _algo_for(machine, "bcast")
    if algo is not None:
        from repro.simmpi import algos as _algos

        resolved = _algos.resolve(machine, "bcast", algo, nbytes=float(arr.nbytes))
        _algos.record_choice(machine, "bcast", resolved)
        if resolved != "direct":
            _algos.bcast_staged(machine, arr, root, phase, resolved)
            return [np.array(arr, copy=True) if arr.ndim else value for _ in range(P)]
    machine.synchronize()
    t = machine.model.tree_collective_time(P, float(arr.nbytes), machine.topology.diameter())
    t *= machine.comm_factor()
    if machine.auditor is not None:
        machine.auditor.observe_collective(phase, max(0, P - 1), arr.nbytes * max(0, P - 1))
    machine.advance(t, phase, messages=max(0, P - 1), nbytes=arr.nbytes * max(0, P - 1), op="bcast")
    return [np.array(arr, copy=True) if arr.ndim else value for _ in range(P)]


def gatherv(
    machine: Machine,
    contributions: Sequence[np.ndarray],
    root: int = 0,
    phase: Optional[str] = None,
) -> List[np.ndarray]:
    """Gather variable-size arrays at ``root`` (others receive empty arrays)."""
    machine.check_rank(root)
    P = machine.nprocs
    if len(contributions) != P:
        raise ValueError(f"{len(contributions)} contributions for {P} ranks")
    arrays = [np.ascontiguousarray(a) for a in contributions]
    total_bytes = float(sum(a.nbytes for i, a in enumerate(arrays) if i != root))
    algo = _algo_for(machine, "gatherv")
    if algo is not None:
        from repro.simmpi import algos as _algos

        resolved = _algos.resolve(machine, "gatherv", algo, nbytes=total_bytes)
        _algos.record_choice(machine, "gatherv", resolved)
        if resolved != "direct":
            _algos.gatherv_staged(machine, arrays, root, phase, resolved)
            result = [
                np.empty((0,) + arrays[0].shape[1:], dtype=arrays[0].dtype)
                for _ in range(P)
            ]
            result[root] = np.concatenate(arrays) if arrays else np.empty(0)
            return result
    machine.synchronize()
    # root serializes P-1 receives; senders each pay one message
    model = machine.model
    per_rank = np.zeros(P)
    hops = machine.topology.hops(np.full(P, root), np.arange(P))
    for i, a in enumerate(arrays):
        if i == root:
            continue
        per_rank[i] += float(model.msg_time(hops[i], a.nbytes)) * machine.comm_factor(root, i)
    per_rank[root] += (
        model.overhead * (P - 1) + total_bytes / model.bandwidth
    ) * machine.comm_factor(root)
    per_rank[root] += float(model.copy_time(total_bytes))
    if machine.auditor is not None:
        machine.auditor.observe_collective(phase, max(0, P - 1), int(total_bytes))
    machine.advance(per_rank, phase, messages=max(0, P - 1), nbytes=int(total_bytes), op="gatherv")
    result = [np.empty((0,) + arrays[0].shape[1:], dtype=arrays[0].dtype) for _ in range(P)]
    result[root] = np.concatenate(arrays) if arrays else np.empty(0)
    return result


def scatterv(
    machine: Machine,
    parts: Sequence[np.ndarray],
    root: int = 0,
    phase: Optional[str] = None,
) -> List[np.ndarray]:
    """Scatter ``parts[i]`` (held at ``root``) to each rank ``i``.

    The root serializes all sends — this is the communication bottleneck the
    paper demonstrates with the "single process" initial distribution
    (Fig. 6).
    """
    machine.check_rank(root)
    P = machine.nprocs
    if len(parts) != P:
        raise ValueError(f"{len(parts)} parts for {P} ranks")
    arrays = [np.ascontiguousarray(a) for a in parts]
    total_bytes = float(sum(a.nbytes for i, a in enumerate(arrays) if i != root))
    algo = _algo_for(machine, "scatterv")
    if algo is not None:
        from repro.simmpi import algos as _algos

        resolved = _algos.resolve(machine, "scatterv", algo, nbytes=total_bytes)
        _algos.record_choice(machine, "scatterv", resolved)
        if resolved != "direct":
            _algos.scatterv_staged(machine, arrays, root, phase, resolved)
            return [a.copy() for a in arrays]
    machine.synchronize()
    model = machine.model
    per_rank = np.zeros(P)
    hops = machine.topology.hops(np.full(P, root), np.arange(P))
    per_rank[root] += (
        model.overhead * (P - 1) + total_bytes / model.bandwidth
    ) * machine.comm_factor(root)
    per_rank[root] += float(model.copy_time(total_bytes))
    for i, a in enumerate(arrays):
        if i == root:
            continue
        per_rank[i] += float(model.msg_time(hops[i], a.nbytes)) * machine.comm_factor(root, i)
        # receivers cannot finish before the root has pushed everything out
        per_rank[i] = max(per_rank[i], per_rank[root])
    if machine.auditor is not None:
        machine.auditor.observe_collective(phase, max(0, P - 1), int(total_bytes))
    machine.advance(per_rank, phase, messages=max(0, P - 1), nbytes=int(total_bytes), op="scatterv")
    return [a.copy() for a in arrays]
