"""Point-to-point communication primitives.

These are the transport of the merge-based parallel sorting method [15]
(pairwise merge-exchange steps of Batcher's network) and of generic
send/receive rounds.  Unlike the collectives, point-to-point operations only
advance the clocks of the ranks involved, so load imbalance and pipelining
across rounds are modeled faithfully.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.simmpi.collectives import Payload, payload_nbytes
from repro.simmpi.machine import Machine

__all__ = ["send_round", "exchange_pairs", "sendrecv"]


def _route(machine: Machine, transfers: Sequence[Tuple[int, int, Payload]]):
    """Ship a batch of ``(src, dst, payload)`` through the machine's
    execution backend, or return the payloads as-is (the historical
    in-process handoff).  Pure data plane: charging never happens here."""
    backend = machine.backend
    if backend is None:
        return [payload for _src, _dst, payload in transfers]
    return backend.route(transfers, machine.nprocs)


def sendrecv(
    machine: Machine,
    src: int,
    dst: int,
    payload: Payload,
    phase: Optional[str] = None,
) -> Payload:
    """Single message from ``src`` to ``dst``; returns the payload.

    The receiver clock becomes ``max(receiver, sender + message time)`` —
    a receive cannot complete before the matching send arrives.
    """
    src = machine.check_rank(src)
    dst = machine.check_rank(dst)
    nbytes = payload_nbytes(payload)
    if machine.auditor is not None:
        machine.auditor.observe_sendrecv(src, dst, nbytes, phase)
    if src == dst:
        machine.copy(nbytes, phase)
        return payload
    obs = machine.obs
    clocks_before = machine.clocks.copy() if obs is not None else None
    model = machine.model
    hops = int(machine.topology.hops(src, dst))
    before = machine.clocks.max()
    send_done = machine.clocks[src] + model.overhead + float(model.copy_time(nbytes))
    # a message is as slow as its slowest endpoint (degraded-NIC perturbation)
    arrival = (
        send_done
        + float(model.msg_time(hops, nbytes)) * machine.comm_factor(src, dst)
        - model.overhead
    )
    machine.clocks[src] = send_done
    machine.clocks[dst] = max(machine.clocks[dst] + model.overhead, arrival) + float(
        model.copy_time(nbytes)
    )
    t = float(machine.clocks.max() - before)
    machine.trace.record(phase, time=t, messages=1, nbytes=nbytes)
    if obs is not None:
        obs.on_charge(
            phase, "sendrecv", t, float(before), float(machine.clocks.max()),
            1, nbytes, clocks_before, machine.clocks,
        )
    return _route(machine, [(src, dst, payload)])[0]


def send_round(
    machine: Machine,
    transfers: Sequence[Tuple[int, int, Payload]],
    phase: Optional[str] = None,
    *,
    op: str = "send_round",
) -> List[List[Tuple[int, Payload]]]:
    """A round of independent messages ``(src, dst, payload)``.

    Messages from the same source are serialized (one NIC per rank);
    messages to the same destination are serialized on receive.  Returns
    ``recv[j]`` as source-sorted ``(src, payload)`` pairs.

    ``op`` names the charging primitive in the span stream; the staged
    collective engines (:mod:`repro.simmpi.algos`) tag their rounds with
    the owning algorithm (e.g. ``"alltoallv.bruck"``).
    """
    model = machine.model
    if machine.auditor is not None:
        machine.auditor.observe_send_round(transfers, phase)
    obs = machine.obs
    clocks_before = machine.clocks.copy() if obs is not None else None
    recv: List[List[Tuple[int, Payload]]] = [[] for _ in range(machine.nprocs)]
    before = machine.clocks.max()
    n_messages = 0
    total_bytes = 0
    # sends post first (non-blocking), receives complete afterwards
    arrivals: List[Tuple[int, float, Payload, int]] = []
    delivered = _route(machine, transfers)
    for (src, dst, payload), received in zip(transfers, delivered):
        src = machine.check_rank(src)
        dst = machine.check_rank(dst)
        nbytes = payload_nbytes(payload)
        if src == dst:
            machine.clocks[src] += float(model.copy_time(nbytes))
            recv[dst].append((src, received))
            continue
        hops = int(machine.topology.hops(src, dst))
        send_done = machine.clocks[src] + model.overhead + float(model.copy_time(nbytes))
        arrival = (
            send_done
            + float(model.msg_time(hops, nbytes)) * machine.comm_factor(src, dst)
            - model.overhead
        )
        machine.clocks[src] = send_done
        arrivals.append((dst, arrival, received, src))
        n_messages += 1
        total_bytes += nbytes
    for dst, arrival, payload, src in arrivals:
        nbytes = payload_nbytes(payload)
        machine.clocks[dst] = max(machine.clocks[dst] + model.overhead, arrival) + float(
            model.copy_time(nbytes)
        )
        recv[dst].append((src, payload))
    for lst in recv:
        lst.sort(key=lambda item: item[0])
    t = float(machine.clocks.max() - before)
    machine.trace.record(phase, time=t, messages=n_messages, nbytes=total_bytes)
    if obs is not None:
        obs.on_charge(
            phase, op, t, float(before), float(machine.clocks.max()),
            n_messages, total_bytes, clocks_before, machine.clocks,
        )
    return recv


def exchange_pairs(
    machine: Machine,
    exchanges: Sequence[Tuple[int, int, Payload, Payload]],
    phase: Optional[str] = None,
) -> Dict[Tuple[int, int], Tuple[Payload, Payload]]:
    """Simultaneous pairwise exchanges ``(a, b, payload_a_to_b, payload_b_to_a)``.

    Both directions overlap (MPI_Sendrecv): each side pays its send overhead
    plus the arrival of the other side's message.  Each rank may appear in at
    most one pair per call (a comparator round of a sorting network).

    Returns a dict mapping ``(a, b)`` to ``(received_at_a, received_at_b)``
    i.e. ``(payload_b_to_a, payload_a_to_b)``.
    """
    model = machine.model
    if machine.auditor is not None:
        machine.auditor.observe_exchange_pairs(exchanges, phase)
    obs = machine.obs
    clocks_before = machine.clocks.copy() if obs is not None else None
    seen: set = set()
    before = machine.clocks.max()
    out: Dict[Tuple[int, int], Tuple[Payload, Payload]] = {}
    n_messages = 0
    total_bytes = 0
    # both directions of every pair ship as one backend round
    delivered = _route(
        machine,
        [m for a, b, pa, pb in exchanges for m in ((a, b, pa), (b, a, pb))],
    )
    for i, (a, b, pa, pb) in enumerate(exchanges):
        a = machine.check_rank(a)
        b = machine.check_rank(b)
        if a == b:
            raise ValueError(f"pair ({a}, {b}) exchanges with itself")
        for r in (a, b):
            if r in seen:
                raise ValueError(f"rank {r} appears in more than one exchange")
            seen.add(r)
        bytes_ab = payload_nbytes(pa)
        bytes_ba = payload_nbytes(pb)
        hops = int(machine.topology.hops(a, b))
        post_a = machine.clocks[a] + model.overhead + float(model.copy_time(bytes_ab))
        post_b = machine.clocks[b] + model.overhead + float(model.copy_time(bytes_ba))
        pair_factor = machine.comm_factor(a, b)
        arrive_at_b = post_a + float(model.msg_time(hops, bytes_ab)) * pair_factor - model.overhead
        arrive_at_a = post_b + float(model.msg_time(hops, bytes_ba)) * pair_factor - model.overhead
        machine.clocks[a] = max(post_a, arrive_at_a) + float(model.copy_time(bytes_ba))
        machine.clocks[b] = max(post_b, arrive_at_b) + float(model.copy_time(bytes_ab))
        out[(a, b)] = (delivered[2 * i + 1], delivered[2 * i])
        n_messages += 2
        total_bytes += bytes_ab + bytes_ba
    t = float(machine.clocks.max() - before)
    machine.trace.record(phase, time=t, messages=n_messages, nbytes=total_bytes)
    if obs is not None:
        obs.on_charge(
            phase, "exchange_pairs", t, float(before), float(machine.clocks.max()),
            n_messages, total_bytes, clocks_before, machine.clocks,
        )
    return out
