"""The simulated distributed-memory machine.

A :class:`Machine` hosts ``nprocs`` virtual ranks.  It owns

* per-rank **virtual clocks** (``numpy`` array of seconds),
* a :class:`~repro.simmpi.tracing.Trace` of per-phase costs,
* the :class:`~repro.simmpi.topology.Topology` and
  :class:`~repro.simmpi.costmodel.CostModel` used to price communication.

Algorithms never advance clocks directly; they call the communication
primitives in :mod:`repro.simmpi.collectives` / :mod:`repro.simmpi.p2p` (which
move real data *and* charge modeled time) and :meth:`Machine.compute` /
:meth:`Machine.copy` for local work.

Clock semantics
---------------
Clocks are per-rank and monotone.  A collective first synchronizes its
participants to the latest participant clock (collectives cannot complete
before the last rank arrives), then adds per-rank completion times.  A
point-to-point exchange advances only the involved ranks, letting load
imbalance (e.g. the "all particles on a single process" initial distribution
of Fig. 6) show up as one rank racing ahead of the others.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.simmpi.costmodel import CostModel, SystemProfile
from repro.simmpi.topology import SwitchTopology, Topology
from repro.simmpi.tracing import Trace

__all__ = ["Machine"]


class Machine:
    """``nprocs`` virtual ranks with clocks, trace, topology and cost model."""

    def __init__(
        self,
        nprocs: int,
        *,
        topology: Optional[Topology] = None,
        cost_model: Optional[CostModel] = None,
        profile: Optional[SystemProfile] = None,
    ) -> None:
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        if profile is not None:
            if topology is not None or cost_model is not None:
                raise ValueError("pass either profile or topology/cost_model, not both")
            topology = profile.topology(nprocs)
            cost_model = profile.cost_model
            self.profile_name = profile.name
        else:
            self.profile_name = "custom"
        self.nprocs = int(nprocs)
        self.topology = topology if topology is not None else SwitchTopology(nprocs)
        if self.topology.nprocs != self.nprocs:
            raise ValueError(
                f"topology built for {self.topology.nprocs} ranks, machine has {self.nprocs}"
            )
        self.model = cost_model if cost_model is not None else CostModel()
        self.clocks = np.zeros(self.nprocs, dtype=np.float64)
        self.trace = Trace()
        #: optional :class:`~repro.verify.audit.CommAuditor` observing every
        #: communication primitive (attach via ``repro.verify.enable_auditing``)
        self.auditor = None

    # -- clock access ---------------------------------------------------------

    def elapsed(self) -> float:
        """Virtual time elapsed so far: the latest rank clock."""
        return float(self.clocks.max())

    def reset_clocks(self) -> None:
        self.clocks[:] = 0.0
        self.trace.clear()

    def synchronize(self, ranks: Optional[Sequence[int]] = None) -> float:
        """Align clocks of ``ranks`` (default: all) to their maximum.

        Returns the synchronized time.  Collectives call this first — no
        participant can finish a collective before the last one enters it.
        """
        if ranks is None:
            t = float(self.clocks.max())
            self.clocks[:] = t
        else:
            idx = np.asarray(ranks, dtype=np.int64)
            t = float(self.clocks[idx].max())
            self.clocks[idx] = t
        return t

    # -- charging -------------------------------------------------------------

    def advance(
        self,
        per_rank_seconds: np.ndarray | float,
        phase: Optional[str] = None,
        *,
        messages: int = 0,
        nbytes: int = 0,
    ) -> None:
        """Advance rank clocks by ``per_rank_seconds`` and record the phase.

        The trace time is the *critical-path* contribution: the increase of
        the maximum clock caused by this advance.
        """
        before = self.clocks.max()
        self.clocks += per_rank_seconds
        after = self.clocks.max()
        self.trace.record(phase, time=float(after - before), messages=messages, nbytes=nbytes)

    def compute(
        self,
        nominal_seconds: np.ndarray | float,
        phase: Optional[str] = None,
    ) -> None:
        """Charge a compute phase of per-rank nominal (JuRoPA-core) seconds."""
        self.advance(self.model.compute_time(nominal_seconds), phase)

    def copy(self, per_rank_bytes: np.ndarray | float, phase: Optional[str] = None) -> None:
        """Charge local pack/unpack (memcpy) work."""
        self.advance(self.model.copy_time(per_rank_bytes), phase)

    def barrier(self, phase: Optional[str] = None) -> None:
        """Tree barrier across all ranks."""
        self.synchronize()
        t = self.model.tree_collective_time(self.nprocs, 8.0, self.topology.diameter())
        messages = 2 * max(0, self.nprocs - 1)
        if self.auditor is not None:
            self.auditor.observe_collective(phase, messages, 0)
        self.advance(t, phase, messages=messages, nbytes=0)

    # -- diagnostics ------------------------------------------------------------

    def imbalance(self) -> float:
        """Load imbalance of the virtual clocks: ``max/mean - 1``.

        0 means perfectly balanced ranks; the "all particles on a single
        process" distribution of Fig. 6 drives this toward ``nprocs - 1``.
        """
        mean = float(self.clocks.mean())
        if mean == 0.0:
            return 0.0
        return float(self.clocks.max()) / mean - 1.0

    # -- misc -----------------------------------------------------------------

    def check_rank(self, rank: int) -> int:
        r = int(rank)
        if not 0 <= r < self.nprocs:
            raise ValueError(f"rank {rank} out of range [0, {self.nprocs})")
        return r

    def __repr__(self) -> str:
        return (
            f"Machine(nprocs={self.nprocs}, topology={self.topology.name}, "
            f"profile={self.profile_name}, elapsed={self.elapsed():.3e}s)"
        )
