"""The simulated distributed-memory machine.

A :class:`Machine` hosts ``nprocs`` virtual ranks.  It owns

* per-rank **virtual clocks** (``numpy`` array of seconds),
* a :class:`~repro.simmpi.tracing.Trace` of per-phase costs,
* the :class:`~repro.simmpi.topology.Topology` and
  :class:`~repro.simmpi.costmodel.CostModel` used to price communication.

Algorithms never advance clocks directly; they call the communication
primitives in :mod:`repro.simmpi.collectives` / :mod:`repro.simmpi.p2p` (which
move real data *and* charge modeled time) and :meth:`Machine.compute` /
:meth:`Machine.copy` for local work.

Clock semantics
---------------
Clocks are per-rank and monotone.  A collective first synchronizes its
participants to the latest participant clock (collectives cannot complete
before the last rank arrives), then adds per-rank completion times.  A
point-to-point exchange advances only the involved ranks, letting load
imbalance (e.g. the "all particles on a single process" initial distribution
of Fig. 6) show up as one rank racing ahead of the others.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.perf import instrument
from repro.simmpi.costmodel import CostModel, SystemProfile
from repro.simmpi.topology import SwitchTopology, Topology
from repro.simmpi.tracing import Trace

__all__ = ["Machine"]


class Machine:
    """``nprocs`` virtual ranks with clocks, trace, topology and cost model."""

    def __init__(
        self,
        nprocs: int,
        *,
        topology: Optional[Topology] = None,
        cost_model: Optional[CostModel] = None,
        profile: Optional[SystemProfile] = None,
        perturbation: Optional["Perturbation"] = None,
    ) -> None:
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        if profile is not None:
            if topology is not None or cost_model is not None:
                raise ValueError("pass either profile or topology/cost_model, not both")
            topology = profile.topology(nprocs)
            cost_model = profile.cost_model
            self.profile_name = profile.name
        else:
            self.profile_name = "custom"
        self.nprocs = int(nprocs)
        self.topology = topology if topology is not None else SwitchTopology(nprocs)
        if self.topology.nprocs != self.nprocs:
            raise ValueError(
                f"topology built for {self.topology.nprocs} ranks, machine has {self.nprocs}"
            )
        self.model = cost_model if cost_model is not None else CostModel()
        #: the *pre-perturbation* cost model.  :meth:`perturb` swaps
        #: :attr:`model` for a degraded one; schedule-independent decisions
        #: (the ``auto`` collective-algorithm selector in
        #: :mod:`repro.simmpi.algos`) must read this one so they cannot
        #: depend on the chaos seed.
        self.nominal_model = self.model
        self.clocks = np.zeros(self.nprocs, dtype=np.float64)
        self.trace = Trace()
        #: optional :class:`~repro.verify.audit.CommAuditor` observing every
        #: communication primitive (attach via ``repro.verify.enable_auditing``)
        self.auditor = None
        #: optional :class:`~repro.obs.spans.ObsRecorder` receiving a span
        #: for every charge (attach via ``repro.obs.enable_observability``);
        #: ``None`` keeps every hot path byte-identical to an uninstrumented
        #: build
        self.obs = None
        #: optional :class:`~repro.simmpi.chaos.Perturbation` consulted when
        #: charging costs (never when moving data) — see :meth:`perturb`
        self.perturbation = None
        #: optional :class:`~repro.backend.ExecutionBackend` hosting the
        #: payload data plane (attach via :meth:`attach_backend`); ``None``
        #: keeps the historical in-process delivery byte-identical.  The
        #: backend only moves payload bytes — modeled charging never
        #: consults it, so traces and clocks are backend-independent.
        self.backend = None
        #: optional :class:`~repro.simmpi.algos.CollectiveAlgos` selecting
        #: per-collective algorithm engines (attach via
        #: :meth:`set_collective_algos`); ``None`` keeps every collective on
        #: the historical closed-form ``direct`` path byte-identically.
        self.collective_algos = None
        self._compute_factors: Optional[np.ndarray] = None
        self._comm_factors: Optional[np.ndarray] = None
        self._initial_clocks: Optional[np.ndarray] = None
        #: host-clock anchor of the previous charge point — the wall-phase
        #: attribution state of :func:`repro.perf.instrument.wall_phases`
        self._wall_anchor: Optional[tuple] = None
        if perturbation is not None:
            self.perturb(perturbation)

    # -- execution backend ----------------------------------------------------

    def attach_backend(self, backend) -> None:
        """Route this machine's payload data plane through an
        :class:`~repro.backend.ExecutionBackend`.

        Only delivery is rerouted; every charge is still computed centrally
        by this machine, which is what keeps traces, ledgers and state
        fingerprints bitwise-identical across backends.  Pass ``None`` to
        restore the historical in-process delivery.
        """
        if backend is not None and getattr(backend, "closed", False):
            raise RuntimeError(f"cannot attach closed backend {backend!r}")
        self.backend = backend

    # -- collective algorithm engines -----------------------------------------

    def set_collective_algos(self, algos) -> None:
        """Select per-collective algorithm engines for this machine.

        ``algos`` is a spec string (see
        :func:`repro.simmpi.algos.parse_algos`), a
        :class:`~repro.simmpi.algos.CollectiveAlgos` instance, or ``None``
        to restore the default ``direct`` path.  Only future collective
        calls are affected; specs resolving to all-``direct`` store
        ``None`` so the default path stays zero-overhead.
        """
        if algos is None:
            self.collective_algos = None
            return
        from repro.simmpi.algos import parse_algos

        self.collective_algos = parse_algos(algos)

    # -- chaos harness --------------------------------------------------------

    def perturb(self, perturbation: "Perturbation") -> None:
        """Apply a seeded :class:`~repro.simmpi.chaos.Perturbation`.

        Must happen before any cost has been charged: the perturbation skews
        the startup clocks and swaps in the degraded cost model, neither of
        which can be applied retroactively.  The null perturbation (all
        knobs zero) leaves the machine byte-identical to an unperturbed one.
        Applying the same perturbation object twice is a no-op.
        """
        if self.perturbation is perturbation:
            return
        if self.perturbation is not None:
            raise RuntimeError("machine already carries a perturbation")
        if float(self.clocks.max()) != 0.0 or self.trace.total_time() != 0.0:
            raise RuntimeError(
                "perturbation must be applied before any cost is charged"
            )
        self.perturbation = perturbation
        self.trace.note("perturbation", perturbation.describe())
        if perturbation.is_null:
            return
        self.model = perturbation.effective_model(self.model)
        self._compute_factors = perturbation.compute_factors(self.nprocs)
        self._comm_factors = perturbation.comm_factors(self.nprocs)
        self._initial_clocks = perturbation.initial_clocks(self.nprocs)
        if self._initial_clocks is not None:
            self.clocks[:] = self._initial_clocks

    def comm_factor(self, *ranks: int) -> float:
        """Communication slowdown of a message touching ``ranks``.

        The slowest involved endpoint dominates; with no arguments this is
        the machine-wide worst factor (used by synchronizing collectives).
        Exactly ``1.0`` on an unperturbed machine, so multiplying by it is
        the float identity.
        """
        if self._comm_factors is None:
            return 1.0
        if not ranks:
            return float(self._comm_factors.max())
        return float(max(self._comm_factors[r] for r in ranks))

    @property
    def comm_factors(self) -> Optional[np.ndarray]:
        """Per-rank communication slowdowns (``None`` when uniform)."""
        return self._comm_factors

    # -- clock access ---------------------------------------------------------

    def elapsed(self) -> float:
        """Virtual time elapsed so far: the latest rank clock."""
        return float(self.clocks.max())

    def reset_clocks(self) -> None:
        if self._initial_clocks is not None:
            self.clocks[:] = self._initial_clocks
        else:
            self.clocks[:] = 0.0
        self.trace.clear()
        if self.obs is not None:
            self.obs.clear()
        if self.perturbation is not None:
            self.trace.note("perturbation", self.perturbation.describe())

    def synchronize(self, ranks: Optional[Sequence[int]] = None) -> float:
        """Align clocks of ``ranks`` (default: all) to their maximum.

        Returns the synchronized time.  Collectives call this first — no
        participant can finish a collective before the last one enters it.
        """
        if ranks is None:
            t = float(self.clocks.max())
            self.clocks[:] = t
        else:
            idx = np.asarray(ranks, dtype=np.int64)
            t = float(self.clocks[idx].max())
            self.clocks[idx] = t
        return t

    # -- charging -------------------------------------------------------------

    def advance(
        self,
        per_rank_seconds: np.ndarray | float,
        phase: Optional[str] = None,
        *,
        messages: int = 0,
        nbytes: int = 0,
        op: Optional[str] = None,
    ) -> None:
        """Advance rank clocks by ``per_rank_seconds`` and record the phase.

        The trace time is the *critical-path* contribution: the increase of
        the maximum clock caused by this advance.

        ``op`` names the charging primitive ("compute", "alltoallv", ...)
        for the span stream when an :class:`~repro.obs.spans.ObsRecorder`
        is attached; it never affects the trace.

        While :func:`repro.perf.instrument.wall_phases` is active, the host
        wall nanoseconds since this machine's previous charge point are
        additionally attributed to ``phase`` (the code producing a charge
        owns the host time leading up to it); the modeled fields are
        byte-identical with and without the instrumentation.
        """
        obs = self.obs
        rank_before = (
            self.clocks.copy() if (obs is not None and obs.per_rank) else None
        )
        before = self.clocks.max()
        self.clocks += per_rank_seconds
        after = self.clocks.max()
        t = float(after - before)
        self.trace.record(phase, time=t, messages=messages, nbytes=nbytes)
        if obs is not None:
            obs.on_charge(
                phase,
                op if op is not None else "advance",
                t,
                float(before),
                float(after),
                messages,
                nbytes,
                rank_before,
                self.clocks,
            )
        if instrument.wall_phases_enabled():
            now = instrument.wall_anchor()
            anchor = self._wall_anchor
            if anchor is not None:
                self.trace.record_wall(phase, now[0] - anchor[0], now[1] - anchor[1])
            self._wall_anchor = now
        elif self._wall_anchor is not None:
            self._wall_anchor = None

    def compute(
        self,
        nominal_seconds: np.ndarray | float,
        phase: Optional[str] = None,
    ) -> None:
        """Charge a compute phase of per-rank nominal (JuRoPA-core) seconds.

        An active perturbation scales each rank's time by its jitter/
        straggler factor — the clocks diverge, the computed data does not.
        The *nominal* (pre-perturbation) per-rank seconds are additionally
        recorded into :meth:`Trace.record_rank_work
        <repro.simmpi.tracing.Trace.record_rank_work>` so the load-balancing
        subsystem can observe the work distribution without its decisions
        depending on the perturbation schedule.
        """
        nominal = np.broadcast_to(
            np.asarray(nominal_seconds, dtype=np.float64), (self.nprocs,)
        )
        self.trace.record_rank_work(phase, nominal)
        t = self.model.compute_time(nominal_seconds)
        if self._compute_factors is not None:
            t = t * self._compute_factors
        self.advance(t, phase, op="compute")

    def copy(self, per_rank_bytes: np.ndarray | float, phase: Optional[str] = None) -> None:
        """Charge local pack/unpack (memcpy) work."""
        t = self.model.copy_time(per_rank_bytes)
        if self._compute_factors is not None:
            t = t * self._compute_factors
        self.advance(t, phase, op="copy")

    def barrier(self, phase: Optional[str] = None) -> None:
        """Tree barrier across all ranks."""
        self.synchronize()
        t = self.model.tree_collective_time(self.nprocs, 8.0, self.topology.diameter())
        t *= self.comm_factor()
        messages = 2 * max(0, self.nprocs - 1)
        if self.auditor is not None:
            self.auditor.observe_collective(phase, messages, 0)
        self.advance(t, phase, messages=messages, nbytes=0, op="barrier")

    # -- diagnostics ------------------------------------------------------------

    def imbalance(self) -> float:
        """Load imbalance of the virtual clocks: ``max/mean - 1``.

        0 means perfectly balanced ranks; the "all particles on a single
        process" distribution of Fig. 6 drives this toward ``nprocs - 1``.
        """
        mean = float(self.clocks.mean())
        if mean == 0.0:
            return 0.0
        return float(self.clocks.max()) / mean - 1.0

    # -- misc -----------------------------------------------------------------

    def check_rank(self, rank: int) -> int:
        r = int(rank)
        if not 0 <= r < self.nprocs:
            raise ValueError(f"rank {rank} out of range [0, {self.nprocs})")
        return r

    def __repr__(self) -> str:
        return (
            f"Machine(nprocs={self.nprocs}, topology={self.topology.name}, "
            f"profile={self.profile_name}, elapsed={self.elapsed():.3e}s)"
        )
