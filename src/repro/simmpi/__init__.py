"""Simulated distributed-memory message-passing machine.

This subpackage provides the substrate on which every parallel algorithm in
:mod:`repro` runs.  It replaces a real MPI installation (the paper ran on the
JuRoPA InfiniBand cluster and the Juqueen Blue Gene/Q) with a deterministic
single-host simulation:

* :class:`~repro.simmpi.machine.Machine` hosts ``P`` virtual ranks.  Each rank
  owns real NumPy arrays; communication primitives *actually move the data*
  between per-rank arrays, so all algorithms are testable for correctness.
* Every primitive simultaneously advances per-rank **virtual clocks** using a
  LogGP-style cost model parameterised by a network topology
  (:class:`~repro.simmpi.topology.FatTreeTopology` for a JuRoPA-like switched
  cluster, :class:`~repro.simmpi.topology.TorusTopology` for a Blue Gene/Q-like
  torus).  Benchmarks report these modeled times.
* :class:`~repro.simmpi.tracing.Trace` records per-phase message counts,
  byte volumes and elapsed virtual time, which is what the paper's figures
  plot (sort / restore / resort / total runtimes).

The communication API mirrors the semantics of the MPI operations used by the
ScaFaCoS library: ``alltoallv`` (fine-grained data redistribution),
point-to-point ``sendrecv`` rounds (merge-exchange sorting, neighborhood
exchange), ``allgatherv`` (splitter selection), ``allreduce`` (max-movement
determination) and so on.

Each collective can optionally run through a *staged algorithm engine*
(:mod:`repro.simmpi.algos` — pairwise/Bruck alltoallv, ring/recursive-doubling
allgatherv, tree/recursive-halving allreduce, binomial rooted trees) that
routes the same payloads through explicit point-to-point rounds with per-hop
topology charging; recv payloads are bitwise-identical to the direct model by
contract, only the modeled clocks and message counts differ.
"""

from repro.simmpi.algos import ALGO_CHOICES, CollectiveAlgos, parse_algos
from repro.simmpi.chaos import MailboxScheduler, Perturbation
from repro.simmpi.costmodel import CostModel, SystemProfile, JUROPA, JUQUEEN, LOCAL
from repro.simmpi.machine import Machine
from repro.simmpi.topology import (
    FatTreeTopology,
    SwitchTopology,
    Topology,
    TorusTopology,
)
from repro.simmpi.tracing import PhaseTimer, Trace
from repro.simmpi.cart import CartGrid, dims_create
from repro.simmpi.spmd import SPMDContext, SPMDDeadlock, run_spmd

__all__ = [
    "ALGO_CHOICES",
    "CartGrid",
    "CollectiveAlgos",
    "CostModel",
    "FatTreeTopology",
    "JUQUEEN",
    "JUROPA",
    "LOCAL",
    "Machine",
    "MailboxScheduler",
    "Perturbation",
    "PhaseTimer",
    "SPMDContext",
    "SPMDDeadlock",
    "SwitchTopology",
    "SystemProfile",
    "Topology",
    "TorusTopology",
    "Trace",
    "dims_create",
    "parse_algos",
]
