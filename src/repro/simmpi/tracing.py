"""Per-phase accounting of virtual time, message counts and byte volumes.

The paper's figures decompose solver runtimes into phases (``sort``,
``restore``, ``resort``, ``total``); :class:`Trace` is the single place where
those decompositions come from.  Every communication primitive and every
modeled compute phase reports into the trace under a *phase label*, and the
benchmark harness reads per-phase aggregates back out.

Phase labels are free-form strings.  By convention the redistribution phases
used throughout the repo are:

``sort``
    placing particles into the solver's domain decomposition (parallel
    sorting for the FMM, grid redistribution for the P2NFFT),
``restore``
    method A's restoration of the original particle order and distribution,
``resort``
    method B's redistribution of additional application data via resort
    indices (including the resort-index creation),
``near``/``far``/``mesh``/...
    solver compute phases,
``integrate``
    the application's leapfrog update.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["PhaseStats", "PhaseTable", "PhaseTimer", "Trace"]


@dataclasses.dataclass
class PhaseStats:
    """Aggregated statistics for one phase label.

    Attributes
    ----------
    time:
        Total virtual seconds attributed to the phase.  For communication
        this is the *maximum over ranks* of the clock advance per call,
        summed over calls (i.e. the critical-path view a timer around the
        call would report on a real machine).
    messages:
        Number of point-to-point messages sent (collectives count their
        constituent messages according to the modeled algorithm).
    bytes:
        Payload bytes sent.
    calls:
        Number of primitive invocations attributed to the phase.
    wall_ns:
        Host wall nanoseconds attributed to the phase — populated only while
        :func:`repro.perf.instrument.wall_phases` is active; always 0
        otherwise.  The *modeled* fields above never depend on it.
    alloc_bytes:
        Net host bytes allocated during the phase's attributed spans (only
        populated while tracemalloc-backed allocation tracing is on; may be
        negative when a span frees more than it allocates).
    """

    time: float = 0.0
    messages: int = 0
    bytes: int = 0
    calls: int = 0
    wall_ns: int = 0
    alloc_bytes: int = 0

    def add(self, time: float = 0.0, messages: int = 0, nbytes: int = 0, calls: int = 1) -> None:
        self.time += time
        self.messages += messages
        self.bytes += nbytes
        self.calls += calls

    def merged(self, other: "PhaseStats") -> "PhaseStats":
        return PhaseStats(
            time=self.time + other.time,
            messages=self.messages + other.messages,
            bytes=self.bytes + other.bytes,
            calls=self.calls + other.calls,
            wall_ns=self.wall_ns + other.wall_ns,
            alloc_bytes=self.alloc_bytes + other.alloc_bytes,
        )


class PhaseTable(Dict[str, PhaseStats]):
    """A ``{label: PhaseStats}`` mapping with the :class:`Trace` read API.

    Returned by :meth:`Trace.snapshot` and :meth:`Trace.delta_since` so
    snapshots and deltas can be queried exactly like the live trace
    (``table.phase("sort").time``, ``table.time("sort", "restore")``)
    instead of poking at dict internals.  Still a plain ``dict`` underneath.
    """

    def phase(self, label: str) -> PhaseStats:
        """Stats for ``label`` — an independent copy, zeros if absent."""
        stats = self.get(label)
        return PhaseStats() if stats is None else dataclasses.replace(stats)

    def labels(self) -> List[str]:
        """Recorded phase labels, sorted."""
        return sorted(self)

    def items_sorted(self) -> List[Tuple[str, PhaseStats]]:
        """``(label, stats)`` pairs in deterministic (sorted-label) order."""
        return sorted(self.items())

    def time(self, *labels: str) -> float:
        """Summed virtual seconds of ``labels`` (absent labels count 0)."""
        return sum(self.phase(label).time for label in labels)

    def totals(self) -> PhaseStats:
        """All phases merged into one :class:`PhaseStats`."""
        total = PhaseStats()
        for _label, stats in sorted(self.items()):
            total = total.merged(stats)
        return total


class Trace:
    """Mutable per-phase statistics store attached to a :class:`Machine`.

    Besides the per-phase time/message/byte aggregates, the trace carries
    free-form **event counters** (:meth:`bump`/:meth:`counter`) for
    quantities that are not tied to clock advances — e.g. the plan engine's
    ``resort_plan.compiles``/``resort_plan.cache_hits``/
    ``resort_plan.fused_columns``/``resort_plan.bytes_moved`` statistics the
    benchmark harness reads back out.
    """

    def __init__(self) -> None:
        self._phases: Dict[str, PhaseStats] = {}
        self._counters: Dict[str, int] = {}
        self._notes: Dict[str, str] = {}
        self._rank_work: Dict[str, np.ndarray] = {}

    def record(
        self,
        phase: Optional[str],
        *,
        time: float = 0.0,
        messages: int = 0,
        nbytes: int = 0,
        calls: int = 1,
    ) -> None:
        """Attribute ``time``/``messages``/``nbytes`` to ``phase``.

        ``phase=None`` records under the catch-all label ``"other"`` so no
        cost is ever silently dropped.
        """
        label = phase if phase is not None else "other"
        stats = self._phases.get(label)
        if stats is None:
            stats = self._phases[label] = PhaseStats()
        stats.add(time=time, messages=messages, nbytes=nbytes, calls=calls)

    def record_wall(self, phase: Optional[str], ns: int, alloc_bytes: int = 0) -> None:
        """Attribute host wall nanoseconds (and net allocated bytes) to
        ``phase`` without touching the modeled fields or the call count.

        Fed by :meth:`Machine.advance <repro.simmpi.machine.Machine.advance>`
        while :func:`repro.perf.instrument.wall_phases` is active.
        """
        label = phase if phase is not None else "other"
        stats = self._phases.get(label)
        if stats is None:
            stats = self._phases[label] = PhaseStats()
        stats.wall_ns += int(ns)
        stats.alloc_bytes += int(alloc_bytes)

    def get(self, phase: str) -> PhaseStats:
        """Return the stats for ``phase`` (zeros if never recorded).

        .. warning:: returns the *live* mutable stats object when the phase
           exists — prefer :meth:`phase`, which always returns a copy.
        """
        return self._phases.get(phase, PhaseStats())

    # -- v2 read API -------------------------------------------------------------

    def phase(self, label: str) -> PhaseStats:
        """Stats for ``label`` — an independent copy, zeros if absent.

        The safe accessor: mutating the returned object never corrupts the
        trace, and unrecorded labels read as all-zero instead of raising.
        """
        stats = self._phases.get(label)
        return PhaseStats() if stats is None else dataclasses.replace(stats)

    def labels(self) -> List[str]:
        """Recorded phase labels in deterministic (sorted) order."""
        return sorted(self._phases)

    def items(self) -> List[Tuple[str, PhaseStats]]:
        """``(label, stats-copy)`` pairs in deterministic label order."""
        return [(label, dataclasses.replace(self._phases[label]))
                for label in sorted(self._phases)]

    def totals(self) -> PhaseStats:
        """All phases merged into one :class:`PhaseStats`."""
        total = PhaseStats()
        for _label, stats in sorted(self._phases.items()):
            total = total.merged(stats)
        return total

    # -- per-rank work -----------------------------------------------------------

    def record_rank_work(self, phase: Optional[str], per_rank_seconds: np.ndarray) -> None:
        """Accumulate per-rank **nominal** compute seconds under ``phase``.

        The per-phase ``time`` aggregate above is a critical-path (max over
        ranks) view, which erases the load distribution; the load-balancing
        subsystem needs the full per-rank vector to compute the imbalance
        factor λ = max/mean.  Fed by
        :meth:`Machine.compute <repro.simmpi.machine.Machine.compute>` with
        the *pre-perturbation* nominal cost so λ — and any rebalance decision
        derived from it — is schedule-independent (the DST property).
        """
        label = phase if phase is not None else "other"
        work = np.asarray(per_rank_seconds, dtype=np.float64)
        existing = self._rank_work.get(label)
        if existing is None:
            self._rank_work[label] = np.zeros_like(work) + work
        else:
            existing += work

    def rank_work(self, phase: str) -> Optional[np.ndarray]:
        """Accumulated per-rank nominal seconds for ``phase`` (copy), or ``None``."""
        work = self._rank_work.get(phase)
        return None if work is None else work.copy()

    def rank_work_snapshot(self) -> Dict[str, np.ndarray]:
        """Deep copy of the per-rank work (for delta computation)."""
        return {k: v.copy() for k, v in self._rank_work.items()}

    def rank_work_delta(
        self, snapshot: Dict[str, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """Per-phase per-rank work accumulated since a :meth:`rank_work_snapshot`."""
        out: Dict[str, np.ndarray] = {}
        for label, work in self._rank_work.items():
            before = snapshot.get(label)
            d = work - before if before is not None else work.copy()
            if np.any(d != 0.0):
                out[label] = d
        return out

    # -- event counters ---------------------------------------------------------

    def bump(self, name: str, value: int = 1) -> None:
        """Increment the event counter ``name`` by ``value``."""
        self._counters[name] = self._counters.get(name, 0) + int(value)

    def counter(self, name: str) -> int:
        """Current value of an event counter (0 if never bumped)."""
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        """Copy of all event counters."""
        return dict(self._counters)

    # -- free-form annotations --------------------------------------------------

    def note(self, key: str, value: str) -> None:
        """Attach a free-form annotation (e.g. the active perturbation)."""
        self._notes[str(key)] = str(value)

    def notes(self) -> Dict[str, str]:
        """Copy of all annotations."""
        return dict(self._notes)

    def phases(self) -> Iterator[str]:
        return iter(sorted(self._phases))

    def total_time(self) -> float:
        return sum(s.time for s in self._phases.values())

    def total_messages(self) -> int:
        return sum(s.messages for s in self._phases.values())

    def total_bytes(self) -> int:
        return sum(s.bytes for s in self._phases.values())

    def snapshot(self) -> PhaseTable:
        """Deep copy of the current per-phase stats (for delta computation)."""
        return PhaseTable(
            (k, dataclasses.replace(v)) for k, v in self._phases.items()
        )

    def delta_since(self, snapshot: Dict[str, PhaseStats]) -> PhaseTable:
        """Per-phase difference between now and an earlier :meth:`snapshot`."""
        out = PhaseTable()
        for label, stats in self._phases.items():
            before = snapshot.get(label, PhaseStats())
            d = PhaseStats(
                time=stats.time - before.time,
                messages=stats.messages - before.messages,
                bytes=stats.bytes - before.bytes,
                calls=stats.calls - before.calls,
                wall_ns=stats.wall_ns - before.wall_ns,
                alloc_bytes=stats.alloc_bytes - before.alloc_bytes,
            )
            if d.time or d.messages or d.bytes or d.calls or d.wall_ns:
                out[label] = d
        return out

    # -- checkpointing ----------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Complete deep-copied trace state for checkpointing.

        The inverse of :meth:`load_state`; together they let
        :mod:`repro.ckpt` freeze a trace mid-run and reinstate it bit-exactly
        on a fresh machine (phases, event counters, annotations and the
        per-rank nominal work vectors).
        """
        return {
            "phases": {k: dataclasses.replace(v) for k, v in self._phases.items()},
            "counters": dict(self._counters),
            "notes": dict(self._notes),
            "rank_work": {k: v.copy() for k, v in self._rank_work.items()},
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Replace the entire trace content with a :meth:`state_dict` copy.

        Deep-copies the input, so the caller's state dict (e.g. a held
        checkpoint) is never aliased by the live trace.
        """
        self.clear()
        for label, stats in state.get("phases", {}).items():  # type: ignore[union-attr]
            self._phases[str(label)] = dataclasses.replace(stats)
        for name, value in state.get("counters", {}).items():  # type: ignore[union-attr]
            self._counters[str(name)] = int(value)
        for key, value in state.get("notes", {}).items():  # type: ignore[union-attr]
            self._notes[str(key)] = str(value)
        for label, work in state.get("rank_work", {}).items():  # type: ignore[union-attr]
            self._rank_work[str(label)] = np.asarray(work, dtype=np.float64).copy()

    def clear(self) -> None:
        self._phases.clear()
        self._counters.clear()
        self._notes.clear()
        self._rank_work.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows = ", ".join(
            f"{k}: {v.time:.3e}s/{v.messages}msg/{v.bytes}B" for k, v in sorted(self._phases.items())
        )
        return f"Trace({rows})"


class PhaseTimer:
    """Context manager measuring the virtual-clock critical path of a block.

    Example
    -------
    >>> with PhaseTimer(machine) as t:
    ...     alltoallv(machine, payload, phase="sort")
    >>> t.elapsed  # max-over-ranks clock advance of the block
    """

    def __init__(self, machine) -> None:
        self._machine = machine
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "PhaseTimer":
        self.start = self._machine.elapsed()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = self._machine.elapsed() - self.start
