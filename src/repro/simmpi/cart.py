"""Cartesian process grids (MPI_Cart_create / MPI_Dims_create analogues).

The P2NFFT solver distributes the particle system uniformly among a
Cartesian grid of processes (Sect. II-C of the paper); the "process grid"
initial particle distribution of Fig. 6 uses the same object.  A
:class:`CartGrid` maps ranks to grid coordinates, enumerates the neighbor
ranks used by the neighborhood communication of Sect. III-B, and computes
target ranks from particle positions.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["dims_create", "CartGrid"]


def dims_create(nprocs: int, ndims: int = 3) -> Tuple[int, ...]:
    """Factor ``nprocs`` into ``ndims`` near-equal factors (MPI_Dims_create).

    The returned dims are sorted descending and their product is exactly
    ``nprocs``.
    """
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    if ndims < 1:
        raise ValueError(f"ndims must be >= 1, got {ndims}")
    dims = [1] * ndims
    remaining = nprocs
    # greedily assign prime factors largest-first to the smallest dim
    factors: List[int] = []
    f = 2
    while f * f <= remaining:
        while remaining % f == 0:
            factors.append(f)
            remaining //= f
        f += 1
    if remaining > 1:
        factors.append(remaining)
    for p in sorted(factors, reverse=True):
        dims[int(np.argmin(dims))] *= p
    return tuple(sorted(dims, reverse=True))


class CartGrid:
    """A periodic Cartesian grid of ``nprocs`` ranks over a 3-D box.

    Parameters
    ----------
    nprocs:
        total number of ranks; factored with :func:`dims_create` unless
        ``dims`` is given.
    box:
        edge lengths of the (axis-aligned) system box.
    offset:
        lower corner of the box.
    periodic:
        whether particle coordinates wrap around the box (the paper's
        benchmark system uses periodic boundary conditions).
    """

    def __init__(
        self,
        nprocs: int,
        box: Sequence[float],
        offset: Sequence[float] = (0.0, 0.0, 0.0),
        dims: Sequence[int] | None = None,
        periodic: bool = True,
    ) -> None:
        self.nprocs = int(nprocs)
        self.box = np.asarray(box, dtype=np.float64)
        self.offset = np.asarray(offset, dtype=np.float64)
        if self.box.shape != (3,) or self.offset.shape != (3,):
            raise ValueError("box and offset must be 3-vectors")
        if np.any(self.box <= 0):
            raise ValueError(f"box edges must be positive, got {self.box}")
        self.dims = tuple(int(d) for d in (dims if dims is not None else dims_create(nprocs, 3)))
        if math.prod(self.dims) != self.nprocs:
            raise ValueError(f"dims {self.dims} do not multiply to nprocs={self.nprocs}")
        self.periodic = bool(periodic)
        self._strides = (self.dims[1] * self.dims[2], self.dims[2], 1)
        #: subdomain edge lengths
        self.cell = self.box / np.asarray(self.dims, dtype=np.float64)

    # -- rank <-> coords -----------------------------------------------------

    def coords_of(self, ranks: np.ndarray | int) -> np.ndarray:
        """Grid coordinates of each rank, shape ``(..., 3)``."""
        ranks = np.asarray(ranks, dtype=np.int64)
        coords = np.empty(ranks.shape + (3,), dtype=np.int64)
        for i in range(3):
            coords[..., i] = (ranks // self._strides[i]) % self.dims[i]
        return coords

    def rank_of(self, coords: np.ndarray) -> np.ndarray:
        """Rank of each grid coordinate triple (wrapping if periodic)."""
        coords = np.asarray(coords, dtype=np.int64)
        if coords.shape[-1] != 3:
            raise ValueError(f"coords must have last dim 3, got {coords.shape}")
        dims = np.asarray(self.dims, dtype=np.int64)
        if self.periodic:
            coords = coords % dims
        else:
            if np.any(coords < 0) or np.any(coords >= dims):
                raise ValueError("coords out of range for non-periodic grid")
        return (
            coords[..., 0] * self._strides[0]
            + coords[..., 1] * self._strides[1]
            + coords[..., 2] * self._strides[2]
        )

    # -- geometry ------------------------------------------------------------

    def cell_of_positions(self, pos: np.ndarray) -> np.ndarray:
        """Grid cell coordinates containing each position, shape ``(n, 3)``."""
        pos = np.asarray(pos, dtype=np.float64)
        rel = (pos - self.offset) / self.cell
        cells = np.floor(rel).astype(np.int64)
        dims = np.asarray(self.dims, dtype=np.int64)
        if self.periodic:
            cells %= dims
        else:
            np.clip(cells, 0, dims - 1, out=cells)
        return cells

    def rank_of_positions(self, pos: np.ndarray) -> np.ndarray:
        """Target rank for each particle position (the P2NFFT distribution
        function: "the target process for each particle is calculated from
        its position")."""
        return self.rank_of(self.cell_of_positions(pos))

    def subdomain_bounds(self, rank: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(lo, hi)`` corners of a rank's subdomain."""
        c = self.coords_of(rank)
        lo = self.offset + c * self.cell
        return lo, lo + self.cell

    # -- neighborhoods ---------------------------------------------------------

    def neighbor_ranks(self, rank: int, include_self: bool = False) -> np.ndarray:
        """The (up to) 26 face/edge/corner neighbor ranks of ``rank``.

        For non-periodic grids, neighbors outside the grid are dropped; for
        small dims, duplicate wrapped neighbors are deduplicated.
        """
        c = self.coords_of(rank)
        out = []
        dims = np.asarray(self.dims, dtype=np.int64)
        for d in itertools.product((-1, 0, 1), repeat=3):
            if d == (0, 0, 0) and not include_self:
                continue
            nc = c + np.asarray(d, dtype=np.int64)
            if self.periodic:
                nc = nc % dims
            elif np.any(nc < 0) or np.any(nc >= dims):
                continue
            out.append(int(self.rank_of(nc)))
        return np.unique(np.asarray(out, dtype=np.int64))

    def neighbor_table(self, include_self: bool = False) -> List[np.ndarray]:
        """Neighbor ranks for every rank (cached by callers as needed)."""
        return [self.neighbor_ranks(r, include_self) for r in range(self.nprocs)]

    def max_neighbor_extent(self) -> float:
        """Smallest subdomain edge — the distance bound under which particle
        movement stays within direct grid neighbors (Sect. III-B heuristic
        for switching the P2NFFT to neighborhood communication)."""
        return float(self.cell.min())

    def __repr__(self) -> str:
        return f"CartGrid(nprocs={self.nprocs}, dims={self.dims}, periodic={self.periodic})"
