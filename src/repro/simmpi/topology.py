"""Network topologies for the simulated machine.

Two families reproduce the paper's platforms:

* :class:`FatTreeTopology` — a switched, full-bisection-bandwidth network
  like JuRoPA's QDR InfiniBand fat tree.  All inter-node routes have the same
  small hop count, and the bisection scales with the machine, so collective
  all-to-all exchanges are efficient and *neighborhood* point-to-point
  communication enjoys no locality advantage (exactly the observation in
  Sect. IV-D of the paper: "the switched communication network does not
  provide performance benefits for communication between neighboring
  processes").
* :class:`TorusTopology` — a k-ary d-cube with wrap-around links like
  Juqueen's Blue Gene/Q 5-D torus.  Hop counts grow with Manhattan distance
  and the bisection grows only like ``P^{(d-1)/d}``, so all-to-all exchanges
  pay latency *and* contention at scale, while nearest-neighbor exchanges of
  a process grid embedded in the torus stay cheap.  This is what makes the
  paper's "method B with maximum movement" win on Juqueen beyond 4096
  processes (Fig. 9 right).

:class:`SwitchTopology` is a degenerate single-crossbar network used for
small unit tests.

Ranks are laid out consecutively on nodes of ``node_size`` ranks each;
intra-node communication has hop count 0 (shared memory).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

__all__ = ["Topology", "SwitchTopology", "FatTreeTopology", "TorusTopology"]


class Topology:
    """Abstract network topology over ``nprocs`` ranks.

    Subclasses implement :meth:`hops`, :meth:`diameter` and
    :meth:`bisection_links`; everything else (cost arithmetic) lives in
    :class:`repro.simmpi.costmodel.CostModel`.
    """

    #: human-readable identifier used in benchmark reports
    name: str = "abstract"

    def __init__(self, nprocs: int, node_size: int = 1) -> None:
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        if node_size < 1:
            raise ValueError(f"node_size must be >= 1, got {node_size}")
        self.nprocs = int(nprocs)
        self.node_size = int(node_size)
        self.nnodes = -(-self.nprocs // self.node_size)

    # -- geometry -----------------------------------------------------------

    def node_of(self, ranks: np.ndarray | int) -> np.ndarray | int:
        """Node index hosting each rank (consecutive placement)."""
        return np.asarray(ranks, dtype=np.int64) // self.node_size

    def hops(self, src: np.ndarray | int, dst: np.ndarray | int) -> np.ndarray:
        """Network hop count between ranks (0 for intra-node pairs)."""
        raise NotImplementedError

    def diameter(self) -> int:
        """Maximum hop count between any two ranks."""
        raise NotImplementedError

    def bisection_links(self) -> int:
        """Number of links crossing a worst-case equal bisection.

        Used by the cost model to charge contention on aggregate traffic:
        an all-to-all moves roughly half of its total volume across the
        bisection.
        """
        raise NotImplementedError

    # -- helpers ------------------------------------------------------------

    def _internode(self, src, dst) -> np.ndarray:
        """Boolean mask of pairs on different nodes (broadcasting)."""
        return np.asarray(self.node_of(src)) != np.asarray(self.node_of(dst))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(nprocs={self.nprocs}, node_size={self.node_size})"


class SwitchTopology(Topology):
    """Single crossbar switch: every inter-node route is exactly one hop."""

    name = "switch"

    def hops(self, src, dst):
        return self._internode(src, dst).astype(np.int64)

    def diameter(self) -> int:
        return 1 if self.nnodes > 1 else 0

    def bisection_links(self) -> int:
        # A crossbar has a dedicated port per node; bisection = half of them.
        return max(1, self.nnodes // 2)


class FatTreeTopology(Topology):
    """Multi-stage switched fat tree with full bisection bandwidth.

    Hop counts follow the tree: ranks under the same leaf switch are 2 hops
    apart, otherwise they climb to a core switch, giving ``2*levels`` hops.
    Because the tree is "fat", :meth:`bisection_links` grows linearly with
    the number of nodes, so contention never dominates — matching JuRoPA's
    behaviour in the paper where all-to-all beats neighborhood
    point-to-point.
    """

    name = "fat-tree"

    def __init__(self, nprocs: int, node_size: int = 8, radix: int = 24) -> None:
        super().__init__(nprocs, node_size)
        if radix < 2:
            raise ValueError(f"radix must be >= 2, got {radix}")
        self.radix = int(radix)
        # number of tree levels needed to span all nodes
        self.levels = max(1, math.ceil(math.log(max(self.nnodes, 2), self.radix)))

    def hops(self, src, dst):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        nsrc = self.node_of(src)
        ndst = self.node_of(dst)
        hops = np.zeros(np.broadcast(nsrc, ndst).shape, dtype=np.int64)
        diff = nsrc != ndst
        if not np.any(diff):
            return hops
        # climb until the first common ancestor switch: l levels up + l down
        a = np.broadcast_to(nsrc, hops.shape).copy()
        b = np.broadcast_to(ndst, hops.shape).copy()
        level = np.zeros_like(hops)
        active = diff.copy()
        while np.any(active):
            level[active] += 1
            a[active] //= self.radix
            b[active] //= self.radix
            active = active & (a != b)
        hops[diff] = 2 * level[diff]
        return hops

    def diameter(self) -> int:
        return 2 * self.levels if self.nnodes > 1 else 0

    def bisection_links(self) -> int:
        # full bisection: one link per node crossing the cut / 2
        return max(1, self.nnodes // 2)


class TorusTopology(Topology):
    """k-ary d-cube with wrap-around links (Blue Gene/Q-like).

    ``dims`` are the torus dimensions over *nodes*.  Ranks are placed
    ``node_size`` per node in row-major node order.  Hops are the wrapped
    Manhattan distance between node coordinates.
    """

    name = "torus"

    def __init__(
        self,
        nprocs: int,
        dims: Sequence[int] | None = None,
        node_size: int = 16,
    ) -> None:
        super().__init__(nprocs, node_size)
        if dims is None:
            dims = balanced_torus_dims(self.nnodes, ndims=3)
        self.dims: Tuple[int, ...] = tuple(int(d) for d in dims)
        if any(d < 1 for d in self.dims):
            raise ValueError(f"torus dims must be >= 1, got {self.dims}")
        cap = 1
        for d in self.dims:
            cap *= d
        if cap < self.nnodes:
            raise ValueError(
                f"torus dims {self.dims} hold {cap} nodes < required {self.nnodes}"
            )
        # precompute strides for node -> coords
        self._strides = np.empty(len(self.dims), dtype=np.int64)
        s = 1
        for i in range(len(self.dims) - 1, -1, -1):
            self._strides[i] = s
            s *= self.dims[i]

    def node_coords(self, nodes: np.ndarray | int) -> np.ndarray:
        """Coordinates of each node in the torus, shape ``(..., ndims)``."""
        nodes = np.asarray(nodes, dtype=np.int64)
        coords = np.empty(nodes.shape + (len(self.dims),), dtype=np.int64)
        for i, d in enumerate(self.dims):
            coords[..., i] = (nodes // self._strides[i]) % d
        return coords

    def hops(self, src, dst):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        ca = self.node_coords(self.node_of(src))
        cb = self.node_coords(self.node_of(dst))
        ca, cb = np.broadcast_arrays(ca, cb)
        delta = np.abs(ca - cb)
        dims = np.asarray(self.dims, dtype=np.int64)
        wrapped = np.minimum(delta, dims - delta)
        return wrapped.sum(axis=-1)

    def diameter(self) -> int:
        return int(sum(d // 2 for d in self.dims))

    def bisection_links(self) -> int:
        # Cut the torus across its largest dimension: 2 wrap-around planes of
        # links, each containing (nnodes / kmax) links.
        kmax = max(self.dims)
        if kmax == 1:
            return 1
        plane = 1
        for d in self.dims:
            plane *= d
        plane //= kmax
        return max(1, 2 * plane)


def balanced_torus_dims(nnodes: int, ndims: int = 3) -> Tuple[int, ...]:
    """Choose near-cubic torus dimensions whose product covers ``nnodes``.

    The product of the returned dims is the smallest ``>= nnodes`` that can
    be written as a product of ``ndims`` near-equal factors of the form
    rounded from ``nnodes**(1/ndims)``.
    """
    if nnodes < 1:
        raise ValueError(f"nnodes must be >= 1, got {nnodes}")
    if ndims < 1:
        raise ValueError(f"ndims must be >= 1, got {ndims}")
    base = max(1, round(nnodes ** (1.0 / ndims)))
    for b in (base, base + 1):
        dims = [b] * ndims
        # shrink trailing dims while the product still covers nnodes
        for i in range(ndims - 1, -1, -1):
            while dims[i] > 1:
                trial = dims.copy()
                trial[i] -= 1
                if math.prod(trial) >= nnodes:
                    dims = trial
                else:
                    break
        if math.prod(dims) >= nnodes:
            return tuple(sorted(dims, reverse=True))
    # fallback: grow the first dim
    dims = [base] * ndims
    while math.prod(dims) < nnodes:
        dims[0] += 1
    return tuple(sorted(dims, reverse=True))
