"""LogGP-style communication and compute cost model.

The model charges, per point-to-point message of ``b`` payload bytes between
ranks ``i`` and ``j``:

``T(i, j, b) = o + L0 + L_hop * hops(i, j) + b / beta``

where ``o`` is the CPU send+receive overhead, ``L0`` the base wire/switch
latency, ``L_hop`` the per-hop latency and ``beta`` the per-link bandwidth.
Intra-node messages (hop count 0) use the (much higher) ``beta_node``
bandwidth and skip ``L0``.

Collectives are modeled by the algorithms MPI implementations actually use:

* **alltoallv** — every rank posts one message per non-empty destination
  (irecv/isend, as in the fine-grained data redistribution operation of the
  paper [13]); the per-rank time is the serialized per-message overhead plus
  the max of its in/out volume over bandwidth; on top of that the aggregate
  volume crossing the network bisection adds a contention term.  On a
  fat tree the bisection is full so the contention term is negligible; on a
  torus it grows like ``P^{1/d}`` per byte, which is what makes large-scale
  all-to-all expensive on Juqueen.
* **tree collectives** (allreduce/bcast/(all)gather of small payloads) —
  ``ceil(log2 P)`` rounds of one message each.

Compute phases use a per-rank rate model: a phase reporting ``w`` abstract
work units (e.g. particle pairs, expansion-coefficient multiplies) advances
the rank clock by ``w * seconds_per_unit / compute_rate``.

The numeric constants are order-of-magnitude realistic for the paper's 2013
platforms but are **shape parameters**, not claims about absolute runtimes;
see DESIGN.md §5.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from repro.simmpi.topology import (
    FatTreeTopology,
    SwitchTopology,
    Topology,
    TorusTopology,
)

__all__ = [
    "CostModel",
    "SystemProfile",
    "JUROPA",
    "JUQUEEN",
    "LOCAL",
]


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Communication/compute cost constants (seconds, bytes/second).

    Attributes
    ----------
    overhead:
        per-message CPU overhead ``o`` (posting + matching + completion).
    latency:
        base network latency ``L0`` for any inter-node message.
    hop_latency:
        additional latency per network hop.
    bandwidth:
        per-link inter-node bandwidth (bytes/second).
    node_bandwidth:
        intra-node (shared-memory) bandwidth.
    copy_bandwidth:
        local pack/unpack (memcpy) bandwidth; charged when primitives pack
        scattered elements into send buffers.
    compute_rate:
        relative CPU speed; 1.0 is a JuRoPA-class Xeon core.  Compute phase
        times are divided by this.
    """

    overhead: float = 1.0e-6
    latency: float = 1.5e-6
    hop_latency: float = 5.0e-8
    bandwidth: float = 2.5e9
    node_bandwidth: float = 8.0e9
    copy_bandwidth: float = 4.0e9
    compute_rate: float = 1.0
    #: incast-contention growth of the effective per-message overhead in
    #: irregular all-to-all exchanges: with ``k`` communicating peers the
    #: per-message cost becomes ``o * (1 + congestion * k / 64)``.  Measured
    #: irregular alltoallv times at scale are 10-100x above the LogGP ideal
    #: because of unexpected-message queues, rendezvous round trips and
    #: endpoint contention; this term reproduces that regime and is what
    #: separates full all-to-alls from neighborhood exchanges.
    congestion: float = 4.0

    # -- point-to-point ------------------------------------------------------

    def msg_time(self, hops: np.ndarray | int, nbytes: np.ndarray | int) -> np.ndarray:
        """Time for point-to-point messages (vectorized over pairs)."""
        hops = np.asarray(hops, dtype=np.float64)
        nbytes = np.asarray(nbytes, dtype=np.float64)
        internode = hops > 0
        wire = np.where(
            internode,
            self.latency + self.hop_latency * hops + nbytes / self.bandwidth,
            nbytes / self.node_bandwidth,
        )
        return self.overhead + wire

    # -- collectives ---------------------------------------------------------

    def alltoall_rank_time(
        self,
        n_targets: np.ndarray,
        send_bytes: np.ndarray,
        recv_bytes: np.ndarray,
        avg_hops: float,
    ) -> np.ndarray:
        """Per-rank completion time of a (sparse) alltoallv.

        ``n_targets`` counts non-empty destinations per rank; empty
        destinations cost nothing (the fine-grained redistribution operation
        exchanges counts first and only posts needed messages).
        """
        n_targets = np.asarray(n_targets, dtype=np.float64)
        send_bytes = np.asarray(send_bytes, dtype=np.float64)
        recv_bytes = np.asarray(recv_bytes, dtype=np.float64)
        volume = np.maximum(send_bytes, recv_bytes)
        # serialized message posting with incast contention: the effective
        # per-message cost grows with the peer fan-out
        o_eff = self.overhead * (1.0 + self.congestion * n_targets / 64.0)
        start = o_eff * n_targets
        wire = np.where(
            n_targets > 0,
            self.latency + self.hop_latency * avg_hops + volume / self.bandwidth,
            0.0,
        )
        return start + wire

    def bruck_alltoall_time(self, nprocs: int, item_bytes: float, diameter: int) -> float:
        """Dense all-to-all of one small item per peer (Bruck's algorithm).

        ``log2(P)`` rounds; each round moves half of the accumulated items,
        so the total volume per rank is ``P * item_bytes * log2(P) / 2``.
        This is the cost of the count exchange preceding a general
        fine-grained redistribution — the term that grows with the process
        count and makes method B's extra communication step expensive at
        scale (Fig. 9 right).
        """
        if nprocs <= 1:
            return 0.0
        rounds = int(np.ceil(np.log2(nprocs)))
        per_round_bytes = nprocs * item_bytes / 2.0
        per_round = (
            self.overhead
            + self.latency
            + self.hop_latency * (diameter / 2.0)
            + per_round_bytes / self.bandwidth
        )
        return rounds * per_round

    def bisection_time(self, total_bytes: float, bisection_links: int) -> float:
        """Contention term: half the aggregate volume crosses the bisection."""
        return 0.5 * float(total_bytes) / (bisection_links * self.bandwidth)

    def tree_collective_time(self, nprocs: int, nbytes: float, diameter: int) -> float:
        """Binomial-tree collective of a small payload (allreduce, bcast)."""
        if nprocs <= 1:
            return 0.0
        rounds = int(np.ceil(np.log2(nprocs)))
        per_round = self.overhead + self.latency + self.hop_latency * (diameter / 2.0) + nbytes / self.bandwidth
        return rounds * per_round

    # -- local work -----------------------------------------------------------

    def copy_time(self, nbytes: np.ndarray | float) -> np.ndarray:
        """Local pack/unpack time for moving ``nbytes`` through memory."""
        return np.asarray(nbytes, dtype=np.float64) / self.copy_bandwidth

    # -- chaos-harness derivation ---------------------------------------------

    def perturbed(
        self,
        *,
        extra_overhead: float = 0.0,
        bandwidth_factor: float = 1.0,
    ) -> "CostModel":
        """A derived model with fault-injection adjustments applied.

        ``extra_overhead`` adds per-message latency to ``o`` (charged on
        every message); ``bandwidth_factor`` scales the inter-node link
        bandwidth (degraded links).  With both at their neutral values the
        model itself is returned, so the null perturbation of the chaos
        harness (:mod:`repro.simmpi.chaos`) cannot introduce cost drift.
        """
        if extra_overhead < 0:
            raise ValueError("extra_overhead must be non-negative")
        if not 0.0 < bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in (0, 1]")
        if extra_overhead == 0.0 and bandwidth_factor == 1.0:
            return self
        return dataclasses.replace(
            self,
            overhead=self.overhead + extra_overhead,
            bandwidth=self.bandwidth * bandwidth_factor,
        )

    def compute_time(self, seconds: np.ndarray | float) -> np.ndarray:
        """Scale nominal (JuRoPA-core) compute seconds by the CPU rate."""
        return np.asarray(seconds, dtype=np.float64) / self.compute_rate


@dataclasses.dataclass(frozen=True)
class SystemProfile:
    """A named machine: topology constructor plus cost constants.

    ``topology(nprocs)`` builds the topology instance for a given process
    count; profiles are immutable and shareable between experiments.
    """

    name: str
    topology_factory: Callable[[int], Topology]
    cost_model: CostModel

    def topology(self, nprocs: int) -> Topology:
        return self.topology_factory(nprocs)


def _juropa_topology(nprocs: int) -> Topology:
    # JuRoPA: 8 MPI processes per node, QDR InfiniBand fat tree.
    return FatTreeTopology(nprocs, node_size=8, radix=24)


def _juqueen_topology(nprocs: int) -> Topology:
    # Juqueen: 16 MPI processes per node, 5-D torus.  We model a 3-D torus
    # over nodes: the redistribution experiments only need "hops grow with
    # grid distance, bisection grows sublinearly", which any d>=2 torus has.
    return TorusTopology(nprocs, node_size=16)


#: JuRoPA-like profile: Intel Xeon 2.93 GHz, InfiniBand fat tree.
JUROPA = SystemProfile(
    name="juropa",
    topology_factory=_juropa_topology,
    cost_model=CostModel(
        overhead=3.0e-6,
        latency=1.6e-6,
        hop_latency=4.0e-8,
        bandwidth=2.6e9,
        node_bandwidth=8.0e9,
        copy_bandwidth=2.0e9,
        compute_rate=1.0,
    ),
)

#: Juqueen-like profile: PowerPC A2 1.6 GHz (slower cores), 5-D torus
#: (lower per-link bandwidth, per-hop latency, limited bisection).  Blue
#: Gene/Q messaging is hardware-assisted (torus DMA, collective network):
#: low per-message overhead and little incast degradation — large-scale
#: cost is dominated by the dense count exchanges and bisection limits.
JUQUEEN = SystemProfile(
    name="juqueen",
    topology_factory=_juqueen_topology,
    cost_model=CostModel(
        overhead=1.5e-6,
        latency=1.2e-6,
        hop_latency=6.0e-8,
        bandwidth=1.8e9,
        node_bandwidth=6.0e9,
        copy_bandwidth=1.5e9,
        compute_rate=0.30,
        congestion=0.5,
    ),
)

#: Degenerate single-switch profile for unit tests (fast, uniform).
LOCAL = SystemProfile(
    name="local",
    topology_factory=lambda nprocs: SwitchTopology(nprocs, node_size=1),
    cost_model=CostModel(),
)
