"""SPMD programming layer: write per-rank programs against the simulated
machine.

The high-level primitives in :mod:`repro.simmpi.collectives` operate on all
ranks at once (the "global view" the solvers use).  This module provides the
complementary **per-rank view**: a program is an ordinary Python function
``program(ctx, *args)`` executed once per rank (each in its own thread)
against an :class:`SPMDContext` whose ``send``/``recv``/``barrier``/
``allreduce`` calls block and match like their MPI counterparts — while the
machine's virtual clocks and trace record the modeled cost of every
operation.

Example
-------
>>> def ring(ctx, value):
...     nxt, prv = (ctx.rank + 1) % ctx.nprocs, (ctx.rank - 1) % ctx.nprocs
...     total = value
...     for _ in range(ctx.nprocs - 1):
...         ctx.send(nxt, value)
...         value = ctx.recv(prv)
...         total += value
...     return total
>>> machine = Machine(4)
>>> run_spmd(machine, ring, [1.0, 2.0, 3.0, 4.0])
[10.0, 10.0, 10.0, 10.0]

Deadlocks (every rank blocked with no matching message in flight) are
detected and reported with a per-rank state dump instead of hanging.

Intended for prototyping and teaching redistribution algorithms at small
rank counts (threads are real OS threads); the production solvers use the
vectorised global-view primitives.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.simmpi.collectives import payload_nbytes
from repro.simmpi.machine import Machine

__all__ = ["SPMDContext", "SPMDDeadlock", "run_spmd"]


class SPMDDeadlock(RuntimeError):
    """All ranks are blocked and no message can unblock any of them."""


class _Runtime:
    """Shared state of one :func:`run_spmd` execution."""

    def __init__(self, machine: Machine, scheduler: Optional[Any] = None) -> None:
        self.machine = machine
        #: optional :class:`~repro.simmpi.chaos.MailboxScheduler` permuting
        #: delivery and wake order among the legal choices
        self.scheduler = scheduler
        self.lock = threading.Condition()
        #: mailboxes[dst] -> list of (src, tag, payload, arrival_time)
        self.mailboxes: List[List[Tuple[int, int, Any, float]]] = [
            [] for _ in range(machine.nprocs)
        ]
        #: which ranks are currently blocked, and on what: "collective" or
        #: a (src, tag) match pattern for receives
        self.blocked: Dict[int, Any] = {}
        self.finished = 0
        self.failed: Optional[BaseException] = None
        # collective rendezvous state
        self._coll_epoch = 0
        self._coll_count = 0
        self._coll_values: Dict[int, Any] = {}
        self._coll_result: Any = None

    # -- deadlock detection ------------------------------------------------------

    def _alive(self) -> int:
        return self.machine.nprocs - self.finished

    def check_deadlock(self) -> None:
        """Called with the lock held whenever a rank blocks.

        Deadlock iff every alive rank is blocked and no receive-blocked rank
        has a matching message pending (collective-blocked ranks can only be
        released by further arrivals, which all-blocked rules out).
        """
        if self.failed is not None:
            return
        alive = self._alive()
        if alive == 0 or not self.blocked or len(self.blocked) < alive:
            return
        for r, state in self.blocked.items():
            if isinstance(state, tuple) and state and state[0] == "collective":
                if self._coll_epoch != state[1]:
                    return  # already released, just not woken yet
                continue
            src, tag = state
            for s, t, _payload, _arrival in self.mailboxes[r]:
                if (src is None or s == src) and (tag is None or t == tag):
                    return  # this rank can proceed
        self.failed = SPMDDeadlock(f"all ranks blocked ({self._describe_blocked()})")
        self.lock.notify_all()

    def _describe_blocked(self) -> str:
        """Per-rank state dump for the deadlock report (lock held)."""
        parts = []
        for r, state in sorted(self.blocked.items()):
            if isinstance(state, tuple) and state and state[0] == "collective":
                parts.append(f"rank {r}: collective(epoch={state[1]})")
            else:
                src, tag = state
                pending = ", ".join(
                    f"(src={s}, tag={t})" for s, t, _p, _a in self.mailboxes[r]
                )
                parts.append(
                    f"rank {r}: recv(src={'*' if src is None else src}, "
                    f"tag={'*' if tag is None else tag}) mailbox=[{pending}]"
                )
        return ", ".join(parts)


class SPMDContext:
    """The per-rank communication handle passed to SPMD programs."""

    def __init__(self, runtime: _Runtime, rank: int) -> None:
        self._rt = runtime
        self.rank = rank
        self.nprocs = runtime.machine.nprocs

    # -- point to point ------------------------------------------------------------

    def send(self, dst: int, payload: Any, tag: int = 0, phase: str = "spmd") -> None:
        """Post a message to ``dst`` (non-blocking buffered send)."""
        rt = self._rt
        machine = rt.machine
        dst = machine.check_rank(dst)
        nbytes = payload_nbytes(payload) if isinstance(payload, (np.ndarray, tuple, list)) else 64
        if rt.scheduler is not None:
            rt.scheduler.maybe_yield()
        # with an execution backend the payload bytes travel as a transport
        # ticket (e.g. a shared-memory segment); the mailbox only holds the
        # claim.  Posted before taking the runtime lock — encoding is pure.
        if machine.backend is not None:
            payload = machine.backend.post_ticket(payload)
        with rt.lock:
            self._raise_if_failed()
            model = machine.model
            if dst == self.rank:
                machine.clocks[self.rank] += float(model.copy_time(nbytes))
                arrival = machine.clocks[self.rank]
            else:
                hops = int(machine.topology.hops(self.rank, dst))
                send_done = (
                    machine.clocks[self.rank]
                    + model.overhead
                    + float(model.copy_time(nbytes))
                )
                arrival = (
                    send_done
                    + float(model.msg_time(hops, nbytes))
                    * machine.comm_factor(self.rank, dst)
                    - model.overhead
                )
                obs = machine.obs
                rank_before = float(machine.clocks[self.rank])
                machine.clocks[self.rank] = send_done
                machine.trace.record(phase, time=0.0, messages=1, nbytes=nbytes)
                if obs is not None:
                    obs.on_rank_charge(
                        phase, "spmd.send", 0.0, self.rank,
                        rank_before, float(send_done),
                        float(machine.clocks.max()), messages=1, nbytes=nbytes,
                    )
            rt.mailboxes[dst].append((self.rank, tag, payload, arrival))
            rt.lock.notify_all()

    def recv(self, src: Optional[int] = None, tag: Optional[int] = None,
             phase: str = "spmd") -> Any:
        """Blocking receive; ``src``/``tag`` of ``None`` match anything.

        When several sources have a matching message pending, MPI allows a
        wildcard receive to consume any of them; an attached scheduler shim
        picks among those legal candidates (messages from one source are
        still consumed in posting order — MPI non-overtaking).
        """
        rt = self._rt
        machine = rt.machine
        if rt.scheduler is not None:
            rt.scheduler.maybe_yield()
        with rt.lock:
            while True:
                self._raise_if_failed()
                box = rt.mailboxes[self.rank]
                # legal candidates: the *earliest-posted* matching message of
                # each source (non-overtaking within a source)
                candidates: List[int] = []
                seen_sources: set = set()
                for i, (s, t, _payload, _arrival) in enumerate(box):
                    if (src is None or s == src) and (tag is None or t == tag):
                        if s in seen_sources:
                            continue
                        seen_sources.add(s)
                        candidates.append(i)
                if candidates:
                    if rt.scheduler is not None:
                        pick = candidates[rt.scheduler.choose(len(candidates))]
                    else:
                        pick = candidates[0]
                    _s, _t, payload, arrival = box.pop(pick)
                    obs = machine.obs
                    rank_before = float(machine.clocks[self.rank])
                    before = machine.clocks.max()
                    machine.clocks[self.rank] = max(
                        machine.clocks[self.rank] + machine.model.overhead, arrival
                    )
                    t = float(machine.clocks.max() - before)
                    machine.trace.record(phase, time=t)
                    if obs is not None:
                        obs.on_rank_charge(
                            phase, "spmd.recv", t, self.rank,
                            rank_before, float(machine.clocks[self.rank]),
                            float(machine.clocks.max()),
                        )
                    rt.lock.notify_all()
                    if machine.backend is not None:
                        payload = machine.backend.claim_ticket(payload)
                    return payload
                rt.blocked[self.rank] = (src, tag)
                rt.check_deadlock()
                rt.lock.wait(timeout=5.0)
                rt.blocked.pop(self.rank, None)

    def sendrecv(self, dst: int, payload: Any, src: Optional[int] = None,
                 tag: int = 0, phase: str = "spmd") -> Any:
        """Combined send + receive (deadlock-free pairwise exchange)."""
        self.send(dst, payload, tag, phase)
        return self.recv(src, tag, phase)

    # -- collectives ------------------------------------------------------------------

    def _collective(self, value: Any, combine: Callable[[Dict[int, Any]], Any],
                    nbytes: float, phase: str) -> Any:
        """Rendezvous of all ranks; ``combine`` runs once on the full map."""
        rt = self._rt
        machine = rt.machine
        if rt.scheduler is not None:
            rt.scheduler.maybe_yield()
        with rt.lock:
            self._raise_if_failed()
            epoch = rt._coll_epoch
            rt._coll_values[self.rank] = value
            rt._coll_count += 1
            if rt._coll_count == machine.nprocs:
                # last arrival: synchronize clocks, charge, combine, release
                t = float(machine.clocks.max())
                machine.clocks[:] = t
                cost = machine.model.tree_collective_time(
                    machine.nprocs, nbytes, machine.topology.diameter()
                ) * machine.comm_factor()
                machine.advance(
                    cost, phase, messages=2 * (machine.nprocs - 1),
                    op="spmd.collective",
                )
                rt._coll_result = combine(dict(rt._coll_values))
                rt._coll_values.clear()
                rt._coll_count = 0
                rt._coll_epoch += 1
                rt.lock.notify_all()
                return rt._coll_result
            while rt._coll_epoch == epoch:
                self._raise_if_failed()
                rt.blocked[self.rank] = ("collective", epoch)
                rt.check_deadlock()
                rt.lock.wait(timeout=5.0)
                rt.blocked.pop(self.rank, None)
            return rt._coll_result

    def barrier(self, phase: str = "spmd") -> None:
        """Wait for every rank to arrive."""
        self._collective(None, lambda values: None, 8.0, phase)

    def allreduce(self, value: float, op: str = "sum", phase: str = "spmd") -> float:
        """Reduce a scalar across all ranks; everyone gets the result.

        ``sum`` combines in rank order: float addition is non-associative
        and the arrival order of ranks at the rendezvous is
        schedule-dependent, so summing in dict-arrival order would make the
        result bitwise schedule-dependent (``min``/``max`` are
        order-insensitive).
        """
        ops = {
            "sum": lambda values: sum(values[r] for r in sorted(values)),
            "max": lambda values: max(values.values()),
            "min": lambda values: min(values.values()),
        }
        if op not in ops:
            raise ValueError(f"unsupported op {op!r}")
        return self._collective(float(value), ops[op], 8.0, phase)

    def allgather(self, value: Any, phase: str = "spmd") -> List[Any]:
        """Gather one value per rank; everyone gets the rank-ordered list."""
        return self._collective(
            value,
            lambda values: [values[r] for r in sorted(values)],
            64.0 * self.nprocs,
            phase,
        )

    def bcast(self, value: Any, root: int = 0, phase: str = "spmd") -> Any:
        """Broadcast ``value`` from ``root`` (other ranks pass anything)."""
        return self._collective(
            (self.rank, value),
            lambda values: values[root][1],
            64.0,
            phase,
        )

    # -- misc ---------------------------------------------------------------------------

    def _raise_if_failed(self) -> None:
        if self._rt.failed is not None:
            raise self._rt.failed


def run_spmd(
    machine: Machine,
    program: Callable[..., Any],
    *per_rank_args: Sequence,
    scheduler: Optional[Any] = None,
) -> List[Any]:
    """Execute ``program(ctx, *args)`` once per rank; return all results.

    Each entry of ``per_rank_args`` is a length-``nprocs`` sequence whose
    ``r``-th element is passed to rank ``r``.  Raises the first per-rank
    exception (including :class:`SPMDDeadlock`).

    ``scheduler`` is an optional
    :class:`~repro.simmpi.chaos.MailboxScheduler` permuting message delivery
    and thread wake order among legal choices; when omitted it is taken from
    the machine's active perturbation (if any).
    """
    P = machine.nprocs
    for seq in per_rank_args:
        if len(seq) != P:
            raise ValueError(f"per-rank argument has {len(seq)} entries for {P} ranks")
    if scheduler is None and machine.perturbation is not None:
        scheduler = machine.perturbation.scheduler()
    rt = _Runtime(machine, scheduler)
    results: List[Any] = [None] * P
    threads: List[threading.Thread] = []

    def worker(rank: int) -> None:
        ctx = SPMDContext(rt, rank)
        try:
            results[rank] = program(ctx, *(seq[rank] for seq in per_rank_args))
        except BaseException as exc:  # propagate to the caller
            with rt.lock:
                if rt.failed is None:
                    rt.failed = exc
                rt.lock.notify_all()
        finally:
            with rt.lock:
                rt.finished += 1
                rt.check_deadlock()
                rt.lock.notify_all()

    start_order = list(range(P))
    if scheduler is not None:
        start_order = scheduler.shuffled(start_order)
    for r in start_order:
        t = threading.Thread(target=worker, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        threads.append(t)
        t.start()
    try:
        for t in threads:
            t.join()
    finally:
        if machine.backend is not None:
            # failed/deadlocked runs leave unclaimed tickets behind; release
            # their transport resources (shared-memory segments)
            for box in rt.mailboxes:
                for _src, _tag, ticket, _arrival in box:
                    machine.backend.discard_ticket(ticket)
                box.clear()
    if rt.failed is not None:
        raise rt.failed
    return results
