"""Shared Hypothesis strategies for the property-based test suites.

Kept inside the package (rather than in ``tests/conftest.py``) so every test
module — and downstream users writing their own property tests — can import
them with a plain ``from repro.verify.strategies import ...``.  The
``hypothesis`` import is deferred so the package stays importable on
machines without it; only actually *drawing* from a strategy requires it.
"""

from __future__ import annotations

import numpy as np

from repro.core.resort import RESORT_POS_BITS, RANK_LIMIT, POSITION_LIMIT

__all__ = [
    "rank_arrays",
    "position_arrays",
    "rank_position_arrays",
    "permutations",
    "symmetric_count_tables",
    "multiplicity_maps",
]


def _hypothesis():
    try:
        import hypothesis.strategies as st
        from hypothesis.extra import numpy as hnp
    except ImportError as exc:  # pragma: no cover - env without hypothesis
        raise ImportError(
            "the repro.verify.strategies module requires the 'hypothesis' "
            "package (available in the test environment)"
        ) from exc
    return st, hnp


def rank_arrays(max_size: int = 64):
    """Arrays of valid target ranks over the full packing range."""
    st, hnp = _hypothesis()
    return hnp.arrays(
        dtype=np.int64,
        shape=st.integers(min_value=0, max_value=max_size),
        elements=st.integers(min_value=0, max_value=RANK_LIMIT - 1),
    )


def position_arrays(max_size: int = 64):
    """Arrays of valid target positions over the full packing range."""
    st, hnp = _hypothesis()
    return hnp.arrays(
        dtype=np.int64,
        shape=st.integers(min_value=0, max_value=max_size),
        elements=st.integers(min_value=0, max_value=POSITION_LIMIT - 1),
    )


def rank_position_arrays(max_size: int = 64):
    """Equal-length (ranks, positions) pairs spanning the full ranges.

    Ranks cover ``[0, 2**31 - 1]`` and positions ``[0, 2**32 - 1]`` — the
    extremes where a packing bug (sign bit, shifted-mask overlap) shows up.
    """
    st, hnp = _hypothesis()

    def pair(n):
        ranks = hnp.arrays(
            dtype=np.int64,
            shape=n,
            elements=st.integers(min_value=0, max_value=RANK_LIMIT - 1),
        )
        positions = hnp.arrays(
            dtype=np.int64,
            shape=n,
            elements=st.integers(min_value=0, max_value=POSITION_LIMIT - 1),
        )
        return st.tuples(ranks, positions)

    return st.integers(min_value=0, max_value=max_size).flatmap(pair)


def permutations(max_size: int = 128):
    """Random permutations of ``0..n-1`` as int64 arrays."""
    st, _ = _hypothesis()

    def build(n_and_seed):
        n, seed = n_and_seed
        return np.random.default_rng(seed).permutation(n).astype(np.int64)

    return st.tuples(
        st.integers(min_value=0, max_value=max_size),
        st.integers(min_value=0, max_value=2**32 - 1),
    ).map(build)


def symmetric_count_tables(max_nprocs: int = 8, max_count: int = 16):
    """Valid alltoallv count tables: ``recv`` is exactly ``send.T``."""
    st, hnp = _hypothesis()

    def build(n):
        return hnp.arrays(
            dtype=np.int64,
            shape=(n, n),
            elements=st.integers(min_value=0, max_value=max_count),
        ).map(lambda send: (send, send.T.copy()))

    return st.integers(min_value=1, max_value=max_nprocs).flatmap(build)


def multiplicity_maps(max_size: int = 48, max_nprocs: int = 8, max_copies: int = 3):
    """Per-element target multiplicities for duplicating distributions.

    Draws ``(nprocs, targets)`` where ``targets[i]`` is the list of target
    ranks element ``i`` is sent to (possibly empty = dropped, possibly
    repeated = duplicated) — the ground truth a fine-grained redistribution
    with a duplicating distribution function must reproduce exactly.
    """
    st, _ = _hypothesis()

    def build(n_and_p):
        n, nprocs = n_and_p
        target_list = st.lists(
            st.integers(min_value=0, max_value=nprocs - 1),
            min_size=0,
            max_size=max_copies,
        )
        return st.tuples(
            st.just(nprocs),
            st.lists(target_list, min_size=n, max_size=n),
        )

    return st.tuples(
        st.integers(min_value=0, max_value=max_size),
        st.integers(min_value=1, max_value=max_nprocs),
    ).flatmap(build)
