"""Communication auditor: checking mode for the simmpi transport layer.

When a :class:`CommAuditor` is attached to a
:class:`~repro.simmpi.machine.Machine` (via :func:`enable_auditing` or
``machine.auditor = CommAuditor(...)``), the communication primitives in
:mod:`repro.simmpi.collectives` and :mod:`repro.simmpi.p2p` report every
exchange to it.  The auditor then

* validates the **alltoallv count table**: the implicit receive counts must
  be the exact transpose of the send counts (``recv[j][i] == send[i][j]``),
  targets must be valid ranks, and payload byte sizes must be consistent —
  the checks a real ``MPI_Alltoallv`` cannot do for you and whose violation
  silently corrupts a redistribution;
* verifies **neighborhood exchanges** only touch declared Cartesian
  neighbors (the caller-guarantees contract of the sparse count-exchange
  path, Sect. III-B of the paper);
* tracks **point-to-point send/receive matching**: every posted send must be
  consumed by a matching receive before :meth:`CommAuditor.assert_quiescent`
  — an unmatched send is the virtual-deadlock signature of a mis-scheduled
  Batcher merge-exchange round;
* keeps an **independent per-phase ledger** of message counts and byte
  volumes, recomputed from the raw send tables rather than copied from the
  primitives' own accounting, so the ``trace-accounting`` invariant can
  cross-check what the collectives reported into the
  :class:`~repro.simmpi.tracing.Trace`.

The auditor never changes what the primitives do — it only observes and
raises :class:`CommAuditError` on violation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

__all__ = [
    "CommAuditError",
    "CommAuditor",
    "enable_auditing",
    "export_metrics",
    "check_count_symmetry",
    "verify_exchange_schedule",
]


class CommAuditError(AssertionError):
    """A communication contract was violated (asymmetric counts, unmatched
    send, non-neighbor traffic, ...)."""


def check_count_symmetry(
    send_counts: Sequence[Sequence[int]],
    recv_counts: Sequence[Sequence[int]],
) -> None:
    """Validate an alltoallv count table pair.

    ``send_counts[i][j]`` is what rank ``i`` claims to send to rank ``j``;
    ``recv_counts[j][i]`` is what rank ``j`` expects from rank ``i``.  A
    correct exchange requires the receive table to be the exact transpose of
    the send table; any asymmetric entry means a rank posts a receive for
    data that never comes (hang) or data arrives unannounced (truncation).
    """
    send = np.asarray(send_counts, dtype=np.int64)
    recv = np.asarray(recv_counts, dtype=np.int64)
    if send.ndim != 2 or send.shape[0] != send.shape[1]:
        raise CommAuditError(f"send count table must be square, got {send.shape}")
    if recv.shape != send.shape:
        raise CommAuditError(
            f"count table shapes differ: send {send.shape} vs recv {recv.shape}"
        )
    if np.any(send < 0) or np.any(recv < 0):
        raise CommAuditError("count tables must be non-negative")
    mismatch = send != recv.T
    if np.any(mismatch):
        src, dst = (int(x) for x in np.argwhere(mismatch)[0])
        raise CommAuditError(
            f"asymmetric alltoallv counts: rank {src} sends {int(send[src, dst])} "
            f"to rank {dst}, which expects {int(recv[dst, src])}"
        )


def verify_exchange_schedule(
    rounds: Iterable[Sequence[Tuple[int, int]]],
    nprocs: int,
) -> None:
    """Validate a pairwise exchange schedule (e.g. Batcher comparator rounds).

    Each round must pair distinct, valid ranks, and no rank may appear in
    two pairs of the same round: a rank scheduled into two simultaneous
    ``MPI_Sendrecv`` exchanges posts a send whose matching receive is owned
    by a rank still blocked in its own exchange — the virtual deadlock the
    merge-exchange path must never produce.
    """
    for round_index, pairs in enumerate(rounds):
        seen: Set[int] = set()
        for a, b in pairs:
            if not (0 <= a < nprocs and 0 <= b < nprocs):
                raise CommAuditError(
                    f"round {round_index}: pair ({a}, {b}) outside [0, {nprocs})"
                )
            if a == b:
                raise CommAuditError(
                    f"round {round_index}: rank {a} paired with itself"
                )
            for r in (a, b):
                if r in seen:
                    raise CommAuditError(
                        f"round {round_index}: rank {r} appears in two exchanges "
                        "(unmatched sendrecv — virtual deadlock)"
                    )
                seen.add(r)


@dataclasses.dataclass
class PhaseLedger:
    """Independently recomputed per-phase traffic totals."""

    messages: int = 0
    bytes: int = 0

    def add(self, messages: int, nbytes: int) -> None:
        self.messages += int(messages)
        self.bytes += int(nbytes)


class CommAuditor:
    """Observes and validates every audited communication of one machine.

    Parameters
    ----------
    nprocs:
        rank count of the machine being audited.
    neighbor_table:
        optional per-rank arrays of allowed peer ranks for neighborhood
        exchanges (e.g. ``CartGrid.neighbor_table(include_self=True)``).
        When set, any sparse-count-exchange message outside the table
        raises.  Self-sends are always allowed.
    strict:
        raise :class:`CommAuditError` immediately on violation (default).
        With ``strict=False`` violations are collected in
        :attr:`violations` instead — useful for sweeping audits that should
        report everything rather than stop at the first failure.
    """

    def __init__(
        self,
        nprocs: int,
        neighbor_table: Optional[Sequence[np.ndarray]] = None,
        strict: bool = True,
    ) -> None:
        self.nprocs = int(nprocs)
        self.strict = bool(strict)
        self.violations: List[str] = []
        self._neighbors: Optional[List[Set[int]]] = None
        if neighbor_table is not None:
            self.declare_neighbors(neighbor_table)
        #: per-phase totals recomputed from raw send tables (audited
        #: primitives only — compare against Trace via `trace-accounting`)
        self.ledger: Dict[str, PhaseLedger] = {}
        #: per-phase totals *as reported by the resort-plan engine itself*
        #: (self-sends excluded) — an independent third accounting that the
        #: ``plan-accounting`` invariant cross-checks against :attr:`ledger`:
        #: a plan may never claim more traffic for a phase than its audited
        #: exchanges actually produced
        self.plan_ledger: Dict[str, PhaseLedger] = {}
        #: running totals of plan-engine activity (diagnostics)
        self.n_plan_compiles = 0
        self.n_plan_executions = 0
        self.n_plan_fused_columns = 0
        #: per-phase staged-collective totals *as planned by the algorithm
        #: engines themselves* (:mod:`repro.simmpi.algos`) before their
        #: rounds run — derived from the schedule alone.  The
        #: ``collective-algo-accounting`` invariant asserts these equal
        #: :attr:`algo_round_ledger` exactly: staged forwarding must
        #: balance in the ledger.
        self.algo_ledger: Dict[str, PhaseLedger] = {}
        #: per-phase totals independently re-accounted from the raw
        #: transfer lists of every round executed inside
        #: :meth:`algo_scope` (in addition to the main :attr:`ledger`)
        self.algo_round_ledger: Dict[str, PhaseLedger] = {}
        #: per-``"collective/algorithm"`` call counts (records which
        #: algorithm ``auto`` resolved to on every call)
        self.algo_counts: Dict[str, int] = {}
        #: running total of staged-engine collective calls (diagnostics)
        self.n_algo_calls = 0
        self._algo_scope_depth = 0
        #: trace snapshot taken at attach time so the ledger (which only
        #: sees post-attach traffic) compares against trace *deltas*
        self.trace_baseline: Dict[str, object] = {}
        #: pending point-to-point sends awaiting their matching receive
        self._pending_sends: List[Tuple[int, int, int]] = []
        #: running totals of audited calls (diagnostics)
        self.n_alltoall_calls = 0
        self.n_p2p_calls = 0

    # -- violation handling -----------------------------------------------------

    def _fail(self, message: str) -> None:
        if self.strict:
            raise CommAuditError(message)
        self.violations.append(message)

    # -- configuration ----------------------------------------------------------

    def declare_neighbors(self, neighbor_table: Sequence[np.ndarray]) -> None:
        """Declare the allowed peers of every rank for neighborhood traffic."""
        if len(neighbor_table) != self.nprocs:
            raise ValueError(
                f"neighbor table has {len(neighbor_table)} entries for "
                f"{self.nprocs} ranks"
            )
        self._neighbors = [
            {int(x) for x in np.asarray(peers).ravel()} for peers in neighbor_table
        ]

    # -- ledger -----------------------------------------------------------------

    def _record(self, phase: Optional[str], messages: int, nbytes: int) -> None:
        label = phase if phase is not None else "other"
        ledger = self.ledger.get(label)
        if ledger is None:
            ledger = self.ledger[label] = PhaseLedger()
        ledger.add(messages, nbytes)
        if self._algo_scope_depth > 0:
            rounds = self.algo_round_ledger.get(label)
            if rounds is None:
                rounds = self.algo_round_ledger[label] = PhaseLedger()
            rounds.add(messages, nbytes)

    def ledger_snapshot(self) -> Dict[str, PhaseLedger]:
        return {k: dataclasses.replace(v) for k, v in self.ledger.items()}

    # -- plan-engine hooks --------------------------------------------------------

    def observe_plan_compile(self, phase: Optional[str]) -> None:
        """Note one resort-plan schedule compilation (diagnostics only; the
        compile's index-distribution exchange is audited as a regular
        alltoallv under its own phase)."""
        self.n_plan_compiles += 1

    def observe_plan_execution(
        self, phase: Optional[str], messages: int, nbytes: int, columns: int
    ) -> None:
        """Record a fused plan execution's self-reported traffic totals.

        The plan computes ``messages``/``nbytes`` from its own cached
        schedule; the exchange it then performs is independently recomputed
        from the raw send table by :meth:`observe_alltoallv`.  The
        ``plan-accounting`` invariant compares the two.
        """
        self.n_plan_executions += 1
        self.n_plan_fused_columns += int(columns)
        label = phase if phase is not None else "other"
        ledger = self.plan_ledger.get(label)
        if ledger is None:
            ledger = self.plan_ledger[label] = PhaseLedger()
        ledger.add(messages, nbytes)

    # -- algorithm-engine hooks ---------------------------------------------------

    def count_algo_call(self, collective: str, algo: str) -> None:
        """Record the algorithm an engine-enabled collective call resolved to
        (including ``auto`` resolutions that fall back to ``direct``)."""
        self.n_algo_calls += 1
        key = f"{collective}/{algo}"
        self.algo_counts[key] = self.algo_counts.get(key, 0) + 1

    def observe_algo_collective(
        self,
        collective: str,
        algo: str,
        phase: Optional[str],
        messages: int,
        nbytes: int,
    ) -> None:
        """Record a staged engine's schedule-derived planned totals.

        The engine then executes its rounds inside :meth:`algo_scope`,
        where every :func:`~repro.simmpi.p2p.send_round` is independently
        re-accounted into :attr:`algo_round_ledger`; the
        ``collective-algo-accounting`` invariant asserts exact agreement.
        """
        label = phase if phase is not None else "other"
        ledger = self.algo_ledger.get(label)
        if ledger is None:
            ledger = self.algo_ledger[label] = PhaseLedger()
        ledger.add(messages, nbytes)

    def algo_scope(self):
        """Context manager marking the staged rounds of one engine call."""
        import contextlib

        @contextlib.contextmanager
        def scope():
            self._algo_scope_depth += 1
            try:
                yield self
            finally:
                self._algo_scope_depth -= 1

        return scope()

    # -- collective hooks ---------------------------------------------------------

    def observe_alltoallv(
        self,
        sends: Sequence[Dict[int, object]],
        phase: Optional[str],
        count_exchange: str,
        record: bool = True,
    ) -> None:
        """Audit one (neighborhood_)alltoallv call from its raw send table.

        ``record=False`` runs every validation (rank range, count symmetry,
        neighborhood contract) without touching the ledger — the staged
        algorithm engines use it, because their ledger traffic is
        re-accounted per round by :meth:`observe_send_round` instead of
        from the send table.
        """
        from repro.simmpi.collectives import payload_nbytes

        self.n_alltoall_calls += 1
        if len(sends) != self.nprocs:
            self._fail(
                f"alltoallv send table has {len(sends)} rows for {self.nprocs} ranks"
            )
            return
        send_counts = np.zeros((self.nprocs, self.nprocs), dtype=np.int64)
        messages = 0
        nbytes = 0
        for src, targets in enumerate(sends):
            for dst, payload in targets.items():
                if not 0 <= dst < self.nprocs:
                    self._fail(f"rank {src} sends to invalid rank {dst}")
                    continue
                size = payload_nbytes(payload)
                if size < 0:
                    self._fail(f"rank {src}->{dst}: negative payload size {size}")
                send_counts[src, dst] += 1
                if dst != src:
                    messages += 1
                    nbytes += size
                if (
                    count_exchange == "sparse"
                    and self._neighbors is not None
                    and dst != src
                    and dst not in self._neighbors[src]
                ):
                    self._fail(
                        f"neighborhood exchange: rank {src} sends to rank {dst}, "
                        f"which is not a declared neighbor"
                    )
        # the implicit receive side of a sparse send table is its transpose
        # by construction; validate the invariant explicitly so injected
        # corruptions (tests, future real-MPI backends) are caught
        try:
            check_count_symmetry(send_counts, send_counts.T)
        except CommAuditError as exc:  # pragma: no cover - defensive
            self._fail(str(exc))
        if record:
            self._record(phase, messages, nbytes)

    def observe_collective(
        self, phase: Optional[str], messages: int, nbytes: int
    ) -> None:
        """Mirror a rooted/tree collective's modeled message totals.

        Tree collectives (allreduce, bcast, gather, ...) have no
        user-supplied count table to recompute from; their modeled totals
        are mirrored into the ledger so phase totals stay comparable with
        the trace.
        """
        self._record(phase, messages, nbytes)

    # -- point-to-point hooks -----------------------------------------------------

    def post_send(self, src: int, dst: int, nbytes: int = 0) -> None:
        """Register a posted point-to-point send awaiting its receive."""
        self._pending_sends.append((int(src), int(dst), int(nbytes)))

    def complete_recv(self, src: int, dst: int) -> None:
        """Match a completed receive against a pending send."""
        for i, (s, d, _) in enumerate(self._pending_sends):
            if s == int(src) and d == int(dst):
                del self._pending_sends[i]
                return
        self._fail(
            f"receive at rank {dst} from rank {src} has no matching posted send"
        )

    def pending_sends(self) -> List[Tuple[int, int, int]]:
        return list(self._pending_sends)

    def assert_quiescent(self) -> None:
        """No point-to-point send may still be in flight.

        An unmatched send is the virtual-deadlock signature: on a real
        machine the sender's rendezvous never completes and the program
        hangs instead of raising.
        """
        if self._pending_sends:
            pending = ", ".join(
                f"{s}->{d} ({b} B)" for s, d, b in self._pending_sends[:8]
            )
            self._fail(
                f"{len(self._pending_sends)} unmatched point-to-point send(s): "
                f"{pending}"
            )

    def observe_sendrecv(
        self, src: int, dst: int, nbytes: int, phase: Optional[str]
    ) -> None:
        if src == dst:
            return
        self.n_p2p_calls += 1
        self.post_send(src, dst, nbytes)
        self.complete_recv(src, dst)
        self._record(phase, 1, nbytes)

    def observe_send_round(
        self,
        transfers: Sequence[Tuple[int, int, object]],
        phase: Optional[str],
    ) -> None:
        """Audit one send_round call: recompute totals, match every pair."""
        from repro.simmpi.collectives import payload_nbytes

        self.n_p2p_calls += 1
        messages = 0
        nbytes = 0
        for src, dst, payload in transfers:
            if not (0 <= src < self.nprocs and 0 <= dst < self.nprocs):
                self._fail(f"send_round transfer {src}->{dst} outside rank range")
                continue
            if src == dst:
                continue
            size = payload_nbytes(payload)
            self.post_send(src, dst, size)
            messages += 1
            nbytes += size
        # the primitive delivers every posted message within the round
        for src, dst, payload in transfers:
            if src != dst and 0 <= src < self.nprocs and 0 <= dst < self.nprocs:
                self.complete_recv(src, dst)
        self._record(phase, messages, nbytes)

    def observe_exchange_pairs(
        self,
        exchanges: Sequence[Tuple[int, int, object, object]],
        phase: Optional[str],
    ) -> None:
        """Audit one exchange_pairs round (a Batcher comparator round)."""
        from repro.simmpi.collectives import payload_nbytes

        self.n_p2p_calls += 1
        verify_exchange_schedule([[(a, b) for a, b, _, _ in exchanges]], self.nprocs)
        messages = 0
        nbytes = 0
        for a, b, pa, pb in exchanges:
            size_ab = payload_nbytes(pa)
            size_ba = payload_nbytes(pb)
            self.post_send(a, b, size_ab)
            self.post_send(b, a, size_ba)
            self.complete_recv(a, b)
            self.complete_recv(b, a)
            messages += 2
            nbytes += size_ab + size_ba
        self._record(phase, messages, nbytes)

    # -- checkpointing ------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Complete deep-copied auditor bookkeeping for checkpointing.

        Captures the per-phase ledgers, the plan ledger, the attach-time
        trace baseline, the pending-send list and the call/violation
        diagnostics — everything :func:`ledger_fingerprint
        <repro.verify.dst.ledger_fingerprint>` and the accounting invariants
        read.  The neighbor table and ``strict`` flag are *configuration*,
        not run state, and are left to the restoring caller.
        """
        from repro.simmpi.tracing import PhaseStats

        return {
            "ledger": {k: dataclasses.replace(v) for k, v in self.ledger.items()},
            "plan_ledger": {
                k: dataclasses.replace(v) for k, v in self.plan_ledger.items()
            },
            "trace_baseline": {
                k: dataclasses.replace(v)
                for k, v in self.trace_baseline.items()
                if isinstance(v, PhaseStats)
            },
            "algo_ledger": {
                k: dataclasses.replace(v) for k, v in self.algo_ledger.items()
            },
            "algo_round_ledger": {
                k: dataclasses.replace(v)
                for k, v in self.algo_round_ledger.items()
            },
            "algo_counts": dict(self.algo_counts),
            "pending_sends": list(self._pending_sends),
            "violations": list(self.violations),
            "n_plan_compiles": self.n_plan_compiles,
            "n_plan_executions": self.n_plan_executions,
            "n_plan_fused_columns": self.n_plan_fused_columns,
            "n_alltoall_calls": self.n_alltoall_calls,
            "n_p2p_calls": self.n_p2p_calls,
            "n_algo_calls": self.n_algo_calls,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Replace the auditor's bookkeeping with a :meth:`state_dict` copy.

        Used by :func:`repro.ckpt.restore.restore_simulation` as its final
        act: the restored machine's auditor continues the checkpointed
        ledgers exactly where the original run left them, so the prefix +
        continuation ledger equals the uninterrupted run's.
        """
        self.ledger = {
            str(k): dataclasses.replace(v) for k, v in state.get("ledger", {}).items()
        }
        self.plan_ledger = {
            str(k): dataclasses.replace(v)
            for k, v in state.get("plan_ledger", {}).items()
        }
        self.trace_baseline = {
            str(k): dataclasses.replace(v)
            for k, v in state.get("trace_baseline", {}).items()
        }
        # pre-engine checkpoints carry no algo keys; restore empties
        self.algo_ledger = {
            str(k): dataclasses.replace(v)
            for k, v in state.get("algo_ledger", {}).items()
        }
        self.algo_round_ledger = {
            str(k): dataclasses.replace(v)
            for k, v in state.get("algo_round_ledger", {}).items()
        }
        self.algo_counts = {
            str(k): int(v) for k, v in state.get("algo_counts", {}).items()
        }
        self._pending_sends = [
            (int(s), int(d), int(b)) for s, d, b in state.get("pending_sends", [])
        ]
        self.violations = [str(v) for v in state.get("violations", [])]
        self.n_plan_compiles = int(state.get("n_plan_compiles", 0))
        self.n_plan_executions = int(state.get("n_plan_executions", 0))
        self.n_plan_fused_columns = int(state.get("n_plan_fused_columns", 0))
        self.n_alltoall_calls = int(state.get("n_alltoall_calls", 0))
        self.n_p2p_calls = int(state.get("n_p2p_calls", 0))
        self.n_algo_calls = int(state.get("n_algo_calls", 0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommAuditor(nprocs={self.nprocs}, alltoall_calls="
            f"{self.n_alltoall_calls}, p2p_calls={self.n_p2p_calls}, "
            f"pending={len(self._pending_sends)}, violations={len(self.violations)})"
        )


def enable_auditing(
    machine,
    neighbor_table: Optional[Sequence[np.ndarray]] = None,
    strict: bool = True,
) -> CommAuditor:
    """Attach a fresh :class:`CommAuditor` to ``machine`` and return it."""
    auditor = CommAuditor(machine.nprocs, neighbor_table=neighbor_table, strict=strict)
    auditor.trace_baseline = machine.trace.snapshot()
    machine.auditor = auditor
    return auditor


def export_metrics(auditor: CommAuditor, registry=None):
    """Fold the auditor's independently recomputed ledgers into a
    :class:`~repro.obs.metrics.MetricsRegistry` under ``audit.*`` names.

    The ``audit.messages{phase}`` / ``audit.bytes{phase}`` counters are the
    transport-layer cross-check of the span-fed ``comm.*`` series: both are
    derived from the same exchanges through different accounting paths, so a
    disagreement localizes a bookkeeping bug to one of them.
    """
    from repro.obs.metrics import MetricsRegistry

    if registry is None:
        registry = MetricsRegistry()
    for phase in sorted(auditor.ledger):
        led = auditor.ledger[phase]
        registry.counter("audit.messages", phase=phase).inc(led.messages)
        registry.counter("audit.bytes", phase=phase).inc(led.bytes)
    for phase in sorted(auditor.plan_ledger):
        led = auditor.plan_ledger[phase]
        registry.counter("audit.plan_messages", phase=phase).inc(led.messages)
        registry.counter("audit.plan_bytes", phase=phase).inc(led.bytes)
    for phase in sorted(auditor.algo_ledger):
        led = auditor.algo_ledger[phase]
        registry.counter("audit.algo_messages", phase=phase).inc(led.messages)
        registry.counter("audit.algo_bytes", phase=phase).inc(led.bytes)
    for key in sorted(auditor.algo_counts):
        collective, _, algo = key.partition("/")
        registry.counter(
            "audit.algo_calls", collective=collective, algo=algo
        ).inc(auditor.algo_counts[key])
    registry.counter("audit.alltoallv_calls").inc(auditor.n_alltoall_calls)
    registry.counter("audit.p2p_calls").inc(auditor.n_p2p_calls)
    registry.counter("audit.violations").inc(len(auditor.violations))
    return registry
