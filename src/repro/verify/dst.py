"""Deterministic simulation testing (DST) of the redistribution stack.

FoundationDB-style chaos testing for the simulated MPI layer: the same
seeded MD trajectory is run once on an unperturbed machine (the *reference
schedule*) and then under ``N`` seeded machine perturbations
(:class:`~repro.simmpi.chaos.Perturbation` — compute jitter, stragglers,
degraded links, extra latency, clock skew, mailbox reordering).  The core
property under test:

    positions, forces, energies, resort outcomes and the communication
    auditor's ledgers are **bitwise identical** across every seed; only the
    virtual clocks and per-phase trace times may differ.

A perturbation can change *when* things happen but never *what* happens —
costs are charged out-of-band of the data plane.  Any coupling from modeled
time back into physics (a real bug class: e.g. an adaptive decision reading
``machine.elapsed()``) breaks the fingerprint and is caught here.  The
``adaptive`` redistribution method intentionally couples cost to behavior
and is therefore excluded from the sweep.

Alongside the MD sweep, an SPMD *order-invariance probe* runs a random
sparse-traffic program (wildcard receives, written order-invariantly)
under every seed's mailbox scheduler, asserting identical results and that
deadlock detection never fires.

Every failure is reported with a one-line repro command, e.g.::

    python -m repro.verify dst --solvers fmm --methods B+move --steps 5 \
        --particles 24 --nprocs 4 --seed-list 17

Run from the command line via ``python -m repro.verify dst --seeds N
--steps K``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.md.distributions import clustered_system
from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import silica_melt_system
from repro.simmpi.chaos import Perturbation
from repro.simmpi.machine import Machine
from repro.simmpi.spmd import SPMDDeadlock, run_spmd
from repro.verify.audit import enable_auditing
from repro.verify.invariants import InvariantChecker, state_fingerprint

__all__ = [
    "DEFAULT_DISTRIBUTIONS",
    "DEFAULT_METHODS",
    "DEFAULT_SOLVERS",
    "DST_DISTRIBUTIONS",
    "DstFailure",
    "DstReport",
    "ledger_fingerprint",
    "run_dst",
    "run_order_invariance_probe",
    "run_resume_sweep",
]

#: all four registered solvers (the DST default is the full matrix)
DEFAULT_SOLVERS = ("direct", "ewald", "fmm", "p2nfft")

#: redistribution methods under test; "adaptive" is excluded by design — it
#: reads modeled costs to pick its method, so its behavior legitimately
#: depends on the perturbation
DEFAULT_METHODS = ("A", "B", "B+move")

#: the workload axis: ``"homogeneous"`` is the silica-melt analogue;
#: ``"clustered"`` is the two-cluster system run with *dynamic load
#: balancing* at an aggressive trigger — the balance decision reads only
#: nominal (pre-perturbation) rank work, so rebalances must fire at the
#: same steps and produce bitwise-identical physics under every schedule
DST_DISTRIBUTIONS = ("homogeneous", "clustered")

#: default sweep stays on the homogeneous workload (cost); pass
#: ``--distributions clustered`` to exercise the balancing path
DEFAULT_DISTRIBUTIONS = ("homogeneous",)

_PROBE_SALT = 0x0B5E_12E


def ledger_fingerprint(auditor) -> str:
    """Digest of the auditor's per-phase message/byte ledgers.

    The ledgers are recomputed from raw send tables (data plane only), so
    they must be identical across machine perturbations.
    """
    h = hashlib.sha256()
    for phase in sorted(auditor.ledger):
        led = auditor.ledger[phase]
        h.update(f"{phase}:{led.messages}:{led.bytes};".encode())
    for phase in sorted(getattr(auditor, "plan_ledger", None) or {}):
        led = auditor.plan_ledger[phase]
        h.update(f"plan:{phase}:{led.messages}:{led.bytes};".encode())
    # staged collective-algorithm ledgers (empty — hence hash-neutral — when
    # every collective runs the direct algorithm)
    for phase in sorted(getattr(auditor, "algo_ledger", None) or {}):
        led = auditor.algo_ledger[phase]
        h.update(f"algo:{phase}:{led.messages}:{led.bytes};".encode())
    for phase in sorted(getattr(auditor, "algo_round_ledger", None) or {}):
        led = auditor.algo_round_ledger[phase]
        h.update(f"algo-round:{phase}:{led.messages}:{led.bytes};".encode())
    for key in sorted(getattr(auditor, "algo_counts", None) or {}):
        h.update(f"algo-count:{key}:{auditor.algo_counts[key]};".encode())
    return h.hexdigest()


@dataclasses.dataclass
class DstFailure:
    """One divergence, invariant violation or deadlock under one seed."""

    solver: str
    method: str
    seed: int
    detail: str
    distribution: str = "homogeneous"
    #: step at which the trajectory was killed and resumed from checkpoint
    #: (``None`` for uninterrupted trajectories)
    kill_at: Optional[int] = None
    #: checkpoint file the trajectory resumed from (``run_resume_sweep``)
    resume_from: Optional[str] = None
    #: collective-algorithm spec the cell ran under (``None`` = direct)
    algos: Optional[str] = None

    def repro_command(self, *, nprocs: int, steps: int, particles: int) -> str:
        """One-line command reproducing exactly this failing cell.

        Probe failures carry synthetic ``spmd-probe``/``round-N`` labels that
        are not a real (solver, method) cell; the probe runs in every sweep,
        so the repro pins the seed and minimizes the trajectory work around
        it instead of passing the labels through.
        """
        if self.resume_from is not None:
            return (
                f"python -m repro.verify dst --resume-from {self.resume_from} "
                f"--steps {steps} --seed-list {self.seed}"
            )
        if self.solver == "spmd-probe":
            return (
                f"python -m repro.verify dst --solvers direct --methods A "
                f"--steps 1 --particles {particles} --nprocs {nprocs} "
                f"--seed-list {self.seed}"
            )
        kill = f" --kill-at {self.kill_at}" if self.kill_at is not None else ""
        algos = f" --algos {self.algos}" if self.algos is not None else ""
        return (
            f"python -m repro.verify dst --solvers {self.solver} "
            f"--methods {self.method!r} --steps {steps} "
            f"--particles {particles} --nprocs {nprocs} "
            f"--distributions {self.distribution} "
            f"--seed-list {self.seed}{kill}{algos}"
        )


@dataclasses.dataclass
class DstReport:
    """Outcome of one DST sweep."""

    solvers: Tuple[str, ...]
    methods: Tuple[str, ...]
    nprocs: int
    steps: int
    particles: int
    seeds: List[int]
    trajectories: int
    probes: int
    failures: List[DstFailure]
    distributions: Tuple[str, ...] = DEFAULT_DISTRIBUTIONS
    #: collective-algorithm specs swept (``None`` entries mean direct)
    algos: Tuple[Optional[str], ...] = (None,)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "ok" if self.ok else f"FAILED ({len(self.failures)})"
        algos = ""
        if any(spec is not None for spec in self.algos):
            algos = f" algos={[spec or 'direct' for spec in self.algos]}"
        return (
            f"[{status}] dst: {self.trajectories} trajectories + "
            f"{self.probes} spmd probes, solvers={list(self.solvers)} "
            f"methods={list(self.methods)} "
            f"distributions={list(self.distributions)}{algos} "
            f"seeds={len(self.seeds)} "
            f"steps={self.steps} nprocs={self.nprocs} "
            f"particles={self.particles}"
        )


@dataclasses.dataclass
class _Reference:
    """Reference-schedule fingerprints of one (solver, method) cell."""

    checkpoints: List[Dict[str, str]]
    ledger: str


def _run_cell(
    solver: str,
    method: str,
    nprocs: int,
    *,
    steps: int,
    n_particles: int,
    system_seed: int,
    perturbation: Optional[Perturbation],
    reference: Optional[_Reference],
    solver_kwargs: Optional[dict] = None,
    distribution: str = "homogeneous",
    obs_export_path: Optional[str] = None,
    obs_meta: Optional[Dict[str, object]] = None,
    kill_at: Optional[int] = None,
    ckpt_dir: Optional[str] = None,
    backend: Optional[str] = None,
    algos: Optional[str] = None,
) -> _Reference:
    """Run one trajectory; check against ``reference`` when given.

    The reference run (``reference=None``) asserts the full invariant
    registry after every step and records the fingerprint at every
    checkpoint; perturbed runs assert ``schedule-independence`` against the
    recorded fingerprints (so a divergence is pinned to the first step it
    appears in, per component).

    ``distribution="clustered"`` swaps in the two-cluster system and turns
    on dynamic load balancing with an aggressive trigger, so the weighted
    repartition runs inside the perturbed schedule — the monitor reads
    only nominal work, hence the fingerprints must not move.

    ``obs_export_path`` attaches a span recorder (:mod:`repro.obs`) and, on
    success, writes the perturbation-tagged NDJSON snapshot there.  The
    recorder observes clocks out-of-band, so fingerprints are unaffected.

    ``kill_at=K`` kills *perturbed* trajectories right after the step-``K``
    fingerprint check: the simulation is checkpointed (through an NDJSON
    file round-trip when ``ckpt_dir`` is given), destroyed, and restored
    onto a fresh machine under the *same* perturbation — the resumed
    trajectory must then keep matching the uninterrupted reference
    schedule's fingerprints and final ledger.  This is the chaos-resume
    workflow: kill + restore is itself a schedule event and must not move
    the physics.  The reference run (``reference=None``) is never killed.
    """
    if distribution not in DST_DISTRIBUTIONS:
        raise ValueError(
            f"unknown distribution {distribution!r}; pick from {DST_DISTRIBUTIONS}"
        )
    if kill_at is not None and not 0 <= kill_at <= steps:
        raise ValueError(
            f"kill_at must be within 0..steps ({steps}), got {kill_at!r}"
        )
    machine = Machine(nprocs)
    if backend is not None:
        from repro.backend import resolve_backend

        machine.attach_backend(resolve_backend(backend))
    recorder = None
    if obs_export_path is not None:
        from repro.obs import enable_observability

        recorder = enable_observability(machine)
    balance_kwargs: Dict = {}
    if distribution == "clustered":
        system = clustered_system("two-cluster", n_particles, seed=system_seed)
        balance_kwargs = dict(
            load_balance="dynamic",
            balance_trigger=1.02,
            balance_rearm=1.01,
            capacity_factor=6.0,
        )
        if solver == "fmm":
            solver_kwargs = dict(solver_kwargs or {}, work_model="density")
    else:
        system = silica_melt_system(n_particles, seed=system_seed)
    config = SimulationConfig(
        solver=solver,
        method=method,
        seed=system_seed,
        track_energy=True,
        solver_kwargs=dict(solver_kwargs or {}),
        perturbation=perturbation,
        collective_algos=algos,
        **balance_kwargs,
    )
    sim = Simulation(machine, system, config)
    auditor = enable_auditing(machine)
    checker = InvariantChecker(sim)

    checkpoints: List[Dict[str, str]] = []

    def checkpoint(k: int) -> None:
        if reference is None:
            checkpoints.append(state_fingerprint(sim))
            checker.assert_ok()
        else:
            checker.expected_fingerprint = reference.checkpoints[k]
            checker.assert_ok(["schedule-independence"])

    def maybe_kill(k: int) -> None:
        """Kill + checkpoint-resume this (perturbed) trajectory at step k."""
        nonlocal sim, machine, auditor, checker, recorder
        if kill_at is None or k != kill_at or reference is None:
            return
        from repro.ckpt import (
            capture_checkpoint,
            load_checkpoint,
            restore_simulation,
            write_checkpoint,
        )

        if ckpt_dir is not None:
            os.makedirs(ckpt_dir, exist_ok=True)
            slug = method.replace("+", "_")
            path = os.path.join(
                ckpt_dir, f"{solver}-{slug}-kill{k}.ckpt.ndjson"
            )
            write_checkpoint(capture_checkpoint(sim), path)
            ckpt = load_checkpoint(path)
        else:
            ckpt = capture_checkpoint(sim)
        sim.fcs.destroy()
        machine = Machine(nprocs)
        if backend is not None:
            from repro.backend import resolve_backend

            machine.attach_backend(resolve_backend(backend))
        if recorder is not None:
            from repro.obs import enable_observability

            recorder = enable_observability(machine)
        auditor = enable_auditing(machine)
        sim = restore_simulation(ckpt, machine=machine, perturbation=perturbation)
        checker = InvariantChecker(sim)

    try:
        sim.initialize()
        checkpoint(0)
        maybe_kill(0)
        for k in range(steps):
            sim.step()
            checkpoint(k + 1)
            maybe_kill(k + 1)
        auditor.assert_quiescent()
        ledger = ledger_fingerprint(auditor)
        if reference is not None and ledger != reference.ledger:
            raise AssertionError(
                "auditor ledger fingerprint diverged from the reference schedule "
                f"(perturbation [{machine.trace.notes().get('perturbation', '?')}])"
            )
    finally:
        sim.fcs.destroy()
    if recorder is not None:
        from repro.obs import write_ndjson

        meta: Dict[str, object] = {
            "cell": f"{solver}/{method}/{distribution}",
            "perturbation": machine.trace.notes().get("perturbation", "none"),
        }
        meta.update(obs_meta or {})
        write_ndjson(obs_export_path, recorder, meta=meta)
    return _Reference(checkpoints=checkpoints, ledger=ledger)


# -- SPMD order-invariance probe ---------------------------------------------


def _probe_program(ctx, sends, expected):
    """Random sparse traffic consumed through wildcard receives.

    Written order-invariantly: the received multiset is sorted before use,
    so any legal delivery order must yield the same return value.
    """
    for dst, value in sends:
        ctx.send(dst, float(value), tag=1)
    received = [float(ctx.recv()) for _ in range(expected)]
    received.sort()
    total = ctx.allreduce(sum(received))
    return received, total


def _probe_traffic(nprocs: int, rng: np.random.Generator):
    """A random sparse traffic pattern plus per-rank receive counts."""
    sends: List[List[Tuple[int, float]]] = [[] for _ in range(nprocs)]
    expected = [0] * nprocs
    n_messages = int(rng.integers(nprocs, 4 * nprocs + 1))
    for _ in range(n_messages):
        src = int(rng.integers(nprocs))
        dst = int(rng.integers(nprocs))
        value = float(np.round(rng.uniform(0.0, 100.0), 6))
        sends[src].append((dst, value))
        expected[dst] += 1
    return sends, expected


def run_order_invariance_probe(
    nprocs: int,
    seeds: Sequence[int],
    *,
    rounds: int = 3,
    system_seed: int = 0,
) -> List[DstFailure]:
    """Run the wildcard-receive probe under every seed's scheduler.

    The traffic pattern is fixed per round (drawn from ``system_seed``, not
    the perturbation seed); only the delivery/wake schedule varies.  Results
    must match the unperturbed run exactly and deadlock detection must
    never fire.
    """
    failures: List[DstFailure] = []
    for rnd in range(rounds):
        rng = np.random.default_rng([_PROBE_SALT, system_seed, rnd])
        sends, expected = _probe_traffic(nprocs, rng)

        def run_once(perturbation: Optional[Perturbation]):
            machine = (
                Machine(nprocs, perturbation=perturbation)
                if perturbation is not None
                else Machine(nprocs)
            )
            return run_spmd(machine, _probe_program, sends, expected)

        reference = run_once(None)
        for seed in seeds:
            if seed == 0:
                continue
            try:
                result = run_once(Perturbation.sample(seed))
            except SPMDDeadlock as exc:
                failures.append(
                    DstFailure(
                        solver="spmd-probe",
                        method=f"round-{rnd}",
                        seed=seed,
                        detail=f"deadlock detector fired: {exc}",
                    )
                )
                continue
            if result != reference:
                failures.append(
                    DstFailure(
                        solver="spmd-probe",
                        method=f"round-{rnd}",
                        seed=seed,
                        detail=(
                            "wildcard-receive results diverged from the "
                            "reference schedule"
                        ),
                    )
                )
    return failures


# -- the sweep ----------------------------------------------------------------


def run_dst(
    solvers: Sequence[str] = DEFAULT_SOLVERS,
    methods: Sequence[str] = DEFAULT_METHODS,
    *,
    seeds: int = 10,
    steps: int = 5,
    nprocs: int = 4,
    n_particles: int = 24,
    seed_list: Optional[Sequence[int]] = None,
    system_seed: int = 0,
    probe_rounds: int = 3,
    distributions: Sequence[str] = DEFAULT_DISTRIBUTIONS,
    obs_export_dir: Optional[str] = None,
    kill_at: Optional[int] = None,
    ckpt_dir: Optional[str] = None,
    backend: Optional[str] = None,
    algos: Optional[Sequence[Optional[str]]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> DstReport:
    """Sweep every (solver, method, distribution) cell under ``seeds``
    perturbation seeds.

    ``seed_list`` overrides the default ``1..seeds`` range (reproducing a
    recorded failure).  Seed 0 is the null perturbation and is always the
    reference; listing it explicitly re-checks byte-identity of the null
    perturbation against the unperturbed reference.
    ``distributions`` extends the sweep along the workload axis — pass
    ``("clustered",)`` (or both) to chaos-test the dynamic load balancer.
    ``obs_export_dir`` writes one chaos-seed-tagged NDJSON span snapshot
    per trajectory (``{solver}-{method}-{distribution}-seed{N}.ndjson``;
    the reference schedule is ``seed0``).
    ``kill_at=K`` kills every *perturbed* trajectory after its step-``K``
    fingerprint check and resumes it from a :mod:`repro.ckpt` checkpoint
    (written under ``ckpt_dir`` when given, else in-memory); the resumed
    trajectory is still held to the uninterrupted reference's fingerprints
    and ledger — the chaos-resume property.
    ``backend`` routes every trajectory's payload data plane through the
    named execution engine (``"process"`` / ``"process:N"``); fingerprints
    and ledgers are backend-independent, so the sweep's assertions are
    unchanged — running it under the process engine differentially tests
    the shared-memory transport against the chaos schedules.
    ``algos`` extends the sweep along the collective-algorithm axis: each
    entry is a :func:`repro.simmpi.algos.parse_algos` spec string (``None``
    meaning the direct default) and gets its own reference schedule —
    staged algorithms change modeled clocks and message counts, but within
    one spec the chaos property holds unchanged.
    """
    say = progress if progress is not None else (lambda msg: None)
    chosen = list(seed_list) if seed_list is not None else list(range(1, seeds + 1))
    algo_specs: List[Optional[str]] = list(algos) if algos else [None]
    failures: List[DstFailure] = []
    trajectories = 0

    def obs_path(
        solver: str, method: str, distribution: str, spec: Optional[str], seed: int
    ):
        if obs_export_dir is None:
            return None
        os.makedirs(obs_export_dir, exist_ok=True)
        slug = method.replace("+", "_")
        tag = ""
        if spec is not None:
            tag = "-" + spec.replace("+", "_").replace("=", "-")
        return os.path.join(
            obs_export_dir,
            f"{solver}-{slug}-{distribution}{tag}-seed{seed}.ndjson",
        )

    for distribution in distributions:
        for solver in solvers:
            for method in methods:
                for spec in algo_specs:
                    cell = f"{solver}/{method}/{distribution}"
                    if spec is not None:
                        cell += f"/{spec}"
                    say(f"dst: {cell} reference schedule ...")
                    reference = _run_cell(
                        solver,
                        method,
                        nprocs,
                        steps=steps,
                        n_particles=n_particles,
                        system_seed=system_seed,
                        perturbation=None,
                        reference=None,
                        distribution=distribution,
                        obs_export_path=obs_path(
                            solver, method, distribution, spec, 0
                        ),
                        obs_meta={"chaos_seed": 0},
                        backend=backend,
                        algos=spec,
                    )
                    trajectories += 1
                    for seed in chosen:
                        perturbation = Perturbation.sample(seed)
                        try:
                            _run_cell(
                                solver,
                                method,
                                nprocs,
                                steps=steps,
                                n_particles=n_particles,
                                system_seed=system_seed,
                                perturbation=perturbation,
                                reference=reference,
                                distribution=distribution,
                                obs_export_path=obs_path(
                                    solver, method, distribution, spec, seed
                                ),
                                obs_meta={"chaos_seed": seed},
                                kill_at=kill_at,
                                ckpt_dir=ckpt_dir,
                                backend=backend,
                                algos=spec,
                            )
                        except SPMDDeadlock as exc:
                            failures.append(
                                DstFailure(
                                    solver, method, seed, f"deadlock: {exc}",
                                    distribution=distribution, kill_at=kill_at,
                                    algos=spec,
                                )
                            )
                        except AssertionError as exc:
                            failures.append(
                                DstFailure(
                                    solver, method, seed, str(exc),
                                    distribution=distribution, kill_at=kill_at,
                                    algos=spec,
                                )
                            )
                        trajectories += 1
                    failed_cell = any(
                        f.solver == solver
                        and f.method == method
                        and f.distribution == distribution
                        and f.algos == spec
                        for f in failures
                    )
                    say(
                        f"dst: {cell} {len(chosen)} seeds "
                        f"{'FAILED' if failed_cell else 'ok'}"
                    )

    probe_failures = run_order_invariance_probe(
        nprocs, chosen, rounds=probe_rounds, system_seed=system_seed
    )
    failures.extend(probe_failures)
    probes = probe_rounds * (1 + sum(1 for s in chosen if s != 0))

    return DstReport(
        solvers=tuple(solvers),
        methods=tuple(methods),
        nprocs=nprocs,
        steps=steps,
        particles=n_particles,
        seeds=chosen,
        trajectories=trajectories,
        probes=probes,
        failures=failures,
        distributions=tuple(distributions),
        algos=tuple(algo_specs),
    )


# -- checkpoint-resume sweep ---------------------------------------------------


def run_resume_sweep(
    resume_from: str,
    *,
    steps: int = 3,
    seeds: int = 5,
    seed_list: Optional[Sequence[int]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> DstReport:
    """Resume one saved checkpoint under ``seeds`` perturbation seeds.

    The operational recovery question DST cannot answer from fresh starts
    alone: given a checkpoint file a dead job left behind (e.g. from
    ``SimulationConfig.checkpoint_every`` or a ``--ckpt-dir`` chaos run),
    does resuming it give one trajectory, regardless of the machine the
    resumed job lands on?  The **null-perturbation resume is the
    reference**: it runs with the full invariant registry asserted after
    every step and records per-step fingerprints and the final ledger;
    every perturbed resume is then held to those via
    ``schedule-independence``.  Failures carry a one-line
    ``--resume-from`` repro command.
    """
    from repro.ckpt import load_checkpoint, restore_simulation

    say = progress if progress is not None else (lambda msg: None)
    ckpt = load_checkpoint(resume_from)
    chosen = list(seed_list) if seed_list is not None else list(range(1, seeds + 1))
    solver = str(ckpt.config.get("solver", "?"))
    method = str(ckpt.config.get("method", "?"))
    distribution = str(ckpt.config.get("distribution", "?"))
    failures: List[DstFailure] = []

    def run_once(
        perturbation: Optional[Perturbation], reference: Optional[_Reference]
    ) -> _Reference:
        machine = Machine(ckpt.nprocs)
        auditor = enable_auditing(machine)
        sim = restore_simulation(ckpt, machine=machine, perturbation=perturbation)
        checker = InvariantChecker(sim)
        checkpoints: List[Dict[str, str]] = []
        try:
            if not sim._initialized:
                sim.initialize()
            for k in range(steps):
                sim.step()
                if reference is None:
                    checkpoints.append(state_fingerprint(sim))
                    checker.assert_ok()
                else:
                    checker.expected_fingerprint = reference.checkpoints[k]
                    checker.assert_ok(["schedule-independence"])
            auditor.assert_quiescent()
            ledger = ledger_fingerprint(auditor)
            if reference is not None and ledger != reference.ledger:
                raise AssertionError(
                    "auditor ledger fingerprint of the resumed run diverged "
                    "from the null-perturbation resume"
                )
        finally:
            sim.fcs.destroy()
        return _Reference(checkpoints=checkpoints, ledger=ledger)

    say(
        f"dst: resume {solver}/{method} from {resume_from} "
        f"(step {ckpt.step_index}) — reference schedule ..."
    )
    reference = run_once(None, None)
    trajectories = 1
    for seed in chosen:
        perturbation = Perturbation.sample(seed) if seed != 0 else None
        try:
            run_once(perturbation, reference)
        except SPMDDeadlock as exc:
            failures.append(
                DstFailure(
                    solver, method, seed, f"deadlock: {exc}",
                    distribution=distribution, resume_from=resume_from,
                )
            )
        except AssertionError as exc:
            failures.append(
                DstFailure(
                    solver, method, seed, str(exc),
                    distribution=distribution, resume_from=resume_from,
                )
            )
        trajectories += 1
    say(
        f"dst: resume {solver}/{method} {len(chosen)} seeds "
        f"{'FAILED' if failures else 'ok'}"
    )
    return DstReport(
        solvers=(solver,),
        methods=(method,),
        nprocs=ckpt.nprocs,
        steps=steps,
        particles=ckpt.n_particles,
        seeds=chosen,
        trajectories=trajectories,
        probes=0,
        failures=failures,
        distributions=(distribution,),
    )
