"""Differential verification subsystem.

Three cooperating layers turn the paper's correctness claims into
executable checks:

* :mod:`repro.verify.invariants` — a registry of composable invariant
  checks (particle/charge conservation, resort-index permutation validity,
  trace accounting, bounded energy drift, ...) that run against a live
  :class:`~repro.md.simulation.Simulation`.
* :mod:`repro.verify.differential` — the Method A/B cross-oracle: the same
  seeded trajectory is run under method A, method B and method B +
  max-movement across solvers and machine shapes, asserting identical
  physics and that method B never redistributes more data than method A
  (the executable form of the paper's Figures 7-8).
* :mod:`repro.verify.audit` — a communication auditor wired into
  :mod:`repro.simmpi.collectives` and :mod:`repro.simmpi.p2p` that
  validates alltoallv count symmetry, flags unmatched point-to-point sends
  (virtual-deadlock detection) and verifies neighborhood exchanges only
  touch declared Cartesian neighbors.
* :mod:`repro.verify.dst` — deterministic simulation testing: the full MD
  loop re-run under seeded machine perturbations
  (:mod:`repro.simmpi.chaos`), asserting bitwise-identical physics and
  ledgers across every seed (only virtual clocks may differ).

Run the differential oracle from the command line::

    python -m repro.verify --quick

and the chaos/DST sweep with::

    python -m repro.verify dst --seeds 10 --steps 5

See ``docs/verification.md`` for the invariant catalog and usage guide.
"""

from repro.verify.audit import (
    CommAuditError,
    CommAuditor,
    check_count_symmetry,
    enable_auditing,
    verify_exchange_schedule,
)
from repro.verify.differential import (
    DifferentialFailure,
    DifferentialReport,
    TrajectoryResult,
    compare_states,
    differential_check,
    run_trajectory,
    sweep,
)
from repro.verify.dst import (
    DstFailure,
    DstReport,
    ledger_fingerprint,
    run_dst,
    run_order_invariance_probe,
)
from repro.verify.invariants import (
    CheckResult,
    Invariant,
    InvariantChecker,
    InvariantViolation,
    all_invariants,
    assert_invariants,
    check_resort_permutation,
    get_invariant,
    invariant,
    run_invariants,
    state_fingerprint,
)
from repro.verify.testing import auto_verify

__all__ = [
    "CommAuditError",
    "CommAuditor",
    "check_count_symmetry",
    "enable_auditing",
    "verify_exchange_schedule",
    "DifferentialFailure",
    "DifferentialReport",
    "TrajectoryResult",
    "compare_states",
    "differential_check",
    "run_trajectory",
    "sweep",
    "CheckResult",
    "Invariant",
    "InvariantChecker",
    "InvariantViolation",
    "all_invariants",
    "assert_invariants",
    "check_resort_permutation",
    "get_invariant",
    "invariant",
    "run_invariants",
    "state_fingerprint",
    "DstFailure",
    "DstReport",
    "ledger_fingerprint",
    "run_dst",
    "run_order_invariance_probe",
    "auto_verify",
]
