"""Command-line entry point for the differential verification sweep.

``python -m repro.verify --quick`` runs the A/B/B+move differential oracle
on a small grid (two solvers, two machine shapes) with a strict
communication auditor and the full invariant registry asserted after every
step — the CI smoke configuration.  ``python -m repro.verify`` (no flags)
runs the full grid including the P2NFFT solver.  Exit status 0 means every
cell passed; 1 means at least one differential disagreement or invariant
violation.

``python -m repro.verify dst --seeds N --steps K`` runs the deterministic
simulation test (:mod:`repro.verify.dst`): the full MD loop under N seeded
machine perturbations, asserting bitwise-identical physics and ledgers
across every seed.  Failing seeds are printed with a one-line repro
command.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.verify.differential import DifferentialReport, sweep
from repro.verify.invariants import all_invariants


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "differential verification: run the same seeded MD trajectory "
            "under redistribution methods A, B and B+move and assert state "
            "agreement, bounded method-B traffic, all registered invariants "
            "and communication-contract compliance"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small smoke grid: direct+fmm solvers, 4- and 8-rank machines",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_invariants",
        help="list the registered invariants and exit",
    )
    parser.add_argument(
        "--solvers",
        nargs="+",
        default=None,
        metavar="SOLVER",
        help="solvers to sweep (default: direct fmm p2nfft; --quick: direct fmm)",
    )
    parser.add_argument(
        "--shapes",
        nargs="+",
        type=int,
        default=None,
        metavar="NPROCS",
        help="machine shapes (rank counts) to sweep (default: 4 8)",
    )
    parser.add_argument(
        "--steps", type=int, default=None, help="MD steps per trajectory"
    )
    parser.add_argument(
        "--particles", type=int, default=None, help="particles in the test system"
    )
    parser.add_argument("--seed", type=int, default=0, help="system/trajectory seed")
    parser.add_argument(
        "--rtol", type=float, default=1e-6, help="relative state-agreement tolerance"
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="ENGINE",
        help=(
            "execution backend hosting the payload data plane "
            "('inprocess', 'process' or 'process:N'); results are "
            "backend-independent by contract"
        ),
    )
    return parser


def _dst_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify dst",
        description=(
            "deterministic simulation testing: run the full MD loop under N "
            "seeded machine perturbations (compute jitter, stragglers, "
            "degraded links, extra latency, clock skew, mailbox reordering) "
            "and assert that physics state and communication ledgers are "
            "bitwise identical across every seed"
        ),
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=10,
        help="number of perturbation seeds to sweep (seeds 1..N; default 10)",
    )
    parser.add_argument(
        "--steps", type=int, default=5, help="MD steps per trajectory (default 5)"
    )
    parser.add_argument(
        "--solvers",
        nargs="+",
        default=None,
        metavar="SOLVER",
        help="solvers to sweep (default: direct ewald fmm p2nfft)",
    )
    parser.add_argument(
        "--methods",
        nargs="+",
        default=None,
        metavar="METHOD",
        help="redistribution methods to sweep (default: A B B+move)",
    )
    parser.add_argument(
        "--nprocs", type=int, default=4, help="machine rank count (default 4)"
    )
    parser.add_argument(
        "--particles", type=int, default=24, help="particles in the test system"
    )
    parser.add_argument(
        "--seed-list",
        nargs="+",
        type=int,
        default=None,
        metavar="SEED",
        help="explicit perturbation seeds to run (reproduce a failure)",
    )
    parser.add_argument(
        "--system-seed", type=int, default=0, help="system/trajectory seed"
    )
    parser.add_argument(
        "--distributions",
        nargs="+",
        choices=["homogeneous", "clustered"],
        default=None,
        metavar="DIST",
        help=(
            "workload axis: 'homogeneous' (silica melt, the default) and/or "
            "'clustered' (two-cluster system with dynamic load balancing — "
            "chaos-tests the weighted repartition path)"
        ),
    )
    parser.add_argument(
        "--obs-export-dir",
        default=None,
        metavar="DIR",
        help=(
            "write one chaos-seed-tagged NDJSON span snapshot (repro.obs) "
            "per trajectory into DIR"
        ),
    )
    parser.add_argument(
        "--kill-at",
        type=int,
        default=None,
        metavar="K",
        help=(
            "kill every perturbed trajectory after its step-K fingerprint "
            "check and resume it from a repro.ckpt checkpoint; the resumed "
            "trajectory is still held to the uninterrupted reference"
        ),
    )
    parser.add_argument(
        "--ckpt-dir",
        default=None,
        metavar="DIR",
        help=(
            "with --kill-at: round-trip the kill checkpoint through an "
            "NDJSON file in DIR (default: in-memory)"
        ),
    )
    parser.add_argument(
        "--resume-from",
        default=None,
        metavar="CKPT",
        help=(
            "resume the given checkpoint file under the perturbation seeds "
            "instead of sweeping fresh trajectories (run_resume_sweep); "
            "--steps counts continuation steps"
        ),
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="ENGINE",
        help=(
            "execution backend for every trajectory ('inprocess', 'process' "
            "or 'process:N'); fingerprints and ledgers must not move"
        ),
    )
    parser.add_argument(
        "--algos",
        nargs="+",
        default=None,
        metavar="SPEC",
        help=(
            "collective-algorithm specs to sweep (repro.simmpi.algos "
            "grammar, e.g. 'bruck' or 'alltoallv=pairwise+allreduce="
            "binomial-tree'); each spec gets its own reference schedule; "
            "comma-separated tokens expand into multiple specs"
        ),
    )
    return parser


def main_dst(argv: List[str]) -> int:
    from repro.verify.dst import (
        DEFAULT_DISTRIBUTIONS,
        DEFAULT_METHODS,
        DEFAULT_SOLVERS,
        run_dst,
        run_resume_sweep,
    )

    args = _dst_parser().parse_args(argv)
    if args.resume_from is not None:
        report = run_resume_sweep(
            args.resume_from,
            steps=args.steps,
            seeds=args.seeds,
            seed_list=args.seed_list,
            progress=print,
        )
        print(report.summary())
        for failure in report.failures:
            print(
                f"  seed {failure.seed} "
                f"[{failure.solver}/{failure.method}]: {failure.detail}"
            )
            print(
                "  reproduce: "
                + failure.repro_command(
                    nprocs=report.nprocs,
                    steps=report.steps,
                    particles=report.particles,
                )
            )
        return 1 if report.failures else 0
    solvers = args.solvers or list(DEFAULT_SOLVERS)
    methods = args.methods or list(DEFAULT_METHODS)
    distributions = args.distributions or list(DEFAULT_DISTRIBUTIONS)
    algos = None
    if args.algos:
        # "--algos bruck,pairwise" sweeps two specs; '+' combines
        # collectives within one spec
        algos = [
            None if spec == "direct" else spec
            for token in args.algos
            for spec in token.split(",")
            if spec
        ]
    report = run_dst(
        solvers,
        methods,
        seeds=args.seeds,
        steps=args.steps,
        nprocs=args.nprocs,
        n_particles=args.particles,
        seed_list=args.seed_list,
        system_seed=args.system_seed,
        distributions=distributions,
        obs_export_dir=args.obs_export_dir,
        kill_at=args.kill_at,
        ckpt_dir=args.ckpt_dir,
        backend=args.backend,
        algos=algos,
        progress=print,
    )
    print(report.summary())
    for failure in report.failures:
        print(f"  seed {failure.seed} [{failure.solver}/{failure.method}]: {failure.detail}")
        print(
            "  reproduce: "
            + failure.repro_command(
                nprocs=report.nprocs,
                steps=report.steps,
                particles=report.particles,
            )
        )
    return 1 if report.failures else 0


def main(argv: List[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "dst":
        return main_dst(list(argv[1:]))
    args = _parser().parse_args(argv)

    if args.list_invariants:
        invariants = all_invariants()
        width = max(len(inv.name) for inv in invariants)
        for inv in invariants:
            print(f"{inv.name:<{width}}  {inv.description}")
        print(f"\n{len(invariants)} invariants registered")
        return 0

    if args.quick:
        solvers = args.solvers or ["direct", "fmm"]
        steps = args.steps if args.steps is not None else 2
        particles = args.particles if args.particles is not None else 32
    else:
        solvers = args.solvers or ["direct", "fmm", "p2nfft"]
        steps = args.steps if args.steps is not None else 3
        particles = args.particles if args.particles is not None else 48
    shapes = args.shapes or [4, 8]

    print(
        f"differential sweep: solvers={solvers} shapes={shapes} "
        f"steps={steps} particles={particles} seed={args.seed}"
    )
    reports: List[DifferentialReport] = sweep(
        solvers=solvers,
        shapes=shapes,
        steps=steps,
        n_particles=particles,
        seed=args.seed,
        rtol=args.rtol,
        backend=args.backend,
    )
    failed = 0
    checks = 0
    for report in reports:
        print("  " + report.summary())
        for failure in report.failures:
            print(f"    {failure}")
        failed += len(report.failures)
        checks += sum(
            t.invariants_passed for t in report.trajectories.values()
        )
    n_inv = len(all_invariants())
    print(
        f"{len(reports)} cells, {checks} invariant checks passed "
        f"({n_inv} registered), {failed} failure(s)"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
