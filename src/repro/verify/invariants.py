"""Composable invariant checks for live simulations and machines.

Every check is registered under a unique name in a global registry and runs
against a :class:`~repro.md.simulation.Simulation` (wrapped in an
:class:`InvariantChecker`, which captures the conserved baselines when it
attaches).  A check returns ``None`` when the invariant holds, a failure
message when it is violated, or :data:`SKIPPED` when it does not apply to
the current configuration (e.g. energy drift without energy tracking).

The catalog covers the failure modes a redistribution bug produces:

============================  ====================================================
``particle-count``            global particle count conserved across every
                              redistribution (no lost/duplicated particles)
``charge-conservation``       total charge conserved (redistribution moves
                              charges, never creates them)
``identity-permutation``      the tracked particle identities are exactly a
                              permutation of the initial ids (method B's
                              ``fcs_resort_ints`` bookkeeping stays intact)
``local-shape-consistency``   per-rank velocity/acceleration/id array lengths
                              match the per-rank particle counts
``capacity-respected``        no rank holds more particles than its declared
                              local array capacity (the method-B gate)
``resort-permutation``        the last run's resort indices hit each packed
                              (target rank, target position) exactly once
``results-finite``            potentials and fields contain no NaN/Inf
``trace-accounting``          per-phase ``messages``/``bytes`` in the machine
                              trace equal the sums the audited collectives
                              report (requires an attached CommAuditor)
``plan-accounting``           the resort-plan engine's self-reported fused
                              traffic never exceeds what its audited
                              exchanges actually carried (requires an
                              attached CommAuditor and executed plans)
``comm-quiescent``            no unmatched point-to-point send is pending
                              (requires an attached CommAuditor)
``energy-drift``              bounded total-energy drift in energy-tracked runs
``momentum-bounded``          total momentum stays near zero under force
                              dynamics (forces sum to zero pairwise)
``schedule-independence``     the physics state fingerprint is bitwise
                              identical to the reference schedule's (armed by
                              the DST runner via ``expected_fingerprint``)
``ckpt-restart-equivalence``  a restored run's state *and* auditor-ledger
                              fingerprints are byte-identical to the
                              uninterrupted run's — run 2N ≡ run N + save +
                              restore + run N (armed by the
                              :mod:`repro.ckpt.equivalence` kit via
                              ``expected_restart``)
``balance-conservation``      weighted rebalancing permutes but never drops
                              particles, and the observed imbalance factor
                              after a triggered rebalance never exceeds the
                              factor that triggered it
``clock-monotonicity``        virtual clocks and per-phase times never go
                              negative
``span-accounting``           per-phase sums over the observability layer's
                              charge spans reproduce the trace aggregates
                              bit-for-bit (requires an attached, complete
                              :class:`~repro.obs.spans.ObsRecorder`)
============================  ====================================================

Register additional checks with the :func:`invariant` decorator::

    @invariant("my-check", "one-line description")
    def _my_check(checker):
        if something_wrong(checker.sim):
            return "what went wrong"
        return None
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.resort import unpack_resort_index

__all__ = [
    "SKIPPED",
    "CheckResult",
    "Invariant",
    "InvariantChecker",
    "InvariantViolation",
    "all_invariants",
    "assert_invariants",
    "check_resort_permutation",
    "get_invariant",
    "invariant",
    "run_invariants",
    "state_fingerprint",
]

#: sentinel a check returns when it does not apply to the configuration
SKIPPED = object()

#: phases whose traffic flows exclusively through audited primitives; the
#: modeled far-field/mesh charges (direct ``Machine.advance`` calls in the
#: FMM and P2NFFT compute paths) are cost-model artifacts with no data plane
#: to audit and are deliberately excluded
AUDITED_PHASES = frozenset(
    {
        "sort",
        "restore",
        "resort",
        "resort_index",
        "resort_plan",
        "halo",
        "gather",
        "integrate",
        "tune",
        "balance",
    }
)


class InvariantViolation(AssertionError):
    """One or more registered invariants failed."""


@dataclasses.dataclass(frozen=True)
class Invariant:
    """A registered invariant check."""

    name: str
    description: str
    check: Callable[["InvariantChecker"], object]


@dataclasses.dataclass
class CheckResult:
    """Outcome of running one invariant."""

    name: str
    status: str  # "passed" | "failed" | "skipped"
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status == "failed"


_REGISTRY: Dict[str, Invariant] = {}


def invariant(name: str, description: str) -> Callable:
    """Decorator registering a check function under ``name``."""

    def register(fn: Callable[["InvariantChecker"], object]) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"invariant {name!r} already registered")
        _REGISTRY[name] = Invariant(name=name, description=description, check=fn)
        return fn

    return register


def get_invariant(name: str) -> Invariant:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown invariant {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def all_invariants() -> List[Invariant]:
    """Registered invariants in registration order."""
    return list(_REGISTRY.values())


# -- standalone checkers (shared by invariants and direct tests) -----------------


def check_resort_permutation(
    resort_indices: Sequence[np.ndarray],
    new_counts: Sequence[int],
    nprocs: int,
) -> Optional[str]:
    """Validate that resort indices form a permutation onto the new layout.

    Unpacks every packed (target rank, target position) value and checks
    each target slot ``(r, p)`` with ``p < new_counts[r]`` is hit exactly
    once — the property ``fcs_resort_floats``/``fcs_resort_ints`` rely on.
    Returns a failure message or ``None``.
    """
    if len(new_counts) != nprocs:
        return f"{len(new_counts)} new counts for {nprocs} ranks"
    hits = [np.zeros(int(c), dtype=np.int64) for c in new_counts]
    total = 0
    for src, idx in enumerate(resort_indices):
        idx = np.asarray(idx)
        if idx.ndim != 1:
            return f"rank {src}: resort indices must be 1-D, got shape {idx.shape}"
        if idx.size == 0:
            continue
        if np.any(idx < 0):
            return f"rank {src}: invalid (negative/ghost) resort index present"
        try:
            ranks, positions = unpack_resort_index(idx)
        except ValueError as exc:
            return f"rank {src}: {exc}"
        if np.any(ranks >= nprocs):
            return f"rank {src}: target rank {int(ranks.max())} out of range"
        for r in range(nprocs):
            mask = ranks == r
            if not mask.any():
                continue
            pos = positions[mask]
            if np.any(pos >= len(hits[r])):
                return (
                    f"rank {src}: target position {int(pos.max())} exceeds "
                    f"rank {r}'s new count {len(hits[r])}"
                )
            np.add.at(hits[r], pos, 1)
        total += idx.size
    if total != int(sum(int(c) for c in new_counts)):
        return (
            f"{total} resort indices for {int(sum(int(c) for c in new_counts))} "
            "target slots"
        )
    for r, h in enumerate(hits):
        bad = np.flatnonzero(h != 1)
        if bad.size:
            p = int(bad[0])
            return (
                f"rank {r} position {p} targeted {int(h[p])} times "
                "(resort indices are not a permutation)"
            )
    return None


def state_fingerprint(sim) -> Dict[str, str]:
    """Per-component digests of every schedule-independent observable.

    Covers the physics state (per-rank layout, ids, positions, velocities,
    accelerations, charges, potentials, fields) and the per-step dynamics
    record (changed flag, strategy, method, max movement, energy) — exactly
    the outputs that must be **bitwise identical** under any machine
    perturbation or legal message schedule.  Virtual clocks and per-phase
    trace times are deliberately excluded: those are the only outputs allowed
    to respond to a perturbation.

    Returns an ordered ``{component: sha256 hexdigest}`` map so a divergence
    can be reported per component rather than as one opaque hash.
    """

    def digest(chunks: Sequence[bytes]) -> str:
        h = hashlib.sha256()
        for chunk in chunks:
            h.update(chunk)
        return h.hexdigest()

    def arrays(seq) -> List[bytes]:
        return [np.ascontiguousarray(a).tobytes() for a in seq]

    particles = sim.particles
    components: Dict[str, List[bytes]] = {
        "layout": [
            np.asarray([p.shape[0] for p in particles.pos], dtype=np.int64).tobytes()
        ],
        "ids": arrays(sim.ids),
        "positions": arrays(particles.pos),
        "velocities": arrays(sim.vel),
        "accelerations": arrays(sim.acc),
        "charges": arrays(particles.q),
        "potentials": arrays(particles.pot),
        "fields": arrays(particles.field),
        "dynamics": [
            repr((r.step, r.changed, r.strategy, r.method)).encode()
            + np.float64(r.max_move).tobytes()
            + (np.float64(r.energy).tobytes() if r.energy is not None else b"\x00")
            for r in sim.records
        ],
    }
    return {name: digest(chunks) for name, chunks in components.items()}


# -- the checker -------------------------------------------------------------------


class InvariantChecker:
    """Binds a simulation to the registry and captures conserved baselines.

    Create one right after the :class:`~repro.md.simulation.Simulation` (the
    baselines — total particle count, total charge, initial ids — are read
    at attach time), then call :meth:`run` or :meth:`assert_ok` after any
    step or redistribution::

        sim = Simulation(machine, system, config)
        checker = InvariantChecker(sim)
        sim.run(10)
        checker.assert_ok()

    Parameters
    ----------
    sim:
        the live simulation to check.
    energy_tolerance:
        maximum allowed relative drift of the total energy (only enforced
        when the simulation tracks energy under force dynamics).
    momentum_tolerance:
        maximum total momentum relative to the summed speed scale.  The
        default absorbs the approximation error of truncated solvers (FMM
        multipole truncation breaks exact pairwise force cancellation at
        the solver's accuracy level, ~1e-4 relative) while still flagging
        the O(1) drift a velocity-scrambling redistribution bug produces.
    """

    def __init__(
        self,
        sim,
        energy_tolerance: float = 0.1,
        momentum_tolerance: float = 1e-2,
    ) -> None:
        self.sim = sim
        self.machine = sim.machine
        self.energy_tolerance = float(energy_tolerance)
        self.momentum_tolerance = float(momentum_tolerance)
        self.expected_total = int(sum(p.shape[0] for p in sim.particles.pos))
        self.expected_charge = float(sum(q.sum() for q in sim.particles.q))
        self.expected_ids = np.sort(np.concatenate(sim.ids)) if sim.ids else None
        self.history: List[CheckResult] = []

    # -- execution ---------------------------------------------------------------

    def run(self, names: Optional[Sequence[str]] = None) -> List[CheckResult]:
        """Run the selected (default: all) invariants; returns the results."""
        selected = (
            [get_invariant(n) for n in names] if names is not None else all_invariants()
        )
        results: List[CheckResult] = []
        for inv in selected:
            outcome = inv.check(self)
            if outcome is SKIPPED:
                results.append(CheckResult(inv.name, "skipped"))
            elif outcome is None:
                results.append(CheckResult(inv.name, "passed"))
            else:
                results.append(CheckResult(inv.name, "failed", str(outcome)))
        self.history.extend(results)
        return results

    def assert_ok(self, names: Optional[Sequence[str]] = None) -> List[CheckResult]:
        """Run invariants and raise :class:`InvariantViolation` on failure."""
        results = self.run(names)
        failures = [r for r in results if r.failed]
        if failures:
            lines = "\n".join(f"  {r.name}: {r.detail}" for r in failures)
            raise InvariantViolation(
                f"{len(failures)} invariant(s) violated:\n{lines}"
            )
        return results


def run_invariants(
    sim, names: Optional[Sequence[str]] = None, **kwargs
) -> List[CheckResult]:
    """One-shot convenience: attach a checker to ``sim`` and run."""
    return InvariantChecker(sim, **kwargs).run(names)


def assert_invariants(
    sim, names: Optional[Sequence[str]] = None, **kwargs
) -> List[CheckResult]:
    """One-shot convenience: attach a checker and raise on any violation."""
    return InvariantChecker(sim, **kwargs).assert_ok(names)


# -- registered checks ---------------------------------------------------------------


@invariant(
    "particle-count",
    "global particle count conserved across every redistribution",
)
def _check_particle_count(checker: InvariantChecker) -> object:
    total = int(sum(p.shape[0] for p in checker.sim.particles.pos))
    if total != checker.expected_total:
        return f"{total} particles, expected {checker.expected_total}"
    return None


@invariant(
    "charge-conservation",
    "total charge conserved across every redistribution",
)
def _check_charge(checker: InvariantChecker) -> object:
    charge = float(sum(q.sum() for q in checker.sim.particles.q))
    scale = max(
        float(sum(np.abs(q).sum() for q in checker.sim.particles.q)), 1.0
    )
    if abs(charge - checker.expected_charge) > 1e-9 * scale:
        return f"total charge {charge!r}, expected {checker.expected_charge!r}"
    return None


@invariant(
    "identity-permutation",
    "tracked particle identities are a permutation of the initial ids",
)
def _check_identities(checker: InvariantChecker) -> object:
    sim = checker.sim
    if not hasattr(sim, "ids") or checker.expected_ids is None:
        return SKIPPED
    ids = np.sort(np.concatenate(sim.ids)) if sim.ids else np.empty(0, dtype=np.int64)
    if ids.shape != checker.expected_ids.shape:
        return (
            f"{ids.shape[0]} ids, expected {checker.expected_ids.shape[0]} "
            "(lost or duplicated particles)"
        )
    if not np.array_equal(ids, checker.expected_ids):
        missing = np.setdiff1d(checker.expected_ids, ids)
        return (
            f"ids are not a permutation of the initial ids "
            f"({missing.size} missing, first: {missing[:3].tolist()})"
        )
    return None


@invariant(
    "local-shape-consistency",
    "per-rank velocity/acceleration/id lengths match the particle counts",
)
def _check_local_shapes(checker: InvariantChecker) -> object:
    sim = checker.sim
    for r, pos in enumerate(sim.particles.pos):
        n = pos.shape[0]
        if sim.vel[r].shape[0] != n:
            return f"rank {r}: {sim.vel[r].shape[0]} velocities for {n} particles"
        if sim.acc[r].shape[0] != n:
            return f"rank {r}: {sim.acc[r].shape[0]} accelerations for {n} particles"
        if hasattr(sim, "ids") and sim.ids[r].shape[0] != n:
            return f"rank {r}: {sim.ids[r].shape[0]} ids for {n} particles"
        if sim.particles.q[r].shape[0] != n:
            return f"rank {r}: {sim.particles.q[r].shape[0]} charges for {n} particles"
    return None


@invariant(
    "capacity-respected",
    "no rank exceeds its declared local particle array capacity",
)
def _check_capacity(checker: InvariantChecker) -> object:
    particles = checker.sim.particles
    for r, (pos, cap) in enumerate(zip(particles.pos, particles.capacities)):
        if pos.shape[0] > cap:
            return f"rank {r}: {pos.shape[0]} particles exceed capacity {cap}"
    return None


@invariant(
    "resort-permutation",
    "the last run's resort indices hit each target slot exactly once",
)
def _check_resort_permutation(checker: InvariantChecker) -> object:
    fcs = getattr(checker.sim, "fcs", None)
    report = fcs.last_report if fcs is not None else None
    if report is None or not report.changed or report.resort_indices is None:
        return SKIPPED
    return check_resort_permutation(
        report.resort_indices,
        [int(c) for c in report.new_counts],
        checker.machine.nprocs,
    )


@invariant(
    "results-finite",
    "potentials and fields contain no NaN/Inf after a solver run",
)
def _check_finite(checker: InvariantChecker) -> object:
    particles = checker.sim.particles
    for r in range(checker.machine.nprocs):
        if not np.all(np.isfinite(particles.pot[r])):
            return f"rank {r}: non-finite potential"
        if not np.all(np.isfinite(particles.field[r])):
            return f"rank {r}: non-finite field"
        if not np.all(np.isfinite(particles.pos[r])):
            return f"rank {r}: non-finite position"
    return None


@invariant(
    "trace-accounting",
    "per-phase trace messages/bytes equal the audited collective sums",
)
def _check_trace_accounting(checker: InvariantChecker) -> object:
    auditor = checker.machine.auditor
    if auditor is None:
        return SKIPPED
    trace = checker.machine.trace
    baseline = getattr(auditor, "trace_baseline", {})
    for phase, ledger in auditor.ledger.items():
        if phase not in AUDITED_PHASES:
            continue
        stats = trace.get(phase)
        base = baseline.get(phase)
        base_messages = base.messages if base is not None else 0
        base_bytes = base.bytes if base is not None else 0
        if stats.messages - base_messages != ledger.messages:
            return (
                f"phase {phase!r}: trace reports "
                f"{stats.messages - base_messages} messages, "
                f"auditor counted {ledger.messages}"
            )
        if stats.bytes - base_bytes != ledger.bytes:
            return (
                f"phase {phase!r}: trace reports {stats.bytes - base_bytes} "
                f"bytes, auditor counted {ledger.bytes}"
            )
    return None


@invariant(
    "plan-accounting",
    "resort-plan self-reported traffic never exceeds the audited exchanges",
)
def _check_plan_accounting(checker: InvariantChecker) -> object:
    auditor = checker.machine.auditor
    plan_ledger = getattr(auditor, "plan_ledger", None)
    if auditor is None or not plan_ledger:
        return SKIPPED
    for phase, planned in plan_ledger.items():
        audited = auditor.ledger.get(phase)
        if audited is None:
            return (
                f"phase {phase!r}: plan engine reports {planned.messages} "
                "messages but no audited exchange was observed"
            )
        if planned.messages > audited.messages:
            return (
                f"phase {phase!r}: plan engine reports {planned.messages} "
                f"messages, audited exchanges carried only {audited.messages}"
            )
        if planned.bytes > audited.bytes:
            return (
                f"phase {phase!r}: plan engine reports {planned.bytes} bytes, "
                f"audited exchanges carried only {audited.bytes}"
            )
    return None


@invariant(
    "collective-algo-accounting",
    "staged collective engines' planned traffic equals the audited rounds",
)
def _check_collective_algo_accounting(checker: InvariantChecker) -> object:
    auditor = checker.machine.auditor
    algo_ledger = getattr(auditor, "algo_ledger", None)
    if auditor is None or not algo_ledger:
        return SKIPPED
    round_ledger = getattr(auditor, "algo_round_ledger", {})
    for phase, planned in algo_ledger.items():
        rounds = round_ledger.get(phase)
        if rounds is None:
            return (
                f"phase {phase!r}: algorithm engine planned {planned.messages} "
                "messages but no staged round was audited"
            )
        # planned schedules must balance the executed rounds exactly: a
        # mismatch means a forwarding step shipped more (or less) than the
        # engine's symbolic schedule accounted for
        if planned.messages != rounds.messages:
            return (
                f"phase {phase!r}: engine planned {planned.messages} "
                f"messages, staged rounds carried {rounds.messages}"
            )
        if planned.bytes != rounds.bytes:
            return (
                f"phase {phase!r}: engine planned {planned.bytes} bytes, "
                f"staged rounds carried {rounds.bytes}"
            )
    return None


@invariant(
    "comm-quiescent",
    "no unmatched point-to-point send is pending",
)
def _check_quiescent(checker: InvariantChecker) -> object:
    auditor = checker.machine.auditor
    if auditor is None:
        return SKIPPED
    pending = auditor.pending_sends()
    if pending:
        s, d, b = pending[0]
        return (
            f"{len(pending)} unmatched point-to-point send(s), "
            f"first: {s}->{d} ({b} B)"
        )
    return None


@invariant(
    "energy-drift",
    "total energy drift stays bounded in energy-tracked force runs",
)
def _check_energy_drift(checker: InvariantChecker) -> object:
    sim = checker.sim
    cfg = sim.config
    if not cfg.track_energy or cfg.dynamics != "force":
        return SKIPPED
    energies = [r.energy for r in sim.records if r.energy is not None]
    if len(energies) < 2:
        return SKIPPED
    e0 = energies[0]
    scale = max(abs(e0), 1e-12)
    drift = max(abs(e - e0) for e in energies) / scale
    if drift > checker.energy_tolerance:
        return (
            f"relative energy drift {drift:.3e} exceeds tolerance "
            f"{checker.energy_tolerance:.3e}"
        )
    return None


@invariant(
    "momentum-bounded",
    "total momentum stays near zero under force dynamics",
)
def _check_momentum(checker: InvariantChecker) -> object:
    sim = checker.sim
    if sim.config.dynamics != "force":
        return SKIPPED
    p = np.zeros(3)
    speed_scale = 0.0
    for v in sim.vel:
        if v.shape[0]:
            p += v.sum(axis=0)
            speed_scale += float(np.abs(v).sum())
    # a leapfrog with pairwise-balanced forces keeps sum(v) at its initial
    # value (zero here); the tolerance absorbs solver truncation error
    if float(np.abs(p).max()) > checker.momentum_tolerance * max(speed_scale, 1e-12):
        return (
            f"total momentum {p.tolist()} is not conserved near zero "
            f"(speed scale {speed_scale:.3e})"
        )
    return None


@invariant(
    "schedule-independence",
    "state fingerprint is bitwise identical to the reference schedule's",
)
def _check_schedule_independence(checker: InvariantChecker) -> object:
    expected = getattr(checker, "expected_fingerprint", None)
    if expected is None:
        return SKIPPED
    actual = state_fingerprint(checker.sim)
    diverged = [name for name in expected if actual.get(name) != expected[name]]
    if diverged:
        pert = checker.machine.trace.notes().get("perturbation", "unknown")
        return (
            f"component(s) {diverged} diverged from the reference schedule "
            f"under perturbation [{pert}]"
        )
    return None


@invariant(
    "ckpt-restart-equivalence",
    "restored-run state and auditor-ledger fingerprints are byte-identical "
    "to the uninterrupted run's (armed via expected_restart)",
)
def _check_ckpt_restart_equivalence(checker: InvariantChecker) -> object:
    expected = getattr(checker, "expected_restart", None)
    if expected is None:
        return SKIPPED
    actual = state_fingerprint(checker.sim)
    expected_state = expected.get("state") or {}
    diverged = [
        name for name in expected_state if actual.get(name) != expected_state[name]
    ]
    if diverged:
        return (
            f"component(s) {diverged} of the restored run diverged from the "
            "uninterrupted run (run-2N vs run-N+save+restore+run-N)"
        )
    expected_ledger = expected.get("ledger")
    if expected_ledger is not None:
        auditor = checker.machine.auditor
        if auditor is None:
            return (
                "a ledger fingerprint is expected but no CommAuditor is "
                "attached to the restored machine (attach it with "
                "enable_auditing BEFORE restore_simulation)"
            )
        from repro.verify.dst import ledger_fingerprint

        if ledger_fingerprint(auditor) != expected_ledger:
            return (
                "auditor ledger fingerprint of the restored run diverged "
                "from the uninterrupted run's (prefix + continuation traffic "
                "must equal the straight run's)"
            )
    return None


@invariant(
    "balance-conservation",
    "weighted rebalancing permutes but never drops particles, and never "
    "worsens the load-imbalance factor",
)
def _check_balance(checker: InvariantChecker) -> object:
    monitor = getattr(checker.sim, "balance_monitor", None)
    if monitor is None or not monitor.events:
        return SKIPPED
    # the weighted partition is a permutation of ownership: the global
    # particle count must match the attach-time baseline exactly
    total = int(sum(p.shape[0] for p in checker.sim.particles.pos))
    if total != checker.expected_total:
        return (
            f"rebalance changed the particle count: {total}, "
            f"expected {checker.expected_total}"
        )
    for event in monitor.events:
        if event.lambda_after is None:
            continue  # rebalance fired but its effect is not yet observed
        if event.lambda_after > event.lambda_before * (1.0 + 1e-9):
            return (
                f"rebalance at step {event.step} worsened the imbalance: "
                f"lambda {event.lambda_before:.6f} -> {event.lambda_after:.6f}"
            )
    return None


@invariant(
    "clock-monotonicity",
    "virtual clocks and per-phase times are non-negative",
)
def _check_clocks(checker: InvariantChecker) -> object:
    machine = checker.machine
    if np.any(machine.clocks < 0):
        return f"negative rank clock: {float(machine.clocks.min())}"
    for phase, stats in machine.trace.items():
        if stats.time < -1e-15:
            return f"phase {phase!r} has negative time {stats.time}"
        if stats.messages < 0 or stats.bytes < 0:
            return f"phase {phase!r} has negative message/byte counts"
    return None


@invariant(
    "span-accounting",
    "per-phase span sums reproduce the trace aggregates bit-for-bit",
)
def _check_span_accounting(checker: InvariantChecker) -> object:
    """The observability layer's core guarantee: folding the machine-stream
    charge spans per phase reproduces the :class:`Trace` aggregates exactly
    — same floats, same integer counts.  Holds only while the recorder is
    :attr:`complete <repro.obs.spans.ObsRecorder.complete>` (attached before
    the first charge, nothing evicted from the ring)."""
    obs = getattr(checker.machine, "obs", None)
    if obs is None or not obs.complete:
        return SKIPPED
    sums = obs.phase_sums()
    trace = checker.machine.trace
    for label in sorted(set(trace.labels()) | set(sums)):
        stats = trace.phase(label)
        span = sums.get(label, {"time": 0.0, "messages": 0, "bytes": 0, "calls": 0})
        if span["calls"] != stats.calls:
            return (
                f"phase {label!r}: {span['calls']} charge spans for "
                f"{stats.calls} trace calls"
            )
        if span["time"] != stats.time:
            return (
                f"phase {label!r}: span time {span['time']!r} != trace time "
                f"{stats.time!r} (bitwise)"
            )
        if span["messages"] != stats.messages or span["bytes"] != stats.bytes:
            return (
                f"phase {label!r}: span messages/bytes "
                f"{span['messages']}/{span['bytes']} != trace "
                f"{stats.messages}/{stats.bytes}"
            )
    return None
