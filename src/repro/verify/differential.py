"""Differential oracle: Method A vs Method B vs Method B+move.

The strongest correctness argument this repo can make is *differential*: the
three redistribution methods of the paper are three transports for the same
physics, so the same seeded MD trajectory must produce the same particle
state (positions, velocities, potentials — compared id-ordered, independent
of layout) no matter which method moved the data.  On top of the state
agreement, the paper's Figures 7–8 claim is made executable: the data volume
method B redistributes per step never exceeds what method A redistributes,
because B's application layout tracks the solver layout (steady-state
self-sends are free) while A ships every particle back each step.

:func:`differential_check` runs one (solver, machine shape) cell;
:func:`sweep` runs the full grid.  Every trajectory runs with a
:class:`~repro.verify.audit.CommAuditor` attached and the full invariant
registry asserted after every step, so a differential run doubles as an
integration test of the other two verification layers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.md.simulation import Simulation, SimulationConfig, StepRecord
from repro.md.systems import silica_melt_system
from repro.simmpi.machine import Machine
from repro.verify.audit import enable_auditing
from repro.verify.invariants import InvariantChecker

__all__ = [
    "METHODS",
    "REDISTRIBUTION_PHASES",
    "DifferentialFailure",
    "DifferentialReport",
    "TrajectoryResult",
    "compare_states",
    "differential_check",
    "redistribution_volume",
    "run_trajectory",
    "sweep",
]

#: the three redistribution methods under differential comparison
METHODS = ("A", "B", "B+move")

#: phases that constitute "redistribution" for the volume comparison: the
#: sort into the solver layout, method A's restoration, and method B's
#: resort-index redistribution of application data (including the plan
#: engine's schedule-compilation exchanges)
REDISTRIBUTION_PHASES = ("sort", "restore", "resort", "resort_index", "resort_plan")


class DifferentialFailure(AssertionError):
    """Two methods disagreed, or method B redistributed more than method A."""


@dataclasses.dataclass
class TrajectoryResult:
    """One seeded trajectory under one redistribution method."""

    solver: str
    method: str
    nprocs: int
    steps: int
    #: id-ordered global final state (``Simulation.gather_state``)
    state: Dict[str, np.ndarray]
    records: List[StepRecord]
    #: cumulative redistribution bytes over the timestepping loop (step >= 1;
    #: the initial layout adoption is a one-off, not steady-state cost)
    redistribution_bytes: int
    redistribution_messages: int
    #: invariant checks run (count of passed/failed/skipped over all steps)
    invariants_passed: int
    invariants_skipped: int


def redistribution_volume(records: Sequence[StepRecord]) -> Tuple[int, int]:
    """Cumulative (bytes, messages) of the redistribution phases, step >= 1."""
    nbytes = 0
    messages = 0
    for rec in records:
        if rec.step == 0:
            continue
        for phase in REDISTRIBUTION_PHASES:
            stats = rec.phases.get(phase)
            if stats is not None:
                nbytes += stats.bytes
                messages += stats.messages
    return nbytes, messages


def run_trajectory(
    solver: str,
    method: str,
    nprocs: int,
    *,
    steps: int = 3,
    n_particles: int = 48,
    seed: int = 0,
    distribution: str = "random",
    audit: bool = True,
    check_invariants: bool = True,
    solver_kwargs: Optional[dict] = None,
    backend: Optional[str] = None,
) -> TrajectoryResult:
    """Run one seeded MD trajectory and return its observable state.

    The system, seed, step count and dynamics are identical for every
    method; only the redistribution transport differs — which is exactly
    what the differential comparison isolates.  ``backend`` optionally
    hosts the payload data plane on an execution engine ("process" /
    "process:N"); observable state is backend-independent.
    """
    machine = Machine(nprocs)
    system = silica_melt_system(n_particles, seed=seed)
    config = SimulationConfig(
        solver=solver,
        method=method,
        distribution=distribution,
        seed=seed,
        track_energy=True,
        solver_kwargs=dict(solver_kwargs or {}),
        backend=backend,
    )
    sim = Simulation(machine, system, config)
    auditor = enable_auditing(machine) if audit else None
    checker = InvariantChecker(sim) if check_invariants else None

    sim.initialize()
    if checker is not None:
        checker.assert_ok()
    for _ in range(steps):
        sim.step()
        if checker is not None:
            checker.assert_ok()
    if auditor is not None:
        auditor.assert_quiescent()

    nbytes, messages = redistribution_volume(sim.records)
    passed = skipped = 0
    if checker is not None:
        passed = sum(1 for r in checker.history if r.status == "passed")
        skipped = sum(1 for r in checker.history if r.status == "skipped")
    sim.fcs.destroy()
    return TrajectoryResult(
        solver=solver,
        method=method,
        nprocs=nprocs,
        steps=steps,
        state=sim.gather_state(),
        records=sim.records,
        redistribution_bytes=nbytes,
        redistribution_messages=messages,
        invariants_passed=passed,
        invariants_skipped=skipped,
    )


def compare_states(
    reference: Dict[str, np.ndarray],
    other: Dict[str, np.ndarray],
    *,
    rtol: float = 1e-6,
    atol: float = 1e-9,
) -> Optional[str]:
    """Compare two id-ordered global states; returns a message or ``None``.

    Tolerances absorb the floating-point non-associativity of the solvers:
    the methods evaluate mathematically identical sums in layout-dependent
    orders, so agreement is to rounding, not bit-exact.
    """
    if not np.array_equal(reference["ids"], other["ids"]):
        return "particle id sets differ (lost or duplicated particles)"
    for key in ("pos", "vel", "q", "pot"):
        a, b = reference[key], other[key]
        if a.shape != b.shape:
            return f"{key}: shape {b.shape} vs reference {a.shape}"
        if not np.allclose(a, b, rtol=rtol, atol=atol):
            err = float(np.max(np.abs(a - b)))
            scale = float(np.max(np.abs(a))) or 1.0
            return (
                f"{key}: max abs deviation {err:.3e} "
                f"(relative {err / scale:.3e}) exceeds rtol={rtol:g}/atol={atol:g}"
            )
    return None


@dataclasses.dataclass
class DifferentialReport:
    """Outcome of one (solver, machine shape) differential cell."""

    solver: str
    nprocs: int
    steps: int
    trajectories: Dict[str, TrajectoryResult]
    failures: List[str]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def volumes(self) -> Dict[str, int]:
        return {
            m: t.redistribution_bytes for m, t in self.trajectories.items()
        }

    def summary(self) -> str:
        status = "ok" if self.ok else f"FAILED ({len(self.failures)})"
        vols = ", ".join(f"{m}={v}B" for m, v in self.volumes.items())
        return (
            f"[{status}] solver={self.solver} nprocs={self.nprocs} "
            f"steps={self.steps} redistribution: {vols}"
        )


def differential_check(
    solver: str,
    nprocs: int,
    *,
    steps: int = 3,
    n_particles: int = 48,
    seed: int = 0,
    distribution: str = "random",
    rtol: float = 1e-6,
    atol: float = 1e-9,
    methods: Sequence[str] = METHODS,
    raise_on_failure: bool = False,
    solver_kwargs: Optional[dict] = None,
    backend: Optional[str] = None,
) -> DifferentialReport:
    """Run the same seeded trajectory under every method and cross-check.

    Checks performed:

    1. every non-reference method's final state matches method A's to
       tolerance (positions, velocities, charges, potentials, id sets),
    2. method B (and B+move) never redistributes more bytes than method A
       over the timestepping loop — the executable Figures 7–8 claim,
    3. (implicitly) every trajectory runs under a strict
       :class:`~repro.verify.audit.CommAuditor` with the full invariant
       registry asserted after each step.
    """
    trajectories: Dict[str, TrajectoryResult] = {}
    for method in methods:
        trajectories[method] = run_trajectory(
            solver,
            method,
            nprocs,
            steps=steps,
            n_particles=n_particles,
            seed=seed,
            distribution=distribution,
            solver_kwargs=solver_kwargs,
            backend=backend,
        )

    failures: List[str] = []
    reference = trajectories.get("A")
    if reference is not None:
        for method, result in trajectories.items():
            if method == "A":
                continue
            mismatch = compare_states(
                reference.state, result.state, rtol=rtol, atol=atol
            )
            if mismatch is not None:
                failures.append(
                    f"method {method} vs A ({solver}, {nprocs} ranks): {mismatch}"
                )
        for method in ("B", "B+move"):
            result = trajectories.get(method)
            if result is None:
                continue
            if result.redistribution_bytes > reference.redistribution_bytes:
                failures.append(
                    f"method {method} redistributed {result.redistribution_bytes} B "
                    f"> method A's {reference.redistribution_bytes} B "
                    f"({solver}, {nprocs} ranks, {steps} steps)"
                )

    report = DifferentialReport(
        solver=solver,
        nprocs=nprocs,
        steps=steps,
        trajectories=trajectories,
        failures=failures,
    )
    if raise_on_failure and failures:
        raise DifferentialFailure("\n".join(failures))
    return report


def sweep(
    solvers: Sequence[str] = ("direct", "fmm", "p2nfft"),
    shapes: Sequence[int] = (4, 8),
    *,
    steps: int = 3,
    n_particles: int = 48,
    seed: int = 0,
    distribution: str = "random",
    rtol: float = 1e-6,
    atol: float = 1e-9,
    backend: Optional[str] = None,
) -> List[DifferentialReport]:
    """Run :func:`differential_check` over the (solver, shape) grid."""
    reports = []
    for solver in solvers:
        for nprocs in shapes:
            reports.append(
                differential_check(
                    solver,
                    nprocs,
                    steps=steps,
                    n_particles=n_particles,
                    seed=seed,
                    distribution=distribution,
                    rtol=rtol,
                    atol=atol,
                    backend=backend,
                )
            )
    return reports
