"""One-decorator verification opt-in for tests.

``@auto_verify()`` (usable as decorator or context manager) instruments
:class:`~repro.md.simulation.Simulation` for the duration of a test: every
simulation constructed inside the scope gets a strict
:class:`~repro.verify.audit.CommAuditor` attached to its machine at
``initialize()`` and the full invariant registry asserted after
``initialize()`` and after every ``step()``.  Nothing about the simulation's
behaviour changes — the instrumentation only observes and raises.

Usage::

    @auto_verify()
    def test_fmm_trajectory(machine8, medium_system):
        sim = Simulation(machine8, medium_system, SimulationConfig(...))
        sim.run(5)        # every step is invariant-checked and audited

    def test_explicit_scope():
        with auto_verify(names=["particle-count", "charge-conservation"]):
            ...

The ``tests/verify`` suite also exposes this as the ``verified`` pytest
fixture (see ``tests/verify/conftest.py``).
"""

from __future__ import annotations

import contextlib
import functools
from typing import Iterator, Optional, Sequence

from repro.md.simulation import Simulation
from repro.verify.audit import enable_auditing
from repro.verify.invariants import InvariantChecker

__all__ = ["auto_verify"]

_CHECKER_ATTR = "_verify_checker"


class _AutoVerify(contextlib.ContextDecorator):
    """Patches ``Simulation.initialize``/``step`` inside its scope."""

    def __init__(
        self,
        names: Optional[Sequence[str]] = None,
        energy_tolerance: float = 0.1,
        audit: bool = True,
        strict_audit: bool = True,
    ) -> None:
        self.names = list(names) if names is not None else None
        self.energy_tolerance = float(energy_tolerance)
        self.audit = bool(audit)
        self.strict_audit = bool(strict_audit)
        self._originals = None

    # -- patched methods -------------------------------------------------------

    def _make_initialize(self, original):
        scope = self

        @functools.wraps(original)
        def initialize(sim):
            if scope.audit and sim.machine.auditor is None:
                enable_auditing(sim.machine, strict=scope.strict_audit)
            record = original(sim)
            checker = InvariantChecker(
                sim, energy_tolerance=scope.energy_tolerance
            )
            setattr(sim, _CHECKER_ATTR, checker)
            checker.assert_ok(scope.names)
            return record

        return initialize

    def _make_step(self, original):
        scope = self

        @functools.wraps(original)
        def step(sim):
            record = original(sim)
            checker = getattr(sim, _CHECKER_ATTR, None)
            if checker is not None:
                checker.assert_ok(scope.names)
            auditor = sim.machine.auditor
            if auditor is not None:
                auditor.assert_quiescent()
            return record

        return step

    # -- scope management ------------------------------------------------------

    def __enter__(self) -> "_AutoVerify":
        if self._originals is not None:
            raise RuntimeError("auto_verify scope already entered")
        self._originals = (Simulation.initialize, Simulation.step)
        Simulation.initialize = self._make_initialize(Simulation.initialize)
        Simulation.step = self._make_step(Simulation.step)
        return self

    def __exit__(self, *exc) -> None:
        Simulation.initialize, Simulation.step = self._originals
        self._originals = None


def auto_verify(
    names: Optional[Sequence[str]] = None,
    energy_tolerance: float = 0.1,
    audit: bool = True,
    strict_audit: bool = True,
) -> _AutoVerify:
    """Verification opt-in: decorator or context manager.

    Parameters
    ----------
    names:
        invariant names to assert (default: the full registry).
    energy_tolerance:
        relative energy-drift bound for the ``energy-drift`` invariant.
    audit:
        attach a :class:`~repro.verify.audit.CommAuditor` to each
        simulation's machine (skipped if one is already attached).
    strict_audit:
        raise on the first audit violation (default) instead of collecting.
    """
    return _AutoVerify(
        names=names,
        energy_tolerance=energy_tolerance,
        audit=audit,
        strict_audit=strict_audit,
    )
