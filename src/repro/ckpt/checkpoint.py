"""Capture, save and load full-simulation checkpoints.

A :class:`Checkpoint` is a *plain-data* snapshot of everything a
:class:`~repro.md.simulation.Simulation` needs to continue byte-identically:
per-rank particle columns (positions, charges, potentials, fields,
velocities, accelerations, global ids, capacities), the solver handle's
resort state (last :class:`~repro.solvers.base.RunReport` including the
packed resort indices that key the :class:`~repro.core.plan.ResortPlan`
cache), the application RNG, the adaptive-method and load-balance
bookkeeping, the step records, and the machine's clocks / trace / auditor
ledgers.

Capturing is an **out-of-band observer** operation, like
:meth:`Simulation.gather_state <repro.md.simulation.Simulation.gather_state>`:
it charges nothing to the machine, so a run with ``checkpoint_every`` set
produces bit-identical trajectories and traces to one without.

The on-disk format is deterministic NDJSON (see :mod:`repro.ckpt.format`):
one ``kind``-tagged object per line, sorted keys, ``float.hex`` bit
patterns, hex-encoded array buffers.  ``save → load`` round-trips every
field bit-exactly, and saving the same checkpoint twice produces identical
bytes.
"""

from __future__ import annotations

import copy
import dataclasses
import io
import os
from typing import Any, Dict, List, Optional

import numpy as np

from repro.ckpt.format import (
    CKPT_VERSION,
    decode_value,
    dumps,
    encode_value,
    read_lines,
    write_lines,
)
from repro.simmpi.tracing import PhaseStats

__all__ = [
    "Checkpoint",
    "capture_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "write_checkpoint",
]

#: per-rank particle columns carried by every checkpoint, in fused-exchange
#: order (the resize plan moves exactly these, plus ids, in one exchange)
COLUMNS = ("pos", "q", "pot", "field", "vel", "acc", "ids")


def _phases_to_plain(phases: Dict[str, PhaseStats]) -> Dict[str, Dict[str, Any]]:
    return {
        label: {
            "time": stats.time,
            "messages": stats.messages,
            "bytes": stats.bytes,
            "calls": stats.calls,
            "wall_ns": stats.wall_ns,
            "alloc_bytes": stats.alloc_bytes,
        }
        for label, stats in phases.items()
    }


def _plain_to_phases(plain: Dict[str, Dict[str, Any]]) -> Dict[str, PhaseStats]:
    return {
        label: PhaseStats(
            time=float(d["time"]),
            messages=int(d["messages"]),
            bytes=int(d["bytes"]),
            calls=int(d["calls"]),
            wall_ns=int(d.get("wall_ns", 0)),
            alloc_bytes=int(d.get("alloc_bytes", 0)),
        )
        for label, d in plain.items()
    }


def _record_to_plain(record) -> Dict[str, Any]:
    return {
        "step": record.step,
        "phases": _phases_to_plain(record.phases),
        "total_time": record.total_time,
        "max_move": record.max_move,
        "changed": record.changed,
        "strategy": record.strategy,
        "method": record.method,
        "energy": record.energy,
        "lambda_factor": record.lambda_factor,
    }


def _plain_to_record(plain: Dict[str, Any]):
    from repro.md.simulation import StepRecord

    return StepRecord(
        step=int(plain["step"]),
        phases=_plain_to_phases(plain["phases"]),
        total_time=float(plain["total_time"]),
        max_move=float(plain["max_move"]),
        changed=bool(plain["changed"]),
        strategy=str(plain["strategy"]),
        method=str(plain["method"]),
        energy=None if plain["energy"] is None else float(plain["energy"]),
        lambda_factor=(
            None
            if plain["lambda_factor"] is None
            else float(plain["lambda_factor"])
        ),
    )


@dataclasses.dataclass
class Checkpoint:
    """A complete, plain-data simulation snapshot (see module docstring).

    All fields are numpy arrays, plain Python scalars/containers, or plain
    dicts of those — nothing references live simulation objects, so a held
    checkpoint is immune to the donor simulation continuing to run.
    """

    nprocs: int
    step_index: int
    initialized: bool
    active_method: str
    #: :class:`~repro.md.simulation.SimulationConfig` fields by name,
    #: *except* ``perturbation`` (a chaos schedule is a property of one
    #: machine execution, not of the physical state being resumed)
    config: Dict[str, Any]
    box: np.ndarray
    offset: np.ndarray
    pos: List[np.ndarray]
    q: List[np.ndarray]
    pot: List[np.ndarray]
    field: List[np.ndarray]
    vel: List[np.ndarray]
    acc: List[np.ndarray]
    ids: List[np.ndarray]
    capacities: List[int]
    rng_state: Dict[str, Any]
    #: plain step-record dicts (phases as plain stat dicts)
    records: List[Dict[str, Any]]
    last_max_move: Optional[float]
    #: adaptive-method bookkeeping: trial, method_costs, switch_transient
    adaptive: Dict[str, Any]
    #: solver-handle resort state: resort_requested, has_plan (whether a
    #: compiled ResortPlan was cached — its *key*, the last report's resort
    #: indices, is stored in ``report`` and the plan is recompiled from it
    #: on restore), and the last RunReport as a plain dict (or ``None``)
    fcs_state: Dict[str, Any]
    #: solver load-balance state: load_balance mode, rebalance_pending
    solver_state: Dict[str, Any]
    #: :meth:`ImbalanceMonitor.state_dict` (or ``None``)
    monitor: Optional[Dict[str, Any]]
    clocks: np.ndarray
    #: :meth:`Trace.state_dict` with plain phase dicts
    trace: Dict[str, Any]
    #: :meth:`CommAuditor.state_dict` with plain ledger dicts (or ``None``)
    auditor: Optional[Dict[str, Any]]
    #: Berendsen thermostat parameters (target/tau/dt), if the driver uses
    #: one (the thermostat itself is stateless between applications)
    thermostat: Optional[Dict[str, Any]] = None
    version: int = CKPT_VERSION

    # -- derived views ----------------------------------------------------------

    @property
    def n_particles(self) -> int:
        return int(sum(p.shape[0] for p in self.pos))

    def columns(self, name: str) -> List[np.ndarray]:
        """The per-rank arrays of one checkpointed column."""
        if name not in COLUMNS:
            raise KeyError(f"unknown column {name!r}, have {COLUMNS}")
        return getattr(self, name)

    def gathered(self) -> Dict[str, np.ndarray]:
        """Global, id-ordered view of every particle column.

        The rank-count-independent canonical form: two checkpoints of the
        same physical state at different rank counts gather identically.
        """
        ids = np.concatenate(self.ids) if self.nprocs else np.zeros(0, np.int64)
        order = np.argsort(ids, kind="stable")
        out = {"ids": ids[order]}
        for name in COLUMNS:
            if name == "ids":
                continue
            arrs = self.columns(name)
            out[name] = np.concatenate(arrs)[order]
        return out

    def make_config(self, perturbation=None):
        """Rebuild the :class:`SimulationConfig` (optionally perturbed)."""
        from repro.md.simulation import SimulationConfig

        fields = dict(self.config)
        fields["solver_kwargs"] = copy.deepcopy(fields.get("solver_kwargs", {}))
        fields["balance_phases"] = tuple(fields.get("balance_phases", ()))
        return SimulationConfig(perturbation=perturbation, **fields)

    # -- NDJSON (de)serialization -------------------------------------------------

    def to_lines(self) -> List[str]:
        """Deterministic NDJSON lines (meta header first, obs convention)."""
        recs: List[dict] = [
            {
                "kind": "meta",
                "format": "repro.ckpt",
                "version": self.version,
                "nprocs": self.nprocs,
                "step": self.step_index,
                "n_particles": self.n_particles,
            },
            {"kind": "config", "data": encode_value(self.config)},
            {
                "kind": "system",
                "data": encode_value({"box": self.box, "offset": self.offset}),
            },
        ]
        for r in range(self.nprocs):
            recs.append(
                {
                    "kind": "rank",
                    "rank": r,
                    "data": encode_value(
                        {
                            "pos": self.pos[r],
                            "q": self.q[r],
                            "pot": self.pot[r],
                            "field": self.field[r],
                            "vel": self.vel[r],
                            "acc": self.acc[r],
                            "ids": self.ids[r],
                            "capacity": self.capacities[r],
                        }
                    ),
                }
            )
        recs.extend(
            [
                {"kind": "records", "data": encode_value(self.records)},
                {
                    "kind": "sim",
                    "data": encode_value(
                        {
                            "step_index": self.step_index,
                            "initialized": self.initialized,
                            "active_method": self.active_method,
                            "last_max_move": self.last_max_move,
                            "adaptive": self.adaptive,
                            "rng_state": self.rng_state,
                        }
                    ),
                },
                {"kind": "fcs", "data": encode_value(self.fcs_state)},
                {"kind": "solver", "data": encode_value(self.solver_state)},
                {"kind": "monitor", "data": encode_value(self.monitor)},
                {
                    "kind": "machine",
                    "data": encode_value(
                        {"clocks": self.clocks, "trace": self.trace}
                    ),
                },
                {"kind": "auditor", "data": encode_value(self.auditor)},
                {"kind": "thermostat", "data": encode_value(self.thermostat)},
            ]
        )
        return [dumps(rec) for rec in recs]

    @classmethod
    def from_records(cls, parsed: List[dict]) -> "Checkpoint":
        by_kind: Dict[str, dict] = {}
        ranks: Dict[int, dict] = {}
        for rec in parsed:
            kind = rec.get("kind")
            if kind == "rank":
                ranks[int(rec["rank"])] = decode_value(rec["data"])
            else:
                by_kind[kind] = rec
        meta = by_kind.get("meta")
        if meta is None or meta.get("format") != "repro.ckpt":
            raise ValueError("not a repro.ckpt checkpoint (missing meta header)")
        if int(meta["version"]) > CKPT_VERSION:
            raise ValueError(
                f"checkpoint version {meta['version']} is newer than the "
                f"supported {CKPT_VERSION}"
            )
        nprocs = int(meta["nprocs"])
        missing = sorted(set(range(nprocs)) - set(ranks))
        if missing:
            raise ValueError(f"checkpoint is missing rank line(s) {missing}")
        system = decode_value(by_kind["system"]["data"])
        sim = decode_value(by_kind["sim"]["data"])
        return cls(
            nprocs=nprocs,
            step_index=int(sim["step_index"]),
            initialized=bool(sim["initialized"]),
            active_method=str(sim["active_method"]),
            config=decode_value(by_kind["config"]["data"]),
            box=system["box"],
            offset=system["offset"],
            pos=[ranks[r]["pos"] for r in range(nprocs)],
            q=[ranks[r]["q"] for r in range(nprocs)],
            pot=[ranks[r]["pot"] for r in range(nprocs)],
            field=[ranks[r]["field"] for r in range(nprocs)],
            vel=[ranks[r]["vel"] for r in range(nprocs)],
            acc=[ranks[r]["acc"] for r in range(nprocs)],
            ids=[ranks[r]["ids"] for r in range(nprocs)],
            capacities=[int(ranks[r]["capacity"]) for r in range(nprocs)],
            rng_state=sim["rng_state"],
            records=decode_value(by_kind["records"]["data"]),
            last_max_move=sim["last_max_move"],
            adaptive=sim["adaptive"],
            fcs_state=decode_value(by_kind["fcs"]["data"]),
            solver_state=decode_value(by_kind["solver"]["data"]),
            monitor=decode_value(by_kind["monitor"]["data"]),
            clocks=decode_value(by_kind["machine"]["data"])["clocks"],
            trace=decode_value(by_kind["machine"]["data"])["trace"],
            auditor=decode_value(by_kind["auditor"]["data"]),
            thermostat=decode_value(by_kind["thermostat"]["data"]),
            version=int(meta["version"]),
        )

    @classmethod
    def from_columns(
        cls,
        pos: List[np.ndarray],
        q: List[np.ndarray],
        ids: List[np.ndarray],
        *,
        box: np.ndarray,
        offset: Optional[np.ndarray] = None,
        pot: Optional[List[np.ndarray]] = None,
        field: Optional[List[np.ndarray]] = None,
        vel: Optional[List[np.ndarray]] = None,
        acc: Optional[List[np.ndarray]] = None,
        capacities: Optional[List[int]] = None,
        config: Optional[Dict[str, Any]] = None,
    ) -> "Checkpoint":
        """Build a minimal valid checkpoint from raw per-rank columns.

        A convenience for the resize machinery and its tests: only the
        particle columns and the box are physical inputs; all bookkeeping
        starts from a fresh-simulation default.
        """
        from repro.md.simulation import SimulationConfig

        nprocs = len(pos)
        as_f = lambda a: np.ascontiguousarray(a, dtype=np.float64)
        pos = [as_f(p).reshape(-1, 3) for p in pos]
        counts = [p.shape[0] for p in pos]
        q = [as_f(c).reshape(-1) for c in q]
        ids = [np.ascontiguousarray(i, dtype=np.int64).reshape(-1) for i in ids]

        def _cols(given, shape3: bool):
            if given is not None:
                return [as_f(a).reshape(-1, 3) if shape3 else as_f(a).reshape(-1)
                        for a in given]
            return [
                np.zeros((n, 3)) if shape3 else np.zeros(n) for n in counts
            ]

        cfg = SimulationConfig() if config is None else None
        config_fields = config if config is not None else {
            f.name: getattr(cfg, f.name)
            for f in dataclasses.fields(cfg)
            if f.name != "perturbation"
        }
        if config is None:
            config_fields["balance_phases"] = list(cfg.balance_phases)
        n = int(sum(counts))
        if capacities is None:
            per_rank = max(1, -(-n // max(nprocs, 1)))
            cap = int(np.ceil(float(config_fields.get("capacity_factor", 3.0)) * per_rank))
            capacities = [max(cap, c) for c in counts]
        return cls(
            nprocs=nprocs,
            step_index=0,
            initialized=False,
            active_method=str(config_fields.get("method", "A")).replace(
                "adaptive", "B"
            ),
            config=config_fields,
            box=as_f(box).reshape(3),
            offset=(
                np.zeros(3) if offset is None else as_f(offset).reshape(3)
            ),
            pos=pos,
            q=q,
            pot=_cols(pot, shape3=False),
            field=_cols(field, shape3=True),
            vel=_cols(vel, shape3=True),
            acc=_cols(acc, shape3=True),
            ids=ids,
            capacities=[int(c) for c in capacities],
            rng_state=np.random.default_rng(
                int(config_fields.get("seed", 0)) + 7919
            ).bit_generator.state,
            records=[],
            last_max_move=None,
            adaptive={"trial": None, "method_costs": {}, "switch_transient": False},
            fcs_state={"resort_requested": False, "has_plan": False, "report": None},
            solver_state={"load_balance": "off", "rebalance_pending": False},
            monitor=None,
            clocks=np.zeros(nprocs),
            trace={"phases": {}, "counters": {}, "notes": {}, "rank_work": {}},
            auditor=None,
            thermostat=None,
        )


def capture_checkpoint(sim, *, thermostat=None) -> Checkpoint:
    """Snapshot a live simulation into a :class:`Checkpoint`.

    Pure observation: everything is deep-copied and **no machine cost is
    charged**, so capturing mid-run leaves the trajectory, trace and
    ledgers untouched.  ``thermostat`` optionally records a
    :class:`~repro.md.thermostat.BerendsenThermostat`'s parameters.
    """
    machine = sim.machine
    cfg = sim.config
    config = {
        f.name: copy.deepcopy(getattr(cfg, f.name))
        for f in dataclasses.fields(cfg)
        if f.name not in ("perturbation", "backend")
    }
    config["balance_phases"] = list(cfg.balance_phases)
    # a live backend instance is host machinery, not simulation state:
    # persist the engine spec string so a restore on any host (or under a
    # different engine) rebuilds an equivalent run
    from repro.backend import backend_spec

    config["backend"] = backend_spec(cfg.backend)

    fcs = sim.fcs
    report = fcs._last_report
    report_state = None
    if report is not None:
        report_state = {
            "changed": report.changed,
            "resort_indices": (
                None
                if report.resort_indices is None
                else [np.asarray(a, dtype=np.int64).copy() for a in report.resort_indices]
            ),
            "old_counts": (
                None
                if report.old_counts is None
                else np.asarray(report.old_counts, dtype=np.int64).copy()
            ),
            "new_counts": (
                None
                if report.new_counts is None
                else np.asarray(report.new_counts, dtype=np.int64).copy()
            ),
            "strategy": report.strategy,
            "comm": report.comm,
            "rank_work": (
                None
                if report.rank_work is None
                else np.asarray(report.rank_work, dtype=np.float64).copy()
            ),
        }
    solver = fcs.solver
    trace_state = machine.trace.state_dict()
    auditor = machine.auditor
    auditor_state = None
    if auditor is not None:
        raw = auditor.state_dict()
        auditor_state = {
            "ledger": {
                k: {"messages": v.messages, "bytes": v.bytes}
                for k, v in raw["ledger"].items()
            },
            "plan_ledger": {
                k: {"messages": v.messages, "bytes": v.bytes}
                for k, v in raw["plan_ledger"].items()
            },
            "algo_ledger": {
                k: {"messages": v.messages, "bytes": v.bytes}
                for k, v in raw["algo_ledger"].items()
            },
            "algo_round_ledger": {
                k: {"messages": v.messages, "bytes": v.bytes}
                for k, v in raw["algo_round_ledger"].items()
            },
            "algo_counts": dict(raw["algo_counts"]),
            "n_algo_calls": raw["n_algo_calls"],
            "trace_baseline": _phases_to_plain(raw["trace_baseline"]),
            "pending_sends": [list(t) for t in raw["pending_sends"]],
            "violations": raw["violations"],
            "n_plan_compiles": raw["n_plan_compiles"],
            "n_plan_executions": raw["n_plan_executions"],
            "n_plan_fused_columns": raw["n_plan_fused_columns"],
            "n_alltoall_calls": raw["n_alltoall_calls"],
            "n_p2p_calls": raw["n_p2p_calls"],
        }

    ckpt = Checkpoint(
        nprocs=machine.nprocs,
        step_index=sim.step_index,
        initialized=sim._initialized,
        active_method=sim.active_method,
        config=config,
        box=np.asarray(sim.system.box, dtype=np.float64).copy(),
        offset=np.asarray(sim.system.offset, dtype=np.float64).copy(),
        pos=[a.copy() for a in sim.particles.pos],
        q=[a.copy() for a in sim.particles.q],
        pot=[a.copy() for a in sim.particles.pot],
        field=[a.copy() for a in sim.particles.field],
        vel=[a.copy() for a in sim.vel],
        acc=[a.copy() for a in sim.acc],
        ids=[a.copy() for a in sim.ids],
        capacities=list(sim.particles.capacities),
        rng_state=copy.deepcopy(sim._rng.bit_generator.state),
        records=[_record_to_plain(r) for r in sim.records],
        last_max_move=sim._last_max_move,
        adaptive={
            "trial": sim._adaptive_trial,
            "method_costs": dict(sim._method_costs),
            "switch_transient": sim._switch_transient,
        },
        fcs_state={
            "resort_requested": fcs._resort_requested,
            "has_plan": fcs._plan is not None,
            "report": report_state,
        },
        solver_state={
            "load_balance": solver._load_balance,
            "rebalance_pending": solver._rebalance_pending,
        },
        monitor=(
            None if sim.balance_monitor is None else sim.balance_monitor.state_dict()
        ),
        clocks=machine.clocks.copy(),
        trace={
            "phases": _phases_to_plain(trace_state["phases"]),
            "counters": trace_state["counters"],
            "notes": trace_state["notes"],
            "rank_work": trace_state["rank_work"],
        },
        auditor=auditor_state,
        thermostat=(
            None
            if thermostat is None
            else {
                "target": thermostat.target,
                "tau": thermostat.tau,
                "dt": thermostat.dt,
            }
        ),
    )
    return ckpt


def write_checkpoint(ckpt: Checkpoint, path: str) -> int:
    """Write a checkpoint file; returns the bytes written."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    buf = io.StringIO()
    nbytes = write_lines(buf, ckpt.to_lines())
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(buf.getvalue())
    return nbytes


def save_checkpoint(sim, path: str, *, thermostat=None) -> int:
    """Capture ``sim`` and write it to ``path``; returns the bytes written.

    Feeds the ``ckpt.saves`` / ``ckpt.save_bytes`` metrics and a
    ``ckpt.save`` structural span when an
    :class:`~repro.obs.spans.ObsRecorder` is attached (the span brackets
    zero machine time — saving is cost-free by design).
    """
    from repro.obs.spans import machine_span

    obs = sim.machine.obs
    if obs is not None:
        with machine_span(
            sim.machine, "ckpt.save", op="ckpt.save", step=sim.step_index
        ):
            ckpt = capture_checkpoint(sim, thermostat=thermostat)
            nbytes = write_checkpoint(ckpt, path)
        obs.metrics.counter("ckpt.saves").inc()
        obs.metrics.counter("ckpt.save_bytes").inc(nbytes)
    else:
        ckpt = capture_checkpoint(sim, thermostat=thermostat)
        nbytes = write_checkpoint(ckpt, path)
    return nbytes


def load_checkpoint(path: str) -> Checkpoint:
    """Read a checkpoint file back into a :class:`Checkpoint`, bit-exactly."""
    with open(path, "r", encoding="utf-8") as fh:
        return Checkpoint.from_records(list(read_lines(fh)))


def restore_trace_state(trace_plain: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a checkpoint's plain trace section back into the live-object
    form :meth:`Trace.load_state <repro.simmpi.tracing.Trace.load_state>`
    expects."""
    return {
        "phases": _plain_to_phases(trace_plain.get("phases", {})),
        "counters": dict(trace_plain.get("counters", {})),
        "notes": dict(trace_plain.get("notes", {})),
        "rank_work": {
            k: np.asarray(v, dtype=np.float64)
            for k, v in trace_plain.get("rank_work", {}).items()
        },
    }


def restore_auditor_state(auditor_plain: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a checkpoint's plain auditor section back into the form
    :meth:`CommAuditor.load_state <repro.verify.audit.CommAuditor.load_state>`
    expects."""
    from repro.verify.audit import PhaseLedger

    return {
        "ledger": {
            k: PhaseLedger(messages=int(v["messages"]), bytes=int(v["bytes"]))
            for k, v in auditor_plain.get("ledger", {}).items()
        },
        "plan_ledger": {
            k: PhaseLedger(messages=int(v["messages"]), bytes=int(v["bytes"]))
            for k, v in auditor_plain.get("plan_ledger", {}).items()
        },
        # algo ledgers appeared with the staged collective engines; old
        # checkpoints simply have none
        "algo_ledger": {
            k: PhaseLedger(messages=int(v["messages"]), bytes=int(v["bytes"]))
            for k, v in auditor_plain.get("algo_ledger", {}).items()
        },
        "algo_round_ledger": {
            k: PhaseLedger(messages=int(v["messages"]), bytes=int(v["bytes"]))
            for k, v in auditor_plain.get("algo_round_ledger", {}).items()
        },
        "algo_counts": {
            k: int(v) for k, v in auditor_plain.get("algo_counts", {}).items()
        },
        "n_algo_calls": int(auditor_plain.get("n_algo_calls", 0)),
        "trace_baseline": _plain_to_phases(auditor_plain.get("trace_baseline", {})),
        "pending_sends": [tuple(t) for t in auditor_plain.get("pending_sends", [])],
        "violations": list(auditor_plain.get("violations", [])),
        "n_plan_compiles": auditor_plain.get("n_plan_compiles", 0),
        "n_plan_executions": auditor_plain.get("n_plan_executions", 0),
        "n_plan_fused_columns": auditor_plain.get("n_plan_fused_columns", 0),
        "n_alltoall_calls": auditor_plain.get("n_alltoall_calls", 0),
        "n_p2p_calls": auditor_plain.get("n_p2p_calls", 0),
    }


def plain_records_to_step_records(records: List[Dict[str, Any]]):
    """Rebuild live :class:`~repro.md.simulation.StepRecord` objects."""
    return [_plain_to_record(r) for r in records]
