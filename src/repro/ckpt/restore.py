"""Rebuild a live simulation from a :class:`~repro.ckpt.checkpoint.Checkpoint`.

The restore contract is **continuation equivalence**: for any solver and
redistribution method,

    run 2N steps  ≡  run N + save + restore + run N

with byte-identical state fingerprints, step records, traces and auditor
ledgers (the ``ckpt-restart-equivalence`` invariant).  The implementation
reaches that in five ordered phases:

1. build a fresh :class:`~repro.md.simulation.Simulation` from the
   checkpointed global state (construction charges no machine cost);
2. overwrite the per-rank physics columns and all application bookkeeping
   (records, RNG, adaptive/method state, balance monitor) bit-for-bit;
3. re-run solver tuning — every solver's ``tune`` depends only on the
   global particle count, box and accuracy, so the rebuilt internal tables
   are identical to the donor's;
4. reinstate the solver handle's resort state: the last
   :class:`~repro.solvers.base.RunReport` and, if the donor held a compiled
   :class:`~repro.core.plan.ResortPlan`, a recompile keyed by the *same*
   resort indices — the continuation then cache-hits exactly where the
   uninterrupted run would;
5. **last**, restore the machine clocks, trace and (if attached) auditor
   ledgers from the checkpoint — wiping every cost phases 1-4 charged.

Because phase 5 overwrites the auditor, the caller must attach it (via
:func:`~repro.verify.audit.enable_auditing`) *before* calling
:func:`restore_simulation`; an auditor attached afterwards starts from
empty ledgers and will not reproduce the uninterrupted run's fingerprint.

An attached :class:`~repro.obs.spans.ObsRecorder` is cleared (its buffered
spans describe the reconstruction, not the run) and marked incomplete-from-
start — the ``span-accounting`` invariant then reports SKIPPED instead of
comparing against a trace whose history predates the recorder.
"""

from __future__ import annotations

import copy
import time
from typing import Optional

import numpy as np

from repro.ckpt.checkpoint import (
    Checkpoint,
    plain_records_to_step_records,
    restore_auditor_state,
    restore_trace_state,
)

__all__ = ["restore_simulation"]


def restore_simulation(
    ckpt: Checkpoint,
    *,
    machine=None,
    perturbation=None,
):
    """Rebuild a live, runnable simulation from ``ckpt``.

    Parameters
    ----------
    machine:
        target :class:`~repro.simmpi.machine.Machine`; a fresh one with the
        checkpoint's rank count is created when omitted.  Must be fresh
        (zero clocks) and have the checkpoint's rank count — restoring onto
        a *different* rank count goes through
        :func:`~repro.ckpt.resize.resize_checkpoint` first.
    perturbation:
        optional :class:`~repro.simmpi.chaos.Perturbation` for the resumed
        execution (the chaos-resume workflow).  Perturbations degrade only
        the machine's cost model, never the data plane, so a resumed
        trajectory's physics matches the uninterrupted run under *any*
        perturbation — the property the DST resume sweep checks.

    Returns the restored :class:`~repro.md.simulation.Simulation`.
    """
    from repro.core.particles import ParticleSet
    from repro.md.simulation import Simulation
    from repro.md.systems import ParticleSystem
    from repro.simmpi.machine import Machine

    t0_ns = time.perf_counter_ns()
    if machine is None:
        machine = Machine(ckpt.nprocs)
    if machine.nprocs != ckpt.nprocs:
        raise ValueError(
            f"checkpoint has {ckpt.nprocs} ranks but the machine has "
            f"{machine.nprocs}; resize the checkpoint first "
            "(repro.ckpt.resize.resize_checkpoint)"
        )

    # -- phase 1: a fresh simulation from the checkpointed global state ------
    g = ckpt.gathered()
    system = ParticleSystem(
        pos=g["pos"],
        q=g["q"],
        vel=g["vel"],
        box=ckpt.box.copy(),
        offset=ckpt.offset.copy(),
    )
    cfg = ckpt.make_config(perturbation=perturbation)
    sim = Simulation(machine, system, cfg)

    # -- phase 2: per-rank physics columns + application bookkeeping ---------
    particles = ParticleSet(
        [a.copy() for a in ckpt.pos],
        [a.copy() for a in ckpt.q],
        capacities=list(ckpt.capacities),
    )
    particles.pot = [a.copy() for a in ckpt.pot]
    particles.field = [a.copy() for a in ckpt.field]
    sim.particles = particles
    sim.vel = [a.copy() for a in ckpt.vel]
    sim.acc = [a.copy() for a in ckpt.acc]
    sim.ids = [a.copy() for a in ckpt.ids]
    sim.records = plain_records_to_step_records(ckpt.records)
    sim.step_index = ckpt.step_index
    sim._initialized = ckpt.initialized
    sim.active_method = ckpt.active_method
    sim._adaptive_trial = ckpt.adaptive.get("trial")
    sim._method_costs = {
        str(k): float(v) for k, v in ckpt.adaptive.get("method_costs", {}).items()
    }
    sim._switch_transient = bool(ckpt.adaptive.get("switch_transient", False))
    sim._last_max_move = (
        None if ckpt.last_max_move is None else float(ckpt.last_max_move)
    )
    sim._rng = np.random.default_rng(cfg.seed + 7919)
    sim._rng.bit_generator.state = copy.deepcopy(ckpt.rng_state)
    if ckpt.monitor is not None:
        if sim.balance_monitor is not None:
            sim.balance_monitor.load_state(ckpt.monitor)
        else:  # defensive: config said off/unsupported but state exists
            from repro.core.balance import ImbalanceMonitor

            sim.balance_monitor = ImbalanceMonitor.from_state(ckpt.monitor)

    # -- phase 3: solver tuning (deterministic in n/box/accuracy) ------------
    sim.fcs.set_resort(bool(ckpt.fcs_state.get("resort_requested", False)))
    sim.fcs.tune(sim.particles, cfg.accuracy)

    # -- phase 4: solver-handle resort state ---------------------------------
    report_state = ckpt.fcs_state.get("report")
    if report_state is not None:
        from repro.solvers.base import RunReport

        report = RunReport(
            changed=bool(report_state["changed"]),
            resort_indices=(
                None
                if report_state["resort_indices"] is None
                else [
                    np.asarray(a, dtype=np.int64).copy()
                    for a in report_state["resort_indices"]
                ]
            ),
            old_counts=(
                None
                if report_state["old_counts"] is None
                else np.asarray(report_state["old_counts"], dtype=np.int64)
            ),
            new_counts=(
                None
                if report_state["new_counts"] is None
                else np.asarray(report_state["new_counts"], dtype=np.int64)
            ),
            strategy=str(report_state["strategy"]),
            comm=str(report_state["comm"]),
            rank_work=(
                None
                if report_state["rank_work"] is None
                else np.asarray(report_state["rank_work"], dtype=np.float64)
            ),
        )
        sim.fcs._last_report = report
        if ckpt.fcs_state.get("has_plan") and report.changed:
            # recompile the cached plan from the same resort indices; the
            # compile's charges are wiped in phase 5 and the continuation
            # cache-hits on the identical key, exactly like the donor run
            sim.fcs.resort_plan()
    solver = sim.fcs.solver
    solver._load_balance = str(ckpt.solver_state.get("load_balance", "off"))
    solver._rebalance_pending = bool(
        ckpt.solver_state.get("rebalance_pending", False)
    )

    # -- phase 5: machine clocks / trace / auditor (wipes rebuild costs) -----
    machine.clocks[:] = np.asarray(ckpt.clocks, dtype=np.float64)
    machine.trace.load_state(restore_trace_state(ckpt.trace))
    if machine.perturbation is not None:
        # the note describes *this* execution's chaos schedule, not the
        # donor's
        machine.trace.note("perturbation", machine.perturbation.describe())
    if machine.auditor is not None:
        if ckpt.auditor is not None:
            machine.auditor.load_state(restore_auditor_state(ckpt.auditor))
        else:
            # the donor run was not audited: this auditor observed only the
            # reconstruction (whose charges were just wiped), so start it
            # fresh with its baseline at the restored trace — it then
            # accounts exactly the continuation
            machine.auditor.load_state(
                {"trace_baseline": machine.trace.snapshot()}
            )
    obs = machine.obs
    if obs is not None:
        obs.clear()
        # the recorder was not watching the checkpointed history: only a
        # restore onto a zero-cost prefix is complete-from-start
        obs.complete_from_start = (
            machine.trace.total_time() == 0.0
            and machine.trace.total_messages() == 0
        )
        obs.metrics.counter("ckpt.restores").inc()
        obs.metrics.counter("ckpt.restore_ns").inc(
            time.perf_counter_ns() - t0_ns
        )
        obs.mark("ckpt.restore", op="ckpt.restore", step=sim.step_index)
    return sim
