"""Elastic rank-resize: redistribute a checkpoint from P to Q ranks.

The enabling observation (Sudarsan & Ribbens, "Efficient Multidimensional
Data Redistribution for Resizable Parallel Computations"): a P→Q resize is
*just another redistribution*, so the paper's fine-grained machinery applies
unchanged.  A :class:`ResizePlan` is compiled onto the fused
:class:`~repro.core.plan.ResortPlan` engine over a scratch machine with
``max(P, Q)`` ranks (the superset on which both layouts exist — source
ranks ≥ P hold nothing, target ranks ≥ Q receive nothing) and moves **all
seven checkpointed particle columns in one fused byte-packed exchange**.

Target layout: the **canonical (globally id-ordered) decomposition** for Q
ranks.  Partition bounds come from :mod:`repro.core.balance` —
:func:`~repro.core.balance.count_split_bounds` by default (bitwise the
historical ``floor(i*n/Q)`` splits), or
:func:`~repro.core.balance.work_split_bounds` when per-particle weights (in
global id order) are supplied.  Particle with global id ``g`` lands on the
rank ``t`` whose half-open bound interval contains ``g``, at local position
``g - bounds[t]`` — so the result is id-sorted within every rank.
Consequences, all pinned by the property suite:

* resize is **permutation-safe**: any two checkpoints holding the same
  particles (however scattered over source ranks) resize to the identical
  per-rank layout;
* resize is **empty-rank-safe**: ``Q > n_particles`` simply leaves the top
  ranks empty;
* P→Q→P round-trips are **bitwise identity** on every column once the
  source layout is canonical (and identical on the id-gathered view
  always — the layout-independent statement of "restores every column").

Rank-count-specific bookkeeping cannot survive a resize and is reset: the
cached :class:`ResortPlan`/last report are dropped (their resort indices
address P ranks), the per-rank trace ``rank_work`` vectors are dropped
(shape P), capacities are recomputed for Q ranks, and the Q clocks all
start at the checkpoint's elapsed (max) clock — the machine-model analogue
of "every new rank joins at the wall time the old allocation stopped".
Aggregate history (trace phases/counters/notes, auditor ledgers, step
records, RNG, monitor) is carried over unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.ckpt.checkpoint import COLUMNS, Checkpoint
from repro.core.balance import count_split_bounds, work_split_bounds
from repro.core.resort import pack_resort_index

__all__ = ["ResizePlan", "compile_resize_plan", "resize_checkpoint"]


@dataclasses.dataclass
class ResizePlan:
    """A compiled P→Q redistribution schedule for checkpoint columns."""

    old_nprocs: int
    new_nprocs: int
    n_particles: int
    #: ``new_nprocs + 1`` monotone global-id partition bounds of the target
    bounds: np.ndarray
    #: per-source-rank packed (target rank, target position) indices on the
    #: ``max(P, Q)``-rank scratch superset (ranks ≥ P are empty)
    resort_indices: List[np.ndarray]
    old_counts: List[int]
    new_counts: List[int]
    #: inter-rank payload bytes of the fused exchange (filled by
    #: :func:`resize_checkpoint`; 0 until executed)
    moved_bytes: int = 0

    @property
    def scratch_nprocs(self) -> int:
        return max(self.old_nprocs, self.new_nprocs)


def compile_resize_plan(
    ckpt: Checkpoint,
    new_nprocs: int,
    *,
    weights: Optional[np.ndarray] = None,
) -> ResizePlan:
    """Compile the P→Q schedule for ``ckpt`` (no data is moved yet).

    ``weights``, when given, are per-particle work estimates **in global id
    order** (length ``n_particles``); the target bounds then equalize work
    via :func:`~repro.core.balance.work_split_bounds` instead of counts.
    """
    Q = int(new_nprocs)
    if Q < 1:
        raise ValueError(f"new_nprocs must be >= 1, got {new_nprocs}")
    P = ckpt.nprocs
    n = ckpt.n_particles
    all_ids = (
        np.concatenate(ckpt.ids) if ckpt.ids else np.zeros(0, dtype=np.int64)
    )
    if not np.array_equal(np.sort(all_ids), np.arange(n, dtype=np.int64)):
        raise ValueError(
            "checkpoint ids are not a permutation of 0..n-1; cannot derive "
            "a canonical target layout"
        )
    if weights is None:
        bounds = count_split_bounds(n, Q)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (n,):
            raise ValueError(
                f"weights must be per-particle in global id order, "
                f"expected shape ({n},), got {w.shape}"
            )
        bounds = work_split_bounds(w, Q)

    R = max(P, Q)
    resort_indices: List[np.ndarray] = []
    old_counts: List[int] = []
    for r in range(R):
        if r < P:
            g = ckpt.ids[r]
            target_rank = np.searchsorted(bounds, g, side="right") - 1
            target_pos = g - bounds[target_rank]
            resort_indices.append(
                pack_resort_index(
                    target_rank.astype(np.int64), target_pos.astype(np.int64)
                )
            )
            old_counts.append(int(g.shape[0]))
        else:
            resort_indices.append(np.zeros(0, dtype=np.int64))
            old_counts.append(0)
    new_counts = [
        int(bounds[t + 1] - bounds[t]) if t < Q else 0 for t in range(R)
    ]
    return ResizePlan(
        old_nprocs=P,
        new_nprocs=Q,
        n_particles=n,
        bounds=bounds,
        resort_indices=resort_indices,
        old_counts=old_counts,
        new_counts=new_counts,
    )


def _empty_like_column(sample: np.ndarray) -> np.ndarray:
    return np.zeros((0,) + sample.shape[1:], dtype=sample.dtype)


def resize_checkpoint(
    ckpt: Checkpoint,
    new_nprocs: int,
    *,
    weights: Optional[np.ndarray] = None,
    metrics=None,
) -> Tuple[Checkpoint, ResizePlan]:
    """Redistribute ``ckpt`` onto ``new_nprocs`` ranks.

    Compiles a :class:`ResizePlan` and executes it as **one fused
    seven-column exchange** on a scratch machine (the scratch machine's
    costs are modeling scaffolding and are discarded — resizing happens
    offline, between runs).  Returns the new Q-rank checkpoint and the
    executed plan; ``plan.moved_bytes`` reports the inter-rank payload and
    is also fed to ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) as ``resize.moved_bytes``
    when one is passed.
    """
    from repro.core.plan import ResortPlan
    from repro.simmpi.machine import Machine

    plan = compile_resize_plan(ckpt, new_nprocs, weights=weights)
    P, Q, R = plan.old_nprocs, plan.new_nprocs, plan.scratch_nprocs
    scratch = Machine(R)
    engine = ResortPlan(
        scratch,
        plan.resort_indices,
        plan.old_counts,
        plan.new_counts,
        comm="alltoall",
        phase="resize",
    )
    in_cols = []
    for name in COLUMNS:
        arrs = list(ckpt.columns(name))
        pad = _empty_like_column(arrs[0])
        in_cols.append(arrs + [pad] * (R - P))
    out_cols = engine.execute(in_cols, phase="resize")
    plan.moved_bytes = engine.stats.bytes_moved
    if metrics is not None:
        metrics.counter("resize.moved_bytes").inc(plan.moved_bytes)
        metrics.counter("resize.count").inc()

    by_name = {
        name: [out_cols[c][r] for r in range(Q)]
        for c, name in enumerate(COLUMNS)
    }
    n = plan.n_particles
    cfg_capacity = float(ckpt.config.get("capacity_factor", 3.0))
    per_rank = max(1, -(-n // Q))
    base_cap = int(np.ceil(cfg_capacity * per_rank))
    capacities = [max(base_cap, c, 1) for c in plan.new_counts[:Q]]

    trace = {
        "phases": {k: dict(v) for k, v in ckpt.trace.get("phases", {}).items()},
        "counters": dict(ckpt.trace.get("counters", {})),
        "notes": dict(ckpt.trace.get("notes", {})),
        # per-rank work vectors have shape P and cannot be reinterpreted on
        # Q ranks; the balance monitor restarts its observation window
        "rank_work": {},
    }
    elapsed = float(np.asarray(ckpt.clocks).max()) if ckpt.nprocs else 0.0

    import copy as _copy

    resized = Checkpoint(
        nprocs=Q,
        step_index=ckpt.step_index,
        initialized=ckpt.initialized,
        active_method=ckpt.active_method,
        config=_copy.deepcopy(ckpt.config),
        box=ckpt.box.copy(),
        offset=ckpt.offset.copy(),
        pos=by_name["pos"],
        q=by_name["q"],
        pot=by_name["pot"],
        field=by_name["field"],
        vel=by_name["vel"],
        acc=by_name["acc"],
        ids=by_name["ids"],
        capacities=capacities,
        rng_state=_copy.deepcopy(ckpt.rng_state),
        records=_copy.deepcopy(ckpt.records),
        last_max_move=ckpt.last_max_move,
        adaptive=_copy.deepcopy(ckpt.adaptive),
        # the cached plan/report key resort indices for P ranks — stale by
        # construction; the resumed run recompiles on its first changed run
        fcs_state={
            "resort_requested": bool(
                ckpt.fcs_state.get("resort_requested", False)
            ),
            "has_plan": False,
            "report": None,
        },
        solver_state=_copy.deepcopy(ckpt.solver_state),
        monitor=_copy.deepcopy(ckpt.monitor),
        clocks=np.full(Q, elapsed, dtype=np.float64),
        trace=trace,
        auditor=_copy.deepcopy(ckpt.auditor),
        thermostat=_copy.deepcopy(ckpt.thermostat),
    )
    return resized, plan
