"""Command-line interface for :mod:`repro.ckpt`.

Four subcommands::

    python -m repro.ckpt save    --solver fmm --method B --steps 3 \
        --nprocs 4 --particles 24 --out melt.ckpt.ndjson
    python -m repro.ckpt restore --path melt.ckpt.ndjson --steps 2
    python -m repro.ckpt resize  --path melt.ckpt.ndjson --nprocs 6 \
        --out melt-6.ckpt.ndjson
    python -m repro.ckpt verify  [--quick] [--via-file]

``save`` runs a fresh seeded trajectory and writes its checkpoint —
a self-contained way to produce a real checkpoint file for the other
subcommands (and for ``python -m repro.verify dst --resume-from``).
``restore`` rebuilds the simulation, optionally continues it, and prints
the component state fingerprints.  ``resize`` redistributes the file onto
a different rank count through the fused exchange and reports the moved
bytes.  ``verify`` runs the restart-equivalence suite (run 2N ≡ run N +
save + restore + run N) over the solver × method grid and exits non-zero
on any divergence — the CI ``ckpt-smoke`` entry point.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ckpt",
        description=(
            "deterministic checkpoint/restart and elastic rank-resize for "
            "the coupled particle simulation"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    save = sub.add_parser(
        "save", help="run a fresh seeded trajectory and write its checkpoint"
    )
    save.add_argument("--solver", default="fmm")
    save.add_argument("--method", default="B")
    save.add_argument("--steps", type=int, default=3)
    save.add_argument("--nprocs", type=int, default=4)
    save.add_argument("--particles", type=int, default=24)
    save.add_argument("--seed", type=int, default=0)
    save.add_argument("--out", required=True, metavar="PATH")

    restore = sub.add_parser(
        "restore",
        help="rebuild a simulation from a checkpoint and optionally continue",
    )
    restore.add_argument("--path", required=True, metavar="PATH")
    restore.add_argument(
        "--steps", type=int, default=0, help="continuation steps (default 0)"
    )

    resize = sub.add_parser(
        "resize", help="redistribute a checkpoint onto a different rank count"
    )
    resize.add_argument("--path", required=True, metavar="PATH")
    resize.add_argument("--nprocs", type=int, required=True, metavar="Q")
    resize.add_argument("--out", required=True, metavar="PATH")

    verify = sub.add_parser(
        "verify",
        help="restart-equivalence suite: run 2N == run N + save/restore + run N",
    )
    verify.add_argument("--solvers", nargs="+", default=None, metavar="SOLVER")
    verify.add_argument("--methods", nargs="+", default=None, metavar="METHOD")
    verify.add_argument("--steps", type=int, default=2)
    verify.add_argument("--nprocs", type=int, default=2)
    verify.add_argument("--particles", type=int, default=16)
    verify.add_argument(
        "--quick",
        action="store_true",
        help="small grid: direct+fmm solvers, methods A and B+move",
    )
    verify.add_argument(
        "--via-file",
        action="store_true",
        help="route every checkpoint through an NDJSON file round-trip",
    )
    return parser


def _cmd_save(args) -> int:
    from repro.md.simulation import Simulation, SimulationConfig
    from repro.md.systems import silica_melt_system
    from repro.simmpi.machine import Machine

    sim = Simulation(
        Machine(args.nprocs),
        silica_melt_system(args.particles, seed=args.seed),
        SimulationConfig(
            solver=args.solver,
            method=args.method,
            seed=args.seed,
            track_energy=True,
        ),
    )
    try:
        sim.run(args.steps)
        n_bytes = sim.save_checkpoint(args.out)
    finally:
        sim.fcs.destroy()
    print(
        f"saved {args.out}: {args.solver}/{args.method} step {args.steps}, "
        f"{args.particles} particles on {args.nprocs} ranks, {n_bytes} bytes"
    )
    return 0


def _cmd_restore(args) -> int:
    from repro.ckpt import load_checkpoint, restore_simulation
    from repro.verify.invariants import InvariantChecker, state_fingerprint

    ckpt = load_checkpoint(args.path)
    sim = restore_simulation(ckpt)
    try:
        checker = InvariantChecker(sim)
        if args.steps:
            sim.run(args.steps)
        checker.assert_ok()
        fp = state_fingerprint(sim)
    finally:
        sim.fcs.destroy()
    print(
        f"restored {args.path}: step {ckpt.step_index} + {args.steps} "
        f"continuation step(s), {ckpt.n_particles} particles on "
        f"{ckpt.nprocs} ranks; invariants ok"
    )
    for component in sorted(fp):
        print(f"  {component}: {fp[component]}")
    return 0


def _cmd_resize(args) -> int:
    from repro.ckpt import load_checkpoint, resize_checkpoint
    from repro.ckpt.checkpoint import write_checkpoint

    ckpt = load_checkpoint(args.path)
    resized, plan = resize_checkpoint(ckpt, args.nprocs)
    n_bytes = write_checkpoint(resized, args.out)
    print(
        f"resized {args.path}: {plan.old_nprocs} -> {plan.new_nprocs} ranks, "
        f"{plan.n_particles} particles, {plan.moved_bytes} payload bytes "
        f"moved in one fused exchange; wrote {args.out} ({n_bytes} bytes)"
    )
    return 0


def _cmd_verify(args) -> int:
    from repro.ckpt.equivalence import (
        EQUIVALENCE_METHODS,
        EQUIVALENCE_SOLVERS,
        run_equivalence_suite,
    )

    if args.quick:
        solvers = args.solvers or ["direct", "fmm"]
        methods = args.methods or ["A", "B+move"]
    else:
        solvers = args.solvers or list(EQUIVALENCE_SOLVERS)
        methods = args.methods or list(EQUIVALENCE_METHODS)
    cells = run_equivalence_suite(
        solvers,
        methods,
        steps=args.steps,
        nprocs=args.nprocs,
        n_particles=args.particles,
        via_file=args.via_file,
        progress=print,
    )
    failed = [c for c in cells if not c.ok]
    print(
        f"restart-equivalence: {len(cells) - len(failed)}/{len(cells)} "
        f"cells ok"
    )
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(sys.argv[1:] if argv is None else argv)
    handler = {
        "save": _cmd_save,
        "restore": _cmd_restore,
        "resize": _cmd_resize,
        "verify": _cmd_verify,
    }[args.command]
    return handler(args)
