"""Bit-exact NDJSON value codec for checkpoint files.

Follows the :mod:`repro.obs.export` conventions — one JSON object per line,
sorted keys, compact separators, a ``kind: "meta"`` header carrying the
format version — and extends them with a recursive value codec so *any*
checkpointed quantity survives a write/read cycle bit-for-bit:

* ``float`` (and NumPy floating scalars) are stored as their
  ``float.hex()`` bit pattern and restored via ``float.fromhex`` — the
  same convention the obs exporter uses for span fields;
* ``numpy.ndarray`` buffers are stored as ``{dtype, shape, hex}`` with the
  raw little-endian bytes hex-encoded, so every column (positions,
  charges, velocities, resort indices, ...) round-trips exactly;
* ints (arbitrary precision — the PCG64 RNG state is a 128-bit integer),
  bools, strings, ``None``, and nested lists/dicts pass through plainly.

The encoded markers (``__float__``, ``__ndarray__``) are reserved keys; a
user dict containing them would be mis-decoded, which is acceptable for an
internal format whose writers are all in this package.
"""

from __future__ import annotations

import json
from typing import Any, IO, Iterable, Iterator, List

import numpy as np

__all__ = [
    "CKPT_VERSION",
    "decode_value",
    "dumps",
    "encode_value",
    "read_lines",
    "write_lines",
]

#: bump when the on-disk layout changes incompatibly
CKPT_VERSION = 1


def dumps(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace (obs convention)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def encode_value(value: Any) -> Any:
    """Recursively encode ``value`` into a JSON-able, bit-exact form."""
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        if arr.dtype.byteorder == ">":  # pragma: no cover - exotic inputs
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        return {
            "__ndarray__": {
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "hex": arr.tobytes().hex(),
            }
        }
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (float, np.floating)):
        return {"__float__": float(value).hex()}
    if isinstance(value, (int, np.integer)):
        return int(value)
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, dict):
        return {str(k): encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    raise TypeError(f"cannot encode {type(value).__name__} for a checkpoint")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if set(value) == {"__ndarray__"}:
            spec = value["__ndarray__"]
            raw = bytes.fromhex(spec["hex"])
            arr = np.frombuffer(raw, dtype=np.dtype(spec["dtype"]))
            return arr.reshape([int(d) for d in spec["shape"]]).copy()
        if set(value) == {"__float__"}:
            return float.fromhex(value["__float__"])
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def write_lines(stream: IO[str], lines: Iterable[str]) -> int:
    """Write NDJSON lines; returns the total bytes written (UTF-8)."""
    total = 0
    for line in lines:
        stream.write(line)
        stream.write("\n")
        total += len(line.encode("utf-8")) + 1
    return total


def read_lines(stream: IO[str]) -> Iterator[dict]:
    """Yield parsed NDJSON records, skipping blank lines."""
    for line in stream:
        line = line.strip()
        if line:
            yield json.loads(line)


def encode_lines(records: List[dict]) -> List[str]:
    """Encode a list of plain records into deterministic NDJSON lines."""
    return [dumps(rec) for rec in records]
