"""Restart-equivalence test kit: run 2N ≡ run N + save + restore + run N.

For every (solver, method) cell, :func:`run_restart_equivalence`

1. runs an **uninterrupted** trajectory for ``2·steps`` steps on an audited
   machine and fingerprints its final state
   (:func:`~repro.verify.invariants.state_fingerprint`) and auditor
   ledgers (:func:`~repro.verify.dst.ledger_fingerprint`);
2. runs the **same** trajectory for ``steps`` steps on a fresh machine,
   captures a checkpoint (optionally through a save→load file round-trip),
   destroys the simulation ("the job was killed"), restores onto a third
   fresh audited machine and runs ``steps`` more;
3. arms the ``ckpt-restart-equivalence`` invariant with the uninterrupted
   fingerprints and asserts it on the restored simulation.

Byte-identity of both fingerprint sets is the whole checkpointing
contract; any divergence (a forgotten RNG stream, a re-tuned table that
depends on layout, a charge not wiped by the clock restore) fails here with
the diverging components named.

:func:`run_equivalence_suite` sweeps the full 4-solver × 3-method matrix —
the programmatic backbone of the ``python -m repro.ckpt verify`` CLI and
the CI ``ckpt-smoke`` job.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ckpt.checkpoint import (
    capture_checkpoint,
    load_checkpoint,
    write_checkpoint,
)
from repro.ckpt.restore import restore_simulation

__all__ = [
    "EQUIVALENCE_METHODS",
    "EQUIVALENCE_SOLVERS",
    "EquivalenceCell",
    "run_equivalence_suite",
    "run_restart_equivalence",
    "step_breakdown_hex",
]

EQUIVALENCE_SOLVERS = ("direct", "ewald", "fmm", "p2nfft")
EQUIVALENCE_METHODS = ("A", "B", "B+move")


def step_breakdown_hex(records) -> List[Dict[str, str]]:
    """Per-step phase-time breakdown as ``float.hex`` bit patterns.

    The golden suite pins these: two runs agree on the breakdown iff every
    phase of every step charged bitwise-identical virtual time.
    """
    return [
        {label: float(stats.time).hex() for label, stats in sorted(rec.phases.items())}
        for rec in records
    ]


@dataclasses.dataclass
class EquivalenceCell:
    """Outcome of one (solver, method) restart-equivalence check."""

    solver: str
    method: str
    steps: int
    nprocs: int
    ok: bool
    detail: str
    #: component fingerprints of the uninterrupted run (what the restored
    #: run was held to)
    state_fingerprint: Dict[str, str]
    ledger_fingerprint: str
    #: per-step float-hex phase breakdown of the restored (split) run —
    #: asserted equal to the uninterrupted run's before this cell reports ok
    breakdown: List[Dict[str, str]]


def _build(solver: str, method: str, *, nprocs, n_particles, system_seed,
           solver_kwargs, track_energy=True):
    from repro.md.simulation import Simulation, SimulationConfig
    from repro.md.systems import silica_melt_system
    from repro.simmpi.machine import Machine
    from repro.verify.audit import enable_auditing

    machine = Machine(nprocs)
    system = silica_melt_system(n_particles, seed=system_seed)
    config = SimulationConfig(
        solver=solver,
        method=method,
        seed=system_seed,
        track_energy=track_energy,
        solver_kwargs=dict(solver_kwargs or {}),
    )
    sim = Simulation(machine, system, config)
    auditor = enable_auditing(machine)
    return sim, auditor


def run_restart_equivalence(
    solver: str,
    method: str,
    *,
    steps: int = 2,
    nprocs: int = 2,
    n_particles: int = 16,
    system_seed: int = 0,
    solver_kwargs: Optional[dict] = None,
    via_file: bool = False,
) -> EquivalenceCell:
    """Check run-2N ≡ run-N + save + restore + run-N for one cell.

    ``via_file=True`` routes the checkpoint through an NDJSON save→load
    round-trip in a temporary directory (exercising the serialization);
    the default hands the in-memory :class:`Checkpoint` straight to the
    restore.
    """
    from repro.simmpi.machine import Machine
    from repro.verify.audit import enable_auditing
    from repro.verify.dst import ledger_fingerprint
    from repro.verify.invariants import InvariantChecker, state_fingerprint

    # -- the uninterrupted run: 2N steps ------------------------------------
    sim_straight, auditor_straight = _build(
        solver, method, nprocs=nprocs, n_particles=n_particles,
        system_seed=system_seed, solver_kwargs=solver_kwargs,
    )
    try:
        sim_straight.run(2 * steps)
        straight_state = state_fingerprint(sim_straight)
        auditor_straight.assert_quiescent()
        straight_ledger = ledger_fingerprint(auditor_straight)
        straight_breakdown = step_breakdown_hex(sim_straight.records)
    finally:
        sim_straight.fcs.destroy()

    # -- the split run: N steps, kill, restore, N more ----------------------
    sim_first, _auditor_first = _build(
        solver, method, nprocs=nprocs, n_particles=n_particles,
        system_seed=system_seed, solver_kwargs=solver_kwargs,
    )
    try:
        sim_first.run(steps)
        if via_file:
            with tempfile.TemporaryDirectory() as tmp:
                path = os.path.join(tmp, "equivalence.ckpt.ndjson")
                write_checkpoint(capture_checkpoint(sim_first), path)
                ckpt = load_checkpoint(path)
        else:
            ckpt = capture_checkpoint(sim_first)
    finally:
        sim_first.fcs.destroy()

    machine = Machine(nprocs)
    auditor = enable_auditing(machine)
    sim = restore_simulation(ckpt, machine=machine)
    try:
        sim.run(steps)
        checker = InvariantChecker(sim)
        checker.expected_restart = {
            "state": straight_state,
            "ledger": straight_ledger,
        }
        results = checker.run(["ckpt-restart-equivalence"])
        problems = [f"{r.name}: {r.detail}" for r in results if r.failed]
        breakdown = step_breakdown_hex(sim.records)
        if breakdown != straight_breakdown:
            first_bad = next(
                i
                for i, (a, b) in enumerate(zip(breakdown, straight_breakdown))
                if a != b
            )
            problems.append(
                "per-step phase breakdown diverged from the uninterrupted "
                f"run (first at step {first_bad})"
            )
        try:
            auditor.assert_quiescent()
        except AssertionError as exc:
            problems.append(str(exc))
    finally:
        sim.fcs.destroy()

    return EquivalenceCell(
        solver=solver,
        method=method,
        steps=steps,
        nprocs=nprocs,
        ok=not problems,
        detail="; ".join(problems) if problems else "ok",
        state_fingerprint=straight_state,
        ledger_fingerprint=straight_ledger,
        breakdown=breakdown,
    )


def run_equivalence_suite(
    solvers: Sequence[str] = EQUIVALENCE_SOLVERS,
    methods: Sequence[str] = EQUIVALENCE_METHODS,
    *,
    steps: int = 2,
    nprocs: int = 2,
    n_particles: int = 16,
    system_seed: int = 0,
    via_file: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> List[EquivalenceCell]:
    """Run :func:`run_restart_equivalence` over a (solver, method) grid."""
    say = progress if progress is not None else (lambda msg: None)
    cells: List[EquivalenceCell] = []
    for solver in solvers:
        for method in methods:
            cell = run_restart_equivalence(
                solver,
                method,
                steps=steps,
                nprocs=nprocs,
                n_particles=n_particles,
                system_seed=system_seed,
                via_file=via_file,
            )
            say(
                f"ckpt: {solver}/{method} restart-equivalence "
                f"{'ok' if cell.ok else 'FAILED — ' + cell.detail}"
            )
            cells.append(cell)
    return cells
