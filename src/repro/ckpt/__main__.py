"""``python -m repro.ckpt`` — see :mod:`repro.ckpt.cli`."""

import sys

from repro.ckpt.cli import main

if __name__ == "__main__":
    sys.exit(main())
