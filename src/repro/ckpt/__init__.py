"""Deterministic checkpoint/restart + elastic rank-resize (``repro.ckpt``).

The paper's subject is moving particle data between decompositions; this
package applies the same machinery to the one robustness shape every
long-running parallel code needs: **stop, resume, resize**.

* :mod:`repro.ckpt.format` — bit-exact NDJSON codec (``float.hex`` bit
  patterns, hex-encoded array buffers) following the
  :mod:`repro.obs.export` conventions;
* :mod:`repro.ckpt.checkpoint` — :class:`~repro.ckpt.checkpoint.Checkpoint`
  capture/save/load of a full :class:`~repro.md.simulation.Simulation`
  (per-rank particle columns, solver resort state, RNG, Trace/auditor
  snapshots, machine clocks);
* :mod:`repro.ckpt.restore` — :func:`~repro.ckpt.restore.restore_simulation`
  rebuilding a live simulation whose continuation is byte-identical to the
  uninterrupted run (the ``ckpt-restart-equivalence`` invariant);
* :mod:`repro.ckpt.resize` — P→Q elastic restore: a
  :class:`~repro.ckpt.resize.ResizePlan` compiled onto the fused
  :class:`~repro.core.plan.ResortPlan` engine redistributes every
  checkpointed column in one exchange and recomputes weighted partition
  bounds for the new rank count;
* :mod:`repro.ckpt.equivalence` — the restart-equivalence test kit
  (imported lazily: it pulls in :mod:`repro.verify`);
* ``python -m repro.ckpt save/restore/resize/verify`` — the CLI.

See ``docs/checkpointing.md`` for the file format and guarantees.
"""

from repro.ckpt.checkpoint import (
    Checkpoint,
    capture_checkpoint,
    load_checkpoint,
    save_checkpoint,
    write_checkpoint,
)
from repro.ckpt.format import CKPT_VERSION, decode_value, encode_value
from repro.ckpt.resize import ResizePlan, compile_resize_plan, resize_checkpoint
from repro.ckpt.restore import restore_simulation

__all__ = [
    "CKPT_VERSION",
    "Checkpoint",
    "ResizePlan",
    "capture_checkpoint",
    "compile_resize_plan",
    "decode_value",
    "encode_value",
    "load_checkpoint",
    "resize_checkpoint",
    "restore_simulation",
    "save_checkpoint",
    "write_checkpoint",
]
