"""Shared benchmark infrastructure: scales, phase aggregation, runners.

The paper's figures decompose each solver execution into *sort* (placing
particles into the solver's domain decomposition), *restore* (method A's
return to the original order/distribution), *resort* (method B's
redistribution of additional particle data, including the resort-index
creation) and *total*.  :func:`step_breakdown` maps the per-phase trace
deltas of a :class:`~repro.md.simulation.StepRecord` onto those labels.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.md.distributions import clustered_system
from repro.md.simulation import StepRecord
from repro.md.systems import ParticleSystem, silica_melt_system
from repro.simmpi.costmodel import SystemProfile
from repro.simmpi.machine import Machine

__all__ = [
    "BenchScale",
    "PRESETS",
    "SORT_PHASES",
    "RESTORE_PHASES",
    "RESORT_PHASES",
    "SOLVER_PHASES",
    "step_breakdown",
    "make_machine",
    "make_system",
    "make_clustered_system",
]

#: phase labels counted as the solver's particle-placement redistribution
SORT_PHASES = ("sort",)
#: method A's restoration of the original order and distribution
RESTORE_PHASES = ("restore",)
#: the application's redistribution of additional particle data
#: (``fcs.resort`` plus the one-off plan compilation) — what Fig. 7 plots
#: as "Resort"; the solver-internal resort-index creation stays inside the
#: total (it is the "additional communication step" of Sect. IV-D)
RESORT_PHASES = ("resort", "resort_plan")
#: everything that belongs to one solver execution + redistribution (the
#: paper's "total runtime"; the application's integrator is excluded)
SOLVER_PHASES = (
    "keygen",
    "sort",
    "balance",
    "halo",
    "near",
    "far",
    "mesh",
    "fft",
    "gather",
    "restore",
    "resort_index",
    "resort",
    "resort_plan",
)


def step_breakdown(record: StepRecord) -> Dict[str, float]:
    """Map a step's phase deltas to the paper's sort/restore/resort/total.

    ``redist`` is the complete redistribution cost of the step (sort +
    restore + resort-index creation + resort), the quantity Fig. 8 plots.
    """
    out = {
        "sort": record.phase_time(*SORT_PHASES),
        "restore": record.phase_time(*RESTORE_PHASES),
        "resort": record.phase_time(*RESORT_PHASES),
        "total": record.phase_time(*SOLVER_PHASES),
    }
    out["redist"] = (
        out["sort"] + out["restore"] + out["resort"] + record.phase_time("resort_index")
    )
    return out


@dataclasses.dataclass(frozen=True)
class BenchScale:
    """Problem scale of a benchmark run.

    The paper's testbed (829 440 particles, 1000 time steps, up to 16384
    processes) is scaled down to tractable single-host sizes; the
    redistribution *fractions* per step are scale-free (constant density,
    movement measured in subdomain widths), so the figures' shapes are
    preserved.  ``steps`` applies to the time-series figures, ``nprocs``
    to the fixed-process-count figures.
    """

    name: str
    n: int
    nprocs: int
    steps_fig7: int
    steps_fig8: int
    steps_fig9: int
    fig9_fmm_procs: tuple
    fig9_p2nfft_procs: tuple
    fig9_n: int
    dt_fig8: float
    seed: int = 1


PRESETS: Dict[str, BenchScale] = {
    # fast smoke scale for pytest-benchmark runs
    "quick": BenchScale(
        name="quick",
        n=16_384,
        nprocs=64,
        steps_fig7=8,
        steps_fig8=60,
        steps_fig9=2,
        fig9_fmm_procs=(8, 16, 32, 64, 128),
        fig9_p2nfft_procs=(16, 64, 256, 1024),
        fig9_n=32_768,
        dt_fig8=0.08,
    ),
    # the default: half the paper's particle count at the paper's process
    # count (same particles-per-process regime)
    "default": BenchScale(
        name="default",
        n=414_720,
        nprocs=256,
        steps_fig7=8,
        steps_fig8=200,
        steps_fig9=3,
        fig9_fmm_procs=(8, 16, 32, 64, 128, 256, 512, 1024),
        fig9_p2nfft_procs=(16, 64, 256, 1024, 4096),
        fig9_n=414_720,
        dt_fig8=0.06,
    ),
    # the paper's exact scale (829 440 particles, 1000 steps, 16384 procs)
    "full": BenchScale(
        name="full",
        n=829_440,
        nprocs=256,
        steps_fig7=8,
        steps_fig8=1000,
        steps_fig9=3,
        fig9_fmm_procs=(8, 16, 32, 64, 128, 256, 512, 1024),
        fig9_p2nfft_procs=(16, 64, 256, 1024, 4096, 16384),
        fig9_n=829_440,
        dt_fig8=0.03,
    ),
}


def make_machine(
    nprocs: int,
    profile: SystemProfile,
    *,
    perturbation=None,
) -> Machine:
    """A fresh simulated machine for one benchmark configuration.

    ``perturbation`` optionally applies a seeded
    :class:`~repro.simmpi.chaos.Perturbation` (chaos-harness fault
    injection) before any cost is charged; benchmarks normally leave it
    ``None``.
    """
    return Machine(nprocs, profile=profile, perturbation=perturbation)


_SYSTEM_CACHE: Dict[tuple, ParticleSystem] = {}


def make_system(n: int, seed: int = 1) -> ParticleSystem:
    """Cached melting-silica analogue system at the paper's density."""
    key = (n, seed)
    if key not in _SYSTEM_CACHE:
        _SYSTEM_CACHE[key] = silica_melt_system(n, seed=seed)
    return _SYSTEM_CACHE[key]


def make_clustered_system(kind: str, n: int, seed: int = 1) -> ParticleSystem:
    """Cached inhomogeneous system (Plummer / two-cluster / exponential slab)
    in the same box convention as :func:`make_system`."""
    key = (kind, n, seed)
    if key not in _SYSTEM_CACHE:
        _SYSTEM_CACHE[key] = clustered_system(kind, n, seed=seed)
    return _SYSTEM_CACHE[key]
