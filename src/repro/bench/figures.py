"""Per-figure experiment definitions (the paper's evaluation, Sect. IV).

Each ``figN`` function runs the scaled experiment, prints the paper-style
table/series and returns the structured results for assertions by the
benchmark suite.  All times are modeled (virtual-clock) seconds from the
simulated machine; shapes — who wins, by what factor, where crossovers
fall — are the reproduction target, not absolute values (DESIGN.md §5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.harness import (
    BenchScale,
    PRESETS,
    make_clustered_system,
    make_machine,
    make_system,
    step_breakdown,
)
from repro.bench.report import format_series, format_table, print_header
from repro.md.distributions import CLUSTERED_KINDS
from repro.md.simulation import Simulation, SimulationConfig
from repro.md.systems import ParticleSystem
from repro.simmpi.costmodel import JUQUEEN, JUROPA, SystemProfile

__all__ = ["fig6", "fig7", "fig7_cell", "fig8", "fig9", "phases"]


def _simulate(
    scale: BenchScale,
    *,
    n: int,
    nprocs: int,
    profile: SystemProfile,
    solver: str,
    method: str,
    distribution: str,
    steps: int,
    dt: float = 0.01,
    accuracy: float = 1e-3,
    dynamics: str = "force",
    brownian_step: float = 0.0,
    skip_compute: bool = False,
    system: Optional[ParticleSystem] = None,
    load_balance: str = "off",
    solver_kwargs: Optional[dict] = None,
) -> Simulation:
    machine = make_machine(nprocs, profile)
    if system is None:
        system = make_system(n, scale.seed)
    kwargs = dict(solver_kwargs or {})
    if skip_compute:
        kwargs.setdefault("compute", "skip")
    cfg = SimulationConfig(
        solver=solver,
        method=method,
        dt=dt,
        accuracy=accuracy,
        distribution=distribution,
        seed=scale.seed,
        dynamics=dynamics,
        brownian_step=brownian_step,
        solver_kwargs=kwargs,
        load_balance=load_balance,
    )
    sim = Simulation(machine, system, cfg)
    sim.run(steps)
    return sim


# ------------------------------------------------------------------------- phases


def phases(preset: str = "default", quiet: bool = False) -> Dict:
    """Per-phase breakdown of one steady-state time step (not in the paper).

    Shows where each solver/method combination spends its modeled time:
    keygen, sort, halo/ghosts, near field, far field (fft/mesh), restore,
    resort-index creation and the application's resort.
    """
    scale = PRESETS[preset]
    system = make_system(scale.n, scale.seed)
    subdomain = float(system.box.min()) / round(scale.nprocs ** (1.0 / 3.0))
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for solver in ("fmm", "p2nfft"):
        results[solver] = {}
        for method in ("A", "B", "B+move"):
            sim = _simulate(
                scale,
                n=scale.n,
                nprocs=scale.nprocs,
                profile=JUROPA,
                solver=solver,
                method=method,
                distribution="grid",
                steps=3,
                dynamics="brownian",
                brownian_step=0.01 * subdomain,
                skip_compute=True,
            )
            rec = sim.records[-1]
            results[solver][method] = {
                label: stats.time for label, stats in rec.phases.items_sorted()
            }
    if not quiet:
        all_labels = sorted(
            {l for s in results.values() for m in s.values() for l in m}
        )
        print_header(
            f"Per-phase breakdown of one steady-state step "
            f"({scale.nprocs} procs, n={scale.n}; modeled seconds)"
        )
        rows = []
        for solver in results:
            for method in results[solver]:
                row = [solver, method] + [
                    results[solver][method].get(l, 0.0) for l in all_labels
                ]
                rows.append(row)
        print(format_table(["solver", "method"] + all_labels, rows, "{:.2e}"))
    return results


# --------------------------------------------------------------------------- fig 6


def fig6(preset: str = "default", quiet: bool = False) -> Dict:
    """Influence of the initial particle distribution (Fig. 6).

    Method A, one solver execution (the initial interactions), three
    initial distributions.  Expected shape: *single process* slowest by a
    wide margin (one rank serializes all communication; the FMM computes
    sequentially since its sort preserves part sizes), *random* in the
    middle, *process grid* cheapest with sort/restore at least an order of
    magnitude below random.

    Beyond the paper, three **clustered presets** (rows
    ``clustered:plummer`` / ``clustered:two-cluster`` /
    ``clustered:exponential-slab``) run grid-distributed inhomogeneous
    systems of the same size: the spatial clustering concentrates the
    particles on few ranks, so their totals sit far above the homogeneous
    grid row — the workload the load-balancing subsystem
    (:mod:`repro.core.balance`) exists for.
    """
    scale = PRESETS[preset]
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for solver in ("fmm", "p2nfft"):
        results[solver] = {}
        for dist in ("single", "random", "grid"):
            sim = _simulate(
                scale,
                n=scale.n,
                nprocs=scale.nprocs,
                profile=JUROPA,
                solver=solver,
                method="A",
                distribution=dist,
                steps=0,
                skip_compute=True,
            )
            b = step_breakdown(sim.records[0])
            results[solver][dist] = b
        for kind in CLUSTERED_KINDS:
            sim = _simulate(
                scale,
                n=scale.n,
                nprocs=scale.nprocs,
                profile=JUROPA,
                solver=solver,
                method="A",
                distribution="grid",
                steps=0,
                skip_compute=True,
                system=make_clustered_system(kind, scale.n, scale.seed),
                solver_kwargs=(
                    {"work_model": "density"} if solver == "fmm" else None
                ),
            )
            results[solver][f"clustered:{kind}"] = step_breakdown(sim.records[0])
    if not quiet:
        print_header(
            f"Fig. 6 — initial particle distribution (method A, {scale.nprocs} procs, "
            f"n={scale.n}, JuRoPA profile; modeled seconds)"
        )
        rows = []
        for solver in results:
            for dist in results[solver]:
                b = results[solver][dist]
                rows.append([solver, dist, b["total"], b["sort"], b["restore"]])
        print(format_table(["solver", "distribution", "total", "sort", "restore"], rows))
    return results


# --------------------------------------------------------------------------- fig 7


def fig7_cell(preset: str, solver: str, method: str) -> Dict[str, List[float]]:
    """One independent Fig. 7 cell: the per-step phase series of one
    (solver, method) combination.

    Top-level so the perf harness can fan the four cells out over an
    execution backend's worker processes (each cell is a full simulation
    with its own machine — the coarse-grained parallelism of the Fig. 7
    wall benchmark); results are deterministic, so a fan-out returns
    bitwise the sequential series.
    """
    scale = PRESETS[preset]
    steps = scale.steps_fig7
    system = make_system(scale.n, scale.seed)
    subdomain = float(system.box.min()) / round(scale.nprocs ** (1.0 / 3.0))
    sim = _simulate(
        scale,
        n=scale.n,
        nprocs=scale.nprocs,
        profile=JUROPA,
        solver=solver,
        method=method,
        distribution="random",
        steps=steps,
        dynamics="brownian",
        brownian_step=0.005 * subdomain,
        skip_compute=True,
    )
    series: Dict[str, List[float]] = {"sort": [], "restore": [], "resort": [], "total": []}
    for rec in sim.records:
        b = step_breakdown(rec)
        for k in series:
            series[k].append(b[k])
    return series


def fig7(preset: str = "default", quiet: bool = False, backend=None) -> Dict:
    """Method A vs B over the initial run and the first time steps (Fig. 7).

    Random initial distribution.  Expected shape: method A's sort/restore
    stay at their initial-run level every step; method B's sort/resort
    collapse by orders of magnitude from step 1 on, pulling the total down
    (the paper reports ~45 % of A's total for the FMM, ~20 % for the
    P2NFFT).

    ``backend``: an optional :class:`~repro.backend.ExecutionBackend` (or
    spec string) to run the four independent (solver, method) cells on
    worker processes; modeled results are identical either way.
    """
    scale = PRESETS[preset]
    steps = scale.steps_fig7
    cells = [(solver, method) for solver in ("fmm", "p2nfft") for method in ("A", "B")]
    if backend is not None:
        from repro.backend import resolve_backend

        engine = resolve_backend(backend)
    else:
        engine = None
    if engine is not None and engine.workers:
        all_series = engine.map_tasks(
            "repro.bench.figures.fig7_cell",
            [(preset, solver, method) for solver, method in cells],
        )
    else:
        all_series = [fig7_cell(preset, solver, method) for solver, method in cells]
    results: Dict[str, Dict[str, Dict[str, List[float]]]] = {}
    for (solver, method), series in zip(cells, all_series):
        results.setdefault(solver, {})[method] = series
    if not quiet:
        for solver in results:
            print_header(
                f"Fig. 7 — time steps with the {solver.upper()} solver "
                f"({scale.nprocs} procs, n={scale.n}, random initial distribution; modeled seconds)"
            )
            xs = ["initial"] + [str(i) for i in range(1, steps + 1)]
            merged = {
                "sort/A": results[solver]["A"]["sort"],
                "restore/A": results[solver]["A"]["restore"],
                "total/A": results[solver]["A"]["total"],
                "sort/B": results[solver]["B"]["sort"],
                "resort/B": results[solver]["B"]["resort"],
                "total/B": results[solver]["B"]["total"],
            }
            print(format_series("step", xs, merged))
    return results


# --------------------------------------------------------------------------- fig 8


def fig8(
    preset: str = "default",
    steps: Optional[int] = None,
    quiet: bool = False,
) -> Dict:
    """Long runs from the process-grid initial distribution (Fig. 8).

    Expected shape: with method A the per-step redistribution cost starts
    near zero (solver decomposition ~ initial decomposition) and *grows*
    as the particles drift away from their initial subdomains, reaching a
    large fraction of the step total; with method B it stays flat and
    small.
    """
    scale = PRESETS[preset]
    steps = steps or scale.steps_fig8
    # the melt's diffusive drift is modeled with the brownian surrogate
    # (DESIGN.md §5): per-step displacement such that particles cross a few
    # subdomain widths over the run — the regime where Fig. 8's method A
    # cost growth appears
    system = make_system(scale.n, scale.seed)
    subdomain = float(system.box.min()) / round(scale.nprocs ** (1.0 / 3.0))
    # ~6 subdomain widths of cumulative drift over the run: by the end the
    # initial decomposition is deeply mixed, the regime of the paper's
    # late-run measurements
    brownian_step = 6.0 * subdomain / steps
    results: Dict[str, Dict[str, Dict[str, List[float]]]] = {}
    for solver in ("fmm", "p2nfft"):
        results[solver] = {}
        for method in ("A", "B"):
            sim = _simulate(
                scale,
                n=scale.n,
                nprocs=scale.nprocs,
                profile=JUROPA,
                solver=solver,
                method=method,
                distribution="grid",
                steps=steps,
                dt=scale.dt_fig8,
                dynamics="brownian",
                brownian_step=brownian_step,
                skip_compute=True,
            )
            series: Dict[str, List[float]] = {"redist": [], "total": [], "max_move": []}
            for rec in sim.records[1:]:
                b = step_breakdown(rec)
                series["redist"].append(b["redist"])
                series["total"].append(b["total"])
                series["max_move"].append(rec.max_move)
            results[solver][method] = series
    if not quiet:
        stride = max(1, steps // 20)
        for solver in results:
            print_header(
                f"Fig. 8 — {steps} time steps with the {solver.upper()} solver "
                f"({scale.nprocs} procs, n={scale.n}, grid initial distribution; modeled seconds)"
            )
            xs = list(range(1, steps + 1, stride))
            merged = {
                "sort+restore/A": results[solver]["A"]["redist"][::stride],
                "total/A": results[solver]["A"]["total"][::stride],
                "sort+resort/B": results[solver]["B"]["redist"][::stride],
                "total/B": results[solver]["B"]["total"][::stride],
            }
            print(format_series("step", xs, merged))
    return results


# --------------------------------------------------------------------------- fig 9


def fig9(
    preset: str = "default",
    quiet: bool = False,
    solvers: Sequence[str] = ("fmm", "p2nfft"),
) -> Dict:
    """Strong scaling of methods A, B, B+max-movement (Fig. 9).

    FMM on the JuRoPA (fat-tree) profile, P2NFFT on the Juqueen (torus)
    profile.  Reported is the projected total simulation runtime
    (average per-step solver total x the paper's 1000 steps).  Expected
    shapes: FMM — B below A throughout with the largest gap at mid scale,
    B+movement slightly slower than B on the fat tree; P2NFFT/torus — B
    *slower* than A at high process counts (the extra resort communication
    step), while B+movement keeps scaling and ends well below A.
    """
    scale = PRESETS[preset]
    steps = scale.steps_fig9
    configs = {
        "fmm": (JUROPA, scale.fig9_fmm_procs),
        "p2nfft": (JUQUEEN, scale.fig9_p2nfft_procs),
    }
    system = make_system(scale.fig9_n, scale.seed)
    warmup = 4
    results: Dict[str, Dict] = {}
    for solver in solvers:
        profile, proc_list = configs[solver]
        per_method: Dict[str, List[float]] = {"A": [], "B": [], "B+move": []}
        for nprocs in proc_list:
            subdomain = float(system.box.min()) / round(nprocs ** (1.0 / 3.0))
            for method in ("A", "B", "B+move"):
                # warmup: drift the particles ~1.5 subdomain widths away
                # from the initial decomposition (the average displacement
                # over the paper's 1000-step runs, which is what method A
                # keeps paying for), then measure steady-state steps with
                # small per-step movement
                sim = _simulate(
                    scale,
                    n=scale.fig9_n,
                    nprocs=nprocs,
                    profile=profile,
                    solver=solver,
                    method=method,
                    distribution="grid",
                    steps=0,
                    dynamics="brownian",
                    brownian_step=1.5 * subdomain / warmup,
                    skip_compute=True,
                )
                for _ in range(warmup):
                    sim.step()
                sim.config.brownian_step = 0.02 * subdomain
                measured = [sim.step() for _ in range(steps)]
                per_step = [step_breakdown(r)["total"] for r in measured]
                per_method[method].append(float(np.mean(per_step)) * 1000.0)
        results[solver] = {"procs": list(proc_list), **per_method}
    if not quiet:
        for solver in results:
            profile, _ = configs[solver]
            print_header(
                f"Fig. 9 — total parallel runtimes with the {solver.upper()} solver "
                f"({profile.name} profile, n={scale.fig9_n}; projected 1000-step modeled seconds)"
            )
            r = results[solver]
            print(
                format_series(
                    "procs",
                    r["procs"],
                    {
                        "method A": r["A"],
                        "method B": r["B"],
                        "B + max movement": r["B+move"],
                    },
                )
            )
    return results
