"""Benchmark harness reproducing the paper's evaluation (Sect. IV).

One entry point per figure:

* :func:`~repro.bench.figures.fig6` — influence of the initial particle
  distribution (single process / random / process grid) on total, sort and
  restore runtimes of both solvers with method A (256 processes, JuRoPA).
* :func:`~repro.bench.figures.fig7` — method A vs method B per-time-step
  redistribution and total runtimes over the initial run and the first
  eight time steps, random initial distribution.
* :func:`~repro.bench.figures.fig8` — long simulations from a process-grid
  initial distribution: method A's redistribution cost grows as the
  particles drift away from the initial decomposition, method B stays flat.
* :func:`~repro.bench.figures.fig9` — strong scaling of methods A, B and
  B+max-movement: FMM on the JuRoPA profile, P2NFFT on the Juqueen
  (torus) profile.

Run from the command line: ``python -m repro.bench fig7 [--preset quick]``.
All reported times are modeled (virtual-clock) seconds; see DESIGN.md §5.
"""

from repro.bench.figures import fig6, fig7, fig8, fig9
from repro.bench.harness import BenchScale, PRESETS, step_breakdown

__all__ = ["BenchScale", "PRESETS", "fig6", "fig7", "fig8", "fig9", "step_breakdown"]
