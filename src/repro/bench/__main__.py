"""Command-line benchmark runner: ``python -m repro.bench <figure> [...]``.

Examples
--------
``python -m repro.bench fig6``
``python -m repro.bench fig7 --preset quick``
``python -m repro.bench fig8 --steps 120``
``python -m repro.bench fig9 --preset full``
``python -m repro.bench all``
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.figures import fig6, fig7, fig8, fig9, phases
from repro.bench.harness import PRESETS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's evaluation figures (modeled runtimes).",
    )
    parser.add_argument(
        "figure",
        choices=["fig6", "fig7", "fig8", "fig9", "phases", "all"],
        help="which figure to regenerate ('phases' prints a per-phase step breakdown)",
    )
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="default",
        help="problem scale (quick / default / full)",
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=None,
        help="override the number of time steps (fig8 only)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="additionally export the series as CSV files into DIR",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render ASCII charts of the main series",
    )
    args = parser.parse_args(argv)

    runners = {
        "fig6": lambda: fig6(args.preset),
        "fig7": lambda: fig7(args.preset),
        "fig8": lambda: fig8(args.preset, steps=args.steps),
        "fig9": lambda: fig9(args.preset),
        "phases": lambda: phases(args.preset),
    }
    if args.figure == "all":
        names = ["fig6", "fig7", "fig8", "fig9"]
    else:
        names = [args.figure]
    for name in names:
        t0 = time.time()
        results = runners[name]()
        if args.csv and name.startswith("fig"):
            from repro.bench.export import figure_to_csv

            for path in figure_to_csv(name, results, args.csv):
                print(f"[wrote {path}]")
        if args.chart:
            _charts(name, results)
        print(f"\n[{name} done in {time.time() - t0:.1f}s wall]")
    return 0


def _charts(name: str, results) -> None:
    from repro.bench.export import ascii_chart

    if name == "fig7":
        for solver in results:
            print(f"\n{solver} (per-step redistribution, log scale):")
            print(
                ascii_chart(
                    {
                        "sort+restore A": [
                            a + b
                            for a, b in zip(
                                results[solver]["A"]["sort"],
                                results[solver]["A"]["restore"],
                            )
                        ],
                        "sort+resort B": [
                            a + b
                            for a, b in zip(
                                results[solver]["B"]["sort"],
                                results[solver]["B"]["resort"],
                            )
                        ],
                    }
                )
            )
    elif name == "fig8":
        for solver in results:
            print(f"\n{solver} (per-step redistribution, log scale):")
            print(
                ascii_chart(
                    {
                        "A": results[solver]["A"]["redist"],
                        "B": results[solver]["B"]["redist"],
                    }
                )
            )
    elif name == "fig9":
        for solver in results:
            print(f"\n{solver} (projected totals, log scale):")
            print(
                ascii_chart(
                    {
                        "A": results[solver]["A"],
                        "B": results[solver]["B"],
                        "B+move": results[solver]["B+move"],
                    }
                )
            )


if __name__ == "__main__":
    sys.exit(main())
