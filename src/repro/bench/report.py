"""Plain-text rendering of benchmark results (paper-style tables/series)."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_series", "print_header"]


def print_header(title: str) -> None:
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}")


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    float_fmt: str = "{:.4e}",
) -> str:
    """Fixed-width table; floats formatted scientifically."""
    def fmt(v) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence,
    series: Dict[str, Sequence[float]],
    float_fmt: str = "{:.4e}",
) -> str:
    """One row per x value, one column per named series."""
    headers = [x_label] + list(series)
    rows: List[List] = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, float_fmt)
