"""Result export: CSV files and ASCII charts for the figure data.

``python -m repro.bench fig8 --csv out/`` writes one CSV per figure panel so
the series can be plotted with any external tool; :func:`ascii_chart` gives
a quick in-terminal look at a series (log-scale aware), used by the CLI's
``--chart`` flag.
"""

from __future__ import annotations

import csv
import math
import os
from typing import Dict, List, Sequence

__all__ = ["write_csv", "figure_to_csv", "ascii_chart"]


def write_csv(path: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Write one CSV file, creating parent directories."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)


def figure_to_csv(name: str, results: Dict, out_dir: str) -> List[str]:
    """Flatten a ``figN`` result dict into CSV files; returns the paths."""
    paths: List[str] = []
    if name == "fig6":
        rows = [
            [solver, dist, b["total"], b["sort"], b["restore"]]
            for solver in results
            for dist, b in results[solver].items()
        ]
        path = os.path.join(out_dir, "fig6.csv")
        write_csv(path, ["solver", "distribution", "total", "sort", "restore"], rows)
        paths.append(path)
    elif name == "fig7":
        for solver in results:
            rows = []
            n = len(results[solver]["A"]["total"])
            for i in range(n):
                rows.append(
                    [i]
                    + [results[solver]["A"][k][i] for k in ("sort", "restore", "total")]
                    + [results[solver]["B"][k][i] for k in ("sort", "resort", "total")]
                )
            path = os.path.join(out_dir, f"fig7_{solver}.csv")
            write_csv(
                path,
                ["step", "sort_A", "restore_A", "total_A", "sort_B", "resort_B", "total_B"],
                rows,
            )
            paths.append(path)
    elif name == "fig8":
        for solver in results:
            a = results[solver]["A"]
            b = results[solver]["B"]
            rows = [
                [i + 1, a["redist"][i], a["total"][i], b["redist"][i], b["total"][i]]
                for i in range(len(a["total"]))
            ]
            path = os.path.join(out_dir, f"fig8_{solver}.csv")
            write_csv(
                path,
                ["step", "redist_A", "total_A", "redist_B", "total_B"],
                rows,
            )
            paths.append(path)
    elif name == "fig9":
        for solver in results:
            r = results[solver]
            rows = [
                [p, r["A"][i], r["B"][i], r["B+move"][i]]
                for i, p in enumerate(r["procs"])
            ]
            path = os.path.join(out_dir, f"fig9_{solver}.csv")
            write_csv(path, ["procs", "method_A", "method_B", "B_move"], rows)
            paths.append(path)
    else:
        raise ValueError(f"unknown figure {name!r}")
    return paths


def ascii_chart(
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    log: bool = True,
) -> str:
    """Render named series as a rough ASCII line chart (shared axes)."""
    symbols = "*+o#x@%&"
    all_vals = [v for s in series.values() for v in s if v > 0 or not log]
    if not all_vals:
        return "(empty chart)"
    if log:
        lo = math.log10(min(v for v in all_vals if v > 0))
        hi = math.log10(max(all_vals))
    else:
        lo, hi = min(all_vals), max(all_vals)
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, values) in enumerate(series.items()):
        n = len(values)
        for i, v in enumerate(values):
            if log and v <= 0:
                continue
            x = int(i * (width - 1) / max(n - 1, 1))
            val = math.log10(v) if log else v
            y = int((val - lo) / (hi - lo) * (height - 1))
            y = min(max(y, 0), height - 1)
            grid[height - 1 - y][x] = symbols[si % len(symbols)]
    lines = ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    legend = "  ".join(
        f"{symbols[i % len(symbols)]} {name}" for i, name in enumerate(series)
    )
    scale = "log10" if log else "linear"
    lines.append(f" {legend}   [{scale}: {lo:.2f}..{hi:.2f}]")
    return "\n".join(lines)
